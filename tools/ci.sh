#!/usr/bin/env bash
# Minimal CI: tier-1 verify (ROADMAP.md) + sanitizer passes over the
# concurrency-heavy tests + a Release-mode perf smoke test.
#
#   tools/ci.sh                # debug tests + sanitizers + release smoke bench
#   tools/ci.sh --no-bench     # skip the release bench
#   tools/ci.sh --no-sanitize  # skip the TSan/ASan/UBSan builds
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=1
RUN_SANITIZE=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) RUN_BENCH=0 ;;
    --no-sanitize) RUN_SANITIZE=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1 verify =="
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

echo "== overload scenarios =="
(cd build && ctest -L overload --output-on-failure)

echo "== multi-process smoke =="
# `net`-labeled tests open localhost sockets; net_smoke_test additionally
# fork/execs the real dssj_cli + dssj_worker binaries and diffs the result
# set against a single-process run, and wire_codec_equivalence_test runs
# per-codec TCP clusters (raw/delta/delta+lz x batch sizes x faults).
# Sandboxed runners without sockets can skip the whole surface with
# `ctest -LE net` (the tests also self-skip when no localhost port can be
# bound).
(cd build && ctest -L net --output-on-failure)

echo "== elastic migration scenarios =="
# Live-migration exactness: blob-codec corruption fuzz, scripted
# migration/kill races, the 2->4->2 autoscale scenario, and the TCP
# handoff smoke (self-skips without sockets). Also part of `-L net` above;
# kept as its own stage so a migration regression is named in CI output.
(cd build && ctest -L migration --output-on-failure)

echo "== tiered state store =="
# Durable-state surface (docs/INTERNALS.md §13): checkpoint/segment file
# formats with torn-write + bit-flip fuzz, spill GC life cycle, checkpoint
# service ordering/wedging, and the recovery-equivalence suite (sync full
# vs async base+delta vs spilled windows, kills landing mid-checkpoint).
(cd build && ctest -L store --output-on-failure)

echo "== torn-write fuzz repetition (N=20) =="
# The fuzz seeds inside store_test are fixed for reproducibility; repeated
# runs re-explore the corruption space (truncation point, flipped bit, and
# file choice all re-randomize per iteration within a run, so repetition
# multiplies coverage). A failure here means a corrupt chain was read back
# as valid — the worst silent failure the store can have.
(cd build && ctest -R store_test --repeat until-fail:20 --output-on-failure)

echo "== store tmpdir hygiene =="
# Every store/spill test routes its files through a mkdtemp dir under the
# gtest TempDir and removes it in the fixture dtor; litter here means a
# ScopedTempDir leak (or a checkpoint path escaping its store root), which
# would accumulate across CI runs.
LITTER=$(find "${TMPDIR:-/tmp}" -maxdepth 1 -name 'dssj_*' 2>/dev/null | head -5)
if [[ -n "$LITTER" ]]; then
  echo "store tests littered the temp dir:" >&2
  echo "$LITTER" >&2
  exit 1
fi

if [[ "$RUN_SANITIZE" == "1" ]]; then
  # Each sanitizer gets its own build tree; only the `tsan_safe`-labeled
  # tests (the queue/executor/supervision concurrency surface) are built and
  # run — the full suite under sanitizers is too slow for this host.
  TSAN_SAFE_TARGETS=(queue_test ring_queue_test queue_equivalence_test
                     topology_test topology_stress_test
                     stream_substrate_misc_test fault_recovery_test
                     distributed_join_test adaptive_router_test
                     ingest_lanes_test)

  echo "== thread sanitizer =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j --target "${TSAN_SAFE_TARGETS[@]}"
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ctest -L tsan_safe --output-on-failure)

  echo "== sharded router snapshot-publish repetition (TSan, N=20) =="
  # With ingest lanes every lane's router reads the adaptive epoch list as
  # an immutable snapshot while the replanner CAS-publishes replacements
  # and folds observations under a try-lock (docs/INTERNALS.md §14). That
  # publish/read edge is the newest lock-free surface in the repo; repeat
  # the router unit tests and the shared-router lanes scenario so a torn
  # read or lost-observation schedule has real odds of surfacing.
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
    ctest -R 'adaptive_router_test' --repeat until-fail:20 --output-on-failure)
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" GTEST_FILTER='*SharedAdaptiveRouter*' \
    ctest -R 'ingest_lanes_test' --repeat until-fail:10 --output-on-failure)

  echo "== ring-queue race repetition (TSan, N=200) =="
  # The close/wake interleavings in the lock-free rings are the raciest
  # code in the repo and a single pass rarely explores them; hammer the
  # ring stress tests 200 times under TSan so a stranded-waiter or
  # missed-close schedule has real odds of surfacing.
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
    ctest -R ring_queue_test --repeat until-fail:200 --output-on-failure)

  echo "== address sanitizer =="
  # ASan also covers the network surface: the transport threads + wire
  # parser run under it in-process, and the multi-process smoke re-runs
  # with both spawned binaries ASan-instrumented.
  ASAN_TARGETS=("${TSAN_SAFE_TARGETS[@]}"
                net_wire_test net_transport_test net_smoke_test
                wire_codec_equivalence_test wire_borrow_test
                migration_test store_test checkpoint_equivalence_test
                dssj_cli dssj_worker)
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address"
  cmake --build build-asan -j --target "${ASAN_TARGETS[@]}"
  (cd build-asan && ASAN_OPTIONS="detect_leaks=1" \
    ctest -L 'tsan_safe|net' --output-on-failure)

  echo "== sharded ingestion multi-process smoke (ASan, lanes=4) =="
  # A real two-process TCP cluster with the ingestion front end split into
  # four lanes, both binaries ASan-instrumented: the coordinator's pair set
  # must equal a single-lane in-process run over the same corpus
  # (docs/INTERNALS.md §14, exercised end-to-end through the CLI). Pair
  # *sets* are compared sorted — the sink's collection order is
  # interleaving-dependent; the set is not. Skips without localhost sockets.
  LANES_CLUSTER=$(python3 - <<'PYEOF'
import socket
try:
    a, b = socket.socket(), socket.socket()
    a.bind(("127.0.0.1", 0)); b.bind(("127.0.0.1", 0))
    print("127.0.0.1:%d,127.0.0.1:%d" % (a.getsockname()[1], b.getsockname()[1]))
    a.close(); b.close()
except OSError:
    pass
PYEOF
)
  if [[ -z "$LANES_CLUSTER" ]]; then
    echo "no localhost sockets; skipping lanes smoke"
  else
    LANES_TMP=$(mktemp -d "${TMPDIR:-/tmp}/ci_lanes.XXXXXX")
    python3 - "$LANES_TMP/corpus.txt" <<'PYEOF'
import sys
rng = 0x243F6A8885A308D3
lines = []
for i in range(2000):
    rng = (rng * 6364136223846793005 + 1442695040888963407) % (1 << 64)
    if i % 3 == 2 and i >= 2:  # near-duplicate of a recent line
        base = lines[i - 1 - (rng % 2)].split()
        base[rng % len(base)] = "w%d" % ((rng >> 33) % 400)
        lines.append(" ".join(base))
        continue
    words = []
    for _ in range(3 + rng % 9):
        rng = (rng * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        words.append("w%d" % ((rng >> 33) % 400))
    lines.append(" ".join(words))
open(sys.argv[1], "w").write("\n".join(lines) + "\n")
PYEOF
    LANES_FLAGS=(--threshold=600 --joiners=4 --max-pairs=100000)
    ASAN_OPTIONS="detect_leaks=1" ./build-asan/examples/dssj_cli \
        "$LANES_TMP/corpus.txt" "${LANES_FLAGS[@]}" | grep '~' | sort > "$LANES_TMP/ref.txt"
    [[ -s "$LANES_TMP/ref.txt" ]]  # a pair-free corpus would make this vacuous
    ASAN_OPTIONS="detect_leaks=1" ./build-asan/examples/dssj_worker --rank=1 \
        --transport=tcp --connect="$LANES_CLUSTER" --ingest_lanes=4 "${LANES_FLAGS[@]}" &
    LANES_WORKER=$!
    ASAN_OPTIONS="detect_leaks=1" ./build-asan/examples/dssj_cli "$LANES_TMP/corpus.txt" \
        --transport=tcp --connect="$LANES_CLUSTER" --ingest_lanes=4 "${LANES_FLAGS[@]}" \
        | grep '~' | sort > "$LANES_TMP/lanes4.txt"
    wait "$LANES_WORKER"
    diff -u "$LANES_TMP/ref.txt" "$LANES_TMP/lanes4.txt"
    rm -rf "$LANES_TMP"
  fi

  echo "== tiered state store (ASan) =="
  # The store suite's failure modes are exactly ASan's beat: torn-write
  # fuzz walks ReadCheckpoint/segment parsers over truncated and bit-flipped
  # files (out-of-bounds reads on corrupt varints), and the spill read-back
  # path hands borrowed frame bytes across the probe boundary. Includes the
  # recovery-equivalence suite so restore-time buffer handling runs
  # instrumented too.
  (cd build-asan && ASAN_OPTIONS="detect_leaks=1" \
    ctest -L store --output-on-failure)

  echo "== wire fuzz + borrow lifetime (ASan) =="
  # The fuzz battery (>= 5000 structured mutations over all three codecs,
  # owning and arena parse paths) and the borrow-lifetime regressions
  # (net_arena_pool=0 frees every frame buffer at last-borrower drop) are
  # exactly the tests whose failure mode is a silent out-of-bounds read —
  # they only prove anything under ASan, so they get an explicit stage.
  (cd build-asan && ASAN_OPTIONS="detect_leaks=1" \
    ctest -R 'net_wire_test|wire_borrow_test' --output-on-failure)

  echo "== undefined behavior sanitizer =="
  # UBSan is cheap enough to cover the overload/shedding surface on top of
  # the concurrency set (shed accounting does a lot of size_t arithmetic).
  UBSAN_TARGETS=("${TSAN_SAFE_TARGETS[@]}" overload_test
                 net_wire_test wire_borrow_test)
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=undefined"
  cmake --build build-ubsan -j --target "${UBSAN_TARGETS[@]}"
  (cd build-ubsan && UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest -L 'tsan_safe|overload' --output-on-failure)

  echo "== wire fuzz (UBSan) =="
  # Varint shifting, zigzag casts, and LZ offset arithmetic are the repo's
  # densest integer-overflow surface; run the mutational battery under
  # UBSan as well as ASan.
  (cd build-ubsan && UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest -R 'net_wire_test|wire_borrow_test' --output-on-failure)
fi

if [[ "$RUN_BENCH" == "1" ]]; then
  echo "== release smoke bench =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j --target bench_local_join
  ./build-release/bench/bench_local_join --records=20000 \
    --benchmark_filter='BM_RecordJoiner/40|BM_BundleJoiner/40'
fi

echo "CI OK"
