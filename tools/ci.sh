#!/usr/bin/env bash
# Minimal CI: tier-1 verify (ROADMAP.md) + a Release-mode perf smoke test.
#
#   tools/ci.sh            # debug tests + release smoke bench
#   tools/ci.sh --no-bench # tier-1 tests only
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=1
if [[ "${1:-}" == "--no-bench" ]]; then RUN_BENCH=0; fi

echo "== tier-1 verify =="
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

if [[ "$RUN_BENCH" == "1" ]]; then
  echo "== release smoke bench =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j --target bench_local_join
  ./build-release/bench/bench_local_join --records=20000 \
    --benchmark_filter='BM_RecordJoiner/40|BM_BundleJoiner/40'
fi

echo "CI OK"
