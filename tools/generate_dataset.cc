// Generates a synthetic record stream to a binary file (reloadable with
// LoadRecordsBinary), so experiments can be repeated on identical data and
// the generator cost is paid once.
//
//   ./build/tools/generate_dataset --out=/tmp/tweets.bin
//       [--preset=aol|tweet|enron|dblp] [--records=100000] [--seed=42]
//       [--dup-fraction=0.25] [--drift-length-mean=0] [--stats]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "text/corpus.h"
#include "workload/drift.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  auto parsed = dssj::Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  const dssj::Flags& flags = parsed.value();
  const std::string out = flags.GetString("out", "");
  const std::string preset_name = flags.GetString("preset", "tweet");
  const size_t records = static_cast<size_t>(flags.GetInt("records", 100000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double dup_fraction = flags.GetDouble("dup-fraction", -1.0);
  const double drift_mean = flags.GetDouble("drift-length-mean", 0.0);
  const bool print_stats = flags.GetBool("stats", true);
  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return 2;
  }
  if (out.empty()) {
    std::fprintf(stderr, "usage: generate_dataset --out=FILE [--preset=...] "
                         "[--records=N] [--seed=S] [--dup-fraction=F] "
                         "[--drift-length-mean=M]\n");
    return 2;
  }

  dssj::DatasetPreset preset;
  if (preset_name == "aol") {
    preset = dssj::DatasetPreset::kAol;
  } else if (preset_name == "tweet") {
    preset = dssj::DatasetPreset::kTweet;
  } else if (preset_name == "enron") {
    preset = dssj::DatasetPreset::kEnron;
  } else if (preset_name == "dblp") {
    preset = dssj::DatasetPreset::kDblp;
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset_name.c_str());
    return 2;
  }

  dssj::WorkloadOptions options = dssj::PresetOptions(preset);
  options.seed = seed;
  if (dup_fraction >= 0.0) options.duplicate_fraction = dup_fraction;

  std::vector<dssj::RecordPtr> stream;
  if (drift_mean > 0.0) {
    dssj::DriftOptions drift;
    drift.base = options;
    drift.end_length_mean = drift_mean;
    drift.drift_records = records;
    stream = dssj::DriftingGenerator(drift).Generate(records);
  } else {
    stream = dssj::WorkloadGenerator(options).Generate(records);
  }

  const dssj::Status status = dssj::SaveRecordsBinary(out, stream);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", stream.size(), out.c_str());
  if (print_stats) {
    const dssj::CorpusStats stats = dssj::ComputeCorpusStats(stream);
    std::printf("vocab=%llu avg|r|=%.1f min|r|=%llu max|r|=%llu top1%%mass=%.3f\n",
                static_cast<unsigned long long>(stats.vocabulary_size), stats.avg_length,
                static_cast<unsigned long long>(stats.min_length),
                static_cast<unsigned long long>(stats.max_length),
                stats.top1pct_token_mass);
  }
  return 0;
}
