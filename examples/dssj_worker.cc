// Worker half of a multi-process join cluster: hosts the tasks placed on
// its rank and exchanges tuples with the coordinator (and other workers)
// over TCP. Run one per non-zero rank of the --connect cluster, with the
// SAME join flags as the coordinator (the topology plan is derived from
// them on every rank) plus --rank=i:
//
//   ./build/examples/dssj_cli corpus.txt \
//       --transport=tcp --connect=127.0.0.1:9101,127.0.0.1:9102 &
//   ./build/examples/dssj_worker --rank=1 \
//       --transport=tcp --connect=127.0.0.1:9101,127.0.0.1:9102
//
// Workers never read the corpus — the source task lives on rank 0 — so no
// file argument is needed. The exit status reports the local run outcome
// (0 = clean, 1 = failed); results are printed by the coordinator.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/join_topology.h"
#include "join_flags.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --rank=N --transport=tcp --connect=host:port,...\n%s",
               argv0, dssj_examples::JoinFlagsUsage());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = dssj::Flags::Parse(argc, argv);
  if (!parsed.ok() || !parsed.value().positional().empty()) return Usage(argv[0]);

  dssj_examples::JoinCliConfig cfg;
  if (!dssj_examples::ParseJoinFlags(parsed.value(), &cfg)) return Usage(argv[0]);
  if (cfg.options.transport != dssj::JoinTransport::kTcp || cfg.options.rank < 1) {
    std::fprintf(stderr, "dssj_worker needs --transport=tcp and --rank >= 1\n");
    return Usage(argv[0]);
  }

  const dssj::DistributedJoinResult result = dssj::RunDistributedJoin({}, cfg.options);
  if (!result.ok) {
    std::fprintf(stderr, "worker %d failed: %s\n", cfg.options.rank,
                 result.failure_message.c_str());
    return 1;
  }
  return 0;
}
