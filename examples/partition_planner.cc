// Demonstrates the load-aware length partitioner in isolation: feed it a
// skewed sample, inspect the per-length load model, and compare the
// partitions the four methods produce — the tooling an operator would use
// before deploying the length-based join.
//
//   ./build/examples/partition_planner [num_sample_records] [num_partitions]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/join_topology.h"
#include "core/partition.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  const size_t num_records = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 40000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;

  // ENRON-like lengths: lognormal with a heavy tail — the stress case for
  // naive partitioning.
  dssj::WorkloadOptions workload = dssj::PresetOptions(dssj::DatasetPreset::kEnron);
  workload.seed = 11;
  const auto sample = dssj::WorkloadGenerator(workload).Generate(num_records);

  dssj::LengthHistogram histogram;
  histogram.AddRecords(sample);
  const dssj::SimilaritySpec sim(dssj::SimilarityFunction::kJaccard, 800);
  const auto load = dssj::ComputePerLengthLoad(histogram, sim);

  // A coarse view of where the join load concentrates.
  std::printf("per-length join load (10 coarse bins over lengths 0..%zu):\n",
              histogram.MaxLength());
  double total_load = 0.0;
  for (double w : load) total_load += w;
  const size_t bin = histogram.MaxLength() / 10 + 1;
  for (size_t b = 0; b * bin <= histogram.MaxLength(); ++b) {
    double mass = 0.0;
    uint64_t count = 0;
    for (size_t l = b * bin; l < std::min((b + 1) * bin, load.size()); ++l) {
      mass += load[l];
      count += histogram.CountAt(l);
    }
    const int bars = total_load > 0 ? static_cast<int>(50.0 * mass / total_load) : 0;
    std::printf("  len %5zu..%-5zu %9llu recs |%s\n", b * bin, (b + 1) * bin - 1,
                static_cast<unsigned long long>(count), std::string(bars, '#').c_str());
  }

  std::printf("\n%d-way partitions (interval bounds) and predicted imbalance:\n", k);
  for (const dssj::PartitionMethod method :
       {dssj::PartitionMethod::kLoadAwareGreedy, dssj::PartitionMethod::kLoadAwareDP,
        dssj::PartitionMethod::kUniform, dssj::PartitionMethod::kEqualFrequency}) {
    const dssj::LengthPartition partition =
        dssj::PlanLengthPartition(sample, sim, k, method);
    const double bottleneck = dssj::BottleneckLoad(partition, load);
    const double mean = dssj::MeanLoad(partition, load);
    std::printf("  %-18s imbalance=%.2f  %s\n", dssj::PartitionMethodName(method),
                mean > 0 ? bottleneck / mean : 0.0, partition.ToString().c_str());
  }
  std::printf(
      "\nimbalance = bottleneck partition load / mean partition load; 1.00 is\n"
      "perfect. The load-aware methods minimize it exactly.\n");
  return 0;
}
