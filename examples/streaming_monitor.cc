// Live view of a streaming joiner: records arrive at a paced rate and a
// status line prints every (stream-time) second — throughput, window
// occupancy, result rate, memory. Shows the system behaving as a
// long-running service rather than a batch job.
//
//   ./build/examples/streaming_monitor [seconds] [rate_per_sec]

#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "core/record_joiner.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;
  const double rate = argc > 2 ? std::atof(argv[2]) : 50000.0;

  dssj::WorkloadOptions workload = dssj::PresetOptions(dssj::DatasetPreset::kTweet);
  workload.seed = 123;
  workload.timestamp_step_us = static_cast<int64_t>(1e6 / rate);
  dssj::WorkloadGenerator source(workload);

  const dssj::SimilaritySpec sim(dssj::SimilarityFunction::kJaccard, 800);
  // 2-second sliding window in stream time.
  dssj::RecordJoiner joiner(sim, dssj::WindowSpec::ByTime(2 * 1000 * 1000));

  std::printf("streaming %d seconds at %.0f rec/s, %s, 2s sliding window\n", seconds, rate,
              sim.ToString().c_str());
  std::printf("%6s %12s %12s %10s %12s %10s\n", "t", "records", "results", "window",
              "results/s", "mem MB");

  uint64_t results = 0, records = 0;
  uint64_t last_results = 0;
  const auto cb = [&results](const dssj::ResultPair&) { ++results; };
  dssj::Stopwatch wall;
  for (int second = 1; second <= seconds; ++second) {
    const auto per_tick = static_cast<size_t>(rate);
    for (size_t i = 0; i < per_tick; ++i) {
      joiner.Process(source.Next(), /*store=*/true, /*probe=*/true, cb);
      ++records;
    }
    std::printf("%5ds %12llu %12llu %10zu %12llu %10.1f\n", second,
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(results), joiner.StoredCount(),
                static_cast<unsigned long long>(results - last_results),
                static_cast<double>(joiner.MemoryBytes()) / 1e6);
    last_results = results;
  }
  std::printf("\nprocessed %llu records in %.2fs wall (%.0f rec/s sustained)\n",
              static_cast<unsigned long long>(records), wall.ElapsedSeconds(),
              static_cast<double>(records) / wall.ElapsedSeconds());
  return 0;
}
