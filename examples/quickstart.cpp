// Quickstart: a streaming set-similarity join over a handful of documents,
// using the single-partition API. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
//
// Pipeline: tokenize text lines -> frequency-ordered token ids -> stream
// the records through a RecordJoiner -> print every pair with
// Jaccard >= 0.6.

#include <cstdio>
#include <string>
#include <vector>

#include "core/join_topology.h"
#include "core/record_joiner.h"
#include "text/corpus.h"

int main() {
  const std::vector<std::string> documents = {
      "breaking storm hits the northern coast tonight",
      "volcano eruption forces evacuation of coastal town",
      "breaking storm hits northern coast this evening",      // near-dup of #0
      "stocks rally as tech earnings beat expectations",
      "storm hits the northern coast tonight",                // near-dup of #0/#2
      "tech stocks rally as earnings beat all expectations",  // near-dup of #3
      "local team wins championship after dramatic final",
  };

  // 1. Build a corpus: tokenize, assign frequency-ordered token ids.
  dssj::WordTokenizer tokenizer;
  const dssj::Corpus corpus = dssj::BuildCorpusFromLines(documents, tokenizer);

  // 2. Configure the join predicate and a streaming joiner. The window is
  //    unbounded here; production streams use ByCount / ByTime.
  const dssj::SimilaritySpec sim(dssj::SimilarityFunction::kJaccard, 600);
  dssj::RecordJoiner joiner(sim, dssj::WindowSpec::Unbounded());

  // 3. Stream the records: each one probes everything stored before it.
  std::printf("pairs with %s:\n", sim.ToString().c_str());
  for (const dssj::RecordPtr& record : corpus.records) {
    joiner.Process(record, /*store=*/true, /*probe=*/true,
                   [&](const dssj::ResultPair& pair) {
                     const auto& a = documents[pair.partner_id];
                     const auto& b = documents[pair.probe_id];
                     std::printf("  #%llu ~ #%llu\n    \"%s\"\n    \"%s\"\n",
                                 static_cast<unsigned long long>(pair.partner_id),
                                 static_cast<unsigned long long>(pair.probe_id), a.c_str(),
                                 b.c_str());
                   });
  }

  const dssj::JoinerStats& stats = joiner.stats();
  std::printf(
      "\nprocessed %llu records, %llu candidate pairs verified, %llu results\n",
      static_cast<unsigned long long>(stats.probes),
      static_cast<unsigned long long>(stats.candidates),
      static_cast<unsigned long long>(stats.results));
  return 0;
}
