// Flag parsing shared by dssj_cli (coordinator / single process) and
// dssj_worker (rank > 0 of a TCP cluster). Both binaries must build the
// identical DistributedJoinOptions from the identical flags — the topology
// plan is derived from the options on every rank — so the translation lives
// in one place.
#ifndef DSSJ_EXAMPLES_JOIN_FLAGS_H_
#define DSSJ_EXAMPLES_JOIN_FLAGS_H_

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/join_topology.h"

namespace dssj_examples {

struct JoinCliConfig {
  std::string corpus_path;  ///< first positional argument
  std::string function = "jaccard";
  std::string strategy = "length";
  std::string local = "record";
  int64_t qgram = 0;
  int64_t max_pairs = 20;
  dssj::DistributedJoinOptions options;
};

/// Flag lines shared by both binaries' usage text.
inline const char* JoinFlagsUsage() {
  return "          [--function=jaccard|cosine|dice] [--threshold=permille]\n"
         "          [--joiners=N] [--strategy=length|prefix|broadcast]\n"
         "          [--local=record|bundle] [--window=N] [--qgram=Q]\n"
         "          [--batch_size=N] [--queue=mutex|ring] [--ingest_lanes=N]\n"
         "          [--transport=inproc|loopback|tcp] [--workers=N]\n"
         "          [--wire_codec=raw|delta|delta+lz]\n"
         "          [--connect=host:port,host:port,...] [--listen=host:port]\n"
         "          [--checkpoint_interval=N] [--max_restarts=N]\n"
         "          [--fault_script='kill:joiner:0@500; migrate:joiner:1->2@800; ...']\n"
         "          [--elastic] [--migrate_threshold=F] [--elastic_workers=N]\n"
         "          [--elastic_interval_ms=N]\n"
         "          [--shed_policy=none|probe|oldest|bundle] [--shed_watermark=F]\n"
         "          [--max_index_bytes=N] [--stall_timeout_ms=N] [--arrival_rate=R]\n"
         "          [--store_dir=PATH] [--checkpoint_mode=sync|async]\n"
         "          [--delta_base_interval=N] [--spill_watermark=F]\n";
}

/// Parses everything both binaries share into `cfg`. Prints the problem to
/// stderr and returns false on a usage error. Corpus loading and
/// length-partition planning stay with the caller: the length partition is
/// only consumed by dispatcher tasks, which live on rank 0, so workers never
/// need the corpus.
inline bool ParseJoinFlags(const dssj::Flags& flags, JoinCliConfig* cfg) {
  dssj::DistributedJoinOptions& options = cfg->options;
  if (!flags.positional().empty()) cfg->corpus_path = flags.positional()[0];

  cfg->function = flags.GetString("function", "jaccard");
  const int64_t threshold = flags.GetInt("threshold", 800);
  const int joiners = static_cast<int>(flags.GetInt("joiners", 4));
  cfg->strategy = flags.GetString("strategy", "length");
  cfg->local = flags.GetString("local", "record");
  const int64_t window = flags.GetInt("window", 0);
  cfg->qgram = flags.GetInt("qgram", 0);
  cfg->max_pairs = flags.GetInt("max-pairs", 20);
  const int64_t batch_size = flags.GetInt("batch_size", 32);
  if (batch_size < 1) {
    std::fprintf(stderr, "--batch_size must be >= 1\n");
    return false;
  }
  const int64_t ingest_lanes = flags.GetInt("ingest_lanes", 1);
  if (ingest_lanes < 1) {
    std::fprintf(stderr, "--ingest_lanes must be >= 1\n");
    return false;
  }
  if (ingest_lanes > 1 && cfg->strategy == "broadcast") {
    std::fprintf(stderr, "--ingest_lanes needs a stateless strategy (length|prefix)\n");
    return false;
  }

  const std::string queue = flags.GetString("queue", "ring");
  if (!dssj::stream::ParseQueueImpl(queue, &options.queue_impl)) {
    std::fprintf(stderr, "unknown queue implementation '%s' (mutex|ring)\n", queue.c_str());
    return false;
  }

  const std::string transport = flags.GetString("transport", "inproc");
  const int64_t workers = flags.GetInt("workers", 0);
  const std::string connect = flags.GetString("connect", "");
  const std::string listen = flags.GetString("listen", "");
  const int64_t rank = flags.GetInt("rank", 0);
  if (transport == "inproc") {
    options.transport = dssj::JoinTransport::kInproc;
  } else if (transport == "loopback") {
    options.transport = dssj::JoinTransport::kLoopback;
  } else if (transport == "tcp") {
    options.transport = dssj::JoinTransport::kTcp;
    if (connect.empty()) {
      std::fprintf(stderr, "--transport=tcp needs --connect=host:port,host:port,...\n");
      return false;
    }
  } else {
    std::fprintf(stderr, "unknown transport '%s'\n", transport.c_str());
    return false;
  }
  if (workers < 0 || rank < 0) {
    std::fprintf(stderr, "--workers and --rank must be >= 0\n");
    return false;
  }
  const std::string wire_codec = flags.GetString("wire_codec", "delta");
  if (!dssj::net::ParseWireCodec(wire_codec, &options.wire_codec)) {
    std::fprintf(stderr, "unknown wire codec '%s' (raw|delta|delta+lz)\n", wire_codec.c_str());
    return false;
  }
  options.num_workers = static_cast<int>(workers);
  options.cluster = connect;
  options.listen = listen;
  options.rank = static_cast<int>(rank);

  const int64_t checkpoint_interval = flags.GetInt("checkpoint_interval", 0);
  const int64_t max_restarts = flags.GetInt("max_restarts", 3);
  const std::string fault_script = flags.GetString("fault_script", "");
  if (checkpoint_interval < 0 || max_restarts < 0) {
    std::fprintf(stderr, "--checkpoint_interval and --max_restarts must be >= 0\n");
    return false;
  }
  const bool elastic = flags.GetBool("elastic", false);
  const double migrate_threshold = flags.GetDouble("migrate_threshold", 0.5);
  const int64_t elastic_workers = flags.GetInt("elastic_workers", 0);
  const int64_t elastic_interval_ms = flags.GetInt("elastic_interval_ms", 20);
  if (migrate_threshold < 0.0) {
    std::fprintf(stderr, "--migrate_threshold must be >= 0\n");
    return false;
  }
  if (elastic_workers < 0 || elastic_interval_ms < 1) {
    std::fprintf(stderr, "--elastic_workers must be >= 0 and --elastic_interval_ms >= 1\n");
    return false;
  }
  const std::string shed_policy_name = flags.GetString("shed_policy", "none");
  const double shed_watermark = flags.GetDouble("shed_watermark", 0.75);
  const int64_t max_index_bytes = flags.GetInt("max_index_bytes", 0);
  const int64_t stall_timeout_ms = flags.GetInt("stall_timeout_ms", 0);
  const double arrival_rate = flags.GetDouble("arrival_rate", 0.0);
  dssj::stream::ShedPolicy shed_policy = dssj::stream::ShedPolicy::kNone;
  if (!dssj::stream::ParseShedPolicy(shed_policy_name, &shed_policy)) {
    std::fprintf(stderr, "unknown shed policy '%s'\n", shed_policy_name.c_str());
    return false;
  }
  if (shed_watermark <= 0.0 || shed_watermark > 1.0) {
    std::fprintf(stderr, "--shed_watermark must be in (0, 1]\n");
    return false;
  }
  if (max_index_bytes < 0 || stall_timeout_ms < 0 || arrival_rate < 0.0) {
    std::fprintf(stderr,
                 "--max_index_bytes, --stall_timeout_ms and --arrival_rate must be >= 0\n");
    return false;
  }
  const std::string store_dir = flags.GetString("store_dir", "");
  const std::string checkpoint_mode = flags.GetString("checkpoint_mode", "sync");
  const int64_t delta_base_interval = flags.GetInt("delta_base_interval", 8);
  const double spill_watermark = flags.GetDouble("spill_watermark", 0.0);
  if (checkpoint_mode == "sync") {
    options.checkpoint_mode = dssj::store::CheckpointMode::kSync;
  } else if (checkpoint_mode == "async") {
    options.checkpoint_mode = dssj::store::CheckpointMode::kAsync;
  } else {
    std::fprintf(stderr, "unknown checkpoint mode '%s' (sync|async)\n", checkpoint_mode.c_str());
    return false;
  }
  if (delta_base_interval < 0) {
    std::fprintf(stderr, "--delta_base_interval must be >= 0\n");
    return false;
  }
  if (spill_watermark < 0.0 || spill_watermark > 1.0) {
    std::fprintf(stderr, "--spill_watermark must be in [0, 1]\n");
    return false;
  }
  if (!store_dir.empty() && checkpoint_interval <= 0) {
    std::fprintf(stderr, "--store_dir needs --checkpoint_interval > 0\n");
    return false;
  }
  if (spill_watermark > 0.0 && (store_dir.empty() || max_index_bytes <= 0)) {
    std::fprintf(stderr, "--spill_watermark needs --store_dir and --max_index_bytes\n");
    return false;
  }
  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return false;
  }

  dssj::SimilarityFunction fn;
  if (cfg->function == "jaccard") {
    fn = dssj::SimilarityFunction::kJaccard;
  } else if (cfg->function == "cosine") {
    fn = dssj::SimilarityFunction::kCosine;
  } else if (cfg->function == "dice") {
    fn = dssj::SimilarityFunction::kDice;
  } else {
    std::fprintf(stderr, "unknown similarity function '%s'\n", cfg->function.c_str());
    return false;
  }

  options.sim = dssj::SimilaritySpec(fn, threshold);
  options.num_joiners = joiners;
  options.collect_results = true;
  options.batch_size = static_cast<size_t>(batch_size);
  options.ingest_lanes = static_cast<int>(ingest_lanes);
  options.store_dir = store_dir;
  options.delta_base_interval = static_cast<uint32_t>(delta_base_interval);
  options.spill_watermark = spill_watermark;
  // store_dir requires checkpoint_interval > 0 (validated above), so the
  // supervise branch below always runs for store-enabled invocations.
  if (!fault_script.empty() || checkpoint_interval > 0) {
    // Validate here so a typo'd script is a usage error, not an abort.
    auto script = dssj::stream::FaultScript::Parse(fault_script);
    if (!script.ok()) {
      std::fprintf(stderr, "bad --fault_script: %s\n", script.status().message().c_str());
      return false;
    }
    options.supervise = true;
    options.fault_script = fault_script;
    options.supervision.checkpoint_interval = static_cast<uint64_t>(checkpoint_interval);
    options.supervision.max_restarts = static_cast<int>(max_restarts);
  }
  options.elastic = elastic;
  options.migrate_threshold = migrate_threshold;
  options.elastic_initial_workers = static_cast<int>(elastic_workers);
  options.elastic_interval_micros = elastic_interval_ms * 1000;
  options.shed_policy = shed_policy;
  options.shed_watermark = shed_watermark;
  options.max_index_bytes = static_cast<size_t>(max_index_bytes);
  options.stall_timeout_micros = stall_timeout_ms * 1000;
  options.arrival_rate_per_sec = arrival_rate;
  if (window > 0) options.window = dssj::WindowSpec::ByCount(static_cast<size_t>(window));

  if (cfg->strategy == "length") {
    options.strategy = dssj::DistributionStrategy::kLengthBased;
    // length_partition is planned by the caller from the corpus sample.
  } else if (cfg->strategy == "prefix") {
    options.strategy = dssj::DistributionStrategy::kPrefixBased;
  } else if (cfg->strategy == "broadcast") {
    options.strategy = dssj::DistributionStrategy::kBroadcast;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", cfg->strategy.c_str());
    return false;
  }
  if (cfg->local == "bundle") {
    options.local = dssj::LocalAlgorithm::kBundle;
  } else if (cfg->local != "record") {
    std::fprintf(stderr, "unknown local algorithm '%s'\n", cfg->local.c_str());
    return false;
  }
  return true;
}

}  // namespace dssj_examples

#endif  // DSSJ_EXAMPLES_JOIN_FLAGS_H_
