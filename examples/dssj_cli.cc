// Command-line near-duplicate finder over a text file (one document per
// line) — the tool a downstream user reaches for first.
//
//   ./build/examples/dssj_cli <file> [--function=jaccard|cosine|dice]
//       [--threshold=800] [--joiners=4]
//       [--strategy=length|prefix|broadcast] [--local=record|bundle]
//       [--window=N] [--qgram=Q] [--max-pairs=20] [--batch_size=32]
//       [--ingest_lanes=N]
//       [--transport=inproc|loopback|tcp] [--workers=N]
//       [--connect=host:port,...] [--listen=host:port]
//       [--checkpoint_interval=N] [--max_restarts=N] [--fault_script=SCRIPT]
//       [--shed_policy=none|probe|oldest|bundle] [--shed_watermark=0.75]
//       [--max_index_bytes=N] [--stall_timeout_ms=N] [--arrival_rate=R]
//
// Fault tolerance: --fault_script installs a deterministic fault schedule
// (e.g. "kill:joiner:0@500; drop:dispatcher:0->joiner:1@100") and turns on
// supervised recovery; --checkpoint_interval / --max_restarts tune it. The
// result set is identical to the failure-free run as long as no task
// exceeds --max_restarts.
//
// Overload control (docs/INTERNALS.md §8): --shed_policy drops probe sides
// under queue pressure (stores always land; every shed is counted),
// --max_index_bytes bounds each joiner's memory via early eviction,
// --stall_timeout_ms arms a watchdog that fails a non-progressing run with
// a per-task dump, --arrival_rate paces the source in records/second.
//
// Multi-process execution (docs/INTERNALS.md §9): --transport=tcp makes
// this binary rank 0 (coordinator) of a cluster whose rank-ordered
// endpoints are --connect=host:port,host:port,...; start one dssj_worker
// --rank=i per remaining endpoint with the same flags. --transport=loopback
// stays single-process but wire-encodes every cross-worker tuple
// (serialization cost measurement). --workers splits tasks across N
// simulated workers for inproc/loopback.
//
// Example:
//   printf 'hello world\nhello there world\nbye now\n' > /tmp/docs.txt
//   ./build/examples/dssj_cli /tmp/docs.txt --threshold=500
//
// Two-process example (coordinator + one worker on localhost):
//   ./build/examples/dssj_cli /tmp/docs.txt \
//       --transport=tcp --connect=127.0.0.1:9101,127.0.0.1:9102 &
//   ./build/examples/dssj_worker --rank=1 \
//       --transport=tcp --connect=127.0.0.1:9101,127.0.0.1:9102

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "core/join_topology.h"
#include "join_flags.h"
#include "text/corpus.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file>\n%s          [--max-pairs=N]\n",
               argv0, dssj_examples::JoinFlagsUsage());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = dssj::Flags::Parse(argc, argv);
  if (!parsed.ok() || parsed.value().positional().size() != 1) return Usage(argv[0]);

  dssj_examples::JoinCliConfig cfg;
  if (!dssj_examples::ParseJoinFlags(parsed.value(), &cfg)) return Usage(argv[0]);
  dssj::DistributedJoinOptions& options = cfg.options;
  if (options.rank != 0) {
    std::fprintf(stderr, "dssj_cli is the coordinator; run dssj_worker for ranks > 0\n");
    return Usage(argv[0]);
  }

  std::unique_ptr<dssj::Tokenizer> tokenizer;
  if (cfg.qgram > 0) {
    tokenizer = std::make_unique<dssj::QGramTokenizer>(static_cast<int>(cfg.qgram));
  } else {
    tokenizer = std::make_unique<dssj::WordTokenizer>();
  }
  // The corpus load shards along with the ingestion front end: one reader +
  // tokenizer thread per lane, stitched back to the serial-identical result.
  auto corpus =
      dssj::LoadCorpusFromFileSharded(cfg.corpus_path, *tokenizer, options.ingest_lanes);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  if (options.strategy == dssj::DistributionStrategy::kLengthBased) {
    options.length_partition = dssj::PlanLengthPartition(
        corpus.value().records, options.sim, options.num_joiners,
        dssj::PartitionMethod::kLoadAwareGreedy);
  }

  const dssj::DistributedJoinResult result =
      dssj::RunDistributedJoin(corpus.value().records, options);

  std::printf("%llu documents, %s, %s/%s, %d joiners [%s] -> %llu similar pairs "
              "(%.0f rec/s wall)\n",
              static_cast<unsigned long long>(result.input_records),
              options.sim.ToString().c_str(), cfg.strategy.c_str(), cfg.local.c_str(),
              options.num_joiners, dssj::JoinTransportName(options.transport),
              static_cast<unsigned long long>(result.result_count), result.throughput_rps);
  if (options.shed_policy != dssj::stream::ShedPolicy::kNone || options.max_index_bytes > 0) {
    std::printf("overload: policy=%s shed_probes=%llu (<= %llu pairs lost), "
                "budget_evictions=%llu horizon_seq=%llu\n",
                dssj::stream::ShedPolicyName(options.shed_policy),
                static_cast<unsigned long long>(result.shed_probes),
                static_cast<unsigned long long>(result.shed_pairs_upper_bound),
                static_cast<unsigned long long>(result.budget_evictions),
                static_cast<unsigned long long>(result.eviction_horizon_seq));
  }
  if (!result.ok && options.stall_timeout_micros > 0) {
    std::fprintf(stderr, "run failed: %s\n", result.failure_message.c_str());
    return 1;
  }
  if (options.supervise) {
    std::printf("recovery: %llu restarts, %llu tuples replayed, %llu checkpoints "
                "(%llu bytes)%s\n",
                static_cast<unsigned long long>(result.restarts),
                static_cast<unsigned long long>(result.replayed_tuples),
                static_cast<unsigned long long>(result.checkpoints),
                static_cast<unsigned long long>(result.checkpoint_bytes),
                result.ok ? "" : " [FAILED]");
  }
  if (options.elastic || result.migrations > 0) {
    std::printf("elastic: %llu live migrations (%llu state bytes shipped)\n",
                static_cast<unsigned long long>(result.migrations),
                static_cast<unsigned long long>(result.migration_bytes));
  }
  if (!result.ok) {
    std::fprintf(stderr, "run failed: %s\n", result.failure_message.c_str());
    return 1;
  }
  int64_t shown = 0;
  for (const dssj::ResultPair& pair : result.pairs) {
    if (shown++ >= cfg.max_pairs) {
      std::printf("... (%llu more; raise --max-pairs)\n",
                  static_cast<unsigned long long>(result.pairs.size()) -
                      static_cast<unsigned long long>(cfg.max_pairs));
      break;
    }
    std::printf("line %llu ~ line %llu\n",
                static_cast<unsigned long long>(pair.partner_id + 1),
                static_cast<unsigned long long>(pair.probe_id + 1));
  }
  return 0;
}
