// Command-line near-duplicate finder over a text file (one document per
// line) — the tool a downstream user reaches for first.
//
//   ./build/examples/dssj_cli <file> [--function=jaccard|cosine|dice]
//       [--threshold=800] [--joiners=4]
//       [--strategy=length|prefix|broadcast] [--local=record|bundle]
//       [--window=N] [--qgram=Q] [--max-pairs=20] [--batch_size=32]
//       [--checkpoint_interval=N] [--max_restarts=N] [--fault_script=SCRIPT]
//       [--shed_policy=none|probe|oldest|bundle] [--shed_watermark=0.75]
//       [--max_index_bytes=N] [--stall_timeout_ms=N] [--arrival_rate=R]
//
// Fault tolerance: --fault_script installs a deterministic fault schedule
// (e.g. "kill:joiner:0@500; drop:dispatcher:0->joiner:1@100") and turns on
// supervised recovery; --checkpoint_interval / --max_restarts tune it. The
// result set is identical to the failure-free run as long as no task
// exceeds --max_restarts.
//
// Overload control (docs/INTERNALS.md §8): --shed_policy drops probe sides
// under queue pressure (stores always land; every shed is counted),
// --max_index_bytes bounds each joiner's memory via early eviction,
// --stall_timeout_ms arms a watchdog that fails a non-progressing run with
// a per-task dump, --arrival_rate paces the source in records/second.
//
// Example:
//   printf 'hello world\nhello there world\nbye now\n' > /tmp/docs.txt
//   ./build/examples/dssj_cli /tmp/docs.txt --threshold=500

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "core/join_topology.h"
#include "text/corpus.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <file> [--function=jaccard|cosine|dice] [--threshold=permille]\n"
               "          [--joiners=N] [--strategy=length|prefix|broadcast]\n"
               "          [--local=record|bundle] [--window=N] [--qgram=Q]\n"
               "          [--max-pairs=N] [--batch_size=N]\n"
               "          [--checkpoint_interval=N] [--max_restarts=N]\n"
               "          [--fault_script='kill:joiner:0@500; ...']\n"
               "          [--shed_policy=none|probe|oldest|bundle] [--shed_watermark=F]\n"
               "          [--max_index_bytes=N] [--stall_timeout_ms=N] [--arrival_rate=R]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = dssj::Flags::Parse(argc, argv);
  if (!parsed.ok() || parsed.value().positional().size() != 1) return Usage(argv[0]);
  const dssj::Flags& flags = parsed.value();
  const std::string path = flags.positional()[0];

  const std::string function = flags.GetString("function", "jaccard");
  const int64_t threshold = flags.GetInt("threshold", 800);
  const int joiners = static_cast<int>(flags.GetInt("joiners", 4));
  const std::string strategy = flags.GetString("strategy", "length");
  const std::string local = flags.GetString("local", "record");
  const int64_t window = flags.GetInt("window", 0);
  const int64_t qgram = flags.GetInt("qgram", 0);
  const int64_t max_pairs = flags.GetInt("max-pairs", 20);
  const int64_t batch_size = flags.GetInt("batch_size", 32);
  if (batch_size < 1) {
    std::fprintf(stderr, "--batch_size must be >= 1\n");
    return Usage(argv[0]);
  }
  const int64_t checkpoint_interval = flags.GetInt("checkpoint_interval", 0);
  const int64_t max_restarts = flags.GetInt("max_restarts", 3);
  const std::string fault_script = flags.GetString("fault_script", "");
  if (checkpoint_interval < 0 || max_restarts < 0) {
    std::fprintf(stderr, "--checkpoint_interval and --max_restarts must be >= 0\n");
    return Usage(argv[0]);
  }
  const std::string shed_policy_name = flags.GetString("shed_policy", "none");
  const double shed_watermark = flags.GetDouble("shed_watermark", 0.75);
  const int64_t max_index_bytes = flags.GetInt("max_index_bytes", 0);
  const int64_t stall_timeout_ms = flags.GetInt("stall_timeout_ms", 0);
  const double arrival_rate = flags.GetDouble("arrival_rate", 0.0);
  dssj::stream::ShedPolicy shed_policy = dssj::stream::ShedPolicy::kNone;
  if (!dssj::stream::ParseShedPolicy(shed_policy_name, &shed_policy)) {
    std::fprintf(stderr, "unknown shed policy '%s'\n", shed_policy_name.c_str());
    return Usage(argv[0]);
  }
  if (shed_watermark <= 0.0 || shed_watermark > 1.0) {
    std::fprintf(stderr, "--shed_watermark must be in (0, 1]\n");
    return Usage(argv[0]);
  }
  if (max_index_bytes < 0 || stall_timeout_ms < 0 || arrival_rate < 0.0) {
    std::fprintf(stderr,
                 "--max_index_bytes, --stall_timeout_ms and --arrival_rate must be >= 0\n");
    return Usage(argv[0]);
  }
  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return Usage(argv[0]);
  }

  dssj::SimilarityFunction fn;
  if (function == "jaccard") {
    fn = dssj::SimilarityFunction::kJaccard;
  } else if (function == "cosine") {
    fn = dssj::SimilarityFunction::kCosine;
  } else if (function == "dice") {
    fn = dssj::SimilarityFunction::kDice;
  } else {
    std::fprintf(stderr, "unknown similarity function '%s'\n", function.c_str());
    return Usage(argv[0]);
  }

  std::unique_ptr<dssj::Tokenizer> tokenizer;
  if (qgram > 0) {
    tokenizer = std::make_unique<dssj::QGramTokenizer>(static_cast<int>(qgram));
  } else {
    tokenizer = std::make_unique<dssj::WordTokenizer>();
  }
  auto corpus = dssj::LoadCorpusFromFile(path, *tokenizer);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  dssj::DistributedJoinOptions options;
  options.sim = dssj::SimilaritySpec(fn, threshold);
  options.num_joiners = joiners;
  options.collect_results = true;
  options.batch_size = static_cast<size_t>(batch_size);
  if (!fault_script.empty() || checkpoint_interval > 0) {
    // Validate here so a typo'd script is a usage error, not an abort.
    auto script = dssj::stream::FaultScript::Parse(fault_script);
    if (!script.ok()) {
      std::fprintf(stderr, "bad --fault_script: %s\n", script.status().message().c_str());
      return Usage(argv[0]);
    }
    options.supervise = true;
    options.fault_script = fault_script;
    options.supervision.checkpoint_interval = static_cast<uint64_t>(checkpoint_interval);
    options.supervision.max_restarts = static_cast<int>(max_restarts);
  }
  options.shed_policy = shed_policy;
  options.shed_watermark = shed_watermark;
  options.max_index_bytes = static_cast<size_t>(max_index_bytes);
  options.stall_timeout_micros = stall_timeout_ms * 1000;
  options.arrival_rate_per_sec = arrival_rate;
  if (window > 0) options.window = dssj::WindowSpec::ByCount(static_cast<size_t>(window));
  if (strategy == "length") {
    options.strategy = dssj::DistributionStrategy::kLengthBased;
    options.length_partition = dssj::PlanLengthPartition(
        corpus.value().records, options.sim, joiners,
        dssj::PartitionMethod::kLoadAwareGreedy);
  } else if (strategy == "prefix") {
    options.strategy = dssj::DistributionStrategy::kPrefixBased;
  } else if (strategy == "broadcast") {
    options.strategy = dssj::DistributionStrategy::kBroadcast;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return Usage(argv[0]);
  }
  if (local == "bundle") {
    options.local = dssj::LocalAlgorithm::kBundle;
  } else if (local != "record") {
    std::fprintf(stderr, "unknown local algorithm '%s'\n", local.c_str());
    return Usage(argv[0]);
  }

  const dssj::DistributedJoinResult result =
      dssj::RunDistributedJoin(corpus.value().records, options);

  std::printf("%llu documents, %s, %s/%s, %d joiners -> %llu similar pairs "
              "(%.0f rec/s wall)\n",
              static_cast<unsigned long long>(result.input_records),
              options.sim.ToString().c_str(), strategy.c_str(), local.c_str(), joiners,
              static_cast<unsigned long long>(result.result_count), result.throughput_rps);
  if (shed_policy != dssj::stream::ShedPolicy::kNone || max_index_bytes > 0) {
    std::printf("overload: policy=%s shed_probes=%llu (<= %llu pairs lost), "
                "budget_evictions=%llu horizon_seq=%llu\n",
                dssj::stream::ShedPolicyName(shed_policy),
                static_cast<unsigned long long>(result.shed_probes),
                static_cast<unsigned long long>(result.shed_pairs_upper_bound),
                static_cast<unsigned long long>(result.budget_evictions),
                static_cast<unsigned long long>(result.eviction_horizon_seq));
  }
  if (stall_timeout_ms > 0 && !result.ok) {
    std::fprintf(stderr, "run failed: %s\n", result.failure_message.c_str());
    return 1;
  }
  if (options.supervise) {
    std::printf("recovery: %llu restarts, %llu tuples replayed, %llu checkpoints "
                "(%llu bytes)%s\n",
                static_cast<unsigned long long>(result.restarts),
                static_cast<unsigned long long>(result.replayed_tuples),
                static_cast<unsigned long long>(result.checkpoints),
                static_cast<unsigned long long>(result.checkpoint_bytes),
                result.ok ? "" : " [FAILED]");
    if (!result.ok) {
      std::fprintf(stderr, "run failed: %s\n", result.failure_message.c_str());
      return 1;
    }
  }
  int64_t shown = 0;
  for (const dssj::ResultPair& pair : result.pairs) {
    if (shown++ >= max_pairs) {
      std::printf("... (%llu more; raise --max-pairs)\n",
                  static_cast<unsigned long long>(result.pairs.size()) -
                      static_cast<unsigned long long>(max_pairs));
      break;
    }
    std::printf("line %llu ~ line %llu\n",
                static_cast<unsigned long long>(pair.partner_id + 1),
                static_cast<unsigned long long>(pair.probe_id + 1));
  }
  return 0;
}
