// On-line near-duplicate detection over a news-like stream — the paper's
// motivating application — on the full distributed topology: one source,
// one dispatcher, eight joiner partitions under length-based distribution
// with the bundle-based local algorithm and a sliding window.
//
//   ./build/examples/near_duplicate_news [num_records] [threshold_permille]

#include <cstdio>
#include <cstdlib>

#include "core/join_topology.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  const size_t num_records = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  const int64_t threshold = argc > 2 ? std::atoll(argv[2]) : 800;
  constexpr int kJoiners = 8;

  // A tweet/news-shaped synthetic stream: Zipf vocabulary, short texts,
  // 25% of records are mutated re-posts of recent ones.
  dssj::WorkloadOptions workload = dssj::PresetOptions(dssj::DatasetPreset::kTweet);
  workload.seed = 2026;
  std::printf("generating %zu news-like records...\n", num_records);
  const auto stream = dssj::WorkloadGenerator(workload).Generate(num_records);

  dssj::DistributedJoinOptions options;
  options.sim = dssj::SimilaritySpec(dssj::SimilarityFunction::kJaccard, threshold);
  options.window = dssj::WindowSpec::ByCount(20000);
  options.strategy = dssj::DistributionStrategy::kLengthBased;
  options.local = dssj::LocalAlgorithm::kBundle;
  options.num_joiners = kJoiners;
  options.collect_results = false;  // count duplicates, don't materialize

  // Plan the load-aware length partition from the first records (in a
  // deployment: from a sample of the live stream).
  const std::vector<dssj::RecordPtr> sample(
      stream.begin(), stream.begin() + std::min<size_t>(stream.size(), 10000));
  options.length_partition = dssj::PlanLengthPartition(
      sample, options.sim, kJoiners, dssj::PartitionMethod::kLoadAwareGreedy);
  std::printf("length partition: %s\n", options.length_partition.ToString().c_str());

  const dssj::DistributedJoinResult result = dssj::RunDistributedJoin(stream, options);

  std::printf("\n=== near-duplicate detection (%s, %d joiners, bundle join) ===\n",
              options.sim.ToString().c_str(), kJoiners);
  std::printf("records            %llu\n",
              static_cast<unsigned long long>(result.input_records));
  std::printf("duplicate pairs    %llu\n",
              static_cast<unsigned long long>(result.result_count));
  std::printf("wall throughput    %.0f rec/s (single-core host)\n", result.throughput_rps);
  std::printf("cluster throughput %.0f rec/s (critical-path model)\n",
              result.scaled_throughput_rps);
  std::printf("replication        %.3f (stores per record)\n", result.replication_factor);
  std::printf("dispatch traffic   %.1f MB, %llu messages\n",
              static_cast<double>(result.dispatch_bytes) / 1e6,
              static_cast<unsigned long long>(result.dispatch_messages));
  std::printf("latency p50/p99    %llu / %llu us\n",
              static_cast<unsigned long long>(result.latency.p50_us),
              static_cast<unsigned long long>(result.latency.p99_us));
  std::printf("\nper-joiner partition detail:\n");
  for (int i = 0; i < kJoiners; ++i) {
    const dssj::JoinerStats& s = result.joiner_stats[i];
    std::printf(
        "  joiner %d: probes=%-7llu stores=%-7llu bundles_created=%-6llu results=%llu\n", i,
        static_cast<unsigned long long>(s.probes), static_cast<unsigned long long>(s.stores),
        static_cast<unsigned long long>(s.bundles_created),
        static_cast<unsigned long long>(s.results));
  }
  return 0;
}
