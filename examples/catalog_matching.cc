// Data integration between two live sources — the abstract's motivating
// application for stream similarity joins. Two "product catalogs" emit
// records concurrently; the TwoStreamJoiner reports cross-catalog matches
// (never same-catalog pairs) as they arrive, each side bounded by its own
// sliding window.
//
//   ./build/examples/catalog_matching [records_per_side]

#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "core/two_stream_joiner.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  const size_t per_side = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 30000;

  // Catalog A and catalog B: overlapping token universe (same products,
  // different descriptions) — generate B by mutating A-style records.
  dssj::WorkloadOptions options = dssj::PresetOptions(dssj::DatasetPreset::kDblp);
  options.seed = 97;
  options.duplicate_fraction = 0.45;  // many cross-listed products
  options.mutation_rate = 0.10;
  dssj::WorkloadGenerator source(options);

  const dssj::SimilaritySpec sim(dssj::SimilarityFunction::kJaccard, 700);
  dssj::TwoStreamJoiner joiner(sim, dssj::WindowSpec::ByCount(20000),
                               dssj::WindowSpec::ByCount(20000));

  uint64_t matches = 0;
  dssj::Rng side_picker(5);
  dssj::Stopwatch stopwatch;
  for (size_t i = 0; i < 2 * per_side; ++i) {
    const auto side = side_picker.Bernoulli(0.5) ? dssj::TwoStreamJoiner::Side::kR
                                                 : dssj::TwoStreamJoiner::Side::kS;
    joiner.Process(side, source.Next(),
                   [&matches](const dssj::TwoStreamJoiner::RsPair&) { ++matches; });
  }
  const double seconds = stopwatch.ElapsedSeconds();

  std::printf("=== cross-catalog matching (%s) ===\n", sim.ToString().c_str());
  std::printf("records            %zu (interleaved from two catalogs)\n", 2 * per_side);
  std::printf("cross matches      %llu\n", static_cast<unsigned long long>(matches));
  std::printf("throughput         %.0f rec/s\n",
              static_cast<double>(2 * per_side) / seconds);
  std::printf("catalog A stored   %zu (probes=%llu, candidates=%llu)\n",
              joiner.StoredCount(dssj::TwoStreamJoiner::Side::kR),
              static_cast<unsigned long long>(joiner.stats(dssj::TwoStreamJoiner::Side::kR).probes),
              static_cast<unsigned long long>(
                  joiner.stats(dssj::TwoStreamJoiner::Side::kR).candidates));
  std::printf("catalog B stored   %zu\n",
              joiner.StoredCount(dssj::TwoStreamJoiner::Side::kS));
  std::printf("index memory       %.1f MB\n",
              static_cast<double>(joiner.MemoryBytes()) / 1e6);
  return 0;
}
