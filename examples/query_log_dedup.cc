// Side-by-side comparison of the three distribution strategies on an
// AOL-like query-log stream: the experiment a user would run to pick a
// strategy for their workload. Prints one row per strategy with
// throughput, communication and balance numbers.
//
//   ./build/examples/query_log_dedup [num_records]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/join_topology.h"
#include "workload/generator.h"

namespace {

double Imbalance(const std::vector<uint64_t>& busy) {
  uint64_t sum = 0, worst = 0;
  for (uint64_t b : busy) {
    sum += b;
    worst = std::max(worst, b);
  }
  return sum > 0 ? static_cast<double>(worst) * static_cast<double>(busy.size()) /
                       static_cast<double>(sum)
                 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_records = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 60000;
  constexpr int kJoiners = 8;

  dssj::WorkloadOptions workload = dssj::PresetOptions(dssj::DatasetPreset::kAol);
  workload.seed = 7;
  std::printf("generating %zu query-log records...\n\n", num_records);
  const auto stream = dssj::WorkloadGenerator(workload).Generate(num_records);

  std::printf("%-10s %14s %14s %12s %12s %10s %10s\n", "strategy", "wall rec/s",
              "cluster rec/s", "repl", "MB sent", "imbalance", "results");

  for (const dssj::DistributionStrategy strategy :
       {dssj::DistributionStrategy::kLengthBased, dssj::DistributionStrategy::kPrefixBased,
        dssj::DistributionStrategy::kBroadcast}) {
    dssj::DistributedJoinOptions options;
    options.sim = dssj::SimilaritySpec(dssj::SimilarityFunction::kJaccard, 800);
    options.window = dssj::WindowSpec::ByCount(20000);
    options.strategy = strategy;
    options.num_joiners = kJoiners;
    options.collect_results = false;
    if (strategy == dssj::DistributionStrategy::kLengthBased) {
      options.length_partition = dssj::PlanLengthPartition(
          stream, options.sim, kJoiners, dssj::PartitionMethod::kLoadAwareGreedy);
    }
    const dssj::DistributedJoinResult r = dssj::RunDistributedJoin(stream, options);
    std::printf("%-10s %14.0f %14.0f %12.2f %12.1f %10.2f %10llu\n",
                dssj::DistributionStrategyName(strategy), r.throughput_rps,
                r.scaled_throughput_rps, r.replication_factor,
                static_cast<double>(r.dispatch_bytes) / 1e6, Imbalance(r.joiner_busy_micros),
                static_cast<unsigned long long>(r.result_count));
  }

  std::printf(
      "\nAll three strategies report the same duplicate pairs; they differ in\n"
      "where records are stored and probed. Length-based wins on this\n"
      "workload exactly as in the paper: no replication, small messages,\n"
      "balanced joiners.\n");
  return 0;
}
