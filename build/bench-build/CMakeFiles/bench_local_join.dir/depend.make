# Empty dependencies file for bench_local_join.
# This may be replaced when dependencies are built.
