file(REMOVE_RECURSE
  "../bench/bench_local_join"
  "../bench/bench_local_join.pdb"
  "CMakeFiles/bench_local_join.dir/bench_local_join.cc.o"
  "CMakeFiles/bench_local_join.dir/bench_local_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
