file(REMOVE_RECURSE
  "../bench/bench_throughput_threshold"
  "../bench/bench_throughput_threshold.pdb"
  "CMakeFiles/bench_throughput_threshold.dir/bench_throughput_threshold.cc.o"
  "CMakeFiles/bench_throughput_threshold.dir/bench_throughput_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
