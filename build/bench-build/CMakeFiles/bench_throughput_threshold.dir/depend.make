# Empty dependencies file for bench_throughput_threshold.
# This may be replaced when dependencies are built.
