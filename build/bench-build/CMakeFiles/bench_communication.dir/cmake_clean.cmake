file(REMOVE_RECURSE
  "../bench/bench_communication"
  "../bench/bench_communication.pdb"
  "CMakeFiles/bench_communication.dir/bench_communication.cc.o"
  "CMakeFiles/bench_communication.dir/bench_communication.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
