file(REMOVE_RECURSE
  "../bench/bench_verification"
  "../bench/bench_verification.pdb"
  "CMakeFiles/bench_verification.dir/bench_verification.cc.o"
  "CMakeFiles/bench_verification.dir/bench_verification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
