file(REMOVE_RECURSE
  "../bench/bench_functions"
  "../bench/bench_functions.pdb"
  "CMakeFiles/bench_functions.dir/bench_functions.cc.o"
  "CMakeFiles/bench_functions.dir/bench_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
