file(REMOVE_RECURSE
  "../bench/bench_repartition"
  "../bench/bench_repartition.pdb"
  "CMakeFiles/bench_repartition.dir/bench_repartition.cc.o"
  "CMakeFiles/bench_repartition.dir/bench_repartition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
