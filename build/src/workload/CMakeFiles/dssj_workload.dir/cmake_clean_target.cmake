file(REMOVE_RECURSE
  "libdssj_workload.a"
)
