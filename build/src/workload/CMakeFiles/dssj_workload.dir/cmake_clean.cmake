file(REMOVE_RECURSE
  "CMakeFiles/dssj_workload.dir/drift.cc.o"
  "CMakeFiles/dssj_workload.dir/drift.cc.o.d"
  "CMakeFiles/dssj_workload.dir/generator.cc.o"
  "CMakeFiles/dssj_workload.dir/generator.cc.o.d"
  "libdssj_workload.a"
  "libdssj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
