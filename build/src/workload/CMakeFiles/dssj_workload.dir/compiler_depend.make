# Empty compiler generated dependencies file for dssj_workload.
# This may be replaced when dependencies are built.
