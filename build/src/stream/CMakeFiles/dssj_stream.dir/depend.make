# Empty dependencies file for dssj_stream.
# This may be replaced when dependencies are built.
