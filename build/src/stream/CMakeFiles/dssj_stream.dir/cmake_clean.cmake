file(REMOVE_RECURSE
  "CMakeFiles/dssj_stream.dir/metrics.cc.o"
  "CMakeFiles/dssj_stream.dir/metrics.cc.o.d"
  "CMakeFiles/dssj_stream.dir/topology.cc.o"
  "CMakeFiles/dssj_stream.dir/topology.cc.o.d"
  "libdssj_stream.a"
  "libdssj_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
