file(REMOVE_RECURSE
  "libdssj_stream.a"
)
