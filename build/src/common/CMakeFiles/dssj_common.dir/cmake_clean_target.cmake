file(REMOVE_RECURSE
  "libdssj_common.a"
)
