# Empty dependencies file for dssj_common.
# This may be replaced when dependencies are built.
