file(REMOVE_RECURSE
  "CMakeFiles/dssj_common.dir/flags.cc.o"
  "CMakeFiles/dssj_common.dir/flags.cc.o.d"
  "CMakeFiles/dssj_common.dir/logging.cc.o"
  "CMakeFiles/dssj_common.dir/logging.cc.o.d"
  "CMakeFiles/dssj_common.dir/random.cc.o"
  "CMakeFiles/dssj_common.dir/random.cc.o.d"
  "CMakeFiles/dssj_common.dir/stats.cc.o"
  "CMakeFiles/dssj_common.dir/stats.cc.o.d"
  "CMakeFiles/dssj_common.dir/status.cc.o"
  "CMakeFiles/dssj_common.dir/status.cc.o.d"
  "libdssj_common.a"
  "libdssj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
