# Empty compiler generated dependencies file for dssj_text.
# This may be replaced when dependencies are built.
