file(REMOVE_RECURSE
  "CMakeFiles/dssj_text.dir/corpus.cc.o"
  "CMakeFiles/dssj_text.dir/corpus.cc.o.d"
  "CMakeFiles/dssj_text.dir/record.cc.o"
  "CMakeFiles/dssj_text.dir/record.cc.o.d"
  "CMakeFiles/dssj_text.dir/token_dictionary.cc.o"
  "CMakeFiles/dssj_text.dir/token_dictionary.cc.o.d"
  "CMakeFiles/dssj_text.dir/tokenizer.cc.o"
  "CMakeFiles/dssj_text.dir/tokenizer.cc.o.d"
  "libdssj_text.a"
  "libdssj_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
