file(REMOVE_RECURSE
  "libdssj_text.a"
)
