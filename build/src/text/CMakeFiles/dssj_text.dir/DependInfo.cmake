
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/corpus.cc" "src/text/CMakeFiles/dssj_text.dir/corpus.cc.o" "gcc" "src/text/CMakeFiles/dssj_text.dir/corpus.cc.o.d"
  "/root/repo/src/text/record.cc" "src/text/CMakeFiles/dssj_text.dir/record.cc.o" "gcc" "src/text/CMakeFiles/dssj_text.dir/record.cc.o.d"
  "/root/repo/src/text/token_dictionary.cc" "src/text/CMakeFiles/dssj_text.dir/token_dictionary.cc.o" "gcc" "src/text/CMakeFiles/dssj_text.dir/token_dictionary.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/dssj_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/dssj_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dssj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
