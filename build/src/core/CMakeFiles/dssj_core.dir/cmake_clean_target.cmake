file(REMOVE_RECURSE
  "libdssj_core.a"
)
