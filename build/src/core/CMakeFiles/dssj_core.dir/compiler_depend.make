# Empty compiler generated dependencies file for dssj_core.
# This may be replaced when dependencies are built.
