file(REMOVE_RECURSE
  "CMakeFiles/dssj_core.dir/adaptive_router.cc.o"
  "CMakeFiles/dssj_core.dir/adaptive_router.cc.o.d"
  "CMakeFiles/dssj_core.dir/brute_force_joiner.cc.o"
  "CMakeFiles/dssj_core.dir/brute_force_joiner.cc.o.d"
  "CMakeFiles/dssj_core.dir/bundle_joiner.cc.o"
  "CMakeFiles/dssj_core.dir/bundle_joiner.cc.o.d"
  "CMakeFiles/dssj_core.dir/join_topology.cc.o"
  "CMakeFiles/dssj_core.dir/join_topology.cc.o.d"
  "CMakeFiles/dssj_core.dir/minhash_joiner.cc.o"
  "CMakeFiles/dssj_core.dir/minhash_joiner.cc.o.d"
  "CMakeFiles/dssj_core.dir/partition.cc.o"
  "CMakeFiles/dssj_core.dir/partition.cc.o.d"
  "CMakeFiles/dssj_core.dir/record_joiner.cc.o"
  "CMakeFiles/dssj_core.dir/record_joiner.cc.o.d"
  "CMakeFiles/dssj_core.dir/repartition.cc.o"
  "CMakeFiles/dssj_core.dir/repartition.cc.o.d"
  "CMakeFiles/dssj_core.dir/router.cc.o"
  "CMakeFiles/dssj_core.dir/router.cc.o.d"
  "CMakeFiles/dssj_core.dir/similarity.cc.o"
  "CMakeFiles/dssj_core.dir/similarity.cc.o.d"
  "CMakeFiles/dssj_core.dir/two_stream_joiner.cc.o"
  "CMakeFiles/dssj_core.dir/two_stream_joiner.cc.o.d"
  "CMakeFiles/dssj_core.dir/verify.cc.o"
  "CMakeFiles/dssj_core.dir/verify.cc.o.d"
  "libdssj_core.a"
  "libdssj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
