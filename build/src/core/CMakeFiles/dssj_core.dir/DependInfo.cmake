
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_router.cc" "src/core/CMakeFiles/dssj_core.dir/adaptive_router.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/adaptive_router.cc.o.d"
  "/root/repo/src/core/brute_force_joiner.cc" "src/core/CMakeFiles/dssj_core.dir/brute_force_joiner.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/brute_force_joiner.cc.o.d"
  "/root/repo/src/core/bundle_joiner.cc" "src/core/CMakeFiles/dssj_core.dir/bundle_joiner.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/bundle_joiner.cc.o.d"
  "/root/repo/src/core/join_topology.cc" "src/core/CMakeFiles/dssj_core.dir/join_topology.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/join_topology.cc.o.d"
  "/root/repo/src/core/minhash_joiner.cc" "src/core/CMakeFiles/dssj_core.dir/minhash_joiner.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/minhash_joiner.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/dssj_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/partition.cc.o.d"
  "/root/repo/src/core/record_joiner.cc" "src/core/CMakeFiles/dssj_core.dir/record_joiner.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/record_joiner.cc.o.d"
  "/root/repo/src/core/repartition.cc" "src/core/CMakeFiles/dssj_core.dir/repartition.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/repartition.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/dssj_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/router.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/dssj_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/two_stream_joiner.cc" "src/core/CMakeFiles/dssj_core.dir/two_stream_joiner.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/two_stream_joiner.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/core/CMakeFiles/dssj_core.dir/verify.cc.o" "gcc" "src/core/CMakeFiles/dssj_core.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dssj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dssj_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dssj_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
