file(REMOVE_RECURSE
  "CMakeFiles/catalog_matching.dir/catalog_matching.cc.o"
  "CMakeFiles/catalog_matching.dir/catalog_matching.cc.o.d"
  "catalog_matching"
  "catalog_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
