# Empty dependencies file for catalog_matching.
# This may be replaced when dependencies are built.
