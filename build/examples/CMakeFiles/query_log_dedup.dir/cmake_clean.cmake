file(REMOVE_RECURSE
  "CMakeFiles/query_log_dedup.dir/query_log_dedup.cc.o"
  "CMakeFiles/query_log_dedup.dir/query_log_dedup.cc.o.d"
  "query_log_dedup"
  "query_log_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_log_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
