# Empty dependencies file for query_log_dedup.
# This may be replaced when dependencies are built.
