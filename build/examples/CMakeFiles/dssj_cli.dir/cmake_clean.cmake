file(REMOVE_RECURSE
  "CMakeFiles/dssj_cli.dir/dssj_cli.cc.o"
  "CMakeFiles/dssj_cli.dir/dssj_cli.cc.o.d"
  "dssj_cli"
  "dssj_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dssj_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
