# Empty compiler generated dependencies file for dssj_cli.
# This may be replaced when dependencies are built.
