file(REMOVE_RECURSE
  "CMakeFiles/partition_planner.dir/partition_planner.cc.o"
  "CMakeFiles/partition_planner.dir/partition_planner.cc.o.d"
  "partition_planner"
  "partition_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
