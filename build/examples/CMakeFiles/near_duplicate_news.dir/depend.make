# Empty dependencies file for near_duplicate_news.
# This may be replaced when dependencies are built.
