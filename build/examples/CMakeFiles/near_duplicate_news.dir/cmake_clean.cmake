file(REMOVE_RECURSE
  "CMakeFiles/near_duplicate_news.dir/near_duplicate_news.cc.o"
  "CMakeFiles/near_duplicate_news.dir/near_duplicate_news.cc.o.d"
  "near_duplicate_news"
  "near_duplicate_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_duplicate_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
