# Empty dependencies file for repartition_test.
# This may be replaced when dependencies are built.
