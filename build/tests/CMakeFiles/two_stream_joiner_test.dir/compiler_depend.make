# Empty compiler generated dependencies file for two_stream_joiner_test.
# This may be replaced when dependencies are built.
