file(REMOVE_RECURSE
  "CMakeFiles/two_stream_joiner_test.dir/two_stream_joiner_test.cc.o"
  "CMakeFiles/two_stream_joiner_test.dir/two_stream_joiner_test.cc.o.d"
  "two_stream_joiner_test"
  "two_stream_joiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stream_joiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
