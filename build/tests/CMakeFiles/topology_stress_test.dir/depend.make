# Empty dependencies file for topology_stress_test.
# This may be replaced when dependencies are built.
