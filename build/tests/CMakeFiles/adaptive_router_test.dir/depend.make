# Empty dependencies file for adaptive_router_test.
# This may be replaced when dependencies are built.
