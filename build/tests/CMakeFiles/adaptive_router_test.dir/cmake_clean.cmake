file(REMOVE_RECURSE
  "CMakeFiles/adaptive_router_test.dir/adaptive_router_test.cc.o"
  "CMakeFiles/adaptive_router_test.dir/adaptive_router_test.cc.o.d"
  "adaptive_router_test"
  "adaptive_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
