# Empty compiler generated dependencies file for fuzz_equivalence_test.
# This may be replaced when dependencies are built.
