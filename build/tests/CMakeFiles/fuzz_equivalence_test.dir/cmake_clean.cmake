file(REMOVE_RECURSE
  "CMakeFiles/fuzz_equivalence_test.dir/fuzz_equivalence_test.cc.o"
  "CMakeFiles/fuzz_equivalence_test.dir/fuzz_equivalence_test.cc.o.d"
  "fuzz_equivalence_test"
  "fuzz_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
