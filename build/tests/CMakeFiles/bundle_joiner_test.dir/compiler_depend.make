# Empty compiler generated dependencies file for bundle_joiner_test.
# This may be replaced when dependencies are built.
