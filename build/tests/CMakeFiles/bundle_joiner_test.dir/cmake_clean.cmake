file(REMOVE_RECURSE
  "CMakeFiles/bundle_joiner_test.dir/bundle_joiner_test.cc.o"
  "CMakeFiles/bundle_joiner_test.dir/bundle_joiner_test.cc.o.d"
  "bundle_joiner_test"
  "bundle_joiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_joiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
