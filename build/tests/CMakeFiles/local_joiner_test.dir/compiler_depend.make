# Empty compiler generated dependencies file for local_joiner_test.
# This may be replaced when dependencies are built.
