file(REMOVE_RECURSE
  "CMakeFiles/local_joiner_test.dir/local_joiner_test.cc.o"
  "CMakeFiles/local_joiner_test.dir/local_joiner_test.cc.o.d"
  "local_joiner_test"
  "local_joiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_joiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
