file(REMOVE_RECURSE
  "CMakeFiles/stream_substrate_misc_test.dir/stream_substrate_misc_test.cc.o"
  "CMakeFiles/stream_substrate_misc_test.dir/stream_substrate_misc_test.cc.o.d"
  "stream_substrate_misc_test"
  "stream_substrate_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_substrate_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
