# Empty compiler generated dependencies file for stream_substrate_misc_test.
# This may be replaced when dependencies are built.
