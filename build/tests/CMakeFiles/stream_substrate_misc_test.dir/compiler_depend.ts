# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stream_substrate_misc_test.
