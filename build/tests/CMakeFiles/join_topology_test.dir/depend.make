# Empty dependencies file for join_topology_test.
# This may be replaced when dependencies are built.
