file(REMOVE_RECURSE
  "CMakeFiles/join_topology_test.dir/join_topology_test.cc.o"
  "CMakeFiles/join_topology_test.dir/join_topology_test.cc.o.d"
  "join_topology_test"
  "join_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
