file(REMOVE_RECURSE
  "CMakeFiles/distributed_join_test.dir/distributed_join_test.cc.o"
  "CMakeFiles/distributed_join_test.dir/distributed_join_test.cc.o.d"
  "distributed_join_test"
  "distributed_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
