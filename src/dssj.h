#ifndef DSSJ_DSSJ_H_
#define DSSJ_DSSJ_H_

/// \file
/// Umbrella header for the dssj library — distributed streaming set
/// similarity join (reproduction of "Distributed Streaming Set Similarity
/// Join", ICDE 2020; see DESIGN.md).
///
/// Layering (each layer only depends on the ones above it):
///   common/    Status, logging, RNG, stats, flags
///   text/      records, tokenizers, dictionaries, corpus I/O
///   stream/    the in-process Storm-like dataflow substrate
///   workload/  synthetic stream generators (incl. drift)
///   core/      the paper's contribution: similarity math, local joiners,
///              distribution strategies, partition planning, the join
///              topology facade
///
/// Typical entry points: BuildCorpusFromLines / WorkloadGenerator to get a
/// stream of RecordPtr; RecordJoiner or BundleJoiner for single-partition
/// joins; RunDistributedJoin for the full topology.

#include "common/flags.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/join_topology.h"
#include "core/local_joiner.h"
#include "core/minhash_joiner.h"
#include "core/partition.h"
#include "core/record_joiner.h"
#include "core/repartition.h"
#include "core/router.h"
#include "core/similarity.h"
#include "core/two_stream_joiner.h"
#include "core/verify.h"
#include "core/window.h"
#include "stream/topology.h"
#include "text/corpus.h"
#include "text/record.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"
#include "workload/drift.h"
#include "workload/generator.h"

#endif  // DSSJ_DSSJ_H_
