// On-disk overflow tier for cold window state: append-only segment files
// of checksummed frames, addressed by (segment, offset, length) handles.
// The PR 3 memory-budget path spills cold records here instead of
// evicting them; probes read them back on demand; window expiry releases
// them and sealed all-dead segments are reclaimed (docs/INTERNALS.md §13).
#ifndef DSSJ_STORE_SPILL_H_
#define DSSJ_STORE_SPILL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dssj::store {

/// Stable address of one spilled frame. Valid until Release()d.
struct SpillHandle {
  uint32_t segment = 0;
  uint64_t offset = 0;
  uint32_t length = 0;  // payload bytes (excludes frame header)
};

/// One joiner task's spill directory. Not thread-safe — owned and driven
/// entirely by the task thread (reads on probe, appends on store); the
/// checkpoint service never touches it.
///
/// GC discipline: Release() drops a frame's liveness; a sealed segment
/// whose frames are all dead is *retired* (tracked, file kept) rather
/// than deleted, because an async base checkpoint written earlier may
/// still hold handles into it. kImmediate deletes at retire time (sync
/// checkpoints inline cold records, so only the live joiner references
/// segments); kDeferred keeps retired segments until the owner confirms a
/// base checkpoint that post-dates the retirement is durable
/// (TakeRetireMark at freeze, DeleteRetiredBefore when durable).
class SpillStore {
 public:
  enum class GcPolicy : uint8_t { kImmediate = 0, kDeferred = 1 };

  /// Opens (creating if needed) the spill directory. Existing segments
  /// from a previous incarnation are scanned: torn tails are truncated
  /// away, intact frames become *unclaimed* — Reref() during restore
  /// claims the ones the recovered state references, PurgeUnclaimed()
  /// afterwards deletes the rest.
  static Status Open(const std::string& dir, size_t segment_bytes, GcPolicy gc,
                     std::unique_ptr<SpillStore>* out);

  /// Appends one frame to the active segment (rotating first if the
  /// active segment is at or past the size limit) and returns its handle.
  Status Append(const std::string& payload, SpillHandle* handle);

  /// Reads one frame back, validating its checksum. A corrupt or missing
  /// frame is a clean non-OK Status (callers count it and move on).
  Status Read(const SpillHandle& handle, std::string* payload) const;

  /// Marks a frame dead. When this kills the last live frame of a sealed
  /// segment, the segment is retired (and deleted under kImmediate).
  void Release(const SpillHandle& handle);

  /// Claims an unclaimed frame during restore (inverse of Release for
  /// frames inherited from a previous incarnation). Returns false if the
  /// handle does not address an intact frame on disk.
  bool Reref(const SpillHandle& handle);

  /// Deletes every frame no restore claimed, then any segment left empty.
  Status PurgeUnclaimed();

  /// Current retirement watermark: retired segments are numbered by the
  /// order they retire, and the mark is one past the newest. A caller
  /// freezing a base checkpoint records the mark; once that checkpoint is
  /// durable, DeleteRetiredBefore(mark) reclaims the files no durable
  /// state can reference.
  uint64_t TakeRetireMark() const { return retire_seq_; }
  Status DeleteRetiredBefore(uint64_t mark);

  /// Total payload bytes currently live on disk (approximate RSS relief).
  uint64_t live_bytes() const { return live_bytes_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t file_bytes = 0;   // current file size (next append offset)
    uint64_t live = 0;         // live frames
    uint64_t unclaimed = 0;    // intact frames awaiting Reref after Open
    bool sealed = false;       // rotation happened; no more appends
    uint64_t retired_at = 0;   // retire_seq_ value when retired (0 = live)
    std::vector<SpillHandle> unclaimed_frames;
  };

  SpillStore(std::string dir, size_t segment_bytes, GcPolicy gc)
      : dir_(std::move(dir)), segment_bytes_(segment_bytes), gc_(gc) {}

  std::string SegmentPath(uint32_t id) const;
  void MaybeRetire(uint32_t id, Segment* seg);

  std::string dir_;
  size_t segment_bytes_;
  GcPolicy gc_;
  std::map<uint32_t, Segment> segments_;
  uint32_t active_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t retire_seq_ = 1;  // next retirement stamp; mark 1 = nothing retired
};

}  // namespace dssj::store

#endif  // DSSJ_STORE_SPILL_H_
