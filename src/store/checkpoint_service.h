// The dedicated checkpoint thread: task threads freeze a cheap view at a
// sequence boundary and Submit() it here; this thread runs the encoder,
// writes the base or delta file through the task's StateStore, and
// advances the task's durable epoch. Task threads poll DurableEpoch() to
// learn how far they may truncate their replay logs, and Barrier() before
// any operation that must observe a quiescent store (crash recovery,
// migration, decommission).
#ifndef DSSJ_STORE_CHECKPOINT_SERVICE_H_
#define DSSJ_STORE_CHECKPOINT_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "store/frozen.h"
#include "store/state_store.h"

namespace dssj::store {

/// One frozen checkpoint awaiting encode + write.
struct CheckpointJob {
  int task_id = 0;
  uint64_t epoch = 0;
  bool is_base = false;
  FrozenBlob blob;
  StateStore* store = nullptr;  // outlives the service (owned by the task runtime)
  /// Runs on the service thread after the write attempt (also under
  /// wedge-skip, with ok=false and bytes/nanos 0). Used by the stream
  /// layer to bump TaskMetrics atomics.
  std::function<void(bool ok, uint64_t bytes, uint64_t nanos)> on_complete;
};

/// Single worker thread draining a FIFO of jobs. Durability is strictly
/// contiguous per task: epoch E is durable only once every epoch <= E has
/// been written, so a replay-log truncation at DurableEpoch() is always
/// safe. A failed write *wedges* the task's store — later jobs for that
/// task are skipped (logged once) and the durable epoch never advances
/// past the failure, so the task keeps enough replay log to recover.
class CheckpointService {
 public:
  CheckpointService();
  ~CheckpointService();

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  /// Enqueues a job. Epochs for one task must be submitted in order.
  void Submit(CheckpointJob job);

  /// Newest epoch of `task_id` whose write (and all predecessors) is
  /// durable. 0 means nothing durable yet (epochs start at 1... except a
  /// task's initial base, which uses epoch 0 — see DurableSet).
  uint64_t DurableEpoch(int task_id) const;
  /// True once any epoch of `task_id` completed (distinguishes "epoch 0
  /// durable" from "nothing durable").
  bool DurableSet(int task_id) const;

  /// Blocks until every job for `task_id` submitted before this call has
  /// been processed (written or wedge-skipped).
  void Barrier(int task_id);

  /// Clears the wedge + durable state of `task_id` (new incarnation about
  /// to rebuild its chain). Call only after Barrier(task_id).
  void Reset(int task_id);

  /// True if a write for `task_id` failed and the store is wedged.
  bool Wedged(int task_id) const;

  /// Drains all queued jobs and joins the thread. Called once at topology
  /// teardown; Submit after Stop is invalid.
  void Stop();

 private:
  struct TaskState {
    uint64_t durable = 0;
    bool durable_set = false;
    bool wedged = false;
    uint64_t processed = 0;  // jobs completed (for Barrier)
    uint64_t submitted = 0;
  };

  void Run();

  mutable std::mutex mu_;
  std::condition_variable cv_;       // signals the worker: work or stop
  std::condition_variable done_cv_;  // signals waiters: job processed
  std::deque<CheckpointJob> queue_;
  std::unordered_map<int, TaskState> tasks_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dssj::store

#endif  // DSSJ_STORE_CHECKPOINT_SERVICE_H_
