// The unit of work handed from a task thread to the checkpoint service:
// a frozen, immutable view of component state captured at an exact
// sequence boundary, paired with the encoder that serializes it later on
// whatever thread runs the job.
#ifndef DSSJ_STORE_FROZEN_H_
#define DSSJ_STORE_FROZEN_H_

#include <functional>
#include <string>

namespace dssj::store {

/// A checkpointable view frozen off the hot path. Capturing one must be
/// cheap (reference bumps on immutable records, small copies of dirty-set
/// bookkeeping) — the expensive serialization happens when `encode` runs.
/// `encode` is invoked at most once, possibly on a different thread than
/// the one that froze it; everything it closes over must stay valid and
/// immutable until then (shared_ptr<const T> captures qualify).
struct FrozenBlob {
  /// True when the blob holds only state touched since the previous
  /// freeze (restore via RestoreDelta on top of an earlier image); false
  /// for a self-sufficient base image (restore via Restore).
  bool is_delta = false;
  std::function<void(std::string*)> encode;
};

}  // namespace dssj::store

#endif  // DSSJ_STORE_FROZEN_H_
