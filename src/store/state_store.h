// Per-task durable checkpoint chain: one directory holding full base
// images plus the delta files written since the newest base. Recovery
// composes the newest *valid* base with the longest contiguous run of
// valid deltas after it (docs/INTERNALS.md §13) — a torn or bit-flipped
// file terminates the chain cleanly instead of failing recovery outright.
#ifndef DSSJ_STORE_STATE_STORE_H_
#define DSSJ_STORE_STATE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dssj::store {

/// Result of composing the on-disk chain: the payload of the chosen base
/// checkpoint, then the delta payloads to apply on top, in epoch order.
/// `epoch` is the epoch of the newest file in the composition (the state
/// the restored task resumes from). `valid` is false when no intact base
/// exists (fresh task, or every base corrupt).
struct RecoveredChain {
  bool valid = false;
  uint64_t epoch = 0;
  std::string base;
  std::vector<std::string> deltas;
};

/// Owns one task's checkpoint directory. Not thread-safe: in async mode
/// all calls happen on the checkpoint service thread (plus Recover /
/// Truncate on the task thread strictly before/after the service touches
/// the task — the service Barrier orders them).
class StateStore {
 public:
  explicit StateStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Writes a full base image for `epoch` (atomic tmp+rename), then
  /// garbage-collects every base and delta file with a smaller epoch —
  /// they can no longer participate in any recovery composition.
  Status WriteBase(uint64_t epoch, const std::string& payload);

  /// Writes a delta file for `epoch` (atomic tmp+rename).
  Status WriteDelta(uint64_t epoch, const std::string& payload);

  /// Scans the directory and composes the newest valid base + contiguous
  /// valid delta chain. Corrupt or missing files never fail the call:
  /// a bad delta truncates the chain just before it, a bad base falls
  /// back to the previous base. Returns non-OK only for IO errors that
  /// make the directory unreadable.
  Status Recover(RecoveredChain* out) const;

  /// Removes every checkpoint file (fresh incarnation start).
  Status Truncate();

 private:
  std::string dir_;
};

}  // namespace dssj::store

#endif  // DSSJ_STORE_STATE_STORE_H_
