#include "store/state_store.h"

#include <algorithm>

#include "store/format.h"

namespace dssj::store {
namespace {

struct StoreFile {
  int kind = 0;  // 0 base, 1 delta
  uint64_t epoch = 0;
  std::string name;
};

// Checkpoint files in the directory, epoch-ascending (bases before deltas
// at equal epoch, though the writer never produces both for one epoch).
Status ListCheckpoints(const std::string& dir, std::vector<StoreFile>* out) {
  std::vector<std::string> names;
  DSSJ_RETURN_IF_ERROR(ListStoreFiles(dir, &names));
  out->clear();
  for (const std::string& name : names) {
    int kind = 0;
    uint64_t id = 0;
    if (!ParseStoreFileName(name, &kind, &id) || kind > 1) continue;
    out->push_back({kind, id, name});
  }
  std::sort(out->begin(), out->end(), [](const StoreFile& a, const StoreFile& b) {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    return a.kind < b.kind;
  });
  return Status::OK();
}

// Reads + validates one checkpoint file. Any corruption (torn write, bit
// flip, foreign bytes) comes back as a non-OK Status, never a crash.
Status LoadCheckpoint(const std::string& path, CheckpointKind want_kind, uint64_t want_epoch,
                      std::string* payload) {
  std::string bytes;
  DSSJ_RETURN_IF_ERROR(ReadFileToString(path, &bytes));
  CheckpointKind kind = CheckpointKind::kBase;
  uint64_t epoch = 0;
  DSSJ_RETURN_IF_ERROR(DecodeCheckpointFile(bytes.data(), bytes.size(), &kind, &epoch, payload));
  if (kind != want_kind || epoch != want_epoch) {
    return Status::InvalidArgument("checkpoint file header disagrees with file name");
  }
  return Status::OK();
}

}  // namespace

Status StateStore::WriteBase(uint64_t epoch, const std::string& payload) {
  DSSJ_RETURN_IF_ERROR(EnsureDir(dir_));
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kBase, epoch, payload, &image);
  DSSJ_RETURN_IF_ERROR(WriteFileAtomic(dir_ + "/" + BaseFileName(epoch), image));
  // Everything older than this base is unreachable by any recovery
  // composition; reclaim it now so the directory stays O(interval) files.
  std::vector<StoreFile> files;
  DSSJ_RETURN_IF_ERROR(ListCheckpoints(dir_, &files));
  for (const StoreFile& f : files) {
    if (f.epoch < epoch) DSSJ_RETURN_IF_ERROR(RemoveFile(dir_ + "/" + f.name));
  }
  return Status::OK();
}

Status StateStore::WriteDelta(uint64_t epoch, const std::string& payload) {
  DSSJ_RETURN_IF_ERROR(EnsureDir(dir_));
  std::string image;
  EncodeCheckpointFile(CheckpointKind::kDelta, epoch, payload, &image);
  return WriteFileAtomic(dir_ + "/" + DeltaFileName(epoch), image);
}

Status StateStore::Recover(RecoveredChain* out) const {
  *out = RecoveredChain{};
  std::vector<StoreFile> files;
  DSSJ_RETURN_IF_ERROR(ListCheckpoints(dir_, &files));
  // Try bases newest-first. For each intact base, extend with the
  // contiguous run of intact deltas at epochs base+1, base+2, ... — the
  // first gap or corrupt delta ends the chain (later deltas would skip
  // state and are unusable).
  for (size_t b = files.size(); b-- > 0;) {
    if (files[b].kind != 0) continue;
    std::string base_payload;
    if (!LoadCheckpoint(dir_ + "/" + files[b].name, CheckpointKind::kBase, files[b].epoch,
                        &base_payload)
             .ok()) {
      continue;
    }
    out->valid = true;
    out->epoch = files[b].epoch;
    out->base = std::move(base_payload);
    out->deltas.clear();
    uint64_t next = files[b].epoch + 1;
    for (size_t d = b + 1; d < files.size(); ++d) {
      if (files[d].kind != 1 || files[d].epoch != next) break;
      std::string delta_payload;
      if (!LoadCheckpoint(dir_ + "/" + files[d].name, CheckpointKind::kDelta, files[d].epoch,
                          &delta_payload)
               .ok()) {
        break;
      }
      out->deltas.push_back(std::move(delta_payload));
      out->epoch = next;
      ++next;
    }
    return Status::OK();
  }
  return Status::OK();
}

Status StateStore::Truncate() {
  std::vector<StoreFile> files;
  DSSJ_RETURN_IF_ERROR(ListCheckpoints(dir_, &files));
  for (const StoreFile& f : files) {
    DSSJ_RETURN_IF_ERROR(RemoveFile(dir_ + "/" + f.name));
  }
  return Status::OK();
}

}  // namespace dssj::store
