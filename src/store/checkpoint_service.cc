#include "store/checkpoint_service.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"

namespace dssj::store {

CheckpointService::CheckpointService() : thread_([this] { Run(); }) {}

CheckpointService::~CheckpointService() { Stop(); }

void CheckpointService::Submit(CheckpointJob job) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(!stop_) << "Submit after CheckpointService::Stop";
  ++tasks_[job.task_id].submitted;
  queue_.push_back(std::move(job));
  cv_.notify_one();
}

uint64_t CheckpointService::DurableEpoch(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? 0 : it->second.durable;
}

bool CheckpointService::DurableSet(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  return it != tasks_.end() && it->second.durable_set;
}

bool CheckpointService::Wedged(int task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  return it != tasks_.end() && it->second.wedged;
}

void CheckpointService::Barrier(int task_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  const uint64_t target = it->second.submitted;
  done_cv_.wait(lock, [&] {
    auto jt = tasks_.find(task_id);
    return jt == tasks_.end() || jt->second.processed >= target;
  });
}

void CheckpointService::Reset(int task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  it->second.durable = 0;
  it->second.durable_set = false;
  it->second.wedged = false;
}

void CheckpointService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) return;
    stop_ = true;
    cv_.notify_one();
  }
  if (thread_.joinable()) thread_.join();
}

void CheckpointService::Run() {
  for (;;) {
    CheckpointJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      if (tasks_[job.task_id].wedged) {
        // The store failed earlier; keep the durable epoch pinned so the
        // task never truncates replay state it still needs.
        ++tasks_[job.task_id].processed;
        lock.unlock();
        if (job.on_complete) job.on_complete(false, 0, 0);
        done_cv_.notify_all();
        continue;
      }
    }

    const int64_t t0 = NowNanos();
    std::string payload;
    if (job.blob.encode) job.blob.encode(&payload);
    const Status st = job.is_base ? job.store->WriteBase(job.epoch, payload)
                                  : job.store->WriteDelta(job.epoch, payload);
    const uint64_t nanos = static_cast<uint64_t>(NowNanos() - t0);

    {
      std::lock_guard<std::mutex> lock(mu_);
      TaskState& ts = tasks_[job.task_id];
      if (st.ok()) {
        ts.durable = job.epoch;
        ts.durable_set = true;
      } else {
        ts.wedged = true;
        LOG(ERROR) << "checkpoint write failed for task " << job.task_id << " epoch "
                   << job.epoch << ": " << st.ToString() << " (store wedged)";
      }
      ++ts.processed;
    }
    if (job.on_complete) job.on_complete(st.ok(), st.ok() ? payload.size() : 0, nanos);
    done_cv_.notify_all();
  }
}

}  // namespace dssj::store
