// On-disk framing of the tiered state store (docs/INTERNALS.md §13). Three
// file species live in a task's store directory, all carrying the same
// magic + version + FNV-1a64 checksum + varint-length discipline as the
// stream/migration.cc blobs, so every truncation or bit flip is rejected
// with a clean Status instead of a crash or silent corruption:
//
//   base_<epoch>.ckpt   one checkpoint-file frame; full state image
//   delta_<epoch>.ckpt  one checkpoint-file frame; dirty sets since epoch-1
//   seg_<id>.spill      append-only sequence of segment frames, each one
//                       spilled cold record; readers address frames by
//                       (segment id, byte offset) handles
#ifndef DSSJ_STORE_FORMAT_H_
#define DSSJ_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dssj::store {

/// Checkpoint-file kind byte.
enum class CheckpointKind : uint8_t {
  kBase = 0,
  kDelta = 1,
};

/// Serializes one checkpoint file image: header (magic, version, kind,
/// epoch), FNV-1a64 payload checksum, varint payload length, payload.
void EncodeCheckpointFile(CheckpointKind kind, uint64_t epoch, const std::string& payload,
                          std::string* out);

/// Validates and unwraps a checkpoint file image. Untrusted input is safe:
/// truncated, bit-flipped, wrong-magic or wrong-version bytes are rejected
/// with a descriptive Status; `payload` is filled only on OK.
Status DecodeCheckpointFile(const void* data, size_t size, CheckpointKind* kind,
                            uint64_t* epoch, std::string* payload);

/// Appends one segment frame (magic, checksum, varint length, payload) to
/// `out`, returning the payload length for the caller's handle bookkeeping.
size_t AppendSegmentFrame(const std::string& payload, std::string* out);

/// Reads the segment frame starting at `offset` within a segment file
/// image. On OK fills `payload` and sets `frame_end` to the offset just
/// past the frame (for sequential scans).
Status ReadSegmentFrame(const void* data, size_t size, size_t offset, std::string* payload,
                        size_t* frame_end);

/// File names within a task store directory. Epochs are zero-padded so a
/// lexicographic listing is also epoch-ordered.
std::string BaseFileName(uint64_t epoch);
std::string DeltaFileName(uint64_t epoch);
std::string SegmentFileName(uint32_t segment_id);

/// Parses a store file name; returns false for foreign files. `kind` is 0
/// for base, 1 for delta, 2 for segment; `id` is the epoch or segment id.
bool ParseStoreFileName(const std::string& name, int* kind, uint64_t* id);

/// Whole-file IO. WriteFileAtomic writes to `<path>.tmp` then renames, so
/// a concurrent crash never leaves a half-written file under the final
/// name (torn writes are still detected by the checksums above).
Status WriteFileAtomic(const std::string& path, const std::string& bytes);
Status ReadFileToString(const std::string& path, std::string* out);
/// Appends `bytes` to `path`, creating it if missing.
Status AppendToFile(const std::string& path, const std::string& bytes);

/// Lists the store files in `dir` (file names only, foreign files
/// skipped). Missing directory yields an empty list and OK.
Status ListStoreFiles(const std::string& dir, std::vector<std::string>* names);

/// mkdir -p / rm -rf equivalents used by stores and tests.
Status EnsureDir(const std::string& dir);
Status RemoveTree(const std::string& dir);
Status RemoveFile(const std::string& path);

}  // namespace dssj::store

#endif  // DSSJ_STORE_FORMAT_H_
