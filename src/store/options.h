// Configuration of the tiered state store (docs/INTERNALS.md §13): where
// checkpoint and spill files live, whether checkpoints are written
// synchronously on the task thread or encoded off-thread from a frozen
// view, and how often the delta chain is compacted into a full base image.
#ifndef DSSJ_STORE_OPTIONS_H_
#define DSSJ_STORE_OPTIONS_H_

#include <cstdint>
#include <string>

namespace dssj::store {

/// Checkpoint write discipline. kSync keeps the pre-store behavior: the
/// task thread serializes its full state at every checkpoint boundary and
/// keeps the blob in memory. kAsync freezes a cheap view at the boundary
/// and hands encoding + disk write to the checkpoint service thread; the
/// replay log is truncated only once the write is durable, so a crash at
/// any point recovers from the newest consistent base + delta chain.
enum class CheckpointMode : uint8_t {
  kSync = 0,
  kAsync = 1,
};

struct StoreOptions {
  /// Root directory for checkpoint and spill files. Empty disables the
  /// store entirely (sync in-memory checkpoints, budget eviction instead
  /// of spill). Each task uses `dir`/task_<id>/.
  std::string dir;

  CheckpointMode mode = CheckpointMode::kSync;

  /// Every Nth checkpoint of a task is a full base image; the N-1 between
  /// are deltas (dirty sets only). Larger values shrink steady-state
  /// checkpoint bytes but lengthen the recovery chain.
  uint32_t delta_base_interval = 8;

  /// Fraction of a joiner's max_index_bytes at which cold window state
  /// starts spilling to on-disk segments instead of being budget-evicted.
  /// <= 0 disables spilling (PR 3 eviction behavior).
  double spill_watermark = 0.0;

  /// Rotate spill segment files at this size (per joiner task).
  size_t segment_bytes = 4u << 20;

  bool enabled() const { return !dir.empty(); }
  bool async() const { return enabled() && mode == CheckpointMode::kAsync; }
};

}  // namespace dssj::store

#endif  // DSSJ_STORE_OPTIONS_H_
