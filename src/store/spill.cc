#include "store/spill.h"

#include <algorithm>

#include "common/logging.h"
#include "store/format.h"

namespace dssj::store {

Status SpillStore::Open(const std::string& dir, size_t segment_bytes, GcPolicy gc,
                        std::unique_ptr<SpillStore>* out) {
  DSSJ_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<SpillStore> store(new SpillStore(dir, segment_bytes, gc));
  std::vector<std::string> names;
  DSSJ_RETURN_IF_ERROR(ListStoreFiles(dir, &names));
  uint32_t max_id = 0;
  bool any = false;
  for (const std::string& name : names) {
    int kind = 0;
    uint64_t id = 0;
    if (!ParseStoreFileName(name, &kind, &id) || kind != 2) continue;
    const uint32_t seg_id = static_cast<uint32_t>(id);
    any = true;
    max_id = std::max(max_id, seg_id);
    std::string bytes;
    DSSJ_RETURN_IF_ERROR(ReadFileToString(dir + "/" + name, &bytes));
    Segment seg;
    // Walk frames until the first corrupt one; everything after a torn
    // frame is unreachable (appends are strictly sequential), so the
    // file is truncated to the last intact frame boundary.
    size_t offset = 0;
    std::string payload;
    while (offset < bytes.size()) {
      size_t frame_end = 0;
      if (!ReadSegmentFrame(bytes.data(), bytes.size(), offset, &payload, &frame_end).ok()) {
        break;
      }
      SpillHandle h;
      h.segment = seg_id;
      h.offset = offset;
      h.length = static_cast<uint32_t>(payload.size());
      seg.unclaimed_frames.push_back(h);
      ++seg.unclaimed;
      offset = frame_end;
    }
    if (offset < bytes.size()) {
      bytes.resize(offset);
      DSSJ_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + name, bytes));
    }
    seg.file_bytes = offset;
    seg.sealed = true;  // a new incarnation never appends to inherited segments
    if (seg.unclaimed == 0) {
      DSSJ_RETURN_IF_ERROR(RemoveFile(dir + "/" + name));
      continue;
    }
    store->segments_.emplace(seg_id, std::move(seg));
  }
  store->active_ = any ? max_id + 1 : 0;
  *out = std::move(store);
  return Status::OK();
}

std::string SpillStore::SegmentPath(uint32_t id) const {
  return dir_ + "/" + SegmentFileName(id);
}

Status SpillStore::Append(const std::string& payload, SpillHandle* handle) {
  Segment& seg = segments_[active_];
  if (seg.file_bytes >= segment_bytes_ && seg.file_bytes > 0) {
    seg.sealed = true;
    MaybeRetire(active_, &seg);
    ++active_;
    return Append(payload, handle);
  }
  std::string frame;
  AppendSegmentFrame(payload, &frame);
  Segment& active_seg = segments_[active_];
  const uint64_t offset = active_seg.file_bytes;
  DSSJ_RETURN_IF_ERROR(AppendToFile(SegmentPath(active_), frame));
  active_seg.file_bytes += frame.size();
  ++active_seg.live;
  live_bytes_ += payload.size();
  handle->segment = active_;
  handle->offset = offset;
  handle->length = static_cast<uint32_t>(payload.size());
  return Status::OK();
}

Status SpillStore::Read(const SpillHandle& handle, std::string* payload) const {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) {
    return Status::NotFound("spill segment missing");
  }
  std::string bytes;
  DSSJ_RETURN_IF_ERROR(ReadFileToString(SegmentPath(handle.segment), &bytes));
  DSSJ_RETURN_IF_ERROR(ReadSegmentFrame(bytes.data(), bytes.size(), handle.offset, payload,
                                        /*frame_end=*/nullptr));
  if (payload->size() != handle.length) {
    return Status::InvalidArgument("spill frame length disagrees with handle");
  }
  return Status::OK();
}

void SpillStore::Release(const SpillHandle& handle) {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) return;
  Segment& seg = it->second;
  if (seg.live == 0) return;
  --seg.live;
  live_bytes_ -= std::min<uint64_t>(live_bytes_, handle.length);
  MaybeRetire(handle.segment, &seg);
}

void SpillStore::MaybeRetire(uint32_t id, Segment* seg) {
  if (!seg->sealed || seg->live != 0 || seg->unclaimed != 0 || seg->retired_at != 0) return;
  seg->retired_at = retire_seq_++;
  if (gc_ == GcPolicy::kImmediate) {
    const Status st = RemoveFile(SegmentPath(id));
    if (!st.ok()) LOG(WARNING) << "spill gc: " << st.ToString();
    segments_.erase(id);
  }
}

bool SpillStore::Reref(const SpillHandle& handle) {
  auto it = segments_.find(handle.segment);
  if (it == segments_.end()) return false;
  Segment& seg = it->second;
  auto frame = std::find_if(seg.unclaimed_frames.begin(), seg.unclaimed_frames.end(),
                            [&](const SpillHandle& h) {
                              return h.offset == handle.offset && h.length == handle.length;
                            });
  if (frame == seg.unclaimed_frames.end()) return false;
  seg.unclaimed_frames.erase(frame);
  --seg.unclaimed;
  ++seg.live;
  live_bytes_ += handle.length;
  return true;
}

Status SpillStore::PurgeUnclaimed() {
  std::vector<uint32_t> dead;
  for (auto& [id, seg] : segments_) {
    seg.unclaimed = 0;
    seg.unclaimed_frames.clear();
    seg.unclaimed_frames.shrink_to_fit();
    if (seg.sealed && seg.live == 0 && seg.retired_at == 0) {
      seg.retired_at = retire_seq_++;
      dead.push_back(id);
    }
  }
  for (uint32_t id : dead) {
    DSSJ_RETURN_IF_ERROR(RemoveFile(SegmentPath(id)));
    segments_.erase(id);
  }
  return Status::OK();
}

Status SpillStore::DeleteRetiredBefore(uint64_t mark) {
  std::vector<uint32_t> dead;
  for (const auto& [id, seg] : segments_) {
    if (seg.retired_at != 0 && seg.retired_at < mark) dead.push_back(id);
  }
  for (uint32_t id : dead) {
    DSSJ_RETURN_IF_ERROR(RemoveFile(SegmentPath(id)));
    segments_.erase(id);
  }
  return Status::OK();
}

}  // namespace dssj::store
