#include "store/format.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/hash.h"
#include "common/serialize.h"

namespace dssj::store {
namespace {

// "DSST" / "DSSG" little-endian; distinct magics keep a checkpoint file
// from ever parsing as a spill segment (and vice versa) even before the
// checksum runs.
constexpr uint32_t kCheckpointMagic = 0x54535344u;
constexpr uint32_t kSegmentMagic = 0x47535344u;
constexpr uint16_t kVersion = 1;

namespace fs = std::filesystem;

}  // namespace

void EncodeCheckpointFile(CheckpointKind kind, uint64_t epoch, const std::string& payload,
                          std::string* out) {
  BinaryWriter w(out);
  w.WriteU32(kCheckpointMagic);
  w.WriteU16(kVersion);
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteU64(epoch);
  w.WriteU64(Fnv1a64(payload.data(), payload.size()));
  w.WriteVarint(payload.size());
  out->append(payload);
}

Status DecodeCheckpointFile(const void* data, size_t size, CheckpointKind* kind,
                            uint64_t* epoch, std::string* payload) {
  SafeBinaryReader r(static_cast<const char*>(data), size);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t kind_byte = 0;
  uint64_t ep = 0, checksum = 0;
  if (!r.ReadU32(&magic) || magic != kCheckpointMagic) {
    return Status::InvalidArgument("checkpoint file: bad magic");
  }
  if (!r.ReadU16(&version) || version != kVersion) {
    return Status::InvalidArgument("checkpoint file: unsupported version");
  }
  if (!r.ReadU8(&kind_byte) || kind_byte > 1) {
    return Status::InvalidArgument("checkpoint file: bad kind byte");
  }
  if (!r.ReadU64(&ep) || !r.ReadU64(&checksum)) {
    return Status::InvalidArgument("checkpoint file: truncated header");
  }
  uint64_t len = 0;
  if (!r.ReadVarint(&len) || len != r.remaining()) {
    return Status::InvalidArgument("checkpoint file: length mismatch");
  }
  const char* body = nullptr;
  size_t body_size = 0;
  if (!r.ReadSpan(&body, &body_size, len)) {
    return Status::InvalidArgument("checkpoint file: truncated payload");
  }
  if (Fnv1a64(body, body_size) != checksum) {
    return Status::InvalidArgument("checkpoint file: checksum mismatch");
  }
  *kind = static_cast<CheckpointKind>(kind_byte);
  *epoch = ep;
  payload->assign(body, body_size);
  return Status::OK();
}

size_t AppendSegmentFrame(const std::string& payload, std::string* out) {
  BinaryWriter w(out);
  w.WriteU32(kSegmentMagic);
  w.WriteU64(Fnv1a64(payload.data(), payload.size()));
  w.WriteVarint(payload.size());
  out->append(payload);
  return payload.size();
}

Status ReadSegmentFrame(const void* data, size_t size, size_t offset, std::string* payload,
                        size_t* frame_end) {
  if (offset > size) return Status::OutOfRange("segment frame: offset past end");
  const char* base = static_cast<const char*>(data);
  SafeBinaryReader r(base + offset, size - offset);
  uint32_t magic = 0;
  uint64_t checksum = 0, len = 0;
  if (!r.ReadU32(&magic) || magic != kSegmentMagic) {
    return Status::InvalidArgument("segment frame: bad magic");
  }
  if (!r.ReadU64(&checksum) || !r.ReadVarint(&len)) {
    return Status::InvalidArgument("segment frame: truncated header");
  }
  const char* body = nullptr;
  size_t body_size = 0;
  if (!r.ReadSpan(&body, &body_size, len)) {
    return Status::InvalidArgument("segment frame: truncated payload");
  }
  if (Fnv1a64(body, body_size) != checksum) {
    return Status::InvalidArgument("segment frame: checksum mismatch");
  }
  payload->assign(body, body_size);
  if (frame_end != nullptr) *frame_end = size - r.remaining();
  return Status::OK();
}

std::string BaseFileName(uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "base_%020llu.ckpt", static_cast<unsigned long long>(epoch));
  return buf;
}

std::string DeltaFileName(uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "delta_%020llu.ckpt", static_cast<unsigned long long>(epoch));
  return buf;
}

std::string SegmentFileName(uint32_t segment_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg_%06u.spill", segment_id);
  return buf;
}

bool ParseStoreFileName(const std::string& name, int* kind, uint64_t* id) {
  unsigned long long v = 0;
  char tail = 0;
  if (std::sscanf(name.c_str(), "base_%20llu.ckp%c", &v, &tail) == 2 && tail == 't' &&
      name == BaseFileName(v)) {
    *kind = 0;
    *id = v;
    return true;
  }
  if (std::sscanf(name.c_str(), "delta_%20llu.ckp%c", &v, &tail) == 2 && tail == 't' &&
      name == DeltaFileName(v)) {
    *kind = 1;
    *id = v;
    return true;
  }
  if (std::sscanf(name.c_str(), "seg_%llu.spil%c", &v, &tail) == 2 && tail == 'l' &&
      v <= 0xffffffffull && name == SegmentFileName(static_cast<uint32_t>(v))) {
    *kind = 2;
    *id = v;
    return true;
  }
  return false;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp + " for writing");
  const size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::Internal("read error on " + path);
  return Status::OK();
}

Status AppendToFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::Internal("cannot open " + path + " for append");
  const size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    return Status::Internal("short append to " + path);
  }
  return Status::OK();
}

Status ListStoreFiles(const std::string& dir, std::vector<std::string>* names) {
  names->clear();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return Status::OK();
    return Status::Internal("cannot list " + dir + ": " + ec.message());
  }
  for (const fs::directory_entry& e : it) {
    int kind = 0;
    uint64_t id = 0;
    const std::string name = e.path().filename().string();
    if (ParseStoreFileName(name, &kind, &id)) names->push_back(name);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create " + dir + ": " + ec.message());
  return Status::OK();
}

Status RemoveTree(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::Internal("cannot remove " + dir + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::Internal("cannot remove " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace dssj::store
