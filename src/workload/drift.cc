#include "workload/drift.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dssj {

DriftingGenerator::DriftingGenerator(const DriftOptions& options)
    : options_(options), inner_(options.base) {
  CHECK_GE(options_.drift_records, 1u);
}

double DriftingGenerator::Progress() const {
  return std::min(1.0, static_cast<double>(produced_) /
                           static_cast<double>(options_.drift_records));
}

RecordPtr DriftingGenerator::Next() {
  const double p = Progress();
  if (options_.end_length_mean > 0.0) {
    LengthModel model = options_.base.length;
    model.mean = options_.base.length.mean +
                 (options_.end_length_mean - options_.base.length.mean) * p;
    // Keep the bounds wide enough for the drifted mean.
    model.max_length =
        std::max(model.max_length, static_cast<size_t>(std::ceil(model.mean * 4)));
    inner_.set_length_model(model);
  }
  if (options_.token_rotation > 0) {
    inner_.set_token_rotation(
        static_cast<uint64_t>(p * static_cast<double>(options_.token_rotation)));
  }
  ++produced_;
  return inner_.Next();
}

std::vector<RecordPtr> DriftingGenerator::Generate(size_t n) {
  std::vector<RecordPtr> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) records.push_back(Next());
  return records;
}

}  // namespace dssj
