#ifndef DSSJ_WORKLOAD_GENERATOR_H_
#define DSSJ_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/random.h"
#include "text/record.h"

namespace dssj {

/// Record-length distribution of a synthetic workload.
struct LengthModel {
  enum class Kind { kUniform, kLogNormal, kNormal };

  Kind kind = Kind::kUniform;
  double mean = 10.0;    ///< arithmetic mean (kLogNormal/kNormal)
  double sigma = 0.5;    ///< log-space sigma (kLogNormal) or stddev (kNormal)
  size_t min_length = 1;
  size_t max_length = 64;

  static LengthModel Uniform(size_t min_len, size_t max_len) {
    LengthModel m;
    m.kind = Kind::kUniform;
    m.min_length = min_len;
    m.max_length = max_len;
    return m;
  }
  static LengthModel LogNormal(double mean, double sigma, size_t min_len, size_t max_len) {
    LengthModel m{Kind::kLogNormal, mean, sigma, min_len, max_len};
    return m;
  }
  static LengthModel Normal(double mean, double stddev, size_t min_len, size_t max_len) {
    LengthModel m{Kind::kNormal, mean, stddev, min_len, max_len};
    return m;
  }

  size_t Sample(Rng& rng) const;
};

/// Parameters of the synthetic stream generator. Token ids are assigned so
/// that *smaller id = rarer token*, matching the frequency-ordered
/// dictionaries produced from real corpora (prefix filtering depends on
/// that order being meaningful).
struct WorkloadOptions {
  uint64_t token_universe = 1u << 20;
  /// Zipf exponent of token popularity (0 = uniform; ~1 = natural text).
  double zipf_skew = 0.9;
  LengthModel length = LengthModel::LogNormal(10.0, 0.6, 1, 100);

  /// Fraction of records generated as near-duplicates of a recent record —
  /// the knob controlling join-result density and bundle opportunities.
  double duplicate_fraction = 0.2;
  /// When cloning, each token is independently replaced with probability
  /// `mutation_rate` (plus a 50% chance of one extra token add/drop).
  double mutation_rate = 0.08;
  /// Near-duplicates copy a record among the last `dup_locality` generated,
  /// so partners fall inside realistic stream windows.
  size_t dup_locality = 10000;

  /// Stream-time spacing between consecutive records (drives time windows).
  int64_t timestamp_step_us = 1000;

  uint64_t seed = 42;
};

/// Statistical profiles matching the corpora customarily used to evaluate
/// set-similarity joins (see DESIGN.md §2 on this substitution).
enum class DatasetPreset { kAol, kTweet, kEnron, kDblp };
const char* DatasetPresetName(DatasetPreset preset);
WorkloadOptions PresetOptions(DatasetPreset preset);

/// Deterministic synthetic stream generator: equal options produce equal
/// streams on every platform. Records carry seq = position and timestamps
/// spaced by timestamp_step_us.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options);

  /// Generates the next record of the stream.
  RecordPtr Next();

  /// Generates the next `n` records.
  std::vector<RecordPtr> Generate(size_t n);

  /// Replaces the length model for records generated from now on (used by
  /// DriftingGenerator to model non-stationary streams).
  void set_length_model(const LengthModel& model) { options_.length = model; }

  /// Rotates the token-id mapping: sampled ids shift by `rotation` mod the
  /// universe, moving which tokens are popular (topic drift).
  void set_token_rotation(uint64_t rotation) { token_rotation_ = rotation; }

  const WorkloadOptions& options() const { return options_; }

 private:
  std::vector<TokenId> FreshTokens(size_t target_length);
  std::vector<TokenId> MutateTokens(const std::vector<TokenId>& base);
  TokenId SampleToken();

  WorkloadOptions options_;
  Rng rng_;
  uint64_t next_seq_ = 0;
  uint64_t token_rotation_ = 0;
  ZipfDistribution zipf_;
  std::deque<std::vector<TokenId>> recent_;  ///< clone sources (bounded)
};

}  // namespace dssj

#endif  // DSSJ_WORKLOAD_GENERATOR_H_
