#ifndef DSSJ_WORKLOAD_DRIFT_H_
#define DSSJ_WORKLOAD_DRIFT_H_

#include <cstdint>
#include <vector>

#include "workload/generator.h"

namespace dssj {

/// Non-stationary stream generator: the record-length distribution and the
/// token-popularity mapping drift over the stream's lifetime. Exercises
/// the repartitioning advisor — a static length partition planned from the
/// stream's head degrades as the distribution moves.
struct DriftOptions {
  WorkloadOptions base;

  /// Mean record length moves linearly from base.length.mean to
  /// end_length_mean over `drift_records` records (then stays).
  double end_length_mean = 0.0;  ///< 0 = no length drift
  /// The token-id mapping rotates by this many positions over the drift,
  /// shifting which tokens are popular (topic drift).
  uint64_t token_rotation = 0;
  size_t drift_records = 100000;
};

class DriftingGenerator {
 public:
  explicit DriftingGenerator(const DriftOptions& options);

  RecordPtr Next();
  std::vector<RecordPtr> Generate(size_t n);

  /// Drift progress in [0, 1] at the current position.
  double Progress() const;

 private:
  DriftOptions options_;
  WorkloadGenerator inner_;
  uint64_t produced_ = 0;
};

}  // namespace dssj

#endif  // DSSJ_WORKLOAD_DRIFT_H_
