#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dssj {

size_t LengthModel::Sample(Rng& rng) const {
  CHECK_GE(max_length, min_length);
  double value = 0.0;
  switch (kind) {
    case Kind::kUniform:
      return static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(min_length), static_cast<int64_t>(max_length)));
    case Kind::kLogNormal: {
      // Parameterize so that E[length] == mean: mu = ln(mean) - sigma²/2.
      const double mu = std::log(std::max(1.0, mean)) - 0.5 * sigma * sigma;
      value = std::exp(mu + sigma * rng.Gaussian());
      break;
    }
    case Kind::kNormal:
      value = mean + sigma * rng.Gaussian();
      break;
  }
  value = std::round(value);
  value = std::max(value, static_cast<double>(min_length));
  value = std::min(value, static_cast<double>(max_length));
  return static_cast<size_t>(value);
}

const char* DatasetPresetName(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kAol:
      return "AOL";
    case DatasetPreset::kTweet:
      return "TWEET";
    case DatasetPreset::kEnron:
      return "ENRON";
    case DatasetPreset::kDblp:
      return "DBLP";
  }
  return "unknown";
}

WorkloadOptions PresetOptions(DatasetPreset preset) {
  WorkloadOptions o;
  switch (preset) {
    case DatasetPreset::kAol:
      // Web-search queries: very short, huge vocabulary, strong skew.
      o.token_universe = 1u << 19;
      o.zipf_skew = 1.0;
      o.length = LengthModel::LogNormal(3.0, 0.55, 1, 20);
      o.duplicate_fraction = 0.30;  // queries repeat heavily
      o.mutation_rate = 0.15;
      break;
    case DatasetPreset::kTweet:
      // Micro-blog posts: short-to-medium, moderate skew, many near-dups
      // (retweets).
      o.token_universe = 1u << 19;
      o.zipf_skew = 0.85;
      o.length = LengthModel::LogNormal(11.0, 0.45, 2, 40);
      o.duplicate_fraction = 0.25;
      o.mutation_rate = 0.10;
      break;
    case DatasetPreset::kEnron:
      // E-mail bodies: long records, wide length spread.
      o.token_universe = 1u << 18;
      o.zipf_skew = 0.8;
      o.length = LengthModel::LogNormal(90.0, 0.8, 10, 1500);
      o.duplicate_fraction = 0.15;  // forwarded threads
      o.mutation_rate = 0.05;
      break;
    case DatasetPreset::kDblp:
      // Paper titles: short-to-medium, mild skew, few near-dups.
      o.token_universe = 1u << 18;
      o.zipf_skew = 0.7;
      o.length = LengthModel::LogNormal(10.0, 0.35, 3, 30);
      o.duplicate_fraction = 0.08;
      o.mutation_rate = 0.12;
      break;
  }
  return o;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.token_universe, options.zipf_skew) {
  CHECK_GE(options_.token_universe, 1u);
  CHECK_GE(options_.duplicate_fraction, 0.0);
  CHECK_LE(options_.duplicate_fraction, 1.0);
}

TokenId WorkloadGenerator::SampleToken() {
  // Zipf rank 0 is most frequent; invert so that small ids are rare,
  // giving the frequency-ascending global token order prefix filtering
  // expects.
  const uint64_t rank = zipf_.Sample(rng_);
  return static_cast<TokenId>((options_.token_universe - 1 - rank + token_rotation_) %
                              options_.token_universe);
}

std::vector<TokenId> WorkloadGenerator::FreshTokens(size_t target_length) {
  std::vector<TokenId> tokens;
  tokens.reserve(target_length);
  // Collect distinct tokens; cap the attempts so adversarial configs
  // (universe smaller than length) terminate.
  size_t attempts = 0;
  const size_t max_attempts = target_length * 20 + 64;
  while (tokens.size() < target_length && attempts < max_attempts) {
    ++attempts;
    const TokenId t = SampleToken();
    if (std::find(tokens.begin(), tokens.end(), t) == tokens.end()) tokens.push_back(t);
  }
  NormalizeTokens(tokens);
  return tokens;
}

std::vector<TokenId> WorkloadGenerator::MutateTokens(const std::vector<TokenId>& base) {
  std::vector<TokenId> tokens;
  tokens.reserve(base.size() + 1);
  for (const TokenId t : base) {
    if (rng_.Bernoulli(options_.mutation_rate)) {
      tokens.push_back(SampleToken());  // substitution
    } else {
      tokens.push_back(t);
    }
  }
  if (rng_.Bernoulli(0.5)) {
    if (rng_.Bernoulli(0.5) || tokens.size() < 2) {
      tokens.push_back(SampleToken());  // insertion
    } else {
      tokens.erase(tokens.begin() +
                   static_cast<ptrdiff_t>(rng_.Uniform(tokens.size())));  // deletion
    }
  }
  NormalizeTokens(tokens);
  return tokens;
}

RecordPtr WorkloadGenerator::Next() {
  std::vector<TokenId> tokens;
  if (!recent_.empty() && rng_.Bernoulli(options_.duplicate_fraction)) {
    const size_t pick = rng_.Uniform(recent_.size());
    tokens = MutateTokens(recent_[pick]);
  } else {
    tokens = FreshTokens(options_.length.Sample(rng_));
  }
  if (options_.dup_locality > 0) {
    recent_.push_back(tokens);
    if (recent_.size() > options_.dup_locality) recent_.pop_front();
  }
  const uint64_t seq = next_seq_++;
  return std::make_shared<const Record>(
      /*id=*/seq, seq, static_cast<int64_t>(seq) * options_.timestamp_step_us,
      std::move(tokens));
}

std::vector<RecordPtr> WorkloadGenerator::Generate(size_t n) {
  std::vector<RecordPtr> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) records.push_back(Next());
  return records;
}

}  // namespace dssj
