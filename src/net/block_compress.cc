#include "net/block_compress.h"

#include <cstdint>
#include <cstring>

namespace dssj::net {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t Hash32(uint32_t v) {
  // Fibonacci hashing of the 4-byte window; top bits index the table.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutLen(size_t len, std::string* out) {
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

void EmitSequence(const char* lit, size_t nlit, size_t offset, size_t match,
                  std::string* out) {
  const size_t lit_nib = nlit < 15 ? nlit : 15;
  const size_t match_code = match == 0 ? 0 : match - kMinMatch;
  const size_t match_nib = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) PutLen(nlit - 15, out);
  out->append(lit, nlit);
  if (match == 0) return;  // final literal-only sequence
  const uint16_t off16 = static_cast<uint16_t>(offset);
  out->push_back(static_cast<char>(off16 & 0xff));
  out->push_back(static_cast<char>(off16 >> 8));
  if (match_nib == 15) PutLen(match_code - 15, out);
}

}  // namespace

void BlockCompress(const char* in, size_t n, std::string* out) {
  out->reserve(out->size() + n / 2 + 16);
  // Candidate positions of recently seen 4-byte windows. Positions are
  // stored +1 so 0 means "empty"; stale entries are filtered by the offset
  // bound and the content check.
  uint32_t table[1u << kHashBits] = {0};
  size_t anchor = 0;
  size_t i = 0;
  // Stop probing once fewer than kMinMatch bytes remain (nothing left to
  // match); the tail goes out as the final literal run.
  while (i + kMinMatch <= n) {
    const uint32_t window = Load32(in + i);
    uint32_t& slot = table[Hash32(window)];
    const size_t cand = slot == 0 ? SIZE_MAX : slot - 1;
    slot = static_cast<uint32_t>(i + 1);
    if (cand == SIZE_MAX || i - cand > kMaxOffset || Load32(in + cand) != window) {
      ++i;
      continue;
    }
    size_t match = kMinMatch;
    while (i + match < n && in[cand + match] == in[i + match]) ++match;
    EmitSequence(in + anchor, i - anchor, i - cand, match, out);
    i += match;
    anchor = i;
  }
  EmitSequence(in + anchor, n - anchor, 0, 0, out);
}

bool BlockDecompress(const char* in, size_t n, char* out, size_t raw_len) {
  const char* ip = in;
  const char* const iend = in + n;
  size_t op = 0;

  const auto read_len = [&](size_t base) -> size_t {
    size_t len = base;
    if (base == 15) {
      uint8_t b;
      do {
        if (ip == iend) return SIZE_MAX;
        b = static_cast<uint8_t>(*ip++);
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip != iend) {
    const uint8_t token = static_cast<uint8_t>(*ip++);
    const size_t nlit = read_len(token >> 4);
    if (nlit == SIZE_MAX) return false;
    if (nlit > static_cast<size_t>(iend - ip) || nlit > raw_len - op) return false;
    std::memcpy(out + op, ip, nlit);
    ip += nlit;
    op += nlit;
    if (ip == iend) {
      // Final sequence: literals only; its match nibble must be 0 (a lying
      // nibble would promise a match the input cannot deliver).
      if ((token & 0x0f) != 0) return false;
      break;
    }
    if (iend - ip < 2) return false;
    const size_t offset = static_cast<uint8_t>(ip[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(ip[1])) << 8);
    ip += 2;
    if (offset == 0 || offset > op) return false;
    const size_t match_code = read_len(token & 0x0f);
    if (match_code == SIZE_MAX) return false;
    const size_t match = match_code + kMinMatch;
    if (match > raw_len - op) return false;
    // Byte-wise copy: matches may overlap their own output (offset < match
    // length encodes a run).
    const char* src = out + op - offset;
    for (size_t k = 0; k < match; ++k) out[op + k] = src[k];
    op += match;
  }
  return op == raw_len;
}

}  // namespace dssj::net
