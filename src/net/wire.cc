#include "net/wire.h"

#include <cstring>
#include <variant>

#include "common/logging.h"
#include "common/serialize.h"

namespace dssj::net {
namespace {

// Per-field tags inside an encoded tuple.
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;
constexpr uint8_t kTagPayload = 3;
constexpr uint8_t kTagNullPayload = 4;

/// Reserves the length prefix, returning the offset to patch once the frame
/// body is complete.
size_t BeginFrame(FrameType type, std::string* out) {
  const size_t len_at = out->size();
  BinaryWriter w(out);
  w.WriteU32(0);  // patched by EndFrame
  w.WriteU8(static_cast<uint8_t>(type));
  return len_at;
}

void EndFrame(size_t len_at, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(out->size() - len_at - sizeof(uint32_t));
  std::memcpy(out->data() + len_at, &len, sizeof(len));
}

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Body decoders. Each gets a reader scoped to exactly the frame body (type
/// byte already consumed) and must consume it fully — trailing bytes are a
/// framing error.
bool ParseHello(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!r.ReadU32(&magic) || !r.ReadU16(&version) || !r.ReadU16(&frame->rank)) {
    return SetError(error, "truncated HELLO frame");
  }
  if (magic != kWireMagic) return SetError(error, "bad magic in HELLO (not a dssj peer?)");
  if (version != kWireVersion) {
    return SetError(error, "wire version mismatch: peer " + std::to_string(version) +
                               ", local " + std::to_string(kWireVersion));
  }
  return true;
}

bool ParseData(SafeBinaryReader& r, const PayloadCodec* codec, Frame* frame,
               std::string* error) {
  int64_t source_task = 0;
  uint32_t count = 0;
  {
    uint32_t src_u = 0;
    uint32_t dst_u = 0;
    if (!r.ReadU32(&src_u) || !r.ReadU32(&dst_u) || !r.ReadU32(&count)) {
      return SetError(error, "truncated DATA header");
    }
    source_task = static_cast<int32_t>(src_u);
    frame->dst_task = static_cast<int32_t>(dst_u);
  }
  // Each envelope needs at least its link_seq (8) plus the tuple's
  // payload_bytes + num_fields header (8): a cheap bound that stops a
  // corrupt count from driving a huge reserve.
  if (static_cast<uint64_t>(count) * 16 > r.remaining()) {
    return SetError(error, "DATA count exceeds frame size");
  }
  frame->envelopes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    stream::Envelope env;
    env.source_task = static_cast<int32_t>(source_task);
    if (!r.ReadU64(&env.link_seq)) return SetError(error, "truncated DATA envelope");
    if (!DecodeTuple(r, codec, &env.tuple)) return SetError(error, "malformed tuple in DATA");
    frame->envelopes.push_back(std::move(env));
  }
  return true;
}

bool ParseEos(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t src_u = 0;
  uint32_t dst_u = 0;
  stream::Envelope env;
  env.eos = true;
  if (!r.ReadU32(&src_u) || !r.ReadU32(&dst_u) || !r.ReadU64(&env.link_seq)) {
    return SetError(error, "truncated EOS frame");
  }
  env.source_task = static_cast<int32_t>(src_u);
  frame->dst_task = static_cast<int32_t>(dst_u);
  frame->envelopes.push_back(std::move(env));
  return true;
}

bool ParseMetrics(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t task_u = 0;
  if (!r.ReadU32(&task_u) || !r.ReadBytesU32(&frame->blob)) {
    return SetError(error, "truncated METRICS frame");
  }
  frame->task_id = static_cast<int32_t>(task_u);
  return true;
}

bool ParseFail(SafeBinaryReader& r, Frame* frame, std::string* error) {
  if (!r.ReadU16(&frame->rank) || !r.ReadBytesU32(&frame->blob)) {
    return SetError(error, "truncated FAIL frame");
  }
  return true;
}

}  // namespace

void EncodeTuple(const stream::Tuple& tuple, const PayloadCodec* codec, std::string* out) {
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(tuple.payload_bytes()));
  w.WriteU32(static_cast<uint32_t>(tuple.num_fields()));
  for (size_t i = 0; i < tuple.num_fields(); ++i) {
    const stream::Value& v = tuple.field(i);
    if (const auto* n = std::get_if<int64_t>(&v)) {
      w.WriteU8(kTagInt);
      w.WriteI64(*n);
    } else if (const auto* d = std::get_if<double>(&v)) {
      uint64_t bits = 0;
      std::memcpy(&bits, d, sizeof(bits));
      w.WriteU8(kTagDouble);
      w.WriteU64(bits);
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      w.WriteU8(kTagString);
      w.WriteBytesU32(*s);
    } else {
      const auto& p = std::get<std::shared_ptr<const void>>(v);
      if (p == nullptr) {
        w.WriteU8(kTagNullPayload);
      } else {
        CHECK(codec != nullptr && codec->encode)
            << "tuple carries an opaque payload but the transport has no payload codec";
        w.WriteU8(kTagPayload);
        const size_t len_at = out->size();
        w.WriteU32(0);  // patched below
        codec->encode(p, out);
        const uint32_t len = static_cast<uint32_t>(out->size() - len_at - sizeof(uint32_t));
        std::memcpy(out->data() + len_at, &len, sizeof(len));
      }
    }
  }
}

bool DecodeTuple(SafeBinaryReader& r, const PayloadCodec* codec, stream::Tuple* out) {
  uint32_t payload_bytes = 0;
  uint32_t num_fields = 0;
  if (!r.ReadU32(&payload_bytes) || !r.ReadU32(&num_fields)) return false;
  if (num_fields > r.remaining()) return false;  // >= 1 tag byte per field
  stream::Tuple tuple;
  for (uint32_t i = 0; i < num_fields; ++i) {
    uint8_t tag = 0;
    if (!r.ReadU8(&tag)) return false;
    switch (tag) {
      case kTagInt: {
        int64_t n = 0;
        if (!r.ReadI64(&n)) return false;
        tuple.Append(n);
        break;
      }
      case kTagDouble: {
        uint64_t bits = 0;
        if (!r.ReadU64(&bits)) return false;
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        tuple.Append(d);
        break;
      }
      case kTagString: {
        std::string s;
        if (!r.ReadBytesU32(&s)) return false;
        tuple.Append(std::move(s));
        break;
      }
      case kTagPayload: {
        const char* data = nullptr;
        size_t size = 0;
        if (!r.ReadSpanU32(&data, &size)) return false;
        if (codec == nullptr || !codec->decode) return false;
        std::shared_ptr<const void> p;
        if (!codec->decode(data, size, &p)) return false;
        tuple.Append(std::move(p));
        break;
      }
      case kTagNullPayload:
        tuple.Append(std::shared_ptr<const void>());
        break;
      default:
        return false;
    }
  }
  tuple.set_payload_bytes(payload_bytes);
  *out = std::move(tuple);
  return true;
}

void AppendHelloFrame(uint16_t rank, std::string* out) {
  const size_t at = BeginFrame(FrameType::kHello, out);
  BinaryWriter w(out);
  w.WriteU32(kWireMagic);
  w.WriteU16(kWireVersion);
  w.WriteU16(rank);
  EndFrame(at, out);
}

namespace {

void AppendDataFrameRange(int32_t source_task, int32_t dst_task, const stream::Envelope* envs,
                          size_t count, const PayloadCodec* codec, std::string* out) {
  const size_t at = BeginFrame(FrameType::kData, out);
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(source_task));
  w.WriteU32(static_cast<uint32_t>(dst_task));
  w.WriteU32(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    DCHECK(!envs[i].eos) << "EOS markers travel as kEos frames";
    w.WriteU64(envs[i].link_seq);
    EncodeTuple(envs[i].tuple, codec, out);
  }
  EndFrame(at, out);
}

}  // namespace

void AppendDataFrame(int32_t source_task, int32_t dst_task,
                     const std::vector<stream::Envelope>& batch, const PayloadCodec* codec,
                     std::string* out) {
  AppendDataFrameRange(source_task, dst_task, batch.data(), batch.size(), codec, out);
}

void AppendEnvelopeFrames(int32_t dst_task, const std::vector<stream::Envelope>& envs,
                          const PayloadCodec* codec, std::string* out) {
  size_t i = 0;
  while (i < envs.size()) {
    if (envs[i].eos) {
      AppendEosFrame(envs[i].source_task, dst_task, envs[i].link_seq, out);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < envs.size() && !envs[j].eos && envs[j].source_task == envs[i].source_task) ++j;
    AppendDataFrameRange(envs[i].source_task, dst_task, &envs[i], j - i, codec, out);
    i = j;
  }
}

void AppendEosFrame(int32_t source_task, int32_t dst_task, uint64_t final_count,
                    std::string* out) {
  const size_t at = BeginFrame(FrameType::kEos, out);
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(source_task));
  w.WriteU32(static_cast<uint32_t>(dst_task));
  w.WriteU64(final_count);
  EndFrame(at, out);
}

void AppendMetricsFrame(int32_t task_id, const std::string& blob, std::string* out) {
  const size_t at = BeginFrame(FrameType::kMetrics, out);
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(task_id));
  w.WriteBytesU32(blob);
  EndFrame(at, out);
}

void AppendDoneFrame(uint16_t rank, std::string* out) {
  const size_t at = BeginFrame(FrameType::kDone, out);
  BinaryWriter w(out);
  w.WriteU16(rank);
  EndFrame(at, out);
}

void AppendFailFrame(uint16_t rank, const std::string& message, std::string* out) {
  const size_t at = BeginFrame(FrameType::kFail, out);
  BinaryWriter w(out);
  w.WriteU16(rank);
  w.WriteBytesU32(message);
  EndFrame(at, out);
}

ParseStatus ParseFrame(const char* data, size_t size, const PayloadCodec* codec,
                       uint32_t max_frame_bytes, Frame* frame, size_t* consumed,
                       std::string* error) {
  *consumed = 0;
  if (size < sizeof(uint32_t)) return ParseStatus::kNeedMore;
  uint32_t body_len = 0;
  std::memcpy(&body_len, data, sizeof(body_len));
  if (body_len < 1 || body_len > max_frame_bytes) {
    SetError(error, "frame length " + std::to_string(body_len) + " out of range (max " +
                        std::to_string(max_frame_bytes) + ")");
    return ParseStatus::kError;
  }
  if (size < sizeof(uint32_t) + body_len) return ParseStatus::kNeedMore;

  const char* body = data + sizeof(uint32_t);
  SafeBinaryReader r(body + 1, body_len - 1);
  *frame = Frame();
  frame->type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  bool ok = false;
  switch (frame->type) {
    case FrameType::kHello:
      ok = ParseHello(r, frame, error);
      break;
    case FrameType::kData:
      ok = ParseData(r, codec, frame, error);
      break;
    case FrameType::kEos:
      ok = ParseEos(r, frame, error);
      break;
    case FrameType::kMetrics:
      ok = ParseMetrics(r, frame, error);
      break;
    case FrameType::kDone:
      ok = r.ReadU16(&frame->rank) || SetError(error, "truncated DONE frame");
      break;
    case FrameType::kFail:
      ok = ParseFail(r, frame, error);
      break;
    default:
      SetError(error,
               "unknown frame type " + std::to_string(static_cast<int>(frame->type)));
      return ParseStatus::kError;
  }
  if (!ok) return ParseStatus::kError;
  if (!r.AtEnd()) {
    SetError(error, "trailing bytes inside frame body");
    return ParseStatus::kError;
  }
  *consumed = sizeof(uint32_t) + body_len;
  return ParseStatus::kFrame;
}

}  // namespace dssj::net
