#include "net/wire.h"

#include <cstring>
#include <variant>

#include "common/logging.h"
#include "common/serialize.h"
#include "net/block_compress.h"

namespace dssj::net {
namespace {

// Per-field tags inside an encoded tuple.
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;
constexpr uint8_t kTagPayload = 3;
constexpr uint8_t kTagNullPayload = 4;

/// Reserves the length prefix, returning the offset to patch once the frame
/// body is complete.
size_t BeginFrame(FrameType type, std::string* out) {
  const size_t len_at = out->size();
  BinaryWriter w(out);
  w.WriteU32(0);  // patched by EndFrame
  w.WriteU8(static_cast<uint8_t>(type));
  return len_at;
}

void EndFrame(size_t len_at, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(out->size() - len_at - sizeof(uint32_t));
  std::memcpy(out->data() + len_at, &len, sizeof(len));
}

bool SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// The tuple section of a kData frame in `delta` layout (also the
/// pre-compression plaintext of `delta+lz`): per envelope a link_seq —
/// first one a plain varint, the rest zigzag gaps to the previous
/// envelope — then the delta-coded tuple.
void EncodeDeltaSection(const stream::Envelope* envs, size_t count,
                        const PayloadCodec* codec, std::string* out) {
  BinaryWriter w(out);
  uint64_t prev_seq = 0;
  for (size_t i = 0; i < count; ++i) {
    DCHECK(!envs[i].eos) << "EOS markers travel as kEos frames";
    const uint64_t seq = envs[i].link_seq;
    if (i == 0) {
      w.WriteVarint(seq);
    } else {
      w.WriteVarintI64(static_cast<int64_t>(seq - prev_seq));
    }
    prev_seq = seq;
    EncodeTuple(WireCodec::kDelta, envs[i].tuple, codec, out);
  }
}

/// Decodes a tuple section (either layout) into frame->envelopes. `r` must
/// be scoped to exactly the section bytes and is consumed fully.
bool ParseTupleSection(WireCodec wire, SafeBinaryReader& r, const PayloadCodec* codec,
                       const std::shared_ptr<FrameArena>& arena, int32_t source_task,
                       uint32_t count, Frame* frame, std::string* error) {
  // Cheap per-envelope size floors stop a corrupt count from driving a huge
  // reserve: raw needs link_seq (8) + tuple header (8) per envelope, delta
  // at least one byte each for link_seq / payload_bytes / num_fields.
  const uint64_t floor_per_env = wire == WireCodec::kRaw ? 16 : 3;
  if (static_cast<uint64_t>(count) * floor_per_env > r.remaining()) {
    return SetError(error, "DATA count exceeds frame size");
  }
  frame->envelopes.reserve(count);
  uint64_t prev_seq = 0;
  for (uint32_t i = 0; i < count; ++i) {
    stream::Envelope& env = frame->envelopes.emplace_back();
    env.source_task = source_task;
    if (wire == WireCodec::kRaw) {
      if (!r.ReadU64(&env.link_seq)) return SetError(error, "truncated DATA envelope");
    } else {
      if (i == 0) {
        if (!r.ReadVarint(&env.link_seq)) return SetError(error, "truncated DATA envelope");
      } else {
        int64_t gap = 0;
        if (!r.ReadVarintI64(&gap)) return SetError(error, "truncated DATA envelope");
        env.link_seq = prev_seq + static_cast<uint64_t>(gap);
      }
      prev_seq = env.link_seq;
    }
    if (!DecodeTuple(wire, r, codec, arena, &env.tuple)) {
      return SetError(error, "malformed tuple in DATA");
    }
  }
  if (!r.AtEnd()) return SetError(error, "trailing bytes in DATA tuple section");
  return true;
}

/// Body decoders. Each gets a reader scoped to exactly the frame body (type
/// byte already consumed) and must consume it fully — trailing bytes are a
/// framing error.
bool ParseHello(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t magic = 0;
  uint16_t version = 0;
  if (!r.ReadU32(&magic) || !r.ReadU16(&version) || !r.ReadU16(&frame->rank)) {
    return SetError(error, "truncated HELLO frame");
  }
  if (magic != kWireMagic) return SetError(error, "bad magic in HELLO (not a dssj peer?)");
  if (version != kWireVersion) {
    return SetError(error, "wire version mismatch: peer " + std::to_string(version) +
                               ", local " + std::to_string(kWireVersion));
  }
  return true;
}

bool ParseData(SafeBinaryReader& r, const PayloadCodec* codec, uint32_t max_frame_bytes,
               const std::shared_ptr<FrameArena>& arena, Frame* frame, std::string* error) {
  uint8_t codec_byte = 0;
  int32_t source_task = 0;
  uint32_t count = 0;
  {
    uint32_t src_u = 0;
    uint32_t dst_u = 0;
    if (!r.ReadU8(&codec_byte) || !r.ReadU32(&src_u) || !r.ReadU32(&dst_u) ||
        !r.ReadU32(&count)) {
      return SetError(error, "truncated DATA header");
    }
    source_task = static_cast<int32_t>(src_u);
    frame->dst_task = static_cast<int32_t>(dst_u);
  }
  if (codec_byte > static_cast<uint8_t>(WireCodec::kDeltaLz)) {
    return SetError(error, "unknown wire codec " + std::to_string(codec_byte) + " in DATA");
  }
  const WireCodec wire = static_cast<WireCodec>(codec_byte);

  if (wire != WireCodec::kDeltaLz) {
    return ParseTupleSection(wire, r, codec, arena, source_task, count, frame, error);
  }

  // Compressed section: vu raw_len, vu comp_len, comp_len bytes filling the
  // rest of the body. raw_len is bounded by the frame ceiling *before* any
  // allocation, so a lying header cannot drive memory (decompression bomb).
  uint64_t raw_len = 0;
  uint64_t comp_len = 0;
  if (!r.ReadVarint(&raw_len) || !r.ReadVarint(&comp_len)) {
    return SetError(error, "truncated DATA compression header");
  }
  if (raw_len > max_frame_bytes) {
    return SetError(error, "compressed DATA section declares " + std::to_string(raw_len) +
                               " raw bytes (max " + std::to_string(max_frame_bytes) + ")");
  }
  if (comp_len != r.remaining()) {
    return SetError(error, "compressed DATA section length mismatch");
  }
  const char* comp = nullptr;
  size_t comp_size = 0;
  if (!r.ReadSpan(&comp, &comp_size, comp_len)) {
    return SetError(error, "truncated compressed DATA section");
  }
  const char* section = nullptr;
  std::string local;
  if (comp_len == raw_len) {
    // Stored verbatim (the encoder found the section incompressible).
    section = comp;
  } else {
    char* block = nullptr;
    if (arena != nullptr) {
      block = arena->AllocBlock(raw_len);
    } else {
      local.resize(raw_len);
      block = local.data();
    }
    if (!BlockDecompress(comp, comp_size, block, raw_len)) {
      return SetError(error, "corrupt compressed DATA section");
    }
    section = block;
  }
  SafeBinaryReader sr(section, raw_len);
  return ParseTupleSection(WireCodec::kDelta, sr, codec, arena, source_task, count, frame,
                           error);
}

bool ParseEos(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t src_u = 0;
  uint32_t dst_u = 0;
  stream::Envelope env;
  env.eos = true;
  if (!r.ReadU32(&src_u) || !r.ReadU32(&dst_u) || !r.ReadU64(&env.link_seq)) {
    return SetError(error, "truncated EOS frame");
  }
  env.source_task = static_cast<int32_t>(src_u);
  frame->dst_task = static_cast<int32_t>(dst_u);
  frame->envelopes.push_back(std::move(env));
  return true;
}

bool ParseMetrics(SafeBinaryReader& r, Frame* frame, std::string* error) {
  uint32_t task_u = 0;
  if (!r.ReadU32(&task_u) || !r.ReadBytesU32(&frame->blob)) {
    return SetError(error, "truncated METRICS frame");
  }
  frame->task_id = static_cast<int32_t>(task_u);
  return true;
}

bool ParseFail(SafeBinaryReader& r, Frame* frame, std::string* error) {
  if (!r.ReadU16(&frame->rank) || !r.ReadBytesU32(&frame->blob)) {
    return SetError(error, "truncated FAIL frame");
  }
  return true;
}

/// The (migration_id, task_id, rank) triple shared by all four migration
/// control frames.
bool ParseMigrationHeader(SafeBinaryReader& r, Frame* frame, const char* what,
                          std::string* error) {
  uint32_t task_u = 0;
  if (!r.ReadU32(&frame->migration_id) || !r.ReadU32(&task_u) || !r.ReadU16(&frame->rank)) {
    return SetError(error, std::string("truncated ") + what + " frame");
  }
  frame->task_id = static_cast<int32_t>(task_u);
  return true;
}

bool ParseState(SafeBinaryReader& r, uint32_t max_frame_bytes, Frame* frame,
                std::string* error) {
  if (!ParseMigrationHeader(r, frame, "STATE", error)) return false;
  // Same compressed-section layout (and decompression-bomb guard) as a
  // delta+lz tuple section.
  uint64_t raw_len = 0;
  uint64_t comp_len = 0;
  if (!r.ReadVarint(&raw_len) || !r.ReadVarint(&comp_len)) {
    return SetError(error, "truncated STATE compression header");
  }
  if (raw_len > max_frame_bytes) {
    return SetError(error, "STATE blob declares " + std::to_string(raw_len) +
                               " raw bytes (max " + std::to_string(max_frame_bytes) + ")");
  }
  if (comp_len != r.remaining()) {
    return SetError(error, "STATE compressed length mismatch");
  }
  const char* comp = nullptr;
  size_t comp_size = 0;
  if (!r.ReadSpan(&comp, &comp_size, comp_len)) {
    return SetError(error, "truncated STATE blob");
  }
  if (comp_len == raw_len) {
    frame->blob.assign(comp, comp_size);
    return true;
  }
  frame->blob.resize(raw_len);
  if (!BlockDecompress(comp, comp_size, frame->blob.data(), raw_len)) {
    return SetError(error, "corrupt compressed STATE blob");
  }
  return true;
}

}  // namespace

const char* WireCodecName(WireCodec codec) {
  switch (codec) {
    case WireCodec::kRaw:
      return "raw";
    case WireCodec::kDelta:
      return "delta";
    case WireCodec::kDeltaLz:
      return "delta+lz";
  }
  return "?";
}

bool ParseWireCodec(const std::string& name, WireCodec* out) {
  if (name == "raw") {
    *out = WireCodec::kRaw;
  } else if (name == "delta") {
    *out = WireCodec::kDelta;
  } else if (name == "delta+lz" || name == "delta-lz" || name == "lz") {
    *out = WireCodec::kDeltaLz;
  } else {
    return false;
  }
  return true;
}

void EncodeTuple(WireCodec wire, const stream::Tuple& tuple, const PayloadCodec* codec,
                 std::string* out) {
  DCHECK(wire != WireCodec::kDeltaLz) << "compression wraps whole sections, not tuples";
  const bool delta = wire == WireCodec::kDelta;
  BinaryWriter w(out);
  if (delta) {
    w.WriteVarint(tuple.payload_bytes());
    w.WriteVarint(tuple.num_fields());
  } else {
    w.WriteU32(static_cast<uint32_t>(tuple.payload_bytes()));
    w.WriteU32(static_cast<uint32_t>(tuple.num_fields()));
  }
  for (size_t i = 0; i < tuple.num_fields(); ++i) {
    const stream::Value& v = tuple.field(i);
    if (const auto* n = std::get_if<int64_t>(&v)) {
      w.WriteU8(kTagInt);
      if (delta) {
        w.WriteVarintI64(*n);
      } else {
        w.WriteI64(*n);
      }
    } else if (const auto* d = std::get_if<double>(&v)) {
      uint64_t bits = 0;
      std::memcpy(&bits, d, sizeof(bits));
      w.WriteU8(kTagDouble);
      w.WriteU64(bits);
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      w.WriteU8(kTagString);
      if (delta) {
        w.WriteVarint(s->size());
        out->append(*s);
      } else {
        w.WriteBytesU32(*s);
      }
    } else {
      const auto& p = std::get<std::shared_ptr<const void>>(v);
      if (p == nullptr) {
        w.WriteU8(kTagNullPayload);
      } else {
        CHECK(codec != nullptr && codec->encode)
            << "tuple carries an opaque payload but the transport has no payload codec";
        w.WriteU8(kTagPayload);
        if (delta) {
          // Varint length prefix: encode to scratch first (the length is
          // variable width, so no patch-in-place like the raw path).
          thread_local std::string scratch;
          scratch.clear();
          codec->encode(wire, p, &scratch);
          w.WriteVarint(scratch.size());
          out->append(scratch);
        } else {
          const size_t len_at = out->size();
          w.WriteU32(0);  // patched below
          codec->encode(wire, p, out);
          const uint32_t len = static_cast<uint32_t>(out->size() - len_at - sizeof(uint32_t));
          std::memcpy(out->data() + len_at, &len, sizeof(len));
        }
      }
    }
  }
}

bool DecodeTuple(WireCodec wire, SafeBinaryReader& r, const PayloadCodec* codec,
                 const std::shared_ptr<FrameArena>& arena, stream::Tuple* out) {
  const bool delta = wire == WireCodec::kDelta;
  uint64_t payload_bytes = 0;
  uint64_t num_fields = 0;
  if (delta) {
    if (!r.ReadVarint(&payload_bytes) || !r.ReadVarint(&num_fields)) return false;
  } else {
    uint32_t pb = 0, nf = 0;
    if (!r.ReadU32(&pb) || !r.ReadU32(&nf)) return false;
    payload_bytes = pb;
    num_fields = nf;
  }
  if (num_fields > r.remaining()) return false;  // >= 1 tag byte per field
  // Decodes straight into *out; on failure the caller discards the whole
  // frame, so partial fills never escape.
  stream::Tuple& tuple = *out;
  tuple = stream::Tuple();
  tuple.Reserve(static_cast<size_t>(num_fields));
  for (uint64_t i = 0; i < num_fields; ++i) {
    uint8_t tag = 0;
    if (!r.ReadU8(&tag)) return false;
    switch (tag) {
      case kTagInt: {
        int64_t n = 0;
        if (delta ? !r.ReadVarintI64(&n) : !r.ReadI64(&n)) return false;
        tuple.Append(n);
        break;
      }
      case kTagDouble: {
        uint64_t bits = 0;
        if (!r.ReadU64(&bits)) return false;
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        tuple.Append(d);
        break;
      }
      case kTagString: {
        std::string s;
        if (delta ? !r.ReadBytesVarint(&s) : !r.ReadBytesU32(&s)) return false;
        tuple.Append(std::move(s));
        break;
      }
      case kTagPayload: {
        const char* data = nullptr;
        size_t size = 0;
        if (delta) {
          uint64_t len = 0;
          if (!r.ReadVarint(&len) || !r.ReadSpan(&data, &size, len)) return false;
        } else {
          if (!r.ReadSpanU32(&data, &size)) return false;
        }
        if (codec == nullptr || !codec->decode) return false;
        std::shared_ptr<const void> p;
        if (!codec->decode(wire, data, size, arena, &p)) return false;
        tuple.Append(std::move(p));
        break;
      }
      case kTagNullPayload:
        tuple.Append(std::shared_ptr<const void>());
        break;
      default:
        return false;
    }
  }
  tuple.set_payload_bytes(payload_bytes);
  return true;
}

void AppendHelloFrame(uint16_t rank, std::string* out) {
  const size_t at = BeginFrame(FrameType::kHello, out);
  BinaryWriter w(out);
  w.WriteU32(kWireMagic);
  w.WriteU16(kWireVersion);
  w.WriteU16(rank);
  EndFrame(at, out);
}

namespace {

void AppendDataFrameRange(WireCodec wire, int32_t source_task, int32_t dst_task,
                          const stream::Envelope* envs, size_t count,
                          const PayloadCodec* codec, std::string* out) {
  const size_t at = BeginFrame(FrameType::kData, out);
  BinaryWriter w(out);
  w.WriteU8(static_cast<uint8_t>(wire));
  w.WriteU32(static_cast<uint32_t>(source_task));
  w.WriteU32(static_cast<uint32_t>(dst_task));
  w.WriteU32(static_cast<uint32_t>(count));
  switch (wire) {
    case WireCodec::kRaw:
      for (size_t i = 0; i < count; ++i) {
        DCHECK(!envs[i].eos) << "EOS markers travel as kEos frames";
        w.WriteU64(envs[i].link_seq);
        EncodeTuple(wire, envs[i].tuple, codec, out);
      }
      break;
    case WireCodec::kDelta:
      EncodeDeltaSection(envs, count, codec, out);
      break;
    case WireCodec::kDeltaLz: {
      thread_local std::string section;
      thread_local std::string compressed;
      section.clear();
      compressed.clear();
      EncodeDeltaSection(envs, count, codec, &section);
      BlockCompress(section.data(), section.size(), &compressed);
      w.WriteVarint(section.size());
      // Store the section verbatim when compression does not win;
      // comp_len == raw_len is the decoder's "stored" marker.
      const std::string& body = compressed.size() < section.size() ? compressed : section;
      w.WriteVarint(body.size());
      out->append(body);
      break;
    }
  }
  EndFrame(at, out);
}

}  // namespace

void AppendDataFrame(WireCodec wire, int32_t source_task, int32_t dst_task,
                     const std::vector<stream::Envelope>& batch, const PayloadCodec* codec,
                     std::string* out) {
  AppendDataFrameRange(wire, source_task, dst_task, batch.data(), batch.size(), codec, out);
}

void AppendEnvelopeFrames(WireCodec wire, int32_t dst_task,
                          const std::vector<stream::Envelope>& envs, const PayloadCodec* codec,
                          std::string* out) {
  size_t i = 0;
  while (i < envs.size()) {
    if (envs[i].eos) {
      AppendEosFrame(envs[i].source_task, dst_task, envs[i].link_seq, out);
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < envs.size() && !envs[j].eos && envs[j].source_task == envs[i].source_task) ++j;
    AppendDataFrameRange(wire, envs[i].source_task, dst_task, &envs[i], j - i, codec, out);
    i = j;
  }
}

void AppendEosFrame(int32_t source_task, int32_t dst_task, uint64_t final_count,
                    std::string* out) {
  const size_t at = BeginFrame(FrameType::kEos, out);
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(source_task));
  w.WriteU32(static_cast<uint32_t>(dst_task));
  w.WriteU64(final_count);
  EndFrame(at, out);
}

void AppendMetricsFrame(int32_t task_id, const std::string& blob, std::string* out) {
  const size_t at = BeginFrame(FrameType::kMetrics, out);
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(task_id));
  w.WriteBytesU32(blob);
  EndFrame(at, out);
}

void AppendDoneFrame(uint16_t rank, std::string* out) {
  const size_t at = BeginFrame(FrameType::kDone, out);
  BinaryWriter w(out);
  w.WriteU16(rank);
  EndFrame(at, out);
}

void AppendFailFrame(uint16_t rank, const std::string& message, std::string* out) {
  const size_t at = BeginFrame(FrameType::kFail, out);
  BinaryWriter w(out);
  w.WriteU16(rank);
  w.WriteBytesU32(message);
  EndFrame(at, out);
}

namespace {

void AppendMigrationHeader(FrameType type, uint32_t migration_id, int32_t task_id,
                           uint16_t rank, std::string* out, size_t* at) {
  *at = BeginFrame(type, out);
  BinaryWriter w(out);
  w.WriteU32(migration_id);
  w.WriteU32(static_cast<uint32_t>(task_id));
  w.WriteU16(rank);
}

}  // namespace

void AppendPrepareFrame(uint32_t migration_id, int32_t task_id, uint16_t target_rank,
                        std::string* out) {
  size_t at = 0;
  AppendMigrationHeader(FrameType::kPrepare, migration_id, task_id, target_rank, out, &at);
  EndFrame(at, out);
}

void AppendStateFrame(uint32_t migration_id, int32_t task_id, uint16_t target_rank,
                      const std::string& blob, std::string* out) {
  size_t at = 0;
  AppendMigrationHeader(FrameType::kState, migration_id, task_id, target_rank, out, &at);
  BinaryWriter w(out);
  std::string compressed;
  BlockCompress(blob.data(), blob.size(), &compressed);
  w.WriteVarint(blob.size());
  const std::string& body = compressed.size() < blob.size() ? compressed : blob;
  w.WriteVarint(body.size());
  out->append(body);
  EndFrame(at, out);
}

void AppendHandoffFrame(uint32_t migration_id, int32_t task_id, uint16_t new_rank,
                        std::string* out) {
  size_t at = 0;
  AppendMigrationHeader(FrameType::kHandoff, migration_id, task_id, new_rank, out, &at);
  EndFrame(at, out);
}

void AppendAckFrame(uint32_t migration_id, int32_t task_id, uint16_t new_rank,
                    std::string* out) {
  size_t at = 0;
  AppendMigrationHeader(FrameType::kAck, migration_id, task_id, new_rank, out, &at);
  EndFrame(at, out);
}

ParseStatus ParseFrame(const char* data, size_t size, const PayloadCodec* codec,
                       uint32_t max_frame_bytes, Frame* frame, size_t* consumed,
                       std::string* error, const std::shared_ptr<FrameArena>& arena) {
  *consumed = 0;
  if (size < sizeof(uint32_t)) return ParseStatus::kNeedMore;
  uint32_t body_len = 0;
  std::memcpy(&body_len, data, sizeof(body_len));
  if (body_len < 1 || body_len > max_frame_bytes) {
    SetError(error, "frame length " + std::to_string(body_len) + " out of range (max " +
                        std::to_string(max_frame_bytes) + ")");
    return ParseStatus::kError;
  }
  if (size < sizeof(uint32_t) + body_len) return ParseStatus::kNeedMore;

  const char* body = data + sizeof(uint32_t);
  SafeBinaryReader r(body + 1, body_len - 1);
  frame->Clear();
  frame->type = static_cast<FrameType>(static_cast<uint8_t>(body[0]));
  bool ok = false;
  switch (frame->type) {
    case FrameType::kHello:
      ok = ParseHello(r, frame, error);
      break;
    case FrameType::kData:
      ok = ParseData(r, codec, max_frame_bytes, arena, frame, error);
      break;
    case FrameType::kEos:
      ok = ParseEos(r, frame, error);
      break;
    case FrameType::kMetrics:
      ok = ParseMetrics(r, frame, error);
      break;
    case FrameType::kDone:
      ok = r.ReadU16(&frame->rank) || SetError(error, "truncated DONE frame");
      break;
    case FrameType::kFail:
      ok = ParseFail(r, frame, error);
      break;
    case FrameType::kPrepare:
      ok = ParseMigrationHeader(r, frame, "PREPARE", error);
      break;
    case FrameType::kState:
      ok = ParseState(r, max_frame_bytes, frame, error);
      break;
    case FrameType::kHandoff:
      ok = ParseMigrationHeader(r, frame, "HANDOFF", error);
      break;
    case FrameType::kAck:
      ok = ParseMigrationHeader(r, frame, "ACK", error);
      break;
    default:
      SetError(error,
               "unknown frame type " + std::to_string(static_cast<int>(frame->type)));
      return ParseStatus::kError;
  }
  if (!ok) return ParseStatus::kError;
  if (!r.AtEnd()) {
    SetError(error, "trailing bytes inside frame body");
    return ParseStatus::kError;
  }
  *consumed = sizeof(uint32_t) + body_len;
  return ParseStatus::kFrame;
}

}  // namespace dssj::net
