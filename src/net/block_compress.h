#ifndef DSSJ_NET_BLOCK_COMPRESS_H_
#define DSSJ_NET_BLOCK_COMPRESS_H_

#include <cstddef>
#include <string>

namespace dssj::net {

/// Self-contained LZ77 byte compressor for wire frame sections (the
/// `delta+lz` codec), format-compatible with nothing on purpose — no
/// external dependency, no streaming state, one block per frame.
///
/// Block format (LZ4-style sequences):
///
///   sequence := token literals* (offset match_ext*)?
///   token    := u8, high nibble = literal count, low nibble = match length
///               minus 4; nibble value 15 means "extended": u8 continuation
///               bytes follow (each adds its value; a byte < 255 terminates).
///   offset   := u16 little endian, 1..65535, distance back into the output.
///
/// The final sequence carries literals only (its match nibble is 0 and no
/// offset follows — input simply ends after the literals). Matches are at
/// least 4 bytes and may self-overlap (offset < match length), which is the
/// run-length case.
///
/// Decompression is bomb-proof by contract: the caller pre-declares the
/// exact decompressed size (carried on the wire *outside* the block and
/// bounds-checked against the frame ceiling before any allocation), and
/// BlockDecompress fails unless the block reproduces exactly that many
/// bytes without reading past `in + n` or writing past `out + raw_len`.

/// Worst-case compressed size for `n` input bytes (incompressible input
/// costs the literal-extension overhead).
inline size_t BlockCompressBound(size_t n) { return n + n / 255 + 16; }

/// Appends the compressed block for in[0..n) to *out.
void BlockCompress(const char* in, size_t n, std::string* out);

/// Decompresses a block that must inflate to exactly `raw_len` bytes into
/// `out` (caller-allocated). Returns false on any malformed input: offsets
/// of zero or past the produced prefix, output over- or underrun, or
/// truncated sequences. Never reads outside in[0..n) or writes outside
/// out[0..raw_len).
bool BlockDecompress(const char* in, size_t n, char* out, size_t raw_len);

}  // namespace dssj::net

#endif  // DSSJ_NET_BLOCK_COMPRESS_H_
