#ifndef DSSJ_NET_TRANSPORT_H_
#define DSSJ_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <utility>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/frame_arena.h"
#include "net/wire.h"
#include "stream/channel.h"
#include "stream/queue.h"

namespace dssj::net {

/// One worker's address on the cluster.
struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses a rank-ordered cluster spec "host:port,host:port,...". Rank i
/// listens on the i-th endpoint. Hosts may be names or literal IPs.
StatusOr<std::vector<Endpoint>> ParseClusterSpec(const std::string& spec);

/// Binds `n` ephemeral localhost ports and returns them (then releases the
/// sockets, so a race with other port consumers is possible — test helper,
/// not production logic). Returns an empty vector when sockets are
/// unavailable (sandboxed runner); callers skip in that case.
std::vector<uint16_t> PickFreePorts(int n);

/// Single-process transport that still exercises the wire format: the
/// topology places tasks on `num_workers` simulated workers, and every
/// cross-worker delivery is encoded to frame bytes, re-parsed, and handed
/// back through the inbound sink. hosts_all_tasks() is true, so one process
/// hosts everything — this is the reference for "what does serialization
/// cost" (bench_communication) and the bridge between the simulated
/// remote_byte_cost model and real sockets.
class LoopbackTransport final : public stream::Transport {
 public:
  /// `wire` picks the tuple-section coding for every frame this transport
  /// encodes; `arena_pool_capacity` bounds the recycled frame-arena free
  /// list (0 = never recycle, the ASan-friendly borrow-test mode).
  LoopbackTransport(int num_workers, PayloadCodec codec,
                    WireCodec wire = WireCodec::kDelta, size_t arena_pool_capacity = 8)
      : num_workers_(num_workers),
        codec_(std::move(codec)),
        wire_(wire),
        arena_pool_(arena_pool_capacity) {}

  int local_rank() const override { return 0; }
  int num_ranks() const override { return num_workers_; }
  bool hosts_all_tasks() const override { return true; }

  void Start(const stream::TransportPlan& plan, InboundSink sink,
             FailureSink on_failure) override;
  std::unique_ptr<stream::Channel> OpenChannel(int dst_task) override;
  void InjectDisconnect(int dst_task, int64_t reconnect_delay_micros) override;
  FinishReport Finish(const LocalSummary& local, const MetricsMerge& merge) override;

 private:
  friend class LoopbackChannel;

  const int num_workers_;
  const PayloadCodec codec_;
  const WireCodec wire_;
  FrameArenaPool arena_pool_;
  InboundSink sink_;
  FailureSink on_failure_;
};

struct TcpTransportOptions {
  /// Rank-ordered worker endpoints; cluster.size() is the world size.
  std::vector<Endpoint> cluster;
  /// This process's rank in [0, cluster.size()). Rank 0 is the coordinator:
  /// it aggregates worker metrics and failure reports at Finish.
  int rank = 0;
  /// Optional bind override ("host:port"); defaults to cluster[rank]. Lets
  /// a worker bind 0.0.0.0 while peers dial a routable name.
  std::string listen_override;
  /// Bounded send buffer per peer connection, in frames. A full buffer
  /// blocks the producer — backpressure extends across the wire.
  size_t send_queue_capacity = 1024;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// How long a sender retries dialing a peer (covers workers starting in
  /// any order) before the run is failed.
  int64_t connect_timeout_micros = 30'000'000;
  /// Connect retry schedule: exponential backoff from the initial delay up
  /// to the cap, with deterministic ±jitter (seeded per rank pair and
  /// attempt) so many links dropped at once do not redial in lockstep.
  int64_t connect_backoff_initial_micros = 1'000;
  int64_t connect_backoff_cap_micros = 200'000;
  /// Jitter fraction in [0, 1): each sleep is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter). 0 restores the fixed schedule.
  double connect_backoff_jitter = 0.25;
  /// Coordinator's budget for the end-of-run barrier (workers' DONE frames).
  int64_t finish_timeout_micros = 120'000'000;
  PayloadCodec codec;
  /// Tuple-section coding for frames this rank sends. Receivers decode
  /// whatever the frame's codec byte announces, so ranks may differ.
  WireCodec wire_codec = WireCodec::kDelta;
  /// Recycled frame-arena free list bound for the zero-copy receive path
  /// (0 = never recycle; see FrameArenaPool).
  size_t arena_pool_capacity = 8;
};

/// Real multi-process transport over TCP. Each rank listens on its cluster
/// endpoint; for every directed rank pair that communicates, the producer
/// side dials one unidirectional connection (write-only for the dialer), so
/// a scripted disconnect can close the socket and rely on the kernel
/// delivering everything already written (FIN after data) — no frame is
/// lost across a reconnect. Frames from one rank to one rank share that
/// single connection, which (with per-rank receive ordering across
/// reconnects) preserves per-link FIFO, the invariant the exactly-once
/// layer needs.
class TcpTransport final : public stream::Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  int local_rank() const override { return options_.rank; }
  int num_ranks() const override { return static_cast<int>(options_.cluster.size()); }

  void Start(const stream::TransportPlan& plan, InboundSink sink,
             FailureSink on_failure) override;
  std::unique_ptr<stream::Channel> OpenChannel(int dst_task) override;
  void InjectDisconnect(int dst_task, int64_t reconnect_delay_micros) override;
  FinishReport Finish(const LocalSummary& local, const MetricsMerge& merge) override;

  void UpdateTaskWorker(int dst_task, int new_worker) override;
  void SetControlSink(ControlSink sink) override;
  bool SendControl(int rank, const stream::ControlFrame& frame) override;
  NetStats Stats() const override;

 private:
  friend class TcpChannel;

  /// One frame's bytes queued toward a peer, or (bytes empty,
  /// disconnect_delay_micros >= 0) an in-band marker telling the sender
  /// thread to close the connection and redial after the delay — in-band so
  /// the cut lands exactly between the frames submitted before and after
  /// InjectDisconnect.
  struct OutFrame {
    std::string bytes;
    int64_t disconnect_delay_micros = -1;
  };

  /// Sender half of one directed rank pair: a bounded frame queue drained
  /// by a thread that owns the socket (dial, retry, write, scripted
  /// disconnect).
  struct SenderConn {
    int peer_rank = -1;
    std::unique_ptr<stream::BoundedQueue<OutFrame>> queue;
    std::thread thread;
  };

  SenderConn* GetSender(int peer_rank);
  void SenderLoop(SenderConn* conn);
  void AcceptLoop();
  void ReaderLoop(int fd);
  void HandleFrame(Frame&& frame);
  void FailRun(const std::string& message);
  /// Dials `peer` with retry/backoff until the connect timeout. Returns -1
  /// on timeout/shutdown.
  int DialPeer(int peer_rank);
  bool SendAll(int fd, const char* data, size_t size);
  void CloseSenders();
  void JoinReaders();

  const TcpTransportOptions options_;
  FrameArenaPool arena_pool_;
  /// Task → rank routing. Read on every OpenChannel and mutated by
  /// UpdateTaskWorker mid-run (migration routing flip), hence the mutex;
  /// both paths are cold.
  mutable std::mutex plan_mu_;
  stream::TransportPlan plan_;
  InboundSink sink_;
  FailureSink on_failure_;
  ControlSink control_sink_;

  /// Connection-health counters (Stats()).
  std::atomic<uint64_t> connect_attempts_{0};
  std::atomic<uint64_t> connect_retries_{0};
  std::atomic<uint64_t> reconnects_{0};

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> started_{false};

  std::mutex sender_mu_;  ///< guards senders_ creation
  std::map<int, std::unique_ptr<SenderConn>> senders_;

  /// Reader bookkeeping. A reconnect spawns a fresh reader for the same
  /// peer rank; the new reader waits for the old one to drain to EOF before
  /// delivering, so frames from one rank stay in order across reconnects.
  std::mutex reader_mu_;
  std::condition_variable reader_cv_;
  std::vector<std::thread> reader_threads_;
  std::map<int, int> active_readers_by_rank_;
  int live_readers_ = 0;

  /// End-of-run state collected from peers (coordinator side).
  std::mutex finish_mu_;
  std::condition_variable finish_cv_;
  std::vector<bool> done_;  ///< by rank
  std::vector<std::pair<int, std::string>> remote_metrics_;
  bool remote_failed_ = false;
  std::string remote_failure_;
};

}  // namespace dssj::net

#endif  // DSSJ_NET_TRANSPORT_H_
