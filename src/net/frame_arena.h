#ifndef DSSJ_NET_FRAME_ARENA_H_
#define DSSJ_NET_FRAME_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "text/record.h"

namespace dssj::net {

/// Per-frame memory arena backing the zero-copy receive path. One arena owns
/// everything a parsed frame's tuples point into:
///
///   - bytes():      the raw frame bytes as received (the transport copies or
///                   encodes a complete frame here *before* parsing, so
///                   span-backed views alias stable storage, never the
///                   transport's rolling receive buffer),
///   - AllocBlock(): decompression output for compressed frame sections,
///   - AllocTokens():delta-decoded token arrays,
///   - AllocRecord():the Record objects themselves (deque storage: addresses
///                   are stable while later records are added).
///
/// Lifetime: the transport acquires arenas as shared_ptrs from a
/// FrameArenaPool and hands decoded payloads out as *aliasing* shared_ptrs
/// that own the arena. The arena is therefore pinned until the last borrowed
/// record drops; only then does it return to the pool and Reset() for reuse.
/// Use-after-free on borrowed spans is impossible by construction — the
/// failure mode of holding borrows too long is arena *retention*, which is
/// why index stores detach (see TokenArray's contract in text/record.h).
///
/// Not thread-safe; a frame is parsed by exactly one transport thread.
class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  /// Frame byte storage. The transport appends one or more complete frames
  /// here; parsed views alias this string, so it must not be mutated after
  /// parsing starts.
  std::string& bytes() { return bytes_; }

  /// `n` writable bytes for a decompressed frame section; stable until
  /// Reset().
  char* AllocBlock(size_t n) {
    if (blocks_used_ == blocks_.size()) blocks_.emplace_back();
    std::string& b = blocks_[blocks_used_++];
    b.resize(n);
    return b.data();
  }

  /// Storage for `n` decoded tokens; stable until Reset(). Chunked so a
  /// frame's worth of records shares a handful of allocations that are all
  /// reused across frames.
  TokenId* AllocTokens(size_t n) {
    while (chunk_idx_ < chunks_.size() &&
           chunks_[chunk_idx_].size - chunk_off_ < n) {
      ++chunk_idx_;
      chunk_off_ = 0;
    }
    if (chunk_idx_ == chunks_.size()) {
      const size_t cap = n > kTokenChunk ? n : kTokenChunk;
      chunks_.push_back({std::make_unique<TokenId[]>(cap), cap});
      chunk_off_ = 0;
    }
    TokenId* out = chunks_[chunk_idx_].data.get() + chunk_off_;
    chunk_off_ += n;
    return out;
  }

  /// A Record living in arena storage (deque: growing never moves earlier
  /// records, so aliasing pointers taken mid-frame stay valid).
  Record* AllocRecord() {
    if (records_used_ < records_.size()) return &records_[records_used_++];
    ++records_used_;
    return &records_.emplace_back();
  }

  /// Forgets all frame content but keeps the allocations (steady-state
  /// recycling allocates nothing). Caller must guarantee no borrowed view
  /// into this arena is still alive — the pool's shared_ptr refcount is
  /// that guarantee.
  void Reset() {
    bytes_.clear();
    for (size_t i = 0; i < blocks_used_; ++i) blocks_[i].clear();
    blocks_used_ = 0;
    for (size_t i = 0; i < records_used_ && i < records_.size(); ++i) {
      records_[i] = Record();
    }
    records_used_ = 0;
    chunk_idx_ = 0;
    chunk_off_ = 0;
  }

  size_t MemoryBytes() const {
    size_t total = bytes_.capacity();
    for (const auto& b : blocks_) total += b.capacity();
    for (const auto& c : chunks_) total += c.size * sizeof(TokenId);
    total += records_.size() * sizeof(Record);
    return total;
  }

 private:
  static constexpr size_t kTokenChunk = 4096;

  struct TokenChunk {
    std::unique_ptr<TokenId[]> data;
    size_t size = 0;
  };

  std::string bytes_;
  std::vector<std::string> blocks_;
  size_t blocks_used_ = 0;
  std::deque<Record> records_;
  size_t records_used_ = 0;
  std::vector<TokenChunk> chunks_;
  size_t chunk_idx_ = 0;
  size_t chunk_off_ = 0;
};

/// Thread-safe recycling pool of FrameArenas. Acquire() hands out a
/// shared_ptr whose deleter Reset()s the arena and returns it to the free
/// list once the last reference (including every aliasing payload pointer
/// into it) drops. `max_free` bounds the free list; 0 means *never* recycle
/// — every released arena is freed immediately, which turns any
/// use-after-release of a borrowed span into an ASan-visible heap error
/// (the borrow-lifetime tests run in this mode).
class FrameArenaPool {
 public:
  explicit FrameArenaPool(size_t max_free = 8)
      : state_(std::make_shared<State>(max_free)) {}

  std::shared_ptr<FrameArena> Acquire() {
    std::unique_ptr<FrameArena> arena;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->free.empty()) {
        arena = std::move(state_->free.back());
        state_->free.pop_back();
      }
    }
    if (arena == nullptr) arena = std::make_unique<FrameArena>();
    // The deleter holds the pool *state* (not the pool object): arenas
    // pinned by in-flight records may outlive the transport that made them.
    auto state = state_;
    return std::shared_ptr<FrameArena>(arena.release(), [state](FrameArena* a) {
      a->Reset();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->free.size() < state->max_free) {
          state->free.emplace_back(a);
          return;
        }
      }
      delete a;
    });
  }

 private:
  struct State {
    explicit State(size_t cap) : max_free(cap) {}
    std::mutex mu;
    std::vector<std::unique_ptr<FrameArena>> free;
    size_t max_free;
  };

  std::shared_ptr<State> state_;
};

}  // namespace dssj::net

#endif  // DSSJ_NET_FRAME_ARENA_H_
