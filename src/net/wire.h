#ifndef DSSJ_NET_WIRE_H_
#define DSSJ_NET_WIRE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "stream/channel.h"
#include "stream/value.h"

namespace dssj::net {

/// Wire format for inter-worker links: length-prefixed frames over a byte
/// stream. Every frame is
///
///   [u32 length][u8 type][body...]
///
/// where `length` counts the bytes after itself (type + body). All integers
/// are little endian. The body layout per type:
///
///   kHello:   u32 magic, u16 version, u16 sender rank. First frame on every
///             connection; both sides reject a mismatched magic/version.
///   kData:    i32 source_task, i32 dst_task, u32 count, then `count` tuples
///             of [u64 link_seq][encoded tuple]. Batching amortizes the
///             frame header over the transport batch.
///   kEos:     i32 source_task, i32 dst_task, u64 final link count
///             (Envelope::link_seq semantics for EOS markers).
///   kMetrics: i32 task_id, u32-length-prefixed SerializeTaskCounters blob.
///   kDone:    u16 sender rank. Worker's end-of-run marker: everything this
///             rank will ever send has been sent.
///   kFail:    u16 sender rank, u32-length-prefixed failure message.
///
/// Sequence numbers ride inside kData/kEos bodies, so replay, drop recovery
/// and shed-loss accounting observe exactly the numbers the producer's
/// collector assigned — process boundaries are invisible to them.
enum class FrameType : uint8_t {
  kHello = 1,
  kData = 2,
  kEos = 3,
  kMetrics = 4,
  kDone = 5,
  kFail = 6,
};

inline constexpr uint32_t kWireMagic = 0x314a5344;  // "DSJ1"
inline constexpr uint16_t kWireVersion = 1;

/// Hard ceiling on a single frame's `length` field. A peer announcing more
/// is malformed (or malicious) and the connection is failed rather than
/// letting it drive allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Application codec for opaque tuple payloads (shared_ptr<const void>
/// fields). The stream layer treats payloads as pointers; to cross a process
/// boundary the application supplies the byte encoding (the join topology
/// registers a Record codec). encode appends to *out; decode returns false
/// on malformed bytes.
struct PayloadCodec {
  std::function<void(const std::shared_ptr<const void>& payload, std::string* out)> encode;
  std::function<bool(const char* data, size_t size, std::shared_ptr<const void>* out)> decode;
};

/// Appends one tuple's field encoding (used inside kData bodies):
/// u32 payload_bytes, u32 num_fields, then per field a u8 tag —
/// 0 int64, 1 double (u64 bit cast), 2 string (u32 len + bytes),
/// 3 payload via codec (u32 len + bytes), 4 null payload. Requires a codec
/// when the tuple carries a non-null payload field (CHECK otherwise).
void EncodeTuple(const stream::Tuple& tuple, const PayloadCodec* codec, std::string* out);

/// Decodes one EncodeTuple blob from `r`'s current position. Returns false
/// on truncation, unknown tags, or codec failure.
bool DecodeTuple(SafeBinaryReader& r, const PayloadCodec* codec, stream::Tuple* out);

/// Frame builders. Each appends one complete frame (length prefix included)
/// to *out, so a send buffer concatenates frames directly.
void AppendHelloFrame(uint16_t rank, std::string* out);
void AppendDataFrame(int32_t source_task, int32_t dst_task,
                     const std::vector<stream::Envelope>& batch, const PayloadCodec* codec,
                     std::string* out);
void AppendEosFrame(int32_t source_task, int32_t dst_task, uint64_t final_count,
                    std::string* out);

/// Encodes a mixed envelope batch bound for `dst_task` as a frame sequence:
/// maximal runs of data envelopes sharing a source task become one kData
/// frame, each EOS marker becomes a kEos frame in position. This is what a
/// channel submits per PushBatch.
void AppendEnvelopeFrames(int32_t dst_task, const std::vector<stream::Envelope>& envs,
                          const PayloadCodec* codec, std::string* out);
void AppendMetricsFrame(int32_t task_id, const std::string& blob, std::string* out);
void AppendDoneFrame(uint16_t rank, std::string* out);
void AppendFailFrame(uint16_t rank, const std::string& message, std::string* out);

/// One parsed frame. kData populates `envelopes` (source_task/link_seq set
/// per envelope, eos=false); kEos populates a single EOS envelope.
struct Frame {
  FrameType type = FrameType::kHello;
  uint16_t rank = 0;             ///< kHello / kDone / kFail
  int32_t dst_task = -1;         ///< kData / kEos
  int32_t task_id = -1;          ///< kMetrics
  std::string blob;              ///< kMetrics blob / kFail message
  std::vector<stream::Envelope> envelopes;  ///< kData / kEos
};

enum class ParseStatus {
  kFrame,     ///< one frame decoded; *consumed bytes were used
  kNeedMore,  ///< buffer holds only a frame prefix; read more bytes
  kError,     ///< malformed input; the connection must be failed
};

/// Incremental frame parser over a receive buffer. Examines `size` bytes at
/// `data`; on kFrame sets *consumed to the full frame size (prefix
/// included) and fills *frame. Rejects frames whose announced length
/// exceeds max_frame_bytes, unknown types, truncated bodies, trailing
/// garbage inside a body, and kHello magic/version mismatches (*error gets
/// a description on kError).
ParseStatus ParseFrame(const char* data, size_t size, const PayloadCodec* codec,
                       uint32_t max_frame_bytes, Frame* frame, size_t* consumed,
                       std::string* error);

}  // namespace dssj::net

#endif  // DSSJ_NET_WIRE_H_
