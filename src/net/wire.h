#ifndef DSSJ_NET_WIRE_H_
#define DSSJ_NET_WIRE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "net/frame_arena.h"
#include "stream/channel.h"
#include "stream/value.h"

namespace dssj::net {

/// Wire format for inter-worker links: length-prefixed frames over a byte
/// stream. Every frame is
///
///   [u32 length][u8 type][body...]
///
/// where `length` counts the bytes after itself (type + body). All fixed-
/// width integers are little endian; `vu` below denotes a canonical LEB128
/// varint and `vz` a zigzag-mapped varint (see SafeBinaryReader::ReadVarint
/// for the canonicality rule). The body layout per type:
///
///   kHello:   u32 magic, u16 version, u16 sender rank. First frame on every
///             connection; both sides reject a mismatched magic/version.
///   kData:    u8 wire codec, i32 source_task, i32 dst_task, u32 count,
///             then a tuple section whose layout the codec byte picks (the
///             frame is self-describing — receivers never consult local
///             configuration):
///               raw:      count x [u64 link_seq][raw tuple]
///               delta:    count x [link_seq: first vu, then vz of the gap
///                         to the previous envelope][delta tuple]
///               delta+lz: vu raw_len, vu comp_len, then comp_len bytes —
///                         an LZ block (net/block_compress.h) inflating to
///                         exactly raw_len bytes of `delta` section, or the
///                         section verbatim when comp_len == raw_len (the
///                         encoder stores incompressible sections raw).
///                         raw_len above the frame ceiling is rejected
///                         before any allocation (decompression-bomb guard).
///   kEos:     i32 source_task, i32 dst_task, u64 final link count
///             (Envelope::link_seq semantics for EOS markers).
///   kMetrics: i32 task_id, u32-length-prefixed SerializeTaskCounters blob.
///   kDone:    u16 sender rank. Worker's end-of-run marker: everything this
///             rank will ever send has been sent.
///   kFail:    u16 sender rank, u32-length-prefixed failure message.
///
/// Live-migration control plane (coordinator-driven; see
/// docs/INTERNALS.md §12):
///
///   kPrepare: u32 migration_id, i32 task_id, u16 target rank. Coordinator →
///             source rank: freeze `task_id` at its next sequence boundary
///             and ship its state. Rides the same connection as the task's
///             data frames, so FIFO ordering makes everything before it the
///             exact in-flight gap.
///   kState:   u32 migration_id, i32 task_id, u16 target rank, then
///             vu raw_len, vu comp_len, comp_len bytes — the encoded
///             MigrationState blob (stream/migration.h) compressed as an LZ
///             block exactly like a delta+lz tuple section (comp_len ==
///             raw_len means stored verbatim; raw_len above the frame
///             ceiling is rejected before allocation).
///   kHandoff: u32 migration_id, i32 task_id, u16 new owner rank. Target →
///             coordinator: state restored, executor running.
///   kAck:     u32 migration_id, i32 task_id, u16 new owner rank.
///             Coordinator → source: routing flipped; decommission the
///             frozen incarnation. Duplicate ACKs (reconnect replays) are
///             idempotent by migration_id.
///
/// Sequence numbers ride inside kData/kEos bodies, so replay, drop recovery
/// and shed-loss accounting observe exactly the numbers the producer's
/// collector assigned — process boundaries are invisible to them.
enum class FrameType : uint8_t {
  kHello = 1,
  kData = 2,
  kEos = 3,
  kMetrics = 4,
  kDone = 5,
  kFail = 6,
  kPrepare = 7,
  kState = 8,
  kHandoff = 9,
  kAck = 10,
};

/// Tuple-section coding for kData frames, selectable per transport via
/// --wire_codec. Inside a frame the codec is a self-describing byte, so
/// mixed-codec peers interoperate (each side decodes what it is sent).
///
///   kRaw:     fixed-width fields, token arrays as plain u32 arrays. The
///             v1-equivalent layout; also the zero-copy sweet spot (token
///             arrays alias the frame buffer directly on little-endian
///             hosts).
///   kDelta:   varint lengths/ids everywhere it pays, sorted token arrays
///             delta-coded (gap - 1 per step; strict ascent makes that
///             bijective). The default: the dominant payload bytes are
///             token gaps, which are small.
///   kDeltaLz: kDelta plus a per-frame LZ block over the whole tuple
///             section. Cheapest on the wire, costs a compressor pass.
enum class WireCodec : uint8_t {
  kRaw = 0,
  kDelta = 1,
  kDeltaLz = 2,
};

/// "raw" / "delta" / "delta+lz" (flag spelling).
const char* WireCodecName(WireCodec codec);
bool ParseWireCodec(const std::string& name, WireCodec* out);

inline constexpr uint32_t kWireMagic = 0x314a5344;  // "DSJ1"
inline constexpr uint16_t kWireVersion = 2;

/// Hard ceiling on a single frame's `length` field. A peer announcing more
/// is malformed (or malicious) and the connection is failed rather than
/// letting it drive allocation. Also bounds the declared decompressed size
/// of a delta+lz tuple section.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Application codec for opaque tuple payloads (shared_ptr<const void>
/// fields). The stream layer treats payloads as pointers; to cross a process
/// boundary the application supplies the byte encoding (the join topology
/// registers a Record codec).
///
/// Both callbacks receive the *payload* coding to use, which is kRaw or
/// kDelta (a kDeltaLz frame delta-codes its payloads and compresses on
/// top). encode appends to *out; decode returns false on malformed bytes.
///
/// decode additionally receives the frame arena (may be null). When
/// non-null, `data` points into arena-owned storage and the codec may
/// return a *borrowed* payload — views into `data` or into arena
/// allocations — wrapped in an aliasing shared_ptr that owns the arena, so
/// the backing memory outlives every handed-out pointer. When null, the
/// payload must own all its storage.
struct PayloadCodec {
  std::function<void(WireCodec wire, const std::shared_ptr<const void>& payload,
                     std::string* out)>
      encode;
  std::function<bool(WireCodec wire, const char* data, size_t size,
                     const std::shared_ptr<FrameArena>& arena,
                     std::shared_ptr<const void>* out)>
      decode;
};

/// Appends one tuple's field encoding (used inside kData bodies). For kRaw:
/// u32 payload_bytes, u32 num_fields, then per field a u8 tag —
/// 0 int64, 1 double (u64 bit cast), 2 string (u32 len + bytes),
/// 3 payload via codec (u32 len + bytes), 4 null payload. For kDelta the
/// same tag stream with varint coding: vu payload_bytes, vu num_fields,
/// ints as vz, strings/payloads as vu len + bytes (doubles stay 8 raw
/// bytes — IEEE bits do not varint well). Requires a codec when the tuple
/// carries a non-null payload field (CHECK otherwise). `wire` must be kRaw
/// or kDelta.
void EncodeTuple(WireCodec wire, const stream::Tuple& tuple, const PayloadCodec* codec,
                 std::string* out);

/// Decodes one EncodeTuple blob from `r`'s current position. Returns false
/// on truncation, unknown tags, non-canonical varints, or codec failure.
/// `arena` is forwarded to the payload codec (see PayloadCodec).
bool DecodeTuple(WireCodec wire, SafeBinaryReader& r, const PayloadCodec* codec,
                 const std::shared_ptr<FrameArena>& arena, stream::Tuple* out);

/// Frame builders. Each appends one complete frame (length prefix included)
/// to *out, so a send buffer concatenates frames directly.
void AppendHelloFrame(uint16_t rank, std::string* out);
void AppendDataFrame(WireCodec wire, int32_t source_task, int32_t dst_task,
                     const std::vector<stream::Envelope>& batch, const PayloadCodec* codec,
                     std::string* out);
void AppendEosFrame(int32_t source_task, int32_t dst_task, uint64_t final_count,
                    std::string* out);

/// Encodes a mixed envelope batch bound for `dst_task` as a frame sequence:
/// maximal runs of data envelopes sharing a source task become one kData
/// frame, each EOS marker becomes a kEos frame in position. This is what a
/// channel submits per PushBatch.
void AppendEnvelopeFrames(WireCodec wire, int32_t dst_task,
                          const std::vector<stream::Envelope>& envs, const PayloadCodec* codec,
                          std::string* out);
void AppendMetricsFrame(int32_t task_id, const std::string& blob, std::string* out);
void AppendDoneFrame(uint16_t rank, std::string* out);
void AppendFailFrame(uint16_t rank, const std::string& message, std::string* out);

/// Migration control frames. kState compresses `blob` (an encoded
/// MigrationState) with the block compressor; the other three carry only
/// the (migration_id, task_id, worker) triple.
void AppendPrepareFrame(uint32_t migration_id, int32_t task_id, uint16_t target_rank,
                        std::string* out);
void AppendStateFrame(uint32_t migration_id, int32_t task_id, uint16_t target_rank,
                      const std::string& blob, std::string* out);
void AppendHandoffFrame(uint32_t migration_id, int32_t task_id, uint16_t new_rank,
                        std::string* out);
void AppendAckFrame(uint32_t migration_id, int32_t task_id, uint16_t new_rank,
                    std::string* out);

/// One parsed frame. kData populates `envelopes` (source_task/link_seq set
/// per envelope, eos=false); kEos populates a single EOS envelope.
struct Frame {
  FrameType type = FrameType::kHello;
  uint16_t rank = 0;             ///< kHello / kDone / kFail / migration worker
  int32_t dst_task = -1;         ///< kData / kEos
  int32_t task_id = -1;          ///< kMetrics / kPrepare / kState / kHandoff / kAck
  uint32_t migration_id = 0;     ///< kPrepare / kState / kHandoff / kAck
  std::string blob;              ///< kMetrics blob / kFail message / kState state
  std::vector<stream::Envelope> envelopes;  ///< kData / kEos

  /// Resets to the default-constructed state but keeps the envelope vector's
  /// and blob's capacity, so a Frame reused across a parse loop stops
  /// allocating after the first full-sized kData frame.
  void Clear() {
    type = FrameType::kHello;
    rank = 0;
    dst_task = -1;
    task_id = -1;
    migration_id = 0;
    blob.clear();
    envelopes.clear();
  }
};

enum class ParseStatus {
  kFrame,     ///< one frame decoded; *consumed bytes were used
  kNeedMore,  ///< buffer holds only a frame prefix; read more bytes
  kError,     ///< malformed input; the connection must be failed
};

/// Incremental frame parser over a receive buffer. Examines `size` bytes at
/// `data`; on kFrame sets *consumed to the full frame size (prefix
/// included) and fills *frame. Rejects frames whose announced length
/// exceeds max_frame_bytes, unknown types and codecs, truncated bodies,
/// non-canonical varints, non-monotone token deltas, corrupt or lying
/// compressed sections, trailing garbage inside a body, and kHello
/// magic/version mismatches (*error gets a description on kError).
///
/// Zero-copy contract: when `arena` is non-null, `data` MUST point into
/// storage owned by that arena (the transport copies or encodes each
/// complete frame into arena->bytes() before parsing). Decoded payloads may
/// then borrow — they alias the frame bytes or arena allocations, pinned by
/// aliasing shared_ptrs that own the arena. With a null arena every decoded
/// payload owns its storage and `data` may be any transient buffer.
ParseStatus ParseFrame(const char* data, size_t size, const PayloadCodec* codec,
                       uint32_t max_frame_bytes, Frame* frame, size_t* consumed,
                       std::string* error,
                       const std::shared_ptr<FrameArena>& arena = nullptr);

}  // namespace dssj::net

#endif  // DSSJ_NET_WIRE_H_
