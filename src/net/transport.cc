#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"

namespace dssj::net {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMicros(int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Resolves host:port for either bind (passive) or connect.
addrinfo* Resolve(const std::string& host, uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &result) != 0) {
    return nullptr;
  }
  return result;
}

int CreateListener(const std::string& host, uint16_t port, std::string* error) {
  addrinfo* addrs = Resolve(host, port, /*passive=*/true);
  if (addrs == nullptr) {
    *error = "cannot resolve listen address " + host + ":" + std::to_string(port);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 64) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addrs);
  if (fd < 0) {
    *error = "cannot listen on " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
  }
  return fd;
}

}  // namespace

StatusOr<std::vector<Endpoint>> ParseClusterSpec(const std::string& spec) {
  std::vector<Endpoint> cluster;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (part.empty()) {
      return Status::InvalidArgument("empty endpoint in cluster spec '" + spec + "'");
    }
    const size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == part.size()) {
      return Status::InvalidArgument("endpoint '" + part + "' is not host:port");
    }
    uint32_t port = 0;
    for (size_t i = colon + 1; i < part.size(); ++i) {
      const char c = part[i];
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument("bad port in endpoint '" + part + "'");
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("bad port in endpoint '" + part + "'");
    }
    cluster.push_back(Endpoint{part.substr(0, colon), static_cast<uint16_t>(port)});
  }
  if (cluster.empty()) return Status::InvalidArgument("empty cluster spec");
  return cluster;
}

std::vector<uint16_t> PickFreePorts(int n) {
  std::vector<int> fds;
  std::vector<uint16_t> ports;
  for (int i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    socklen_t len = sizeof(addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      break;
    }
    fds.push_back(fd);  // keep bound so later picks cannot collide
    ports.push_back(ntohs(addr.sin_port));
  }
  for (const int fd : fds) ::close(fd);
  if (static_cast<int>(ports.size()) != n) ports.clear();
  return ports;
}

// ---------------------------------------------------------------------------
// LoopbackTransport

/// Serializes each batch to real frame bytes, re-parses them, and delivers
/// the decoded envelopes through the inbound sink — a process-local link
/// that pays the full wire cost.
class LoopbackChannel final : public stream::Channel {
 public:
  LoopbackChannel(LoopbackTransport* transport, int dst_task)
      : transport_(transport), dst_task_(dst_task) {}

  size_t Push(stream::Envelope env) override {
    std::vector<stream::Envelope> one;
    one.push_back(std::move(env));
    return PushBatch(&one);
  }

  size_t PushBatch(std::vector<stream::Envelope>* envs) override {
    if (envs->empty()) return 1;
    // Encode straight into arena-owned storage, then parse with that arena:
    // decoded payloads borrow the frame bytes (zero extra copy) and pin the
    // arena via aliasing shared_ptrs until the last consumer drops them.
    std::shared_ptr<FrameArena> arena = transport_->arena_pool_.Acquire();
    std::string& bytes = arena->bytes();
    AppendEnvelopeFrames(transport_->wire_, dst_task_, *envs, &transport_->codec_, &bytes);
    size_t depth = 0;
    size_t off = 0;
    Frame frame;  // reused: ParseFrame keeps envelope capacity across frames
    while (off < bytes.size()) {
      size_t consumed = 0;
      std::string error;
      const ParseStatus st =
          ParseFrame(bytes.data() + off, bytes.size() - off, &transport_->codec_,
                     kDefaultMaxFrameBytes, &frame, &consumed, &error, arena);
      if (st != ParseStatus::kFrame) {
        transport_->on_failure_("loopback frame round-trip failed: " + error);
        return 0;
      }
      off += consumed;
      depth = transport_->sink_(frame.dst_task, std::move(frame.envelopes));
      if (depth == 0) return 0;  // consumer gone
    }
    envs->clear();
    return depth;
  }

  bool inproc() const override { return false; }

 private:
  LoopbackTransport* transport_;
  const int dst_task_;
};

void LoopbackTransport::Start(const stream::TransportPlan& plan, InboundSink sink,
                              FailureSink on_failure) {
  (void)plan;
  sink_ = std::move(sink);
  on_failure_ = std::move(on_failure);
}

std::unique_ptr<stream::Channel> LoopbackTransport::OpenChannel(int dst_task) {
  CHECK(sink_) << "OpenChannel before Start";
  return std::make_unique<LoopbackChannel>(this, dst_task);
}

void LoopbackTransport::InjectDisconnect(int dst_task, int64_t reconnect_delay_micros) {
  // No socket to sever; model the outage as the stall it would cause.
  (void)dst_task;
  SleepMicros(reconnect_delay_micros);
}

stream::Transport::FinishReport LoopbackTransport::Finish(const LocalSummary& local,
                                                          const MetricsMerge& merge) {
  (void)local;
  (void)merge;  // everything is already in-process
  return FinishReport{};
}

// ---------------------------------------------------------------------------
// TcpTransport

/// Producer endpoint for a task on another rank: frames go onto the
/// per-peer bounded send queue; depth returned is that queue's depth.
class TcpChannel final : public stream::Channel {
 public:
  TcpChannel(TcpTransport* transport, int dst_task, TcpTransport::SenderConn* conn)
      : transport_(transport), dst_task_(dst_task), conn_(conn) {}

  size_t Push(stream::Envelope env) override {
    std::vector<stream::Envelope> one;
    one.push_back(std::move(env));
    return PushBatch(&one);
  }

  size_t PushBatch(std::vector<stream::Envelope>* envs) override {
    if (envs->empty()) return 1;
    TcpTransport::OutFrame out;
    AppendEnvelopeFrames(transport_->options_.wire_codec, dst_task_, *envs,
                         &transport_->options_.codec, &out.bytes);
    const size_t depth = conn_->queue->Push(std::move(out));
    if (depth == 0) return 0;  // transport shut down; remainder rejected
    envs->clear();
    return depth;
  }

  bool inproc() const override { return false; }

 private:
  TcpTransport* transport_;
  const int dst_task_;
  TcpTransport::SenderConn* conn_;
};

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)), arena_pool_(options_.arena_pool_capacity) {
  CHECK(!options_.cluster.empty()) << "TcpTransport needs a cluster spec";
  CHECK(options_.rank >= 0 && options_.rank < static_cast<int>(options_.cluster.size()))
      << "rank " << options_.rank << " outside cluster of " << options_.cluster.size();
}

TcpTransport::~TcpTransport() {
  shutdown_.store(true);
  CloseSenders();
  if (accept_thread_.joinable()) accept_thread_.join();
  JoinReaders();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpTransport::Start(const stream::TransportPlan& plan, InboundSink sink,
                         FailureSink on_failure) {
  CHECK(!started_.load()) << "Start called twice";
  plan_ = plan;
  sink_ = std::move(sink);
  on_failure_ = std::move(on_failure);
  done_.assign(options_.cluster.size(), false);

  Endpoint listen_at = options_.cluster[options_.rank];
  if (!options_.listen_override.empty()) {
    StatusOr<std::vector<Endpoint>> parsed = ParseClusterSpec(options_.listen_override);
    CHECK(parsed.ok() && parsed.value().size() == 1)
        << "bad listen override '" << options_.listen_override << "'";
    listen_at = parsed.value()[0];
  }
  std::string error;
  listen_fd_ = CreateListener(listen_at.host, listen_at.port, &error);
  started_.store(true);
  if (listen_fd_ < 0) {
    FailRun(error);
    return;
  }
  accept_thread_ = std::thread(&TcpTransport::AcceptLoop, this);
  // Workers dial the coordinator eagerly so a run whose coordinator never
  // appears fails after connect_timeout instead of waiting forever for
  // tuples that will never arrive (the dial itself retries with backoff,
  // covering ranks starting in any order).
  if (options_.rank != 0) GetSender(0);
}

std::unique_ptr<stream::Channel> TcpTransport::OpenChannel(int dst_task) {
  CHECK(started_.load()) << "OpenChannel before Start";
  int peer = -1;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    CHECK(dst_task >= 0 && dst_task < plan_.num_tasks);
    peer = plan_.task_worker[dst_task];
  }
  CHECK_NE(peer, options_.rank) << "OpenChannel to a locally hosted task";
  return std::make_unique<TcpChannel>(this, dst_task, GetSender(peer));
}

void TcpTransport::InjectDisconnect(int dst_task, int64_t reconnect_delay_micros) {
  int peer = -1;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    CHECK(dst_task >= 0 && dst_task < plan_.num_tasks);
    peer = plan_.task_worker[dst_task];
  }
  OutFrame marker;
  marker.disconnect_delay_micros = std::max<int64_t>(reconnect_delay_micros, 0);
  GetSender(peer)->queue->Push(std::move(marker));
}

void TcpTransport::UpdateTaskWorker(int dst_task, int new_worker) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  CHECK(dst_task >= 0 && dst_task < plan_.num_tasks);
  plan_.task_worker[dst_task] = new_worker;
}

void TcpTransport::SetControlSink(ControlSink sink) { control_sink_ = std::move(sink); }

bool TcpTransport::SendControl(int rank, const stream::ControlFrame& frame) {
  CHECK(started_.load()) << "SendControl before Start";
  if (rank < 0 || rank >= num_ranks()) return false;
  if (rank == options_.rank) {
    // Local loop: deliver straight to the sink, same contract as a frame
    // arriving off the wire.
    if (!control_sink_) return false;
    stream::ControlFrame copy = frame;
    control_sink_(std::move(copy));
    return true;
  }
  OutFrame out;
  const uint16_t worker = static_cast<uint16_t>(frame.worker < 0 ? 0 : frame.worker);
  switch (frame.kind) {
    case stream::ControlKind::kPrepare:
      AppendPrepareFrame(frame.migration_id, frame.task_id, worker, &out.bytes);
      break;
    case stream::ControlKind::kState:
      AppendStateFrame(frame.migration_id, frame.task_id, worker, frame.blob, &out.bytes);
      break;
    case stream::ControlKind::kHandoff:
      AppendHandoffFrame(frame.migration_id, frame.task_id, worker, &out.bytes);
      break;
    case stream::ControlKind::kAck:
      AppendAckFrame(frame.migration_id, frame.task_id, worker, &out.bytes);
      break;
  }
  return GetSender(rank)->queue->Push(std::move(out)) != 0;
}

stream::Transport::NetStats TcpTransport::Stats() const {
  NetStats stats;
  stats.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  stats.connect_retries = connect_retries_.load(std::memory_order_relaxed);
  stats.reconnects = reconnects_.load(std::memory_order_relaxed);
  return stats;
}

TcpTransport::SenderConn* TcpTransport::GetSender(int peer_rank) {
  std::lock_guard<std::mutex> lock(sender_mu_);
  std::unique_ptr<SenderConn>& slot = senders_[peer_rank];
  if (slot == nullptr) {
    slot = std::make_unique<SenderConn>();
    slot->peer_rank = peer_rank;
    slot->queue = std::make_unique<stream::BoundedQueue<OutFrame>>(options_.send_queue_capacity);
    slot->thread = std::thread(&TcpTransport::SenderLoop, this, slot.get());
  }
  return slot.get();
}

int TcpTransport::DialPeer(int peer_rank) {
  const Endpoint& ep = options_.cluster[peer_rank];
  const int64_t deadline = NowMicros() + options_.connect_timeout_micros;
  const int64_t cap_micros = std::max<int64_t>(options_.connect_backoff_cap_micros, 1);
  int64_t backoff_micros =
      std::min<int64_t>(std::max<int64_t>(options_.connect_backoff_initial_micros, 1), cap_micros);
  uint64_t attempt = 0;
  while (!shutdown_.load()) {
    ++attempt;
    connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (attempt > 1) connect_retries_.fetch_add(1, std::memory_order_relaxed);
    addrinfo* addrs = Resolve(ep.host, ep.port, /*passive=*/false);
    for (addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(addrs);
        SetNoDelay(fd);
        SetNonBlocking(fd);
        return fd;
      }
      ::close(fd);
    }
    if (addrs != nullptr) ::freeaddrinfo(addrs);
    if (NowMicros() >= deadline) break;
    // Peers may start in any order: retry with capped exponential backoff.
    // The jitter factor is deterministic per (local rank, peer, attempt), so
    // many links dropped at once spread their redials instead of pounding
    // the listener in lockstep — and tests replay the exact schedule.
    int64_t sleep_micros = backoff_micros;
    const double jitter = options_.connect_backoff_jitter;
    if (jitter > 0) {
      const uint64_t h = Mix64((static_cast<uint64_t>(options_.rank) << 40) ^
                               (static_cast<uint64_t>(peer_rank) << 20) ^ attempt);
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
      sleep_micros = static_cast<int64_t>(static_cast<double>(backoff_micros) *
                                          (1.0 - jitter + 2.0 * jitter * unit));
    }
    SleepMicros(std::max<int64_t>(sleep_micros, 1));
    backoff_micros = std::min<int64_t>(backoff_micros * 2, cap_micros);
  }
  return -1;
}

bool TcpTransport::SendAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (shutdown_.load()) return false;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void TcpTransport::SenderLoop(SenderConn* conn) {
  int fd = DialPeer(conn->peer_rank);
  if (fd < 0) {
    if (!shutdown_.load()) {
      FailRun("cannot connect to rank " + std::to_string(conn->peer_rank) + " (" +
              options_.cluster[conn->peer_rank].host + ":" +
              std::to_string(options_.cluster[conn->peer_rank].port) + ")");
    }
    conn->queue->Close();
    std::vector<OutFrame> discard;
    conn->queue->Drain(&discard);
    return;
  }
  std::string staged;
  AppendHelloFrame(static_cast<uint16_t>(options_.rank), &staged);

  std::vector<OutFrame> batch;
  bool broken = false;
  while (!broken) {
    // Coalesce queued frames into one send; an in-band disconnect marker
    // flushes what precedes it, cuts the connection, and redials.
    batch.clear();
    if (conn->queue->PopBatch(&batch, 64) == 0) break;  // closed + drained
    for (OutFrame& frame : batch) {
      if (frame.disconnect_delay_micros >= 0) {
        if (!staged.empty() && !SendAll(fd, staged.data(), staged.size())) {
          broken = true;
          break;
        }
        staged.clear();
        ::close(fd);  // clean close: FIN lands after everything written
        SleepMicros(frame.disconnect_delay_micros);
        fd = DialPeer(conn->peer_rank);
        if (fd < 0) {
          if (!shutdown_.load()) {
            FailRun("reconnect to rank " + std::to_string(conn->peer_rank) + " failed");
          }
          conn->queue->Close();
          broken = true;
          break;
        }
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        AppendHelloFrame(static_cast<uint16_t>(options_.rank), &staged);
        continue;
      }
      staged.append(frame.bytes);
    }
    if (!broken && !staged.empty()) {
      if (!SendAll(fd, staged.data(), staged.size())) broken = true;
      staged.clear();
    }
  }
  if (broken && !shutdown_.load()) {
    FailRun("connection to rank " + std::to_string(conn->peer_rank) + " broke: " +
            std::strerror(errno));
    conn->queue->Close();
  }
  if (fd >= 0) ::close(fd);
}

void TcpTransport::AcceptLoop() {
  while (!shutdown_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      break;
    }
    SetNonBlocking(fd);
    std::lock_guard<std::mutex> lock(reader_mu_);
    ++live_readers_;
    reader_threads_.emplace_back(&TcpTransport::ReaderLoop, this, fd);
  }
}

void TcpTransport::ReaderLoop(int fd) {
  std::string buf;
  size_t off = 0;
  int peer = -1;
  bool failed = false;
  char chunk[64 * 1024];
  Frame frame;  // reused: ParseFrame keeps envelope capacity across frames
  while (!shutdown_.load() && !failed) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr <= 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer closed cleanly; buffered frames already parsed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    while (!failed) {
      size_t consumed = 0;
      std::string error;
      // Zero-copy receive: a complete DATA frame is bulk-copied out of the
      // rolling receive buffer (which compacts underneath views) into a
      // pooled arena and parsed *there*, so decoded payloads can alias
      // stable frame bytes. Other frame types (and incomplete prefixes)
      // take the plain materializing path.
      std::shared_ptr<FrameArena> arena;
      const char* base = buf.data() + off;
      const size_t avail = buf.size() - off;
      if (avail > sizeof(uint32_t)) {
        uint32_t body_len = 0;
        std::memcpy(&body_len, base, sizeof(body_len));
        if (body_len >= 1 && body_len <= options_.max_frame_bytes &&
            avail >= sizeof(uint32_t) + body_len &&
            static_cast<uint8_t>(base[sizeof(uint32_t)]) ==
                static_cast<uint8_t>(FrameType::kData)) {
          arena = arena_pool_.Acquire();
          arena->bytes().assign(base, sizeof(uint32_t) + body_len);
          base = arena->bytes().data();
        }
      }
      const ParseStatus st =
          arena != nullptr
              ? ParseFrame(base, arena->bytes().size(), &options_.codec,
                           options_.max_frame_bytes, &frame, &consumed, &error, arena)
              : ParseFrame(base, avail, &options_.codec, options_.max_frame_bytes, &frame,
                           &consumed, &error);
      if (st == ParseStatus::kNeedMore) break;
      if (st == ParseStatus::kError) {
        FailRun("malformed frame from peer: " + error);
        failed = true;
        break;
      }
      off += consumed;
      if (peer < 0) {
        if (frame.type != FrameType::kHello) {
          FailRun("peer did not open with HELLO");
          failed = true;
          break;
        }
        if (frame.rank >= options_.cluster.size()) {
          FailRun("HELLO from unknown rank " + std::to_string(frame.rank));
          failed = true;
          break;
        }
        peer = frame.rank;
        // Reconnect ordering: wait until the previous connection from this
        // rank has drained to EOF, so frames from one rank never interleave
        // out of order across a reconnect.
        std::unique_lock<std::mutex> lock(reader_mu_);
        reader_cv_.wait(lock, [&] {
          return shutdown_.load() || !active_readers_by_rank_[peer];
        });
        active_readers_by_rank_[peer] = true;
      } else {
        HandleFrame(std::move(frame));
      }
    }
    if (off > (64u << 10) && off * 2 > buf.size()) {
      buf.erase(0, off);
      off = 0;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(reader_mu_);
  if (peer >= 0) active_readers_by_rank_[peer] = false;
  --live_readers_;
  reader_cv_.notify_all();
}

void TcpTransport::HandleFrame(Frame&& frame) {
  switch (frame.type) {
    case FrameType::kData:
    case FrameType::kEos: {
      if (frame.dst_task < 0 || frame.dst_task >= plan_.num_tasks) {
        FailRun("frame addressed to unknown task " + std::to_string(frame.dst_task));
        return;
      }
      // A zero return means the consumer queue closed (topology failed or
      // finished); late frames are dropped on the floor by design.
      sink_(frame.dst_task, std::move(frame.envelopes));
      return;
    }
    case FrameType::kMetrics: {
      std::lock_guard<std::mutex> lock(finish_mu_);
      remote_metrics_.emplace_back(frame.task_id, std::move(frame.blob));
      return;
    }
    case FrameType::kDone: {
      {
        std::lock_guard<std::mutex> lock(finish_mu_);
        if (frame.rank < done_.size()) done_[frame.rank] = true;
      }
      finish_cv_.notify_all();
      // DONE from rank 0 is the coordinator's run-over broadcast: elastic
      // workers hold their finish barrier (they can adopt a migrating task
      // at any point before this) until it arrives.
      if (frame.rank == 0 && options_.rank != 0 && control_sink_) {
        stream::ControlFrame cf;
        cf.kind = stream::ControlKind::kFinish;
        control_sink_(std::move(cf));
      }
      return;
    }
    case FrameType::kFail:
      FailRun("rank " + std::to_string(frame.rank) + " failed: " + frame.blob);
      return;
    case FrameType::kPrepare:
    case FrameType::kState:
    case FrameType::kHandoff:
    case FrameType::kAck: {
      if (!control_sink_) {
        FailRun("migration control frame received but elastic mode is off");
        return;
      }
      stream::ControlFrame cf;
      switch (frame.type) {
        case FrameType::kPrepare: cf.kind = stream::ControlKind::kPrepare; break;
        case FrameType::kState: cf.kind = stream::ControlKind::kState; break;
        case FrameType::kHandoff: cf.kind = stream::ControlKind::kHandoff; break;
        default: cf.kind = stream::ControlKind::kAck; break;
      }
      cf.migration_id = frame.migration_id;
      cf.task_id = frame.task_id;
      cf.worker = frame.rank;
      cf.blob = std::move(frame.blob);
      control_sink_(std::move(cf));
      return;
    }
    case FrameType::kHello:
      FailRun("unexpected mid-stream HELLO");
      return;
  }
}

void TcpTransport::FailRun(const std::string& message) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    if (!remote_failed_) {
      remote_failed_ = true;
      remote_failure_ = message;
      first = true;
    }
  }
  finish_cv_.notify_all();
  if (first && on_failure_) on_failure_(message);
}

void TcpTransport::CloseSenders() {
  std::lock_guard<std::mutex> lock(sender_mu_);
  for (auto& [rank, conn] : senders_) {
    conn->queue->Close();
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void TcpTransport::JoinReaders() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(reader_mu_);
    threads.swap(reader_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

stream::Transport::FinishReport TcpTransport::Finish(const LocalSummary& local,
                                                     const MetricsMerge& merge) {
  const int world = num_ranks();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.finish_timeout_micros);
  if (options_.rank != 0) {
    // Ship metrics + failure + DONE to the coordinator over the regular
    // sender (created on demand when no data edge pointed at rank 0).
    OutFrame out;
    for (const auto& [task_id, blob] : local.task_metrics) {
      AppendMetricsFrame(task_id, blob, &out.bytes);
    }
    if (local.failed) {
      AppendFailFrame(static_cast<uint16_t>(options_.rank),
                      local.failure_message.empty() ? "worker failed" : local.failure_message,
                      &out.bytes);
    }
    AppendDoneFrame(static_cast<uint16_t>(options_.rank), &out.bytes);
    GetSender(0)->queue->Push(std::move(out));
  } else if (local.failed && world > 1) {
    // A failed coordinator may never deliver EOS to remote tasks; a FAIL
    // frame lets every worker abort instead of hanging.
    for (int r = 1; r < world; ++r) {
      OutFrame out;
      AppendFailFrame(0, local.failure_message.empty() ? "coordinator failed"
                                                       : local.failure_message,
                      &out.bytes);
      GetSender(r)->queue->Push(std::move(out));
    }
  } else if (control_sink_ && world > 1) {
    // Elastic run over: release every worker's finish hold. This also dials
    // any rank the data plane never touched (a worker that stayed idle all
    // run still needs the signal — and the EOF that follows CloseSenders).
    for (int r = 1; r < world; ++r) {
      OutFrame out;
      AppendDoneFrame(0, &out.bytes);
      GetSender(r)->queue->Push(std::move(out));
    }
  }

  FinishReport report;
  std::vector<std::pair<int, std::string>> blobs;
  if (options_.rank == 0) {
    std::unique_lock<std::mutex> lock(finish_mu_);
    const bool all_done = finish_cv_.wait_until(lock, deadline, [&] {
      for (int r = 1; r < world; ++r) {
        if (!done_[r]) return false;
      }
      return true;
    });
    if (!all_done && !remote_failed_) {
      remote_failed_ = true;
      remote_failure_ = "timed out waiting for worker DONE frames";
    }
    blobs.swap(remote_metrics_);
  }
  {
    std::lock_guard<std::mutex> lock(finish_mu_);
    report.remote_failed = remote_failed_;
    report.remote_failure = remote_failure_;
  }
  for (const auto& [task_id, blob] : blobs) {
    if (merge) merge(task_id, blob);
  }

  // Senders close only now: the coordinator's close is what EOFs worker
  // readers, releasing their Finish. Workers closed theirs before DONE
  // went out (the close flushes the queue), so ordering is acyclic.
  CloseSenders();
  {
    std::unique_lock<std::mutex> lock(reader_mu_);
    reader_cv_.wait_until(lock, deadline, [&] { return live_readers_ == 0; });
  }
  shutdown_.store(true);
  reader_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  JoinReaders();
  return report;
}

}  // namespace dssj::net
