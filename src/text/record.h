#ifndef DSSJ_TEXT_RECORD_H_
#define DSSJ_TEXT_RECORD_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dssj {

/// Dense token identifier. The *numeric order of TokenId is the global token
/// order* used by prefix filtering: smaller id = earlier in every record's
/// sorted token array. Dictionaries that reorder tokens by ascending
/// frequency therefore make prefixes maximally selective (rarest first), but
/// correctness only needs the order to be consistent across records.
using TokenId = uint32_t;

/// Non-owning view over an ascending token array. The read-side currency of
/// the verification kernels: implicitly constructible from both
/// std::vector<TokenId> and TokenArray, so call sites do not care whether a
/// record owns its tokens or borrows them from a network frame arena.
class TokenSpan {
 public:
  constexpr TokenSpan() = default;
  constexpr TokenSpan(const TokenId* data, size_t size) : data_(data), size_(size) {}
  /*implicit*/ TokenSpan(const std::vector<TokenId>& v) : data_(v.data()), size_(v.size()) {}

  const TokenId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const TokenId* begin() const { return data_; }
  const TokenId* end() const { return data_ + size_; }
  TokenId operator[](size_t i) const { return data_[i]; }
  TokenId front() const { return data_[0]; }
  TokenId back() const { return data_[size_ - 1]; }

 private:
  const TokenId* data_ = nullptr;
  size_t size_ = 0;
};

/// Token storage that either *owns* its elements (a heap vector, the default)
/// or *borrows* a span owned by someone else — in practice the network frame
/// arena, so a record decoded off the wire can point straight into the frame
/// buffer without re-materializing its token array.
///
/// Lifetime contract for borrowed arrays: the borrow itself holds no
/// keepalive (a record living *inside* an arena must not pin its own arena —
/// that would be a refcount cycle). Whoever hands out a borrowed-token
/// Record is responsible for pinning the backing memory, which the net layer
/// does with an aliasing shared_ptr<const Record> that owns the arena.
/// Copying a TokenArray always produces an owning copy (copy == detach), so
/// `*record` copy-construction is the detach primitive.
class TokenArray {
 public:
  TokenArray() = default;
  /*implicit*/ TokenArray(std::vector<TokenId> v) : own_(std::move(v)) {
    data_ = own_.data();
    size_ = own_.size();
  }

  /// Borrowing view; `data` must stay valid (and unchanged) for the
  /// TokenArray's lifetime. See the class comment for who guarantees that.
  static TokenArray Borrow(const TokenId* data, size_t n) {
    TokenArray a;
    a.data_ = data;
    a.size_ = n;
    a.borrowed_ = true;
    return a;
  }

  TokenArray(const TokenArray& o) : own_(o.begin(), o.end()) {
    data_ = own_.data();
    size_ = own_.size();
  }
  TokenArray& operator=(const TokenArray& o) {
    if (this != &o) {
      own_.assign(o.begin(), o.end());
      data_ = own_.data();
      size_ = own_.size();
      borrowed_ = false;
    }
    return *this;
  }
  // Moving a vector never moves its heap buffer, so a moved-from own_ keeps
  // data_ valid; borrowed spans move trivially.
  TokenArray(TokenArray&& o) noexcept
      : own_(std::move(o.own_)), data_(o.data_), size_(o.size_), borrowed_(o.borrowed_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.borrowed_ = false;
  }
  TokenArray& operator=(TokenArray&& o) noexcept {
    if (this != &o) {
      own_ = std::move(o.own_);
      data_ = o.data_;
      size_ = o.size_;
      borrowed_ = o.borrowed_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.borrowed_ = false;
    }
    return *this;
  }

  const TokenId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const TokenId* begin() const { return data_; }
  const TokenId* end() const { return data_ + size_; }
  TokenId operator[](size_t i) const { return data_[i]; }
  TokenId front() const { return data_[0]; }
  TokenId back() const { return data_[size_ - 1]; }
  bool borrowed() const { return borrowed_; }

  /*implicit*/ operator TokenSpan() const { return TokenSpan(data_, size_); }
  std::vector<TokenId> ToVector() const { return std::vector<TokenId>(begin(), end()); }

 private:
  std::vector<TokenId> own_;
  const TokenId* data_ = nullptr;
  size_t size_ = 0;
  bool borrowed_ = false;
};

inline bool operator==(const TokenArray& a, const TokenArray& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}
inline bool operator!=(const TokenArray& a, const TokenArray& b) { return !(a == b); }
inline bool operator==(const TokenArray& a, const std::vector<TokenId>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}
inline bool operator==(const std::vector<TokenId>& a, const TokenArray& b) { return b == a; }
inline bool operator!=(const TokenArray& a, const std::vector<TokenId>& b) { return !(a == b); }
inline bool operator!=(const std::vector<TokenId>& a, const TokenArray& b) { return !(b == a); }

/// A set record in the stream: a deduplicated, ascending-sorted array of
/// token ids plus stream metadata. Records are immutable after construction
/// and shared across topology tasks via shared_ptr<const Record>.
struct Record {
  /// External identifier (line number, document id, ...).
  uint64_t id = 0;
  /// Global arrival sequence number, assigned by the stream source. The
  /// distributed join's exactly-once emission rule compares seq values.
  uint64_t seq = 0;
  /// Stream timestamp in microseconds (for time-based windows).
  int64_t timestamp = 0;
  /// Token ids, strictly ascending (set semantics). May borrow its storage
  /// from a network frame arena — see TokenArray's lifetime contract.
  TokenArray tokens;

  Record() = default;
  Record(uint64_t id_in, uint64_t seq_in, int64_t ts, std::vector<TokenId> tokens_in)
      : id(id_in), seq(seq_in), timestamp(ts), tokens(std::move(tokens_in)) {}
  Record(uint64_t id_in, uint64_t seq_in, int64_t ts, TokenArray tokens_in)
      : id(id_in), seq(seq_in), timestamp(ts), tokens(std::move(tokens_in)) {}

  /// Set size |r|.
  size_t size() const { return tokens.size(); }

  /// True when the token array points into frame-arena memory rather than
  /// record-owned heap storage.
  bool borrowed() const { return tokens.borrowed(); }

  /// Bytes this record occupies on the (simulated) wire: fixed header plus
  /// 4 bytes per token. Used by the stream substrate's communication
  /// accounting.
  size_t SerializedBytes() const { return 24 + 4 * tokens.size(); }
};

using RecordPtr = std::shared_ptr<const Record>;

/// Detach primitive: returns `r` unchanged when it owns its tokens, else a
/// deep copy with owning storage. Call before holding a record past its
/// frame's lifetime window (index stores, checkpoints).
RecordPtr DetachRecord(const RecordPtr& r);

/// Sorts and deduplicates `tokens` in place, establishing Record's invariant.
void NormalizeTokens(std::vector<TokenId>& tokens);

/// Exact size of the intersection of two ascending token arrays.
size_t OverlapSize(TokenSpan a, TokenSpan b);

/// Convenience constructor used throughout tests and generators.
RecordPtr MakeRecord(uint64_t id, uint64_t seq, std::vector<TokenId> tokens,
                     int64_t timestamp = 0);

/// Appends the record's raw wire encoding (id, seq, timestamp, token count,
/// then the token array as little-endian u32s) to `*out`. The inverse of
/// DecodeRecord; the `raw` network payload codec for record-carrying tuples.
void EncodeRecord(const Record& r, std::string* out);

/// Compact wire encoding: varint id/seq, zigzag-varint timestamp, varint
/// token count, then the token array delta-coded — first token verbatim,
/// every later token as varint(token[i] - token[i-1] - 1). Strict ascent
/// makes every gap representable and the coding bijective; the inverse is
/// DecodeRecordDelta. The `delta` network payload codec.
void EncodeRecordDelta(const Record& r, std::string* out);

/// Decodes an EncodeRecord blob. Returns false on truncated or malformed
/// input — including token arrays that are not strictly ascending, which a
/// well-formed peer never sends (network bytes are untrusted) — `*out` is
/// unspecified then. Always produces owning token storage.
bool DecodeRecord(const char* data, size_t size, Record* out);

/// Decodes an EncodeRecordDelta blob; same contract as DecodeRecord.
/// Non-canonical varints and deltas that overflow TokenId are rejected.
bool DecodeRecordDelta(const char* data, size_t size, Record* out);

/// Token allocator callback for the borrowing decoders below: returns
/// storage for `n` tokens that outlives the decoded record (the net layer
/// passes its frame arena). Plain function pointer + context so the per-
/// record decode path stays allocation-free.
using TokenAllocFn = TokenId* (*)(void* ctx, size_t n);

/// Zero-copy variants: `out->tokens` *borrows* its storage instead of
/// heap-allocating a vector. For the raw format the tokens alias `data`
/// directly when the host is little-endian and the array happens to be
/// 4-aligned, else they are bulk-copied into `alloc`-provided memory (still
/// no per-record heap allocation). The delta format always decodes into
/// `alloc` storage. Caller must keep both `data` and the allocator's memory
/// alive for the record's lifetime — see TokenArray's contract.
bool DecodeRecordBorrowed(const char* data, size_t size, TokenAllocFn alloc, void* ctx,
                          Record* out);
bool DecodeRecordDeltaBorrowed(const char* data, size_t size, TokenAllocFn alloc, void* ctx,
                               Record* out);

}  // namespace dssj

#endif  // DSSJ_TEXT_RECORD_H_
