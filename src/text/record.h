#ifndef DSSJ_TEXT_RECORD_H_
#define DSSJ_TEXT_RECORD_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace dssj {

/// Dense token identifier. The *numeric order of TokenId is the global token
/// order* used by prefix filtering: smaller id = earlier in every record's
/// sorted token array. Dictionaries that reorder tokens by ascending
/// frequency therefore make prefixes maximally selective (rarest first), but
/// correctness only needs the order to be consistent across records.
using TokenId = uint32_t;

/// A set record in the stream: a deduplicated, ascending-sorted array of
/// token ids plus stream metadata. Records are immutable after construction
/// and shared across topology tasks via shared_ptr<const Record>.
struct Record {
  /// External identifier (line number, document id, ...).
  uint64_t id = 0;
  /// Global arrival sequence number, assigned by the stream source. The
  /// distributed join's exactly-once emission rule compares seq values.
  uint64_t seq = 0;
  /// Stream timestamp in microseconds (for time-based windows).
  int64_t timestamp = 0;
  /// Token ids, strictly ascending (set semantics).
  std::vector<TokenId> tokens;

  Record() = default;
  Record(uint64_t id_in, uint64_t seq_in, int64_t ts, std::vector<TokenId> tokens_in)
      : id(id_in), seq(seq_in), timestamp(ts), tokens(std::move(tokens_in)) {}

  /// Set size |r|.
  size_t size() const { return tokens.size(); }

  /// Bytes this record occupies on the (simulated) wire: fixed header plus
  /// 4 bytes per token. Used by the stream substrate's communication
  /// accounting.
  size_t SerializedBytes() const { return 24 + 4 * tokens.size(); }
};

using RecordPtr = std::shared_ptr<const Record>;

/// Sorts and deduplicates `tokens` in place, establishing Record's invariant.
void NormalizeTokens(std::vector<TokenId>& tokens);

/// Exact size of the intersection of two ascending token arrays.
size_t OverlapSize(const std::vector<TokenId>& a, const std::vector<TokenId>& b);

/// Convenience constructor used throughout tests and generators.
RecordPtr MakeRecord(uint64_t id, uint64_t seq, std::vector<TokenId> tokens,
                     int64_t timestamp = 0);

/// Appends the record's wire encoding (id, seq, timestamp, tokens; little
/// endian) to `*out`. The inverse of DecodeRecord; used as the network
/// payload codec for record-carrying tuples.
void EncodeRecord(const Record& r, std::string* out);

/// Decodes an EncodeRecord blob. Returns false on truncated or malformed
/// input (network bytes are untrusted) — `*out` is unspecified then.
bool DecodeRecord(const char* data, size_t size, Record* out);

}  // namespace dssj

#endif  // DSSJ_TEXT_RECORD_H_
