#include "text/record.h"

#include <algorithm>
#include <cstring>

#include "common/serialize.h"

namespace dssj {

void NormalizeTokens(std::vector<TokenId>& tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
}

size_t OverlapSize(const std::vector<TokenId>& a, const std::vector<TokenId>& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

RecordPtr MakeRecord(uint64_t id, uint64_t seq, std::vector<TokenId> tokens, int64_t timestamp) {
  NormalizeTokens(tokens);
  return std::make_shared<const Record>(id, seq, timestamp, std::move(tokens));
}

void EncodeRecord(const Record& r, std::string* out) {
  BinaryWriter w(out);
  w.WriteU64(r.id);
  w.WriteU64(r.seq);
  w.WriteI64(r.timestamp);
  w.WriteU32(static_cast<uint32_t>(r.tokens.size()));
  if (!r.tokens.empty()) {
    out->append(reinterpret_cast<const char*>(r.tokens.data()),
                r.tokens.size() * sizeof(TokenId));
  }
}

bool DecodeRecord(const char* data, size_t size, Record* out) {
  SafeBinaryReader r(data, size);
  uint32_t n = 0;
  if (!r.ReadU64(&out->id) || !r.ReadU64(&out->seq) || !r.ReadI64(&out->timestamp) ||
      !r.ReadU32(&n)) {
    return false;
  }
  if (r.remaining() != static_cast<size_t>(n) * sizeof(TokenId)) return false;
  out->tokens.resize(n);
  if (n > 0) std::memcpy(out->tokens.data(), data + (size - r.remaining()), r.remaining());
  return true;
}

}  // namespace dssj
