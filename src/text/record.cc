#include "text/record.h"

#include <algorithm>
#include <cstring>

#include "common/serialize.h"

namespace dssj {
namespace {

#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
constexpr bool kHostLittleEndian = __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
constexpr bool kHostLittleEndian = false;
#endif

bool StrictlyAscending(const TokenId* t, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    if (t[i - 1] >= t[i]) return false;
  }
  return true;
}

/// Shared raw-format decode: header + count validation, then hands the
/// trailing little-endian token bytes to `sink`.
template <typename TokenSink>
bool DecodeRecordImpl(const char* data, size_t size, Record* out, TokenSink&& sink) {
  SafeBinaryReader r(data, size);
  uint32_t n = 0;
  if (!r.ReadU64(&out->id) || !r.ReadU64(&out->seq) || !r.ReadI64(&out->timestamp) ||
      !r.ReadU32(&n)) {
    return false;
  }
  if (r.remaining() != static_cast<size_t>(n) * sizeof(TokenId)) return false;
  return sink(data + (size - r.remaining()), static_cast<size_t>(n));
}

/// Shared delta-format decode; `alloc_tokens(n)` returns writable storage
/// for the decoded array (vector resize or arena alloc).
template <typename TokenAlloc>
bool DecodeRecordDeltaImpl(const char* data, size_t size, Record* out,
                           TokenAlloc&& alloc_tokens) {
  SafeBinaryReader r(data, size);
  uint64_t n = 0;
  if (!r.ReadVarint(&out->id) || !r.ReadVarint(&out->seq) ||
      !r.ReadVarintI64(&out->timestamp) || !r.ReadVarint(&n)) {
    return false;
  }
  // Every delta is at least one byte: a count larger than the remaining
  // bytes is a lie, caught before any allocation.
  if (n > r.remaining()) return false;
  TokenId* t = alloc_tokens(static_cast<size_t>(n));
  // The token section is the tail of the record, so decode it with raw
  // pointers: sorted token gaps are overwhelmingly single-byte, and this
  // loop is the hottest few nanoseconds of the receive path.
  const char* tail = nullptr;
  size_t avail = 0;
  if (!r.ReadSpan(&tail, &avail, r.remaining())) return false;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(tail);
  const uint8_t* const end = p + avail;
  // First token verbatim; later tokens reconstruct as prev + delta + 1,
  // which enforces strict ascent by construction. Anything that would climb
  // past the TokenId range is malformed (non-monotone deltas show up here
  // as overflow).
  uint64_t prev = 0;
  if (n > 0) {
    if (!DecodeCanonicalVarint(p, end, &prev) || prev > 0xffffffffull) return false;
    t[0] = static_cast<TokenId>(prev);
  }
  for (uint64_t i = 1; i < n; ++i) {
    uint64_t d = 0;
    // The gap itself must fit the token range too: with d unbounded,
    // prev + d + 1 can wrap mod 2^64 and sneak a duplicate token past the
    // ceiling check below.
    if (!DecodeCanonicalVarint(p, end, &d) || d > 0xffffffffull) return false;
    const uint64_t next = prev + d + 1;
    if (next > 0xffffffffull) return false;
    t[i] = static_cast<TokenId>(next);
    prev = next;
  }
  return p == end;
}

}  // namespace

void NormalizeTokens(std::vector<TokenId>& tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
}

size_t OverlapSize(TokenSpan a, TokenSpan b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

RecordPtr MakeRecord(uint64_t id, uint64_t seq, std::vector<TokenId> tokens, int64_t timestamp) {
  NormalizeTokens(tokens);
  return std::make_shared<const Record>(id, seq, timestamp, std::move(tokens));
}

RecordPtr DetachRecord(const RecordPtr& r) {
  if (r == nullptr || !r->borrowed()) return r;
  // Record's copy constructor deep-copies the TokenArray (copy == detach).
  return std::make_shared<const Record>(*r);
}

void EncodeRecord(const Record& r, std::string* out) {
  BinaryWriter w(out);
  w.WriteU64(r.id);
  w.WriteU64(r.seq);
  w.WriteI64(r.timestamp);
  w.WriteU32(static_cast<uint32_t>(r.tokens.size()));
  if (!r.tokens.empty()) {
    out->append(reinterpret_cast<const char*>(r.tokens.data()),
                r.tokens.size() * sizeof(TokenId));
  }
}

void EncodeRecordDelta(const Record& r, std::string* out) {
  BinaryWriter w(out);
  w.WriteVarint(r.id);
  w.WriteVarint(r.seq);
  w.WriteVarintI64(r.timestamp);
  w.WriteVarint(r.tokens.size());
  TokenId prev = 0;
  for (size_t i = 0; i < r.tokens.size(); ++i) {
    const TokenId t = r.tokens[i];
    w.WriteVarint(i == 0 ? t : t - prev - 1);
    prev = t;
  }
}

bool DecodeRecord(const char* data, size_t size, Record* out) {
  std::vector<TokenId> tokens;
  const bool ok = DecodeRecordImpl(data, size, out, [&](const char* bytes, size_t n) {
    tokens.resize(n);
    if (n > 0) std::memcpy(tokens.data(), bytes, n * sizeof(TokenId));
    return StrictlyAscending(tokens.data(), n);
  });
  if (!ok) return false;
  out->tokens = TokenArray(std::move(tokens));
  return true;
}

bool DecodeRecordBorrowed(const char* data, size_t size, TokenAllocFn alloc, void* ctx,
                          Record* out) {
  return DecodeRecordImpl(data, size, out, [&](const char* bytes, size_t n) {
    const TokenId* t = nullptr;
    if (kHostLittleEndian && reinterpret_cast<uintptr_t>(bytes) % alignof(TokenId) == 0) {
      // The wire bytes *are* the host representation: alias them directly.
      t = reinterpret_cast<const TokenId*>(bytes);
    } else {
      TokenId* dst = alloc(ctx, n);
      if (n > 0) std::memcpy(dst, bytes, n * sizeof(TokenId));
      t = dst;
    }
    if (!StrictlyAscending(t, n)) return false;
    out->tokens = TokenArray::Borrow(t, n);
    return true;
  });
}

bool DecodeRecordDelta(const char* data, size_t size, Record* out) {
  std::vector<TokenId> tokens;
  const bool ok = DecodeRecordDeltaImpl(data, size, out, [&](size_t n) {
    tokens.resize(n);
    return tokens.data();
  });
  if (!ok) return false;
  out->tokens = TokenArray(std::move(tokens));
  return true;
}

bool DecodeRecordDeltaBorrowed(const char* data, size_t size, TokenAllocFn alloc, void* ctx,
                               Record* out) {
  TokenId* t = nullptr;
  size_t n = 0;
  const bool ok = DecodeRecordDeltaImpl(data, size, out, [&](size_t count) {
    n = count;
    t = alloc(ctx, count);
    return t;
  });
  if (!ok) return false;
  out->tokens = TokenArray::Borrow(t, n);
  return true;
}

}  // namespace dssj
