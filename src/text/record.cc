#include "text/record.h"

#include <algorithm>

namespace dssj {

void NormalizeTokens(std::vector<TokenId>& tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
}

size_t OverlapSize(const std::vector<TokenId>& a, const std::vector<TokenId>& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

RecordPtr MakeRecord(uint64_t id, uint64_t seq, std::vector<TokenId> tokens, int64_t timestamp) {
  NormalizeTokens(tokens);
  return std::make_shared<const Record>(id, seq, timestamp, std::move(tokens));
}

}  // namespace dssj
