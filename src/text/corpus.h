#ifndef DSSJ_TEXT_CORPUS_H_
#define DSSJ_TEXT_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/record.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"

namespace dssj {

/// A fully ingested corpus: records (token arrays frequency-ordered) plus
/// the dictionary that produced them. Records carry seq = their position,
/// so a corpus can be replayed as a stream directly.
struct Corpus {
  std::vector<RecordPtr> records;
  TokenDictionary dictionary;
};

/// Summary statistics of a record collection; experiment E1 reports these.
struct CorpusStats {
  uint64_t num_records = 0;
  uint64_t vocabulary_size = 0;
  double avg_length = 0.0;
  uint64_t min_length = 0;
  uint64_t max_length = 0;
  /// Fraction of all token occurrences contributed by the 1% most frequent
  /// tokens — a scale-free skew indicator.
  double top1pct_token_mass = 0.0;
};

/// Builds a corpus from text lines: tokenize each line, build the
/// dictionary, count document frequencies, reorder token ids by ascending
/// frequency, and emit normalized records. Empty lines produce empty
/// records and are kept (record ids align with line numbers).
Corpus BuildCorpusFromLines(const std::vector<std::string>& lines, const Tokenizer& tokenizer);

/// Reads `path` as one document per line and builds a corpus.
StatusOr<Corpus> LoadCorpusFromFile(const std::string& path, const Tokenizer& tokenizer);

/// Computes summary statistics over `records`. `vocabulary_size` is the
/// number of distinct token ids observed.
CorpusStats ComputeCorpusStats(const std::vector<RecordPtr>& records);

/// Binary round-trip of a record collection (little-endian, versioned
/// header). The dictionary is not persisted; token ids are opaque.
Status SaveRecordsBinary(const std::string& path, const std::vector<RecordPtr>& records);
StatusOr<std::vector<RecordPtr>> LoadRecordsBinary(const std::string& path);

}  // namespace dssj

#endif  // DSSJ_TEXT_CORPUS_H_
