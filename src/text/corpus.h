#ifndef DSSJ_TEXT_CORPUS_H_
#define DSSJ_TEXT_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "text/record.h"
#include "text/token_dictionary.h"
#include "text/tokenizer.h"

namespace dssj {

/// What corpus ingestion did about malformed input (see CorpusOptions).
/// All zeros for a clean file.
struct CorpusHygiene {
  uint64_t overlong_lines = 0;      ///< truncated to max_line_bytes
  uint64_t invalid_utf8_lines = 0;  ///< invalid bytes replaced by spaces
  uint64_t empty_records = 0;       ///< lines yielding no tokens
};

/// Ingestion hardening knobs for LoadCorpusFromFile.
struct CorpusOptions {
  /// Longest accepted line; longer lines are truncated (lenient) or fail
  /// the load (strict). A guard against unbounded memory on corrupt input
  /// (e.g. a binary file with no newlines).
  size_t max_line_bytes = 1 << 20;

  /// Strict: the first malformed line (overlong or invalid UTF-8) fails the
  /// load with a line-numbered InvalidArgument. Lenient (default): sanitize
  /// — truncate overlong lines, replace invalid UTF-8 bytes with spaces —
  /// and count the repairs in Corpus::hygiene.
  bool strict = false;
};

/// A fully ingested corpus: records (token arrays frequency-ordered) plus
/// the dictionary that produced them. Records carry seq = their position,
/// so a corpus can be replayed as a stream directly.
struct Corpus {
  std::vector<RecordPtr> records;
  TokenDictionary dictionary;
  CorpusHygiene hygiene;
};

/// Summary statistics of a record collection; experiment E1 reports these.
struct CorpusStats {
  uint64_t num_records = 0;
  uint64_t vocabulary_size = 0;
  double avg_length = 0.0;
  uint64_t min_length = 0;
  uint64_t max_length = 0;
  /// Fraction of all token occurrences contributed by the 1% most frequent
  /// tokens — a scale-free skew indicator.
  double top1pct_token_mass = 0.0;
};

/// Builds a corpus from text lines: tokenize each line, build the
/// dictionary, count document frequencies, reorder token ids by ascending
/// frequency, and emit normalized records. Empty lines produce empty
/// records and are kept (record ids align with line numbers).
Corpus BuildCorpusFromLines(const std::vector<std::string>& lines, const Tokenizer& tokenizer);

/// Reads `path` as one document per line and builds a corpus, applying the
/// malformed-input policy in `options` (see CorpusOptions; the default
/// sanitizes and counts instead of failing).
StatusOr<Corpus> LoadCorpusFromFile(const std::string& path, const Tokenizer& tokenizer,
                                    const CorpusOptions& options = {});

/// Splits `data` into up to `shards` newline-aligned byte ranges
/// [first, second): every line falls wholly inside one range and the
/// ranges concatenate back to the full buffer. Small inputs may yield
/// empty ranges. Exposed for the sharding equivalence tests.
std::vector<std::pair<size_t, size_t>> ShardLineRanges(std::string_view data, int shards);

/// Sharded front-end variant of LoadCorpusFromFile: splits the file into
/// `lanes` newline-aligned byte ranges and scans + tokenizes each range on
/// its own thread against a lane-local dictionary, then stitches the lane
/// dictionaries in shard order (reproducing the serial first-seen id
/// order), sums the lane document frequencies, and applies the global
/// frequency remap. Record seqs come from the per-shard record base
/// (prefix sums of shard line counts), so the result — records, ids,
/// seqs, dictionary, hygiene counters, and strict-mode errors with their
/// global line numbers — is byte-identical to LoadCorpusFromFile for every
/// lane count. `tokenizer` must tolerate concurrent Tokenize calls (both
/// bundled tokenizers do).
StatusOr<Corpus> LoadCorpusFromFileSharded(const std::string& path, const Tokenizer& tokenizer,
                                           int lanes, const CorpusOptions& options = {});

/// True iff `text` is well-formed UTF-8 (ASCII included).
bool IsValidUtf8(std::string_view text);

/// Computes summary statistics over `records`. `vocabulary_size` is the
/// number of distinct token ids observed.
CorpusStats ComputeCorpusStats(const std::vector<RecordPtr>& records);

/// Binary round-trip of a record collection (little-endian, versioned
/// header). The dictionary is not persisted; token ids are opaque.
Status SaveRecordsBinary(const std::string& path, const std::vector<RecordPtr>& records);
StatusOr<std::vector<RecordPtr>> LoadRecordsBinary(const std::string& path);

}  // namespace dssj

#endif  // DSSJ_TEXT_CORPUS_H_
