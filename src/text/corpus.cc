#include "text/corpus.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "common/logging.h"

namespace dssj {
namespace {

constexpr uint32_t kRecordsMagic = 0x44534A31;  // "DSJ1"

template <typename T>
void WritePod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Corpus BuildCorpusFromLines(const std::vector<std::string>& lines, const Tokenizer& tokenizer) {
  Corpus corpus;
  // First pass: raw token ids in first-seen order + document frequencies.
  std::vector<std::vector<TokenId>> raw;
  raw.reserve(lines.size());
  std::vector<std::string> scratch;
  for (const std::string& line : lines) {
    scratch.clear();
    tokenizer.Tokenize(line, scratch);
    std::vector<TokenId> ids;
    ids.reserve(scratch.size());
    for (const std::string& tok : scratch) ids.push_back(corpus.dictionary.GetOrAdd(tok));
    NormalizeTokens(ids);
    for (TokenId id : ids) corpus.dictionary.CountDocumentOccurrence(id);
    raw.push_back(std::move(ids));
  }
  // Second pass: remap ids so ascending id = ascending document frequency.
  const std::vector<TokenId> remap = corpus.dictionary.ReorderByFrequency();
  corpus.dictionary.ApplyRemap(remap);
  corpus.records.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    RemapTokens(remap, raw[i]);
    corpus.records.push_back(
        std::make_shared<const Record>(/*id=*/i, /*seq=*/i, /*timestamp=*/0, std::move(raw[i])));
  }
  return corpus;
}

StatusOr<Corpus> LoadCorpusFromFile(const std::string& path, const Tokenizer& tokenizer) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open corpus file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return BuildCorpusFromLines(lines, tokenizer);
}

CorpusStats ComputeCorpusStats(const std::vector<RecordPtr>& records) {
  CorpusStats stats;
  stats.num_records = records.size();
  if (records.empty()) return stats;
  stats.min_length = ~0ULL;
  uint64_t total_tokens = 0;
  std::unordered_map<TokenId, uint64_t> freq;
  for (const RecordPtr& r : records) {
    const uint64_t len = r->size();
    total_tokens += len;
    stats.min_length = std::min(stats.min_length, len);
    stats.max_length = std::max(stats.max_length, len);
    for (TokenId t : r->tokens) ++freq[t];
  }
  stats.vocabulary_size = freq.size();
  stats.avg_length =
      static_cast<double>(total_tokens) / static_cast<double>(stats.num_records);
  if (stats.min_length == ~0ULL) stats.min_length = 0;
  if (total_tokens > 0 && !freq.empty()) {
    std::vector<uint64_t> counts;
    counts.reserve(freq.size());
    for (const auto& [_, c] : freq) counts.push_back(c);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    const size_t top = std::max<size_t>(1, counts.size() / 100);
    uint64_t mass = 0;
    for (size_t i = 0; i < top; ++i) mass += counts[i];
    stats.top1pct_token_mass = static_cast<double>(mass) / static_cast<double>(total_tokens);
  }
  return stats;
}

Status SaveRecordsBinary(const std::string& path, const std::vector<RecordPtr>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  WritePod(out, kRecordsMagic);
  WritePod(out, static_cast<uint64_t>(records.size()));
  for (const RecordPtr& r : records) {
    WritePod(out, r->id);
    WritePod(out, r->seq);
    WritePod(out, r->timestamp);
    WritePod(out, static_cast<uint32_t>(r->tokens.size()));
    out.write(reinterpret_cast<const char*>(r->tokens.data()),
              static_cast<std::streamsize>(r->tokens.size() * sizeof(TokenId)));
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<RecordPtr>> LoadRecordsBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &magic) || magic != kRecordsMagic) {
    return Status::InvalidArgument("bad magic in: " + path);
  }
  if (!ReadPod(in, &count)) return Status::InvalidArgument("truncated header: " + path);
  std::vector<RecordPtr> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, seq = 0;
    int64_t ts = 0;
    uint32_t len = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &seq) || !ReadPod(in, &ts) || !ReadPod(in, &len)) {
      return Status::InvalidArgument("truncated record header: " + path);
    }
    std::vector<TokenId> tokens(len);
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(len * sizeof(TokenId)));
    if (!in) return Status::InvalidArgument("truncated record body: " + path);
    records.push_back(std::make_shared<const Record>(id, seq, ts, std::move(tokens)));
  }
  return records;
}

}  // namespace dssj
