#include "text/corpus.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/logging.h"

namespace dssj {
namespace {

constexpr uint32_t kRecordsMagic = 0x44534A31;  // "DSJ1"

template <typename T>
void WritePod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

/// Length of the well-formed UTF-8 sequence starting at s[i] (1-4), or 0 if
/// the bytes there are not valid UTF-8 (bad lead byte, truncated or
/// malformed continuation, overlong encoding, surrogate, > U+10FFFF).
size_t Utf8SequenceLength(const unsigned char* s, size_t i, size_t n) {
  const unsigned char c = s[i];
  if (c < 0x80) return 1;
  size_t len;
  if ((c & 0xE0) == 0xC0) {
    if (c < 0xC2) return 0;  // overlong 2-byte form
    len = 2;
  } else if ((c & 0xF0) == 0xE0) {
    len = 3;
  } else if ((c & 0xF8) == 0xF0) {
    if (c > 0xF4) return 0;  // beyond U+10FFFF
    len = 4;
  } else {
    return 0;  // stray continuation byte or 0xFE/0xFF
  }
  if (i + len > n) return 0;  // truncated sequence
  for (size_t k = 1; k < len; ++k) {
    if ((s[i + k] & 0xC0) != 0x80) return 0;
  }
  if (len == 3) {
    if (c == 0xE0 && s[i + 1] < 0xA0) return 0;   // overlong 3-byte form
    if (c == 0xED && s[i + 1] >= 0xA0) return 0;  // UTF-16 surrogate
  } else if (len == 4) {
    if (c == 0xF0 && s[i + 1] < 0x90) return 0;   // overlong 4-byte form
    if (c == 0xF4 && s[i + 1] >= 0x90) return 0;  // beyond U+10FFFF
  }
  return len;
}

/// Replaces every byte not part of a well-formed UTF-8 sequence with a
/// space (a token separator, so the surrounding valid text still
/// tokenizes).
void ReplaceInvalidUtf8(std::string* line) {
  auto* s = reinterpret_cast<unsigned char*>(line->data());
  const size_t n = line->size();
  size_t i = 0;
  while (i < n) {
    const size_t len = Utf8SequenceLength(s, i, n);
    if (len == 0) {
      s[i++] = ' ';
    } else {
      i += len;
    }
  }
}

}  // namespace

bool IsValidUtf8(std::string_view text) {
  const auto* s = reinterpret_cast<const unsigned char*>(text.data());
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    const size_t len = Utf8SequenceLength(s, i, n);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

Corpus BuildCorpusFromLines(const std::vector<std::string>& lines, const Tokenizer& tokenizer) {
  Corpus corpus;
  // First pass: raw token ids in first-seen order + document frequencies.
  std::vector<std::vector<TokenId>> raw;
  raw.reserve(lines.size());
  std::vector<std::string> scratch;
  for (const std::string& line : lines) {
    scratch.clear();
    tokenizer.Tokenize(line, scratch);
    std::vector<TokenId> ids;
    ids.reserve(scratch.size());
    for (const std::string& tok : scratch) ids.push_back(corpus.dictionary.GetOrAdd(tok));
    NormalizeTokens(ids);
    for (TokenId id : ids) corpus.dictionary.CountDocumentOccurrence(id);
    raw.push_back(std::move(ids));
  }
  // Second pass: remap ids so ascending id = ascending document frequency.
  const std::vector<TokenId> remap = corpus.dictionary.ReorderByFrequency();
  corpus.dictionary.ApplyRemap(remap);
  corpus.records.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    RemapTokens(remap, raw[i]);
    if (raw[i].empty()) ++corpus.hygiene.empty_records;
    corpus.records.push_back(
        std::make_shared<const Record>(/*id=*/i, /*seq=*/i, /*timestamp=*/0, std::move(raw[i])));
  }
  return corpus;
}

StatusOr<Corpus> LoadCorpusFromFile(const std::string& path, const Tokenizer& tokenizer,
                                    const CorpusOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open corpus file: " + path);
  std::vector<std::string> lines;
  std::string line;
  CorpusHygiene hygiene;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.size() > options.max_line_bytes) {
      if (options.strict) {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) + ": line of " +
                                       std::to_string(line.size()) +
                                       " bytes exceeds max_line_bytes");
      }
      // Truncation may cut a UTF-8 sequence in half; the validation below
      // repairs (and counts) that too.
      line.resize(options.max_line_bytes);
      ++hygiene.overlong_lines;
    }
    if (!IsValidUtf8(line)) {
      if (options.strict) {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                       ": invalid UTF-8");
      }
      ReplaceInvalidUtf8(&line);
      ++hygiene.invalid_utf8_lines;
    }
    lines.push_back(std::move(line));
  }
  Corpus corpus = BuildCorpusFromLines(lines, tokenizer);
  corpus.hygiene.overlong_lines = hygiene.overlong_lines;
  corpus.hygiene.invalid_utf8_lines = hygiene.invalid_utf8_lines;
  return corpus;
}

std::vector<std::pair<size_t, size_t>> ShardLineRanges(std::string_view data, int shards) {
  shards = std::max(1, shards);
  const size_t n = data.size();
  std::vector<size_t> starts(static_cast<size_t>(shards), n);
  starts[0] = 0;
  for (int s = 1; s < shards; ++s) {
    // First line start at or after the even byte split. Targets are
    // monotone in s, so starts are too (equal starts = empty shard).
    const size_t target = n * static_cast<size_t>(s) / static_cast<size_t>(shards);
    const size_t nl = data.find('\n', target == 0 ? 0 : target - 1);
    starts[static_cast<size_t>(s)] = nl == std::string_view::npos ? n : nl + 1;
  }
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    const size_t end = s + 1 < shards ? starts[static_cast<size_t>(s) + 1] : n;
    ranges.emplace_back(starts[static_cast<size_t>(s)], end);
  }
  return ranges;
}

namespace {

/// Everything one lane produces from its byte range; stitched serially
/// afterwards.
struct ShardScan {
  std::vector<std::string> lines;  ///< sanitized (lenient mode)
  CorpusHygiene hygiene;
  /// Strict mode: 0-based local index of the first malformed line, or -1.
  int64_t error_line = -1;
  std::string error_what;  ///< message after "path:line: "
  TokenDictionary dict;    ///< lane-local first-seen ids
  std::vector<std::vector<TokenId>> raw;  ///< normalized, lane-local ids
};

/// Phase A+B of the sharded load: split `range` of `data` into lines,
/// apply the hygiene policy, and tokenize against a lane-local dictionary.
void ScanShard(std::string_view data, std::pair<size_t, size_t> range,
               const Tokenizer& tokenizer, const CorpusOptions& options, ShardScan* scan) {
  std::string_view rest = data.substr(range.first, range.second - range.first);
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    // getline semantics: '\n' is stripped, and a trailing segment with no
    // '\n' (only possible in the last shard) still counts as a line.
    std::string line(rest.substr(0, nl));
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
    if (line.size() > options.max_line_bytes) {
      if (options.strict) {
        scan->error_line = static_cast<int64_t>(scan->lines.size());
        scan->error_what = "line of " + std::to_string(line.size()) +
                           " bytes exceeds max_line_bytes";
        return;
      }
      line.resize(options.max_line_bytes);
      ++scan->hygiene.overlong_lines;
    }
    if (!IsValidUtf8(line)) {
      if (options.strict) {
        scan->error_line = static_cast<int64_t>(scan->lines.size());
        scan->error_what = "invalid UTF-8";
        return;
      }
      ReplaceInvalidUtf8(&line);
      ++scan->hygiene.invalid_utf8_lines;
    }
    scan->lines.push_back(std::move(line));
  }
  std::vector<std::string> scratch;
  scan->raw.reserve(scan->lines.size());
  for (const std::string& line : scan->lines) {
    scratch.clear();
    tokenizer.Tokenize(line, scratch);
    std::vector<TokenId> ids;
    ids.reserve(scratch.size());
    for (const std::string& tok : scratch) ids.push_back(scan->dict.GetOrAdd(tok));
    NormalizeTokens(ids);
    for (TokenId id : ids) scan->dict.CountDocumentOccurrence(id);
    if (ids.empty()) ++scan->hygiene.empty_records;
    scan->raw.push_back(std::move(ids));
  }
}

}  // namespace

StatusOr<Corpus> LoadCorpusFromFileSharded(const std::string& path, const Tokenizer& tokenizer,
                                           int lanes, const CorpusOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open corpus file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();

  const std::vector<std::pair<size_t, size_t>> ranges = ShardLineRanges(data, lanes);
  const size_t shards = ranges.size();
  std::vector<ShardScan> scans(shards);
  {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        ScanShard(data, ranges[s], tokenizer, options, &scans[s]);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Per-shard line (= record) bases: prefix sums of shard line counts.
  std::vector<uint64_t> base(shards, 0);
  for (size_t s = 1; s < shards; ++s) base[s] = base[s - 1] + scans[s - 1].lines.size();
  // Strict mode: the earliest shard with an error holds the globally first
  // malformed line (earlier shards scanned clean or they would have
  // errored too), so this reproduces the serial load's error exactly.
  for (size_t s = 0; s < shards; ++s) {
    if (scans[s].error_line < 0) continue;
    const uint64_t line_no = base[s] + static_cast<uint64_t>(scans[s].error_line) + 1;
    return Status::InvalidArgument(path + ":" + std::to_string(line_no) + ": " +
                                   scans[s].error_what);
  }

  Corpus corpus;
  // Stitch lane dictionaries in shard order: a token first seen globally in
  // shard s enters after every token first seen in shards < s and in
  // shard-local first-seen order within s — exactly the serial first-seen
  // id assignment. Frequencies sum; the (freq, first-seen id) remap is
  // therefore identical to the serial load's.
  std::vector<std::vector<TokenId>> to_global(shards);
  for (size_t s = 0; s < shards; ++s) {
    to_global[s].resize(scans[s].dict.size());
    for (TokenId local = 0; local < scans[s].dict.size(); ++local) {
      const TokenId global = corpus.dictionary.GetOrAdd(scans[s].dict.TokenString(local));
      to_global[s][local] = global;
      corpus.dictionary.AddDocumentOccurrences(global,
                                               scans[s].dict.DocumentFrequency(local));
    }
  }
  const std::vector<TokenId> remap = corpus.dictionary.ReorderByFrequency();
  corpus.dictionary.ApplyRemap(remap);
  for (size_t s = 0; s < shards; ++s) {
    // Compose lane-local -> global-first-seen -> frequency-ranked.
    for (TokenId& g : to_global[s]) g = remap[g];
  }

  const size_t total = base.back() + scans.back().lines.size();
  corpus.records.resize(total);
  {
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        ShardScan& scan = scans[s];
        for (size_t i = 0; i < scan.raw.size(); ++i) {
          std::vector<TokenId> ids = std::move(scan.raw[i]);
          RemapTokens(to_global[s], ids);
          const uint64_t seq = base[s] + i;
          corpus.records[seq] =
              std::make_shared<const Record>(/*id=*/seq, seq, /*timestamp=*/0, std::move(ids));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (const ShardScan& scan : scans) {
    corpus.hygiene.overlong_lines += scan.hygiene.overlong_lines;
    corpus.hygiene.invalid_utf8_lines += scan.hygiene.invalid_utf8_lines;
    corpus.hygiene.empty_records += scan.hygiene.empty_records;
  }
  return corpus;
}

CorpusStats ComputeCorpusStats(const std::vector<RecordPtr>& records) {
  CorpusStats stats;
  stats.num_records = records.size();
  if (records.empty()) return stats;
  stats.min_length = ~0ULL;
  uint64_t total_tokens = 0;
  std::unordered_map<TokenId, uint64_t> freq;
  for (const RecordPtr& r : records) {
    const uint64_t len = r->size();
    total_tokens += len;
    stats.min_length = std::min(stats.min_length, len);
    stats.max_length = std::max(stats.max_length, len);
    for (TokenId t : r->tokens) ++freq[t];
  }
  stats.vocabulary_size = freq.size();
  stats.avg_length =
      static_cast<double>(total_tokens) / static_cast<double>(stats.num_records);
  if (stats.min_length == ~0ULL) stats.min_length = 0;
  if (total_tokens > 0 && !freq.empty()) {
    std::vector<uint64_t> counts;
    counts.reserve(freq.size());
    for (const auto& [_, c] : freq) counts.push_back(c);
    std::sort(counts.begin(), counts.end(), std::greater<>());
    const size_t top = std::max<size_t>(1, counts.size() / 100);
    uint64_t mass = 0;
    for (size_t i = 0; i < top; ++i) mass += counts[i];
    stats.top1pct_token_mass = static_cast<double>(mass) / static_cast<double>(total_tokens);
  }
  return stats;
}

Status SaveRecordsBinary(const std::string& path, const std::vector<RecordPtr>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  WritePod(out, kRecordsMagic);
  WritePod(out, static_cast<uint64_t>(records.size()));
  for (const RecordPtr& r : records) {
    WritePod(out, r->id);
    WritePod(out, r->seq);
    WritePod(out, r->timestamp);
    WritePod(out, static_cast<uint32_t>(r->tokens.size()));
    out.write(reinterpret_cast<const char*>(r->tokens.data()),
              static_cast<std::streamsize>(r->tokens.size() * sizeof(TokenId)));
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<RecordPtr>> LoadRecordsBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &magic) || magic != kRecordsMagic) {
    return Status::InvalidArgument("bad magic in: " + path);
  }
  if (!ReadPod(in, &count)) return Status::InvalidArgument("truncated header: " + path);
  std::vector<RecordPtr> records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0, seq = 0;
    int64_t ts = 0;
    uint32_t len = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &seq) || !ReadPod(in, &ts) || !ReadPod(in, &len)) {
      return Status::InvalidArgument("truncated record header: " + path);
    }
    std::vector<TokenId> tokens(len);
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(len * sizeof(TokenId)));
    if (!in) return Status::InvalidArgument("truncated record body: " + path);
    records.push_back(std::make_shared<const Record>(id, seq, ts, std::move(tokens)));
  }
  return records;
}

}  // namespace dssj
