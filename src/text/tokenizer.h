#ifndef DSSJ_TEXT_TOKENIZER_H_
#define DSSJ_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dssj {

/// Splits text into token strings. Implementations must be deterministic;
/// the set-similarity semantics of the join come entirely from the token
/// multiset produced here (duplicates are collapsed downstream).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Appends the tokens of `text` to `out` (not cleared, not deduplicated).
  virtual void Tokenize(std::string_view text, std::vector<std::string>& out) const = 0;

  /// Convenience wrapper returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view text) const {
    std::vector<std::string> out;
    Tokenize(text, out);
    return out;
  }
};

/// Lower-cases and splits on any non-alphanumeric byte. "Data, Engineering!"
/// -> {"data", "engineering"}. ASCII-only case folding (non-ASCII bytes are
/// treated as separators), which matches the corpora this system targets.
/// Alphanumeric runs longer than kMaxTokenBytes are split into max-length
/// tokens, bounding dictionary key size on pathological input.
class WordTokenizer : public Tokenizer {
 public:
  static constexpr size_t kMaxTokenBytes = 4096;

  using Tokenizer::Tokenize;
  void Tokenize(std::string_view text, std::vector<std::string>& out) const override;
};

/// Sliding character q-grams of the lower-cased text (whitespace collapsed
/// to single spaces). Texts shorter than q yield the whole text as one
/// token. Standard choice for string-similarity joins over short strings.
class QGramTokenizer : public Tokenizer {
 public:
  /// Requires q >= 1.
  explicit QGramTokenizer(int q);

  using Tokenizer::Tokenize;
  void Tokenize(std::string_view text, std::vector<std::string>& out) const override;

  int q() const { return q_; }

 private:
  int q_;
};

}  // namespace dssj

#endif  // DSSJ_TEXT_TOKENIZER_H_
