#ifndef DSSJ_TEXT_TOKEN_DICTIONARY_H_
#define DSSJ_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/record.h"

namespace dssj {

/// Maps token strings to dense TokenIds and tracks document frequencies.
///
/// Ids are assigned in first-seen order during ingestion. Because prefix
/// filtering is most selective when the global token order is ascending
/// document frequency (rarest first), call ReorderByFrequency() after a
/// corpus pass (or on a sample of the stream) to obtain a remapping, then
/// translate records with it. The remapping is stable: ties broken by old
/// id, so rebuilding from the same corpus is reproducible.
class TokenDictionary {
 public:
  TokenDictionary() = default;

  // Movable but not copyable: the instance can be large.
  TokenDictionary(TokenDictionary&&) = default;
  TokenDictionary& operator=(TokenDictionary&&) = default;
  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;

  /// Returns the id of `token`, inserting it if new.
  TokenId GetOrAdd(std::string_view token);

  /// Returns the id of `token` or kNoToken if absent.
  static constexpr TokenId kNoToken = ~static_cast<TokenId>(0);
  TokenId Find(std::string_view token) const;

  /// Bumps the document frequency of `id` by one. Call once per distinct
  /// token per document.
  void CountDocumentOccurrence(TokenId id);

  /// Bumps the document frequency of `id` by `count` at once — used when a
  /// sharded corpus load folds lane-local frequency counts into the
  /// stitched global dictionary.
  void AddDocumentOccurrences(TokenId id, uint64_t count);

  /// Number of distinct tokens.
  size_t size() const { return strings_.size(); }

  /// The string for `id`. Requires id < size().
  const std::string& TokenString(TokenId id) const;

  /// Document frequency recorded for `id`.
  uint64_t DocumentFrequency(TokenId id) const;

  /// Computes a permutation new_id = remap[old_id] such that new ids are
  /// ascending in (document frequency, old id). Applying it makes sorted
  /// records begin with their rarest tokens.
  std::vector<TokenId> ReorderByFrequency() const;

  /// Applies a remapping produced by ReorderByFrequency to this dictionary
  /// (strings and frequencies move to their new ids).
  void ApplyRemap(const std::vector<TokenId>& remap);

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> doc_freq_;
};

/// Remaps and re-sorts a token array in place with `remap` from
/// TokenDictionary::ReorderByFrequency.
void RemapTokens(const std::vector<TokenId>& remap, std::vector<TokenId>& tokens);

}  // namespace dssj

#endif  // DSSJ_TEXT_TOKEN_DICTIONARY_H_
