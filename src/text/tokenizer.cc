#include "text/tokenizer.h"

#include <cctype>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif

#include "common/logging.h"

namespace dssj {
namespace {

/// Locale-independent ASCII [0-9A-Za-z] — NOT std::isalnum, whose answer
/// for bytes >= 0x80 depends on the process locale. The wide classify pass
/// below must agree with this byte-for-byte.
bool IsTokenChar(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

char ToLowerAscii(unsigned char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : static_cast<char>(c);
}

/// Reusable per-thread scratch for the classify pass. A batched corpus
/// load tokenizes millions of lines on each shard thread; the arena is
/// sized to the longest line seen and then never reallocates.
struct TokenizeScratch {
  std::vector<char> lowered;        ///< text with A-Z folded to a-z
  std::vector<unsigned char> cls;   ///< nonzero iff token byte
};

/// Fills `lowered`/`cls` for text[0..n). SSE2 classifies and case-folds 16
/// bytes per step: all four token-byte ranges sit below 0x80, so signed
/// byte compares are exact and bytes >= 0x80 (negative) classify as
/// separators, matching IsTokenChar.
void ClassifyAndLower(const char* text, size_t n, char* lowered, unsigned char* cls) {
  size_t i = 0;
#if defined(__SSE2__)
  const __m128i digit_lo = _mm_set1_epi8('0' - 1);
  const __m128i digit_hi = _mm_set1_epi8('9' + 1);
  const __m128i upper_lo = _mm_set1_epi8('A' - 1);
  const __m128i upper_hi = _mm_set1_epi8('Z' + 1);
  const __m128i lower_lo = _mm_set1_epi8('a' - 1);
  const __m128i lower_hi = _mm_set1_epi8('z' + 1);
  const __m128i case_bit = _mm_set1_epi8(0x20);
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(text + i));
    const __m128i digit =
        _mm_and_si128(_mm_cmpgt_epi8(v, digit_lo), _mm_cmplt_epi8(v, digit_hi));
    const __m128i upper =
        _mm_and_si128(_mm_cmpgt_epi8(v, upper_lo), _mm_cmplt_epi8(v, upper_hi));
    const __m128i lower =
        _mm_and_si128(_mm_cmpgt_epi8(v, lower_lo), _mm_cmplt_epi8(v, lower_hi));
    // A-Z have the 0x20 bit clear; OR-ing it in under the upper mask is
    // exactly the +32 fold.
    const __m128i folded = _mm_or_si128(v, _mm_and_si128(upper, case_bit));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lowered + i), folded);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(cls + i),
                     _mm_or_si128(digit, _mm_or_si128(upper, lower)));
  }
#endif
  for (; i < n; ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    lowered[i] = ToLowerAscii(c);
    cls[i] = IsTokenChar(c) ? 1 : 0;
  }
}

}  // namespace

void WordTokenizer::Tokenize(std::string_view text, std::vector<std::string>& out) const {
  const size_t n = text.size();
  if (n == 0) return;
  thread_local TokenizeScratch scratch;
  if (scratch.lowered.size() < n) {
    scratch.lowered.resize(n);
    scratch.cls.resize(n);
  }
  ClassifyAndLower(text.data(), n, scratch.lowered.data(), scratch.cls.data());
  size_t i = 0;
  while (i < n) {
    if (scratch.cls[i] == 0) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && scratch.cls[j] != 0) ++j;
    // Cap pathological runs (e.g. a megabyte of base64 with no
    // separators): split into max-length tokens instead of building one
    // unbounded dictionary key.
    for (size_t s = i; s < j; s += kMaxTokenBytes) {
      out.emplace_back(scratch.lowered.data() + s, std::min(kMaxTokenBytes, j - s));
    }
    i = j;
  }
}

QGramTokenizer::QGramTokenizer(int q) : q_(q) { CHECK_GE(q, 1); }

void QGramTokenizer::Tokenize(std::string_view text, std::vector<std::string>& out) const {
  // Normalize: lower-case, collapse whitespace runs to single spaces, trim.
  std::string norm;
  norm.reserve(text.size());
  bool pending_space = false;
  for (unsigned char c : text) {
    if (std::isspace(c) != 0) {
      pending_space = !norm.empty();
    } else {
      if (pending_space) {
        norm.push_back(' ');
        pending_space = false;
      }
      norm.push_back(ToLowerAscii(c));
    }
  }
  if (norm.empty()) return;
  if (norm.size() < static_cast<size_t>(q_)) {
    out.push_back(norm);
    return;
  }
  for (size_t i = 0; i + q_ <= norm.size(); ++i) {
    out.emplace_back(norm.substr(i, q_));
  }
}

}  // namespace dssj
