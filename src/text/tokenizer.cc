#include "text/tokenizer.h"

#include <cctype>

#include "common/logging.h"

namespace dssj {
namespace {

bool IsTokenChar(unsigned char c) { return std::isalnum(c) != 0; }

char ToLowerAscii(unsigned char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : static_cast<char>(c);
}

}  // namespace

void WordTokenizer::Tokenize(std::string_view text, std::vector<std::string>& out) const {
  std::string current;
  for (unsigned char c : text) {
    if (IsTokenChar(c)) {
      // Cap pathological runs (e.g. a megabyte of base64 with no
      // separators): split into max-length tokens instead of building one
      // unbounded dictionary key.
      if (current.size() == kMaxTokenBytes) {
        out.push_back(std::move(current));
        current.clear();
      }
      current.push_back(ToLowerAscii(c));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
}

QGramTokenizer::QGramTokenizer(int q) : q_(q) { CHECK_GE(q, 1); }

void QGramTokenizer::Tokenize(std::string_view text, std::vector<std::string>& out) const {
  // Normalize: lower-case, collapse whitespace runs to single spaces, trim.
  std::string norm;
  norm.reserve(text.size());
  bool pending_space = false;
  for (unsigned char c : text) {
    if (std::isspace(c) != 0) {
      pending_space = !norm.empty();
    } else {
      if (pending_space) {
        norm.push_back(' ');
        pending_space = false;
      }
      norm.push_back(ToLowerAscii(c));
    }
  }
  if (norm.empty()) return;
  if (norm.size() < static_cast<size_t>(q_)) {
    out.push_back(norm);
    return;
  }
  for (size_t i = 0; i + q_ <= norm.size(); ++i) {
    out.emplace_back(norm.substr(i, q_));
  }
}

}  // namespace dssj
