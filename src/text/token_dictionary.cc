#include "text/token_dictionary.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace dssj {

TokenId TokenDictionary::GetOrAdd(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const TokenId id = static_cast<TokenId>(strings_.size());
  strings_.emplace_back(token);
  doc_freq_.push_back(0);
  ids_.emplace(strings_.back(), id);
  return id;
}

TokenId TokenDictionary::Find(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kNoToken : it->second;
}

void TokenDictionary::CountDocumentOccurrence(TokenId id) {
  CHECK_LT(id, doc_freq_.size());
  ++doc_freq_[id];
}

void TokenDictionary::AddDocumentOccurrences(TokenId id, uint64_t count) {
  CHECK_LT(id, doc_freq_.size());
  doc_freq_[id] += count;
}

const std::string& TokenDictionary::TokenString(TokenId id) const {
  CHECK_LT(id, strings_.size());
  return strings_[id];
}

uint64_t TokenDictionary::DocumentFrequency(TokenId id) const {
  CHECK_LT(id, doc_freq_.size());
  return doc_freq_[id];
}

std::vector<TokenId> TokenDictionary::ReorderByFrequency() const {
  std::vector<TokenId> order(strings_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](TokenId a, TokenId b) {
    if (doc_freq_[a] != doc_freq_[b]) return doc_freq_[a] < doc_freq_[b];
    return a < b;
  });
  // order[rank] = old id at that rank; invert to remap[old_id] = rank.
  std::vector<TokenId> remap(strings_.size());
  for (TokenId rank = 0; rank < order.size(); ++rank) remap[order[rank]] = rank;
  return remap;
}

void TokenDictionary::ApplyRemap(const std::vector<TokenId>& remap) {
  CHECK_EQ(remap.size(), strings_.size());
  std::vector<std::string> new_strings(strings_.size());
  std::vector<uint64_t> new_freq(strings_.size());
  for (TokenId old_id = 0; old_id < remap.size(); ++old_id) {
    new_strings[remap[old_id]] = std::move(strings_[old_id]);
    new_freq[remap[old_id]] = doc_freq_[old_id];
  }
  strings_ = std::move(new_strings);
  doc_freq_ = std::move(new_freq);
  ids_.clear();
  for (TokenId id = 0; id < strings_.size(); ++id) ids_.emplace(strings_[id], id);
}

void RemapTokens(const std::vector<TokenId>& remap, std::vector<TokenId>& tokens) {
  for (auto& t : tokens) {
    CHECK_LT(t, remap.size());
    t = remap[t];
  }
  std::sort(tokens.begin(), tokens.end());
}

}  // namespace dssj
