#ifndef DSSJ_STREAM_RING_QUEUE_H_
#define DSSJ_STREAM_RING_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "stream/overload.h"
#include "stream/queue.h"

namespace dssj::stream {

/// Lock-free ring implementations of the Queue<T> contract (queue.h) for
/// co-located links — selected per link by the topology when it runs with
/// QueueImpl::kRing (the default):
///
///   SpscRingQueue  1:1 links (single upstream task, no transport threads):
///                  a classic single-producer single-consumer ring with
///                  monotonic 64-bit cursors.
///   RingQueue      fan-in links: a bounded MPMC ring in the style of
///                  Vyukov's algorithm — every slot carries its own sequence
///                  number, producers claim slots with a CAS on the enqueue
///                  cursor and publish by storing the slot sequence.
///
/// Both share three design points, spelled out in docs/INTERNALS.md §10:
///
///  * Cursor cache-line separation. The enqueue and dequeue cursors live on
///    their own `alignas(64)` cache lines so a producer advancing its cursor
///    never invalidates the line the consumer spins on, and vice versa.
///  * Acquire/release publication. A producer writes the slot, then
///    release-stores the publication cursor (SPSC) or the slot sequence
///    (MPMC); the consumer acquire-loads it before touching the slot. No
///    data ever synchronizes through a lock on the hot path.
///  * Spin-then-park waiting. An empty consumer (or a full producer) spins
///    briefly, yields, and finally parks on a condvar that exists only for
///    parking. The fast path never touches that lock: wakers read an atomic
///    parked-waiter count (after a seq_cst fence pairing with the waiter's
///    seq_cst registration) and skip the condvar entirely when nobody is
///    parked, and only the edge that can strand a waiter (empty→non-empty
///    for consumers, a dequeue from a full ring for producers) performs the
///    check at all, and a pending-broadcast flag dedupes repeated wakes of
///    a notified-but-not-yet-scheduled waiter, so a per-tuple stream into a
///    backlogged link pays for one wake per drain cycle, not one per push.
///    On top of that, a TrickleGate watches the consumer's drain sizes and,
///    when a wait streak identifies the per-tuple trickle regime, swaps the
///    park for unregistered timed naps so the producer skips the wake
///    syscall entirely (see TrickleGate for the regime analysis).
///
/// Close() must linearize against concurrent pushes without a lock — a
/// consumer that observed "closed and drained" must be guaranteed no later
/// Push can still be accepted. Both rings get this by folding the closed
/// flag into bit 63 of the claim cursor itself: Close() is a `fetch_or` of
/// kClosedBit, and every claim is a CAS whose expected value has the bit
/// clear, so no claim can succeed once the bit lands. "Accepted" therefore
/// means "claimed", and a claimed slot is always published, so a drained
/// check only has to wait out claims that are already in flight.
namespace ring_detail {

static constexpr uint64_t kClosedBit = 1ull << 63;
static constexpr uint64_t kPosMask = kClosedBit - 1;

inline size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

inline void CpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Pure-spin iterations before the yield phase. Spinning only helps when
/// the peer can make progress on another core; on a single-core host it
/// just burns the quantum the peer needs, so the budget collapses to zero
/// and waiters go straight to yielding (which hands the core over).
inline int SpinIters() {
  static const int iters = std::thread::hardware_concurrency() > 1 ? 128 : 0;
  return iters;
}

/// Yield iterations between spinning and parking. On a single-core host
/// this budget is also zero: a yielding waiter stays runnable with high
/// vruntime, so the peer's wake cannot preempt-schedule it the way waking
/// a parked (sleeping) thread does — the waiter would consistently lose
/// the race to observe the state its peer just produced (e.g. a consumer
/// sampling queue depth before the producer refills). Parking promptly
/// restores the sleeper-wakeup scheduling boost the mutex queue gets for
/// free from its condvar.
inline int YieldIters() {
  static const int iters = std::thread::hardware_concurrency() > 1 ? 64 : 0;
  return iters;
}

/// Parking primitive for the slow path. The mutex/condvar pair is used
/// only while a thread is actually parked; wakers pay one atomic load when
/// nobody is. Protocol (the Dekker pairing that makes a missed wake
/// impossible): a waiter registers with a seq_cst RMW on `waiters_` and
/// re-checks its predicate before sleeping; a waker makes the predicate
/// true, issues a seq_cst fence, and then reads `waiters_`. Either the
/// waker sees the registration (and notifies under the lock), or the
/// waiter's re-check sees the predicate. The timed wait is a belt-and-
/// braces backstop, not part of the protocol.
class ParkingLot {
 public:
  /// Blocks until pred() returns true. pred must only read atomics.
  template <typename Pred>
  void Await(Pred&& pred) {
    for (int i = 0; i < SpinIters(); ++i) {
      if (pred()) return;
      CpuPause();
    }
    for (int i = 0; i < YieldIters(); ++i) {
      if (pred()) return;
      std::this_thread::yield();
    }
    Park(pred);
  }

  /// Caller must issue std::atomic_thread_fence(seq_cst) between the store
  /// that makes the waiters' predicate true and this call.
  ///
  /// pending_ dedupes broadcasts: once a Wake has notified, further Wakes
  /// are no-ops until some waiter actually runs (a notified thread can stay
  /// not-yet-scheduled — and hence still registered — for a while on a
  /// loaded host, and re-notifying a runnable thread is a wasted syscall).
  /// Safe because notify_all covers every waiter registered at broadcast
  /// time, and a waiter registering later clears pending_ first — so a
  /// suppressed Wake implies the in-flight broadcast already covers every
  /// registered waiter (see Park for the seq_cst pairing).
  void Wake() {
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    if (pending_.exchange(true, std::memory_order_seq_cst)) return;
    { std::lock_guard<std::mutex> lock(mu_); }  // order against a registering waiter
    cv_.notify_all();
  }

 private:
  template <typename Pred>
  void Park(Pred&& pred) {
    std::unique_lock<std::mutex> lock(mu_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // A broadcast issued before this registration does not cover us; clear
    // pending_ so the next Wake signals again. The seq_cst store totally
    // orders against Wake's exchange: either Wake sees our clear (and
    // notifies), or our predicate re-check below sees the data the Wake's
    // caller published before its fence.
    pending_.store(false, std::memory_order_seq_cst);
    while (!pred()) {
      cv_.wait_for(lock, std::chrono::milliseconds(5));
      // We are awake, so the broadcast that woke us is consumed — the next
      // Wake must signal again. (Every waiter asleep at broadcast time was
      // woken by the same notify_all, so clearing here strands nobody.)
      pending_.store(false, std::memory_order_seq_cst);
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::atomic<int> waiters_{0};
  std::atomic<bool> pending_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Adaptive consumer-side wait strategy, consulted by both rings at the top
/// of every wait episode (the ring looked empty). Two regimes:
///
///  * Bursty links (the common case): the consumer parks on the ParkingLot
///    and the producer's empty→non-empty edge wakes it to a backlog. Wakes
///    are rare because drains are large.
///  * Per-tuple trickle (a serial dispatcher fanning single tuples out to
///    many parked joiners — bench_throughput_threshold's serial-dispatch
///    cell): every push lands on a parked consumer, so park-based waiting
///    degenerates to one wake syscall per tuple, and on a single-core host
///    the woken consumer preempts the producer (sleeper boost), drains the
///    one tuple, and parks again — a context-switch ping-pong that makes
///    the *producer* the bottleneck. The fix is to stop telling the
///    producer: once a streak of waits each preceded by a tiny drain
///    identifies the trickle regime, the consumer waits by napping in timed
///    slices *without registering as parked*, so the producer's Wake sees
///    no waiters and skips the syscall, and tuples batch up across the nap.
///
/// Transitions are deliberately asymmetric so the gate cannot oscillate:
/// kTrickleWaits consecutive waits with drains <= kTrickleItems enter nap
/// mode, and only a *barren* nap (the link went quiet) leaves it — a nap
/// that woke to a big backlog is the strategy working, not evidence against
/// it. Purely a wait-strategy heuristic: naps delay a pop by at most
/// kNapMicros, they never change what is popped.
class TrickleGate {
 public:
  static constexpr uint64_t kTrickleItems = 3;
  static constexpr int kTrickleWaits = 4;
  static constexpr int kBarrenNaps = 2;
  static constexpr int kNapMicros = 200;

  /// Consumer popped n items (any pop path).
  void OnPopped(size_t n) {
    items_since_wait_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Top of a wait episode: returns true when the consumer should take one
  /// timed nap (Nap()) before falling back to the ParkingLot.
  bool ShouldNap() {
    const uint64_t drained = items_since_wait_.exchange(0, std::memory_order_relaxed);
    if (nap_mode_.load(std::memory_order_relaxed)) return true;
    if (drained <= kTrickleItems) {
      if (streak_.fetch_add(1, std::memory_order_relaxed) + 1 >= kTrickleWaits) {
        streak_.store(0, std::memory_order_relaxed);
        nap_mode_.store(true, std::memory_order_relaxed);
        return true;
      }
    } else {
      streak_.store(0, std::memory_order_relaxed);
    }
    return false;
  }

  /// A nap expired with the ring still empty: the link is quiet, so go back
  /// to parked waits (which cost nothing while idle and wake instantly).
  void OnNapBarren() {
    nap_mode_.store(false, std::memory_order_relaxed);
    streak_.store(0, std::memory_order_relaxed);
  }

  static void Nap() {
    std::this_thread::sleep_for(std::chrono::microseconds(kNapMicros));
  }

 private:
  std::atomic<uint64_t> items_since_wait_{0};
  std::atomic<int> streak_{0};
  std::atomic<bool> nap_mode_{false};
};

/// Queue-health bookkeeping shared by both rings, replicating the
/// BoundedQueue gauges (depth EWMA, time at capacity, oldest-tuple age via
/// (count, stamp) runs). Inert — one dead atomic branch per operation —
/// until Enable(); when enabled it serializes on its own small mutex, which
/// only overload-control runs ever turn on (the mutex queue held a lock for
/// the same bookkeeping). Depths are the caller's racy post-op estimates:
/// the gauges steer shedding and the watchdog, not correctness.
class RingHealthTracker {
 public:
  void Enable() { enabled_.store(true, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void OnEnqueued(size_t added, size_t depth, size_t capacity) {
    if (!enabled() || added == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    marks_.push_back(Mark{added, NowMicros()});
    UpdateClock(depth, capacity);
  }

  void OnDequeued(size_t removed, size_t depth, size_t capacity) {
    if (!enabled() || removed == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    while (removed > 0 && !marks_.empty()) {
      Mark& front = marks_.front();
      if (front.count <= removed) {
        removed -= front.count;
        marks_.pop_front();
      } else {
        front.count -= removed;
        removed = 0;
      }
    }
    UpdateClock(depth, capacity);
  }

  QueueHealth Snapshot(size_t depth, size_t capacity) const {
    QueueHealth h;
    h.depth = depth;
    h.capacity = capacity;
    std::lock_guard<std::mutex> lock(mu_);
    h.depth_ewma = depth_ewma_;
    h.time_at_capacity_micros = time_at_capacity_us_;
    if (enabled()) {
      const int64_t now = NowMicros();
      if (!marks_.empty()) h.oldest_age_micros = now - marks_.front().enqueued_us;
      if (full_since_us_ != 0) {
        h.at_capacity_stretch_micros = now - full_since_us_;
        h.time_at_capacity_micros += h.at_capacity_stretch_micros;
      }
    }
    return h;
  }

 private:
  struct Mark {
    size_t count;
    int64_t enqueued_us;
  };

  void UpdateClock(size_t depth, size_t capacity) {
    constexpr double kAlpha = 0.05;
    depth_ewma_ += kAlpha * (static_cast<double>(depth) - depth_ewma_);
    if (depth >= capacity) {
      if (full_since_us_ == 0) full_since_us_ = NowMicros();
    } else if (full_since_us_ != 0) {
      time_at_capacity_us_ += NowMicros() - full_since_us_;
      full_since_us_ = 0;
    }
  }

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<Mark> marks_;
  double depth_ewma_ = 0.0;
  int64_t full_since_us_ = 0;
  int64_t time_at_capacity_us_ = 0;
};

}  // namespace ring_detail

/// Single-producer single-consumer lock-free ring. The topology uses it for
/// 1:1 links (exactly one upstream task, no transport threads), where it
/// degenerates to one CAS (uncontended except against Close) plus one
/// release store per push and two loads plus one release store per pop.
///
/// Cursors: `claim_` (producer claims space; carries the closed bit),
/// `head_` (publication — slots below it are readable), `tail_`
/// (consumption). claim_ == head_ except while the producer is writing
/// slots, so a drained check waits until they agree.
template <typename T>
class SpscRingQueue final : public Queue<T> {
  static constexpr uint64_t kClosedBit = ring_detail::kClosedBit;
  static constexpr uint64_t kPosMask = ring_detail::kPosMask;

 public:
  explicit SpscRingQueue(size_t capacity)
      : capacity_(capacity),
        ring_size_(ring_detail::RoundUpPow2(capacity)),
        mask_(ring_size_ - 1),
        slots_(ring_size_) {
    CHECK_GE(capacity, 1u);
  }

  SpscRingQueue(const SpscRingQueue&) = delete;
  SpscRingQueue& operator=(const SpscRingQueue&) = delete;

  size_t Push(T item) override {
    uint64_t pos;
    if (!ClaimOrPark(1, &pos)) return 0;
    slots_[pos & mask_] = std::move(item);
    head_.store(pos + 1, std::memory_order_release);
    WakeConsumerOnEmptyEdge(pos);
    const size_t depth = DepthAfter(pos + 1);
    health_.OnEnqueued(1, depth, capacity_);
    return depth;
  }

  size_t PushBatch(std::vector<T>* items) override {
    const size_t n = items->size();
    if (n == 0) return size();
    size_t i = 0;
    size_t depth = 0;
    while (i < n) {
      uint64_t pos;
      const size_t want = n - i;
      size_t got = ClaimUpTo(want, &pos);
      if (got == 0) {
        if (!ClaimOrPark(1, &pos)) break;  // closed: leave the remainder
        got = 1;
      }
      const uint64_t first = pos;
      for (size_t k = 0; k < got; ++k) {
        slots_[pos & mask_] = std::move((*items)[i++]);
        // Publish per item so a chunk blocked on a full ring has already
        // handed everything written so far to the consumer.
        head_.store(++pos, std::memory_order_release);
      }
      WakeConsumerOnEmptyEdge(first);
      depth = DepthAfter(pos);
      health_.OnEnqueued(got, depth, capacity_);
    }
    items->erase(items->begin(), items->begin() + static_cast<ptrdiff_t>(i));
    return depth;
  }

  T Pop() override {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    WaitForItem(tail);
    CHECK(head_.load(std::memory_order_acquire) != tail) << "Pop on a closed, drained queue";
    T item = std::move(slots_[tail & mask_]);
    FinishPop(tail, 1);
    return item;
  }

  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    CHECK_GE(max_items, 1u);
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    WaitForItem(tail);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (head == tail) return 0;  // closed and drained
    const size_t n = std::min<uint64_t>(max_items, head - tail);
    for (size_t k = 0; k < n; ++k) out->push_back(std::move(slots_[(tail + k) & mask_]));
    FinishPop(tail, n);
    return n;
  }

  size_t Drain(std::vector<T>* out) override {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t n = head - tail;
    if (n == 0) return 0;
    for (size_t k = 0; k < n; ++k) out->push_back(std::move(slots_[(tail + k) & mask_]));
    FinishPop(tail, n);
    return n;
  }

  bool TryPop(T* out) override {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (head_.load(std::memory_order_acquire) == tail) return false;
    *out = std::move(slots_[tail & mask_]);
    FinishPop(tail, 1);
    return true;
  }

  void Close() override {
    claim_.fetch_or(kClosedBit, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    producers_.Wake();
    consumers_.Wake();
  }

  bool closed() const override {
    return (claim_.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  size_t size() const override {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

  size_t capacity() const override { return capacity_; }

  void EnableHealthTracking() override { health_.Enable(); }

  QueueHealth Health() const override { return health_.Snapshot(size(), capacity_); }

 private:
  /// Claims up to `want` slots without blocking. Returns 0 when the ring is
  /// full or closed; on success *first is the first claimed position.
  size_t ClaimUpTo(size_t want, uint64_t* first) {
    for (;;) {
      const uint64_t raw = claim_.load(std::memory_order_seq_cst);
      if (raw & kClosedBit) return 0;
      const uint64_t pos = raw;
      const uint64_t tail = tail_.load(std::memory_order_acquire);
      if (pos - tail >= capacity_) return 0;
      const size_t room = capacity_ - static_cast<size_t>(pos - tail);
      const size_t take = std::min(want, room);
      uint64_t expected = raw;
      // The CAS only ever races Close()'s fetch_or (single producer), and
      // it is exactly what makes Close linearizable: once the bit is set no
      // claim can succeed, so "accepted" == "claimed before the bit".
      if (claim_.compare_exchange_strong(expected, raw + take, std::memory_order_seq_cst)) {
        *first = pos;
        return take;
      }
    }
  }

  /// Claims `want` slots, parking while the ring is full. Returns false
  /// when the queue closed instead.
  bool ClaimOrPark(size_t want, uint64_t* first) {
    for (;;) {
      if (ClaimUpTo(want, first) != 0) return true;
      if (closed()) return false;
      producers_.Await([this] {
        const uint64_t raw = claim_.load(std::memory_order_seq_cst);
        if (raw & kClosedBit) return true;
        return raw - tail_.load(std::memory_order_seq_cst) < capacity_;
      });
    }
  }

  /// Empty→non-empty edge: wake a parked consumer only when the consumer
  /// had already caught up to `first` (tail_ >= first), i.e. it can have
  /// observed the ring empty and parked. Earlier pushes handled earlier
  /// parks, so this is the only edge that can strand it.
  void WakeConsumerOnEmptyEdge(uint64_t first) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (tail_.load(std::memory_order_relaxed) >= first) consumers_.Wake();
  }

  void WaitForItem(uint64_t tail) {
    if (head_.load(std::memory_order_acquire) != tail) return;
    auto pred = [this, tail] {
      if (head_.load(std::memory_order_seq_cst) != tail) return true;
      const uint64_t raw = claim_.load(std::memory_order_seq_cst);
      // Closed and drained only once in-flight claims have published.
      return (raw & kClosedBit) != 0 && (raw & kPosMask) == tail;
    };
    if (trickle_.ShouldNap()) {
      for (int b = 0; b < ring_detail::TrickleGate::kBarrenNaps; ++b) {
        ring_detail::TrickleGate::Nap();
        if (pred()) return;  // productive nap: stay in nap mode
      }
      trickle_.OnNapBarren();
    }
    consumers_.Await(pred);
  }

  void FinishPop(uint64_t tail, size_t n) {
    trickle_.OnPopped(n);
    tail_.store(tail + n, std::memory_order_release);
    // Full→non-full edge: only a dequeue from a full ring can unblock a
    // parked producer.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if ((claim_.load(std::memory_order_relaxed) & kPosMask) - tail >= capacity_) {
      producers_.Wake();
    }
    health_.OnDequeued(n, DepthAfter(head_.load(std::memory_order_relaxed)), capacity_);
  }

  size_t DepthAfter(uint64_t head) const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<size_t>(head - tail) : 1;
  }

  const size_t capacity_;
  const size_t ring_size_;
  const uint64_t mask_;
  std::vector<T> slots_;

  /// Producer side: claim cursor (closed bit lives here) and publication
  /// cursor, on their own line away from the consumer's tail.
  alignas(64) std::atomic<uint64_t> claim_{0};
  std::atomic<uint64_t> head_{0};
  /// Consumer side.
  alignas(64) std::atomic<uint64_t> tail_{0};
  ring_detail::TrickleGate trickle_;  // consumer-side, shares the tail line

  alignas(64) ring_detail::ParkingLot producers_;
  ring_detail::ParkingLot consumers_;
  ring_detail::RingHealthTracker health_;
};

/// Bounded lock-free MPMC ring (Vyukov-style slot sequencing) with the
/// blocking Queue<T> contract on top. The topology uses it for fan-in
/// links — several producer tasks (or transport threads) feeding one
/// consumer task — but it is safe for any number of consumers too, which
/// the stress tests exercise.
///
/// Every slot carries a sequence number: `seq == pos` means free for the
/// producer claiming position pos, `seq == pos + 1` means published for the
/// consumer expecting position pos, and a consumed slot is re-armed to
/// `pos + ring_size_` for its next lap. Producers claim with a CAS on the
/// enqueue cursor (which also carries the closed bit) and publish with a
/// release store of the slot sequence; claim order is consumption order, so
/// each producer's items stay FIFO — the invariant the exactly-once rule
/// needs. The logical capacity check (`pos - dequeue >= capacity`) runs
/// against the claim ticket before the CAS, so occupancy never exceeds the
/// configured capacity even though the ring itself is rounded up to a power
/// of two (and to at least 2, so a published slot from the previous lap can
/// never alias a free one).
template <typename T>
class RingQueue final : public Queue<T> {
  static constexpr uint64_t kClosedBit = ring_detail::kClosedBit;
  static constexpr uint64_t kPosMask = ring_detail::kPosMask;

 public:
  explicit RingQueue(size_t capacity)
      : capacity_(capacity),
        ring_size_(std::max<size_t>(2, ring_detail::RoundUpPow2(capacity))),
        mask_(ring_size_ - 1),
        cells_(ring_size_) {
    CHECK_GE(capacity, 1u);
    for (size_t i = 0; i < ring_size_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  size_t Push(T item) override {
    uint64_t pos;
    Cell* cell;
    if (!ClaimOrPark(&pos, &cell)) return 0;
    cell->value = std::move(item);
    cell->seq.store(pos + 1, std::memory_order_release);
    WakeConsumerOnEmptyEdge(pos);
    const size_t depth = DepthAfter(pos + 1);
    health_.OnEnqueued(1, depth, capacity_);
    return depth;
  }

  size_t PushBatch(std::vector<T>* items) override {
    const size_t n = items->size();
    if (n == 0) return size();
    size_t i = 0;
    size_t depth = 0;
    size_t accepted_run = 0;
    uint64_t last_pos = 0;
    while (i < n) {
      uint64_t pos;
      Cell* cell;
      if (!ClaimOrPark(&pos, &cell)) break;  // closed: leave the remainder
      cell->value = std::move((*items)[i++]);
      cell->seq.store(pos + 1, std::memory_order_release);
      WakeConsumerOnEmptyEdge(pos);
      last_pos = pos;
      ++accepted_run;
    }
    if (accepted_run > 0) {
      depth = DepthAfter(last_pos + 1);
      health_.OnEnqueued(accepted_run, depth, capacity_);
    }
    items->erase(items->begin(), items->begin() + static_cast<ptrdiff_t>(i));
    return depth;
  }

  T Pop() override {
    T item{};
    const int got = PopOne(&item, /*blocking=*/true);
    CHECK_EQ(got, 1) << "Pop on a closed, drained queue";
    return item;
  }

  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    CHECK_GE(max_items, 1u);
    for (;;) {
      uint64_t first = 0;
      const size_t n = PopAvailable(out, max_items, &first);
      if (n > 0) {
        FinishPop(first, n);
        return n;
      }
      if (DrainedAndClosed()) return 0;
      AwaitItem();
    }
  }

  size_t Drain(std::vector<T>* out) override {
    uint64_t first = 0;
    const size_t n = PopAvailable(out, kPosMask, &first);
    if (n > 0) FinishPop(first, n);
    return n;
  }

  bool TryPop(T* out) override { return PopOne(out, /*blocking=*/false) == 1; }

  void Close() override {
    enqueue_pos_.fetch_or(kClosedBit, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    producers_.Wake();
    consumers_.Wake();
  }

  bool closed() const override {
    return (enqueue_pos_.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  size_t size() const override {
    const uint64_t enq = enqueue_pos_.load(std::memory_order_acquire) & kPosMask;
    const uint64_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq > deq ? static_cast<size_t>(enq - deq) : 0;
  }

  size_t capacity() const override { return capacity_; }

  void EnableHealthTracking() override { health_.Enable(); }

  QueueHealth Health() const override { return health_.Snapshot(size(), capacity_); }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  /// One non-blocking claim attempt. Returns +1 on success, 0 when the ring
  /// is full (or the claimable slot is still being consumed — backpressure
  /// either way), -1 when closed.
  int TryClaim(uint64_t* out_pos, Cell** out_cell) {
    for (;;) {
      const uint64_t raw = enqueue_pos_.load(std::memory_order_seq_cst);
      if (raw & kClosedBit) return -1;
      const uint64_t pos = raw;
      if (pos - dequeue_pos_.load(std::memory_order_seq_cst) >= capacity_) return 0;
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq - pos);
      if (dif == 0) {
        uint64_t expected = raw;
        if (enqueue_pos_.compare_exchange_weak(expected, raw + 1,
                                               std::memory_order_seq_cst)) {
          *out_pos = pos;
          *out_cell = &cell;
          return 1;
        }
      } else if (dif < 0) {
        // Previous-lap occupant not fully consumed yet: full in practice.
        return 0;
      }
      // Another producer claimed pos first (dif > 0 or CAS failure): retry.
    }
  }

  bool ClaimOrPark(uint64_t* out_pos, Cell** out_cell) {
    for (;;) {
      const int r = TryClaim(out_pos, out_cell);
      if (r == 1) return true;
      if (r == -1) return false;
      producers_.Await([this] {
        const uint64_t raw = enqueue_pos_.load(std::memory_order_seq_cst);
        if (raw & kClosedBit) return true;
        const uint64_t pos = raw;
        if (pos - dequeue_pos_.load(std::memory_order_seq_cst) >= capacity_) return false;
        const uint64_t seq = cells_[pos & mask_].seq.load(std::memory_order_seq_cst);
        return static_cast<int64_t>(seq - pos) >= 0;
      });
    }
  }

  /// Empty→non-empty edge (see SpscRingQueue): only the publisher of the
  /// slot the consumer is about to park on can strand it, and for that
  /// publisher dequeue_pos has caught up to its position.
  void WakeConsumerOnEmptyEdge(uint64_t pos) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (dequeue_pos_.load(std::memory_order_relaxed) >= pos) consumers_.Wake();
  }

  /// Claims and moves out up to max_items published slots. Stops at the
  /// first unpublished (or empty) position. *first is the first position
  /// consumed (valid when the return value is > 0).
  size_t PopAvailable(std::vector<T>* out, size_t max_items, uint64_t* first) {
    size_t got = 0;
    while (got < max_items) {
      uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq - (pos + 1));
      if (dif < 0) break;  // empty or still being published
      if (dif > 0) continue;  // another consumer advanced dequeue_pos; reload
      uint64_t expected = pos;
      if (!dequeue_pos_.compare_exchange_weak(expected, pos + 1,
                                              std::memory_order_seq_cst)) {
        continue;
      }
      out->push_back(std::move(cell.value));
      cell.seq.store(pos + ring_size_, std::memory_order_release);
      if (got == 0) *first = pos;
      ++got;
    }
    return got;
  }

  int PopOne(T* out, bool blocking) {
    for (;;) {
      uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
      Cell& cell = cells_[pos & mask_];
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq - (pos + 1));
      if (dif == 0) {
        uint64_t expected = pos;
        if (!dequeue_pos_.compare_exchange_weak(expected, pos + 1,
                                                std::memory_order_seq_cst)) {
          continue;
        }
        *out = std::move(cell.value);
        cell.seq.store(pos + ring_size_, std::memory_order_release);
        FinishPop(pos, 1);
        return 1;
      }
      if (dif > 0) continue;
      if (!blocking) return 0;
      if (DrainedAndClosed()) return 0;
      AwaitItem();
    }
  }

  bool DrainedAndClosed() const {
    const uint64_t raw = enqueue_pos_.load(std::memory_order_seq_cst);
    if (!(raw & kClosedBit)) return false;
    // All claims consumed? In-flight claims will still publish, so wait
    // for them (a claimed item was accepted).
    return dequeue_pos_.load(std::memory_order_seq_cst) == (raw & kPosMask);
  }

  void AwaitItem() {
    auto pred = [this] {
      const uint64_t pos = dequeue_pos_.load(std::memory_order_seq_cst);
      const uint64_t seq = cells_[pos & mask_].seq.load(std::memory_order_seq_cst);
      if (static_cast<int64_t>(seq - (pos + 1)) >= 0) return true;  // consumable
      return DrainedAndClosed();
    };
    if (trickle_.ShouldNap()) {
      for (int b = 0; b < ring_detail::TrickleGate::kBarrenNaps; ++b) {
        ring_detail::TrickleGate::Nap();
        if (pred()) return;  // productive nap: stay in nap mode
      }
      trickle_.OnNapBarren();
    }
    consumers_.Await(pred);
  }

  void FinishPop(uint64_t first, size_t n) {
    trickle_.OnPopped(n);
    // Full→non-full edge: a parked producer implies the ring was full over
    // [its probe, now], which forces enqueue - first >= capacity here.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const uint64_t enq = enqueue_pos_.load(std::memory_order_relaxed) & kPosMask;
    if (enq - first >= capacity_) producers_.Wake();
    health_.OnDequeued(n, size(), capacity_);
  }

  size_t DepthAfter(uint64_t enq_after) const {
    const uint64_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq_after > deq ? static_cast<size_t>(enq_after - deq) : 1;
  }

  const size_t capacity_;
  const size_t ring_size_;
  const uint64_t mask_;
  std::vector<Cell> cells_;

  /// Enqueue cursor (claim tickets + closed bit) and dequeue cursor on
  /// separate cache lines: producers and consumers never dirty each
  /// other's line just by advancing their own side.
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  ring_detail::TrickleGate trickle_;  // consumer-side, shares the dequeue line

  alignas(64) ring_detail::ParkingLot producers_;
  ring_detail::ParkingLot consumers_;
  ring_detail::RingHealthTracker health_;
};

/// Builds the implementation `impl` selects for a link with the given
/// number of producer threads (`spsc_safe` = exactly one producer task and
/// no transport threads can ever push).
template <typename T>
std::unique_ptr<Queue<T>> MakeQueue(QueueImpl impl, size_t capacity, bool spsc_safe) {
  if (impl == QueueImpl::kMutex) return std::make_unique<BoundedQueue<T>>(capacity);
  if (spsc_safe) return std::make_unique<SpscRingQueue<T>>(capacity);
  return std::make_unique<RingQueue<T>>(capacity);
}

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_RING_QUEUE_H_
