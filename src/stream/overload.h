#ifndef DSSJ_STREAM_OVERLOAD_H_
#define DSSJ_STREAM_OVERLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dssj::stream {

/// What a bolt sheds when its inbound queue crosses the high watermark.
/// Shedding only ever drops the *probe* side of a tuple — stores are always
/// processed, so the index contents and the exactly-once store invariant
/// are byte-identical to a shed-free run; only result pairs whose probe was
/// shed are lost, and every shed is counted (see docs/INTERNALS.md §8).
enum class ShedPolicy {
  kNone,    ///< hard backpressure only (seed behavior)
  kProbe,   ///< level-triggered: shed probes while depth >= watermark
  kOldest,  ///< latch-triggered: on crossing, shed the backlog's probes
  kBundle,  ///< kProbe + shrink the stored window to recover service rate
};

const char* ShedPolicyName(ShedPolicy policy);

/// Parses "none" / "probe" / "oldest" / "bundle". Returns false (and leaves
/// *out untouched) on anything else.
bool ParseShedPolicy(const std::string& name, ShedPolicy* out);

/// Topology-level overload control knobs (TopologyBuilder::SetOverload).
struct OverloadOptions {
  ShedPolicy shed_policy = ShedPolicy::kNone;
  /// Queue-depth fraction of capacity at which shedding engages.
  double shed_watermark = 0.75;
  /// How often the watchdog samples progress and queue health.
  int64_t watchdog_interval_micros = 50'000;
  /// The watchdog trips when the topology makes no progress for this long
  /// with work pending, or when a queued tuple is older than this (a
  /// latency-SLO breach under sustained overload). 0 disables the watchdog.
  int64_t stall_timeout_micros = 0;
  /// Tripped watchdog: fail the topology with a per-task dump (true), or
  /// force shedding on every bolt and keep running (false).
  bool fail_fast = true;

  bool enabled() const {
    return shed_policy != ShedPolicy::kNone || stall_timeout_micros > 0;
  }
};

/// Point-in-time health snapshot of one task's inbound queue, taken under
/// the queue lock (BoundedQueue::Health). Tracking is off (and the numbers
/// stay zero) unless EnableHealthTracking() was called before Submit.
struct QueueHealth {
  size_t depth = 0;
  size_t capacity = 0;
  /// Exponentially weighted depth, updated on every queue operation.
  double depth_ewma = 0.0;
  /// Cumulative time the queue has spent at capacity (backpressuring).
  int64_t time_at_capacity_micros = 0;
  /// Length of the *current* continuous at-capacity stretch (0 if not full).
  int64_t at_capacity_stretch_micros = 0;
  /// Age of the oldest queued tuple (0 if empty).
  int64_t oldest_age_micros = 0;
  /// Set by the executor wrapper when the watchdog forced shedding on
  /// (OverloadOptions::fail_fast == false); not a queue property.
  bool force_shed = false;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_OVERLOAD_H_
