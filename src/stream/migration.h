// Live task migration: the serialized executor state that travels from a
// migration's source worker to its target, plus the control-plane message
// types the coordinator drives the protocol with.
//
// A migration freezes one bolt task at an *exact sequence boundary*: the
// coordinator pauses every producer feeding the task (their deliveries gate
// on a per-task quiesce barrier), injects a PREPARE marker into the task's
// inbound queue, and the executor — having drained everything ahead of the
// marker, which is precisely the in-flight gap replay — snapshots the bolt
// and its link bookkeeping into a MigrationState. The blob is the whole
// truth: a fresh bolt instance on any worker, after Restore(bolt_state) and
// adoption of the collector cursors / LinkGuard sequences below, emits
// byte-identical output for all subsequent input. See docs/INTERNALS.md §12.
#ifndef DSSJ_STREAM_MIGRATION_H_
#define DSSJ_STREAM_MIGRATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dssj::stream {

/// Control-plane message kinds for live migration. They map 1:1 onto the
/// PREPARE/STATE/HANDOFF/ACK wire frame types in src/net/wire.h; in-process
/// topologies short-circuit them through direct calls.
enum class ControlKind : uint8_t {
  kPrepare = 0,  ///< coordinator → source rank: freeze the task, ship state
  kState = 1,    ///< source → coordinator → target: the MigrationState blob
  kHandoff = 2,  ///< target → coordinator: state restored, executor running
  kAck = 3,      ///< coordinator → source: routing flipped, decommission
  kFinish = 4,   ///< coordinator → worker: run over, release the finish hold
};

/// One control-plane message. `worker` is the migration's target rank; the
/// blob rides only on kState.
struct ControlFrame {
  ControlKind kind = ControlKind::kPrepare;
  uint32_t migration_id = 0;
  int32_t task_id = -1;
  int32_t worker = -1;
  std::string blob;
};

/// Complete executor-level state of one bolt task at a sequence boundary.
struct MigrationState {
  uint32_t task_id = 0;
  /// Tuples executed since stream start; the restored executor's scripted
  /// kill/checkpoint counters continue from here.
  uint64_t executed_total = 0;
  /// EOS markers still outstanding from upstream tasks.
  uint32_t remaining_eos = 0;
  /// Bolt Snapshot() blob (present iff the bolt supports snapshots).
  bool has_bolt_state = false;
  std::string bolt_state;
  /// Round-robin cursors of the task's collector, per consumer component
  /// (dense, in component-subscription order).
  std::vector<uint64_t> rr;
  /// Canonical per-link sequence counters toward each consumer task the
  /// collector has emitted to: (consumer task id, last emitted link_seq).
  std::vector<std::pair<uint32_t, uint64_t>> emitted;
  /// Consumer-side LinkGuard cursors: (source task id, next expected seq).
  std::vector<std::pair<uint32_t, uint64_t>> next_seq;
};

/// Serializes `state` into a self-describing blob: magic + version + FNV-1a
/// checksum + payload. Deterministic for a given state.
void EncodeMigrationState(const MigrationState& state, std::string* out);

/// Decodes a blob produced by EncodeMigrationState. Untrusted input is
/// safe: truncated, corrupted (checksum mismatch, non-canonical varints) or
/// wrong-version blobs are rejected with a descriptive Status and no reads
/// past the buffer — never a crash or a partially filled `out`.
Status DecodeMigrationState(const void* data, size_t size, MigrationState* out);

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_MIGRATION_H_
