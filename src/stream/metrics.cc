#include "stream/metrics.h"

#include <algorithm>

namespace dssj::stream {

ComponentAggregate Aggregate(const std::vector<TaskStats>& tasks) {
  ComponentAggregate agg;
  for (const TaskStats& t : tasks) {
    if (t.metrics == nullptr) continue;
    agg.executed += t.metrics->executed.Get();
    agg.emitted += t.metrics->emitted.Get();
    agg.remote_messages += t.metrics->remote_messages.Get();
    agg.remote_bytes += t.metrics->remote_bytes.Get();
    agg.total_messages += t.metrics->total_messages.Get();
    agg.total_bytes += t.metrics->total_bytes.Get();
    const uint64_t busy = t.metrics->busy_nanos.Get();
    agg.busy_nanos_sum += busy;
    agg.busy_nanos_max = std::max(agg.busy_nanos_max, busy);
    agg.restarts += t.metrics->restarts.Get();
    agg.replayed_tuples += t.metrics->replayed_tuples.Get();
    agg.checkpoints += t.metrics->checkpoints.Get();
    agg.checkpoint_bytes += t.metrics->checkpoint_bytes.Get();
    agg.checkpoint_nanos += t.metrics->checkpoint_nanos.Get();
    agg.link_drops_recovered += t.metrics->link_drops_recovered.Get();
    agg.link_dups_discarded += t.metrics->link_dups_discarded.Get();
    agg.shed_probes += t.metrics->shed_probes.Get();
    agg.shed_pairs_upper_bound += t.metrics->shed_pairs_upper_bound.Get();
    agg.queue_time_at_capacity_micros_max = std::max(
        agg.queue_time_at_capacity_micros_max, t.metrics->queue_time_at_capacity_micros.Get());
    agg.queue_oldest_age_micros_max =
        std::max(agg.queue_oldest_age_micros_max, t.metrics->queue_oldest_age_micros.Get());
  }
  return agg;
}

}  // namespace dssj::stream
