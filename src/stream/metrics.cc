#include "stream/metrics.h"

#include <algorithm>

namespace dssj::stream {

ComponentAggregate Aggregate(const std::vector<TaskStats>& tasks) {
  ComponentAggregate agg;
  for (const TaskStats& t : tasks) {
    if (t.metrics == nullptr) continue;
    agg.executed += t.metrics->executed.Get();
    agg.emitted += t.metrics->emitted.Get();
    agg.remote_messages += t.metrics->remote_messages.Get();
    agg.remote_bytes += t.metrics->remote_bytes.Get();
    agg.total_messages += t.metrics->total_messages.Get();
    agg.total_bytes += t.metrics->total_bytes.Get();
    const uint64_t busy = t.metrics->busy_nanos.Get();
    agg.busy_nanos_sum += busy;
    agg.busy_nanos_max = std::max(agg.busy_nanos_max, busy);
  }
  return agg;
}

}  // namespace dssj::stream
