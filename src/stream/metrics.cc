#include "stream/metrics.h"

#include <algorithm>

#include "common/serialize.h"

namespace dssj::stream {

ComponentAggregate Aggregate(const std::vector<TaskStats>& tasks) {
  ComponentAggregate agg;
  for (const TaskStats& t : tasks) {
    if (t.metrics == nullptr) continue;
    agg.executed += t.metrics->executed.Get();
    agg.emitted += t.metrics->emitted.Get();
    agg.remote_messages += t.metrics->remote_messages.Get();
    agg.remote_bytes += t.metrics->remote_bytes.Get();
    agg.total_messages += t.metrics->total_messages.Get();
    agg.total_bytes += t.metrics->total_bytes.Get();
    const uint64_t busy = t.metrics->busy_nanos.Get();
    agg.busy_nanos_sum += busy;
    agg.busy_nanos_max = std::max(agg.busy_nanos_max, busy);
    agg.idle_nanos_sum += t.metrics->idle_nanos.Get();
    agg.blocked_nanos_sum += t.metrics->blocked_nanos.Get();
    agg.restarts += t.metrics->restarts.Get();
    agg.replayed_tuples += t.metrics->replayed_tuples.Get();
    agg.checkpoints += t.metrics->checkpoints.Get();
    agg.checkpoint_bytes += t.metrics->checkpoint_bytes.Get();
    agg.checkpoint_nanos += t.metrics->checkpoint_nanos.Get();
    agg.link_drops_recovered += t.metrics->link_drops_recovered.Get();
    agg.link_dups_discarded += t.metrics->link_dups_discarded.Get();
    agg.delta_checkpoints += t.metrics->delta_checkpoints.Get();
    agg.base_checkpoints += t.metrics->base_checkpoints.Get();
    agg.delta_checkpoint_bytes += t.metrics->delta_checkpoint_bytes.Get();
    agg.base_checkpoint_bytes += t.metrics->base_checkpoint_bytes.Get();
    agg.spilled_bytes += t.metrics->spilled_bytes.Get();
    agg.spill_reads += t.metrics->spill_reads.Get();
    agg.shed_probes += t.metrics->shed_probes.Get();
    agg.shed_pairs_upper_bound += t.metrics->shed_pairs_upper_bound.Get();
    agg.app_results += t.metrics->app_results.Get();
    agg.migrations += t.metrics->migrations.Get();
    agg.migration_bytes += t.metrics->migration_bytes.Get();
    agg.migration_nanos += t.metrics->migration_nanos.Get();
    agg.net_connect_retries += t.metrics->net_connect_retries.Get();
    agg.net_reconnects += t.metrics->net_reconnects.Get();
    agg.queue_time_at_capacity_micros_max = std::max(
        agg.queue_time_at_capacity_micros_max, t.metrics->queue_time_at_capacity_micros.Get());
    agg.queue_oldest_age_micros_max =
        std::max(agg.queue_oldest_age_micros_max, t.metrics->queue_oldest_age_micros.Get());
  }
  return agg;
}

namespace {

// Additive counters in blob order. New fields append; readers merge the
// min(written, known) prefix, which keeps coordinator and worker builds
// compatible across one field-list revision.
using CounterField = Counter TaskMetrics::*;
constexpr CounterField kCounterFields[] = {
    &TaskMetrics::executed,
    &TaskMetrics::emitted,
    &TaskMetrics::remote_messages,
    &TaskMetrics::remote_bytes,
    &TaskMetrics::total_messages,
    &TaskMetrics::total_bytes,
    &TaskMetrics::busy_nanos,
    &TaskMetrics::restarts,
    &TaskMetrics::replayed_tuples,
    &TaskMetrics::checkpoints,
    &TaskMetrics::checkpoint_bytes,
    &TaskMetrics::checkpoint_nanos,
    &TaskMetrics::link_drops_recovered,
    &TaskMetrics::link_dups_discarded,
    &TaskMetrics::shed_probes,
    &TaskMetrics::shed_pairs_upper_bound,
    &TaskMetrics::app_results,
    // Appended after the PR 4 field list froze; the count-prefixed format
    // keeps mixed-build clusters merging the common prefix.
    &TaskMetrics::migrations,
    &TaskMetrics::migration_bytes,
    &TaskMetrics::migration_nanos,
    &TaskMetrics::net_connect_retries,
    &TaskMetrics::net_reconnects,
    // Appended with the tiered state store (PR 9).
    &TaskMetrics::delta_checkpoints,
    &TaskMetrics::base_checkpoints,
    &TaskMetrics::delta_checkpoint_bytes,
    &TaskMetrics::base_checkpoint_bytes,
    &TaskMetrics::spilled_bytes,
    &TaskMetrics::spill_reads,
    // Appended with the sharded ingestion front end (PR 10): pipeline
    // breakdown counters for the bench's per-stage busy/idle/blocked table.
    &TaskMetrics::idle_nanos,
    &TaskMetrics::blocked_nanos,
};
constexpr size_t kNumCounterFields = sizeof(kCounterFields) / sizeof(kCounterFields[0]);

}  // namespace

void SerializeTaskCounters(const TaskMetrics& m, std::string* out) {
  BinaryWriter w(out);
  w.WriteU32(static_cast<uint32_t>(kNumCounterFields));
  for (const CounterField f : kCounterFields) w.WriteU64((m.*f).Get());
  w.WriteU64(m.queue_highwater.Get());
}

bool MergeTaskCounters(const std::string& blob, TaskMetrics* m) {
  SafeBinaryReader r(blob.data(), blob.size());
  uint32_t written = 0;
  if (!r.ReadU32(&written)) return false;
  const size_t common = std::min<size_t>(written, kNumCounterFields);
  for (size_t i = 0; i < written; ++i) {
    uint64_t v = 0;
    if (!r.ReadU64(&v)) return false;
    if (i < common) (m->*kCounterFields[i]).Add(v);
  }
  uint64_t highwater = 0;
  if (!r.ReadU64(&highwater)) return false;
  m->queue_highwater.Update(highwater);
  return true;
}

}  // namespace dssj::stream
