#ifndef DSSJ_STREAM_COMPONENT_H_
#define DSSJ_STREAM_COMPONENT_H_

#include <functional>
#include <memory>
#include <string>

#include "store/frozen.h"
#include "stream/metrics.h"
#include "stream/overload.h"
#include "stream/value.h"

namespace dssj::stream {

/// Per-task information handed to components at startup. Valid for the
/// lifetime of the topology run.
struct TaskContext {
  std::string component;   ///< component name
  int task_index = 0;      ///< this task's index within the component
  int parallelism = 1;     ///< number of tasks of this component
  int worker = 0;          ///< simulated worker id hosting this task
  TaskMetrics* metrics = nullptr;  ///< this task's metric sinks
  /// Health snapshot of this task's inbound queue, with force_shed set when
  /// the watchdog demanded shedding. Only wired for bolts under overload
  /// control (TopologyBuilder::SetOverload); null otherwise. Call from the
  /// owning executor thread.
  std::function<QueueHealth()> queue_health;
};

/// Interface for emitting tuples downstream. Implemented by the topology
/// runtime; handed to spouts and bolts. Not thread-safe: only call from the
/// owning executor thread.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  /// Routes `tuple` to every subscribed bolt according to its grouping.
  virtual void Emit(Tuple tuple) = 0;

  /// Sends `tuple` to one specific task of `component`, which must have
  /// subscribed to this producer with DirectGrouping. `task_index` is the
  /// consumer-local index in [0, parallelism).
  virtual void EmitDirect(const std::string& component, int task_index, Tuple tuple) = 0;
};

/// A stream source. The executor calls NextTuple in a loop on a dedicated
/// thread until it returns false; each call may emit zero or more tuples
/// (and may block, e.g., to pace an arrival schedule).
class Spout {
 public:
  virtual ~Spout() = default;

  /// Called once before the first NextTuple.
  virtual void Open(const TaskContext& /*ctx*/) {}

  /// Produce the next tuple(s). Return false when the source is exhausted;
  /// the topology then propagates end-of-stream downstream.
  virtual bool NextTuple(OutputCollector& out) = 0;

  /// Called once after the last NextTuple.
  virtual void Close() {}

  /// Checkpoint support for supervised recovery. A spout returning true
  /// must implement Snapshot/Restore so that a freshly constructed and
  /// Open()ed instance, after Restore(blob), continues the emission
  /// sequence exactly where the snapshotted instance stood (same tuple
  /// count per NextTuple call, same routing-relevant contents). Without
  /// snapshot support a restarted spout is re-run from the beginning; the
  /// collector's per-link suppression keeps downstream delivery
  /// exactly-once either way, provided the re-run emits the same tuples in
  /// the same order.
  virtual bool SupportsSnapshot() const { return false; }
  virtual void Snapshot(std::string* /*out*/) const {}
  virtual void Restore(const std::string& /*blob*/) {}
};

/// A stream operator. Execute is called once per input tuple on the task's
/// executor thread (no concurrency within one task; parallelism comes from
/// running many tasks).
class Bolt {
 public:
  virtual ~Bolt() = default;

  /// Called once before the first Execute.
  virtual void Prepare(const TaskContext& /*ctx*/) {}

  /// Process one tuple; emit any outputs via `out`.
  virtual void Execute(Tuple tuple, OutputCollector& out) = 0;

  /// Process a batch of tuples popped from the inbound queue under one lock
  /// (FIFO order within the batch). The default forwards to Execute per
  /// tuple; override to hoist per-batch work. Correctness must not depend
  /// on batch boundaries — the executor may deliver any split, including
  /// one tuple per batch (`batch_size=1`).
  virtual void ExecuteBatch(TupleBatch batch, OutputCollector& out) {
    for (Tuple& t : batch) Execute(std::move(t), out);
  }

  /// Called once after every upstream task has finished; flush state here.
  virtual void Finish(OutputCollector& /*out*/) {}

  /// Checkpoint support for supervised recovery. A bolt returning true must
  /// implement Snapshot/Restore so that a freshly constructed and
  /// Prepare()d instance, after Restore(blob), emits exactly what the
  /// snapshotted instance would emit for any subsequent input. Queried
  /// after Prepare (state such as a per-task partition index is available).
  /// Bolts without snapshot support are still recovered exactly — the
  /// supervisor replays their entire input from the start of the stream —
  /// but periodic checkpoints (log truncation) require it.
  virtual bool SupportsSnapshot() const { return false; }
  virtual void Snapshot(std::string* /*out*/) const {}
  virtual void Restore(const std::string& /*blob*/) {}

  /// Async-checkpoint support (TopologyBuilder::SetStore). Freeze captures
  /// a consistent view of the bolt's state at the current tuple boundary
  /// and returns a blob whose encode runs later, possibly on the
  /// checkpoint thread — the bolt keeps executing meanwhile, so the view
  /// must be immutable (copy-on-write, refcounted, or an eager copy). The
  /// default wraps Snapshot eagerly, which is correct for every
  /// SupportsSnapshot bolt and simply forfeits the off-thread win.
  /// `want_delta` asks for changes-since-last-freeze; a bolt may decline
  /// (return is_delta == false) and ship a base instead. Deltas apply on
  /// top of the state left by Restore(base) + earlier RestoreDelta calls,
  /// in epoch order.
  virtual bool SupportsDeltaSnapshot() const { return false; }
  virtual store::FrozenBlob Freeze(bool /*want_delta*/) {
    store::FrozenBlob f;
    std::string blob;
    Snapshot(&blob);
    auto owned = std::make_shared<std::string>(std::move(blob));
    f.encode = [owned](std::string* out) { *out = std::move(*owned); };
    return f;
  }
  virtual void RestoreDelta(const std::string& /*blob*/) {}
  /// Called on the executor thread once a submitted checkpoint is durable
  /// on disk (in epoch order). Bolts with retention tied to checkpoints
  /// (e.g. spill-segment GC) release resources here.
  virtual void OnCheckpointDurable(uint64_t /*epoch*/, bool /*is_base*/) {}
  /// Called after recovery finished replaying Restore + RestoreDelta:
  /// drop resources that no recovered state references.
  virtual void OnRestoreComplete() {}
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_COMPONENT_H_
