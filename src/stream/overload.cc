#include "stream/overload.h"

namespace dssj::stream {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kNone:
      return "none";
    case ShedPolicy::kProbe:
      return "probe";
    case ShedPolicy::kOldest:
      return "oldest";
    case ShedPolicy::kBundle:
      return "bundle";
  }
  return "unknown";
}

bool ParseShedPolicy(const std::string& name, ShedPolicy* out) {
  if (name == "none") {
    *out = ShedPolicy::kNone;
  } else if (name == "probe") {
    *out = ShedPolicy::kProbe;
  } else if (name == "oldest") {
    *out = ShedPolicy::kOldest;
  } else if (name == "bundle") {
    *out = ShedPolicy::kBundle;
  } else {
    return false;
  }
  return true;
}

}  // namespace dssj::stream
