#include "stream/fault.h"

#include <cctype>
#include <cstdlib>

namespace dssj::stream {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > 1000000) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Parses "<comp>:<index>" into its parts.
bool ParseEndpoint(const std::string& s, std::string* comp, int* index) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *comp = Trim(s.substr(0, colon));
  return !comp->empty() && ParseInt(Trim(s.substr(colon + 1)), index);
}

Status Malformed(const std::string& stmt, const std::string& why) {
  return Status::InvalidArgument("malformed fault statement '" + stmt + "': " + why);
}

/// Parses the "<src>:<i>-><dst>:<j>@<seq>[x<micros>]" tail shared by the
/// three link-fault verbs.
Status ParseLinkFault(LinkFaultKind kind, const std::string& stmt, const std::string& body,
                      FaultScript* script) {
  const size_t arrow = body.find("->");
  if (arrow == std::string::npos) return Malformed(stmt, "expected '->'");
  const size_t at = body.find('@', arrow);
  if (at == std::string::npos) return Malformed(stmt, "expected '@<seq>'");

  LinkFault fault;
  fault.kind = kind;
  if (!ParseEndpoint(Trim(body.substr(0, arrow)), &fault.src_component, &fault.src_index)) {
    return Malformed(stmt, "bad source '<comp>:<task>'");
  }
  if (!ParseEndpoint(Trim(body.substr(arrow + 2, at - arrow - 2)), &fault.dst_component,
                     &fault.dst_index)) {
    return Malformed(stmt, "bad destination '<comp>:<task>'");
  }
  std::string seq_part = Trim(body.substr(at + 1));
  if (kind == LinkFaultKind::kDelay || kind == LinkFaultKind::kDisconnect) {
    // delay requires '@<seq>x<micros>'; disconnect's 'x<micros>' (the
    // reconnect delay) is optional and defaults to reconnecting at once.
    const size_t x = seq_part.find('x');
    if (x == std::string::npos && kind == LinkFaultKind::kDelay) {
      return Malformed(stmt, "delay needs '@<seq>x<micros>'");
    }
    if (x != std::string::npos) {
      uint64_t micros = 0;
      if (!ParseU64(Trim(seq_part.substr(x + 1)), &micros)) {
        return Malformed(stmt, "bad delay micros");
      }
      fault.delay_micros = static_cast<int64_t>(micros);
      seq_part = Trim(seq_part.substr(0, x));
    }
  }
  if (!ParseU64(seq_part, &fault.at_seq) || fault.at_seq == 0) {
    return Malformed(stmt, "bad link sequence number (1-based)");
  }
  if (kind == LinkFaultKind::kDrop) {
    script->DropAt(fault.src_component, fault.src_index, fault.dst_component, fault.dst_index,
                   fault.at_seq);
  } else if (kind == LinkFaultKind::kDuplicate) {
    script->DuplicateAt(fault.src_component, fault.src_index, fault.dst_component,
                        fault.dst_index, fault.at_seq);
  } else if (kind == LinkFaultKind::kDisconnect) {
    script->DisconnectAt(fault.src_component, fault.src_index, fault.dst_component,
                         fault.dst_index, fault.at_seq, fault.delay_micros);
  } else {
    script->DelayAt(fault.src_component, fault.src_index, fault.dst_component, fault.dst_index,
                    fault.at_seq, fault.delay_micros);
  }
  return Status::OK();
}

}  // namespace

StatusOr<FaultScript> FaultScript::Parse(const std::string& text) {
  FaultScript script;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t semi = text.find(';', pos);
    const std::string stmt =
        Trim(text.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos));
    pos = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (stmt.empty()) continue;

    const size_t colon = stmt.find(':');
    if (colon == std::string::npos) return Malformed(stmt, "expected '<verb>:'");
    const std::string verb = Trim(stmt.substr(0, colon));
    const std::string body = stmt.substr(colon + 1);
    if (verb == "kill") {
      const size_t at = body.find('@');
      if (at == std::string::npos) return Malformed(stmt, "expected '@<count>'");
      KillFault fault;
      if (!ParseEndpoint(Trim(body.substr(0, at)), &fault.component, &fault.task_index)) {
        return Malformed(stmt, "bad target '<comp>:<task>'");
      }
      if (!ParseU64(Trim(body.substr(at + 1)), &fault.at_count)) {
        return Malformed(stmt, "bad kill count");
      }
      script.KillAt(fault.component, fault.task_index, fault.at_count);
    } else if (verb == "kill_worker") {
      const size_t at = body.find('@');
      if (at == std::string::npos) return Malformed(stmt, "expected '@<seq>'");
      int rank = 0;
      uint64_t seq = 0;
      if (!ParseInt(Trim(body.substr(0, at)), &rank)) return Malformed(stmt, "bad rank");
      if (!ParseU64(Trim(body.substr(at + 1)), &seq) || seq == 0) {
        return Malformed(stmt, "bad source sequence (1-based)");
      }
      script.KillWorkerAt(rank, seq);
    } else if (verb == "migrate") {
      // migrate:<comp>:<task>-><rank>@<seq>, ASCII "->" or UTF-8 "→".
      size_t arrow = body.find("->");
      size_t arrow_len = 2;
      if (arrow == std::string::npos) {
        arrow = body.find("\xe2\x86\x92");
        arrow_len = 3;
      }
      if (arrow == std::string::npos) return Malformed(stmt, "expected '-><rank>'");
      const size_t at = body.find('@', arrow);
      if (at == std::string::npos) return Malformed(stmt, "expected '@<seq>'");
      MigrateAction action;
      if (!ParseEndpoint(Trim(body.substr(0, arrow)), &action.component, &action.task_index)) {
        return Malformed(stmt, "bad task '<comp>:<task>'");
      }
      if (!ParseInt(Trim(body.substr(arrow + arrow_len, at - arrow - arrow_len)),
                    &action.target_worker)) {
        return Malformed(stmt, "bad target rank");
      }
      uint64_t seq = 0;
      if (!ParseU64(Trim(body.substr(at + 1)), &seq) || seq == 0) {
        return Malformed(stmt, "bad source sequence (1-based)");
      }
      action.at_seq = seq;
      script.MigrateAt(action.component, action.task_index, action.target_worker, action.at_seq);
    } else if (verb == "drop") {
      const Status s = ParseLinkFault(LinkFaultKind::kDrop, stmt, body, &script);
      if (!s.ok()) return s;
    } else if (verb == "dup") {
      const Status s = ParseLinkFault(LinkFaultKind::kDuplicate, stmt, body, &script);
      if (!s.ok()) return s;
    } else if (verb == "delay") {
      const Status s = ParseLinkFault(LinkFaultKind::kDelay, stmt, body, &script);
      if (!s.ok()) return s;
    } else if (verb == "disconnect") {
      const Status s = ParseLinkFault(LinkFaultKind::kDisconnect, stmt, body, &script);
      if (!s.ok()) return s;
    } else {
      return Malformed(stmt, "unknown verb '" + verb + "'");
    }
  }
  return script;
}

}  // namespace dssj::stream
