#include "stream/migration.h"

#include "common/hash.h"
#include "common/serialize.h"

namespace dssj::stream {

namespace {

constexpr uint32_t kMigrationMagic = 0x4247494d;  // "MIGB"
constexpr uint16_t kMigrationVersion = 1;

}  // namespace

void EncodeMigrationState(const MigrationState& state, std::string* out) {
  std::string payload;
  {
    BinaryWriter w(&payload);
    w.WriteU32(state.task_id);
    w.WriteU64(state.executed_total);
    w.WriteVarint(state.remaining_eos);
    w.WriteU8(state.has_bolt_state ? 1 : 0);
    w.WriteBytes(state.bolt_state);
    w.WriteVarint(state.rr.size());
    for (const uint64_t v : state.rr) w.WriteVarint(v);
    w.WriteVarint(state.emitted.size());
    for (const auto& [task, seq] : state.emitted) {
      w.WriteVarint(task);
      w.WriteVarint(seq);
    }
    w.WriteVarint(state.next_seq.size());
    for (const auto& [task, seq] : state.next_seq) {
      w.WriteVarint(task);
      w.WriteVarint(seq);
    }
  }
  BinaryWriter w(out);
  w.WriteU32(kMigrationMagic);
  w.WriteU16(kMigrationVersion);
  w.WriteU64(Fnv1a64(payload.data(), payload.size()));
  out->append(payload);
}

Status DecodeMigrationState(const void* data, size_t size, MigrationState* out) {
  SafeBinaryReader r(static_cast<const char*>(data), size);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint64_t checksum = 0;
  if (!r.ReadU32(&magic) || magic != kMigrationMagic) {
    return Status::InvalidArgument("migration blob: bad magic");
  }
  if (!r.ReadU16(&version)) return Status::InvalidArgument("migration blob: truncated header");
  if (version != kMigrationVersion) {
    return Status::InvalidArgument("migration blob: unsupported version " +
                                   std::to_string(version));
  }
  if (!r.ReadU64(&checksum)) return Status::InvalidArgument("migration blob: truncated header");
  // Checksum the whole payload before trusting any of it: a single flipped
  // bit anywhere past the header is rejected here rather than surfacing as
  // a silently different state.
  if (Fnv1a64(static_cast<const char*>(data) + (size - r.remaining()), r.remaining()) !=
      checksum) {
    return Status::InvalidArgument("migration blob: checksum mismatch");
  }
  MigrationState s;
  uint64_t remaining_eos = 0;
  uint8_t has_state = 0;
  if (!r.ReadU32(&s.task_id) || !r.ReadU64(&s.executed_total) || !r.ReadVarint(&remaining_eos) ||
      !r.ReadU8(&has_state)) {
    return Status::InvalidArgument("migration blob: truncated body");
  }
  if (remaining_eos > 0xFFFFFFFFull || has_state > 1) {
    return Status::InvalidArgument("migration blob: field out of range");
  }
  s.remaining_eos = static_cast<uint32_t>(remaining_eos);
  s.has_bolt_state = has_state == 1;
  uint64_t blob_len = 0;
  const char* blob = nullptr;
  size_t blob_size = 0;
  if (!r.ReadU64(&blob_len) || !r.ReadSpan(&blob, &blob_size, blob_len)) {
    return Status::InvalidArgument("migration blob: truncated bolt state");
  }
  s.bolt_state.assign(blob, blob_size);
  uint64_t n = 0;
  if (!r.ReadVarint(&n) || n > r.remaining()) {
    return Status::InvalidArgument("migration blob: bad rr count");
  }
  s.rr.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    if (!r.ReadVarint(&v)) return Status::InvalidArgument("migration blob: truncated rr");
    s.rr.push_back(v);
  }
  for (std::vector<std::pair<uint32_t, uint64_t>>* vec : {&s.emitted, &s.next_seq}) {
    if (!r.ReadVarint(&n) || n > r.remaining()) {
      return Status::InvalidArgument("migration blob: bad link count");
    }
    vec->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t task = 0, seq = 0;
      if (!r.ReadVarint(&task) || !r.ReadVarint(&seq) || task > 0x7FFFFFFFull) {
        return Status::InvalidArgument("migration blob: truncated link entry");
      }
      vec->emplace_back(static_cast<uint32_t>(task), seq);
    }
  }
  if (!r.AtEnd()) return Status::InvalidArgument("migration blob: trailing bytes");
  *out = std::move(s);
  return Status::OK();
}

}  // namespace dssj::stream
