#ifndef DSSJ_STREAM_QUEUE_H_
#define DSSJ_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "stream/overload.h"

namespace dssj::stream {

/// Which inbound-queue implementation a topology's co-located links use.
/// kMutex is the seed BoundedQueue (mutex + condvar); kRing is the lock-free
/// ring fabric (SpscRingQueue for 1:1 links, RingQueue for fan-in links —
/// see stream/ring_queue.h). Both implement the same Queue<T> contract and
/// produce byte-identical results; the ring keeps the per-tuple cost off the
/// kernel-arbitration path and is the default.
enum class QueueImpl { kMutex, kRing };

inline const char* QueueImplName(QueueImpl impl) {
  switch (impl) {
    case QueueImpl::kMutex: return "mutex";
    case QueueImpl::kRing: return "ring";
  }
  return "unknown";
}

/// Parses "mutex" / "ring". Returns false (and leaves *out untouched) on
/// anything else.
inline bool ParseQueueImpl(const std::string& name, QueueImpl* out) {
  if (name == "mutex") {
    *out = QueueImpl::kMutex;
  } else if (name == "ring") {
    *out = QueueImpl::kRing;
  } else {
    return false;
  }
  return true;
}

/// The contract every co-located link implementation satisfies — the channel
/// concept InprocChannel and the executors program against. Semantics are
/// those documented on BoundedQueue (the reference implementation): bounded
/// blocking FIFO with per-producer ordering, batch transfers, and Close()
/// that unblocks both sides while keeping accepted items poppable.
template <typename T>
class Queue {
 public:
  virtual ~Queue() = default;

  /// Blocks until there is room, then enqueues. Returns the queue depth
  /// right after the push (>= 1), or 0 when the queue was closed and the
  /// item rejected.
  virtual size_t Push(T item) = 0;

  /// Enqueues every element of `*items` in order, draining the vector;
  /// blocks for backpressure. If the queue closes mid-batch the unaccepted
  /// remainder is left in `*items` (in order). Returns the depth right
  /// after the last accepted element.
  virtual size_t PushBatch(std::vector<T>* items) = 0;

  /// Blocks until an item is available, then dequeues it. Must not be
  /// called on a closed-and-drained queue.
  virtual T Pop() = 0;

  /// Blocks until at least one item is available, then appends up to
  /// `max_items` to `*out`. Returns the number popped — 0 only when the
  /// queue is closed and drained.
  virtual size_t PopBatch(std::vector<T>* out, size_t max_items) = 0;

  /// Non-blocking: appends everything currently queued to `*out`.
  virtual size_t Drain(std::vector<T>* out) = 0;

  /// Non-blocking pop; returns false if the queue is empty.
  virtual bool TryPop(T* out) = 0;

  /// Stops accepting new items and wakes every blocked producer and
  /// consumer. Idempotent; thread-safe against concurrent Push/Pop.
  virtual void Close() = 0;

  virtual bool closed() const = 0;
  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;

  /// Turns on queue-health tracking; must be called before concurrent use.
  virtual void EnableHealthTracking() = 0;

  /// Point-in-time health snapshot (zeros unless tracking is enabled).
  virtual QueueHealth Health() const = 0;
};

/// Bounded blocking multi-producer multi-consumer FIFO queue. Push blocks
/// when full (this is the topology's backpressure mechanism) and Pop blocks
/// when empty. FIFO over all producers, which implies per-producer FIFO —
/// the property the distributed join's exactly-once rule relies on.
///
/// Batch transfers (PushBatch/PopBatch/Drain) move many items under a
/// single lock acquisition and at most one wakeup, which is what makes the
/// tuple hot path cheap: the per-item cost of the queue drops from one
/// mutex round-trip + condvar syscall to a deque append.
///
/// Wakeups are suppressed unless a thread is actually waiting on the
/// relevant edge (empty→non-empty for consumers, full→non-full for
/// producers). Waiter counts are maintained under the mutex, so a waiter
/// is always visible to the thread that makes its predicate true.
///
/// Close() (used when a supervised task exhausts its restart budget)
/// unblocks every waiter on both sides: producers stop accepting — a
/// blocked Push returns 0 and a blocked PushBatch leaves the unaccepted
/// remainder in its input vector — while items accepted before the close
/// stay poppable until the queue drains, after which PopBatch returns 0.
template <typename T>
class BoundedQueue final : public Queue<T> {
 public:
  /// Requires capacity >= 1.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) { CHECK_GE(capacity, 1u); }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns the queue depth
  /// right after the push (for high-watermark accounting), or 0 when the
  /// queue was closed and the item rejected (a successful push always
  /// reports depth >= 1).
  size_t Push(T item) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!WaitForRoom(lock)) return 0;
    items_.push_back(std::move(item));
    NoteEnqueued(1);
    const size_t depth = items_.size();
    const bool wake = waiting_consumers_ > 0;
    lock.unlock();
    if (wake) not_empty_.notify_one();
    return depth;
  }

  /// Enqueues every element of `*items` in order, draining the vector.
  /// Blocks while the queue is full; a batch larger than the remaining
  /// capacity is delivered in contiguous chunks as space frees up (batch
  /// boundaries are NOT atomic — other producers may interleave between
  /// chunks, which preserves per-producer FIFO, the only ordering the
  /// topology relies on). Returns the queue depth right after the last
  /// element lands. If the queue closes mid-batch, elements not yet
  /// accepted are left in `*items` (in order) and the depth so far is
  /// returned.
  size_t PushBatch(std::vector<T>* items) override {
    if (items->empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      return items_.size();
    }
    const size_t n = items->size();
    size_t i = 0;
    size_t depth = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (i < n) {
      if (closed_) break;
      if (items_.size() >= capacity_) {
        // Hand the partial chunk to any waiting consumer before sleeping,
        // or the two sides could wait on each other's wakeup.
        if (waiting_consumers_ > 0 && !items_.empty()) not_empty_.notify_one();
        if (!WaitForRoom(lock)) break;
      }
      const size_t before = items_.size();
      while (i < n && items_.size() < capacity_) items_.push_back(std::move((*items)[i++]));
      NoteEnqueued(items_.size() - before);
      depth = items_.size();
    }
    // Exit-notify is derived from actual occupancy rather than this call's
    // accepted count: when the queue closes mid-batch a producer may exit
    // having accepted nothing this round while items from an earlier chunk
    // (or another producer) still sit queued, and a consumer that began
    // waiting after Close()'s notify_all must still be woken to drain them.
    const int waiters = waiting_consumers_;
    const bool occupied = !items_.empty();
    lock.unlock();
    if (waiters > 0 && occupied) {
      // A batch can satisfy several blocked consumers.
      if (waiters > 1) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
    items->erase(items->begin(), items->begin() + static_cast<ptrdiff_t>(i));
    return depth;
  }

  /// Blocks until an item is available, then dequeues it. Must not be
  /// called on a closed-and-drained queue (use PopBatch/TryPop when the
  /// queue may close).
  T Pop() override {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(WaitForItem(lock)) << "Pop on a closed, drained queue";
    T item = std::move(items_.front());
    items_.pop_front();
    NoteDequeued(1);
    const bool wake = waiting_producers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available, then appends up to
  /// `max_items` to `*out` under one lock. Returns the number popped —
  /// 0 only when the queue is closed and drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) override {
    CHECK_GE(max_items, 1u);
    std::unique_lock<std::mutex> lock(mu_);
    if (!WaitForItem(lock)) return 0;
    const size_t n = std::min(max_items, items_.size());
    MoveOut(out, n);
    NoteDequeued(n);
    const int waiters = waiting_producers_;
    lock.unlock();
    NotifyProducers(waiters, n);
    return n;
  }

  /// Non-blocking: appends everything currently queued to `*out`. Returns
  /// the number drained (possibly zero).
  size_t Drain(std::vector<T>* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t n = items_.size();
    MoveOut(out, n);
    NoteDequeued(n);
    const int waiters = waiting_producers_;
    lock.unlock();
    NotifyProducers(waiters, n);
    return n;
  }

  /// Non-blocking pop; returns false if the queue is empty.
  bool TryPop(T* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    NoteDequeued(1);
    const bool wake = waiting_producers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return true;
  }

  /// Stops accepting new items and wakes every blocked producer and
  /// consumer. Items already accepted remain poppable. Idempotent;
  /// thread-safe against concurrent Push/Pop from any thread.
  void Close() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const override { return capacity_; }

  /// Turns on queue-health tracking (depth EWMA, time at capacity, oldest
  /// item age) at the cost of one clock read per queue operation. Must be
  /// called before any concurrent use (the topology does it at Build time);
  /// queues without it pay only a dead branch per operation.
  void EnableHealthTracking() override {
    std::lock_guard<std::mutex> lock(mu_);
    health_ = true;
  }

  /// Point-in-time health snapshot (all zeros unless EnableHealthTracking
  /// was called). QueueHealth::force_shed is not set here — the topology
  /// wrapper owns that bit.
  QueueHealth Health() const override {
    QueueHealth h;
    std::lock_guard<std::mutex> lock(mu_);
    h.depth = items_.size();
    h.capacity = capacity_;
    h.depth_ewma = depth_ewma_;
    h.time_at_capacity_micros = time_at_capacity_us_;
    if (health_) {
      const int64_t now = NowMicros();
      if (!marks_.empty()) h.oldest_age_micros = now - marks_.front().enqueued_us;
      if (full_since_us_ != 0) {
        h.at_capacity_stretch_micros = now - full_since_us_;
        h.time_at_capacity_micros += h.at_capacity_stretch_micros;
      }
    }
    return h;
  }

 private:
  /// Returns false when the queue closed (no room will be granted).
  bool WaitForRoom(std::unique_lock<std::mutex>& lock) {
    while (!closed_ && items_.size() >= capacity_) {
      ++waiting_producers_;
      not_full_.wait(lock);
      --waiting_producers_;
    }
    return !closed_;
  }

  /// Returns false when the queue is closed and drained.
  bool WaitForItem(std::unique_lock<std::mutex>& lock) {
    while (items_.empty() && !closed_) {
      ++waiting_consumers_;
      not_empty_.wait(lock);
      --waiting_consumers_;
    }
    return !items_.empty();
  }

  // Caller holds mu_ and guarantees n <= items_.size().
  void MoveOut(std::vector<T>* out, size_t n) {
    for (size_t k = 0; k < n; ++k) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }

  // Health bookkeeping. All helpers run with mu_ held and are no-ops until
  // EnableHealthTracking(). Enqueue timestamps are kept as (count, stamp)
  // runs — one entry per push call, not per item — so the oldest-age probe
  // stays O(1) amortized.
  void NoteEnqueued(size_t added) {
    if (!health_ || added == 0) return;
    marks_.push_back(Mark{added, NowMicros()});
    UpdateHealthClock();
  }

  void NoteDequeued(size_t removed) {
    if (!health_ || removed == 0) return;
    while (removed > 0) {
      Mark& front = marks_.front();
      if (front.count <= removed) {
        removed -= front.count;
        marks_.pop_front();
      } else {
        front.count -= removed;
        removed = 0;
      }
    }
    UpdateHealthClock();
  }

  void UpdateHealthClock() {
    constexpr double kAlpha = 0.05;
    depth_ewma_ += kAlpha * (static_cast<double>(items_.size()) - depth_ewma_);
    if (items_.size() >= capacity_) {
      if (full_since_us_ == 0) full_since_us_ = NowMicros();
    } else if (full_since_us_ != 0) {
      time_at_capacity_us_ += NowMicros() - full_since_us_;
      full_since_us_ = 0;
    }
  }

  void NotifyProducers(int waiters, size_t freed) {
    if (waiters <= 0 || freed == 0) return;
    if (freed > 1 && waiters > 1) {
      not_full_.notify_all();
    } else {
      not_full_.notify_one();
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  int waiting_producers_ = 0;
  int waiting_consumers_ = 0;
  bool closed_ = false;

  // Health tracking (guarded by mu_, inert until EnableHealthTracking).
  struct Mark {
    size_t count;  ///< queued items sharing this enqueue stamp
    int64_t enqueued_us;
  };
  bool health_ = false;
  double depth_ewma_ = 0.0;
  int64_t full_since_us_ = 0;  ///< 0 when not at capacity
  int64_t time_at_capacity_us_ = 0;
  std::deque<Mark> marks_;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_QUEUE_H_
