#ifndef DSSJ_STREAM_QUEUE_H_
#define DSSJ_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace dssj::stream {

/// Bounded blocking multi-producer multi-consumer FIFO queue. Push blocks
/// when full (this is the topology's backpressure mechanism) and Pop blocks
/// when empty. FIFO over all producers, which implies per-producer FIFO —
/// the property the distributed join's exactly-once rule relies on.
template <typename T>
class BoundedQueue {
 public:
  /// Requires capacity >= 1.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) { CHECK_GE(capacity, 1u); }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns the queue depth
  /// right after the push (for high-watermark accounting).
  size_t Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    const size_t depth = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return depth;
  }

  /// Blocks until an item is available, then dequeues it.
  T Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty(); });
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; returns false if the queue is empty.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_QUEUE_H_
