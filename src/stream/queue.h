#ifndef DSSJ_STREAM_QUEUE_H_
#define DSSJ_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dssj::stream {

/// Bounded blocking multi-producer multi-consumer FIFO queue. Push blocks
/// when full (this is the topology's backpressure mechanism) and Pop blocks
/// when empty. FIFO over all producers, which implies per-producer FIFO —
/// the property the distributed join's exactly-once rule relies on.
///
/// Batch transfers (PushBatch/PopBatch/Drain) move many items under a
/// single lock acquisition and at most one wakeup, which is what makes the
/// tuple hot path cheap: the per-item cost of the queue drops from one
/// mutex round-trip + condvar syscall to a deque append.
///
/// Wakeups are suppressed unless a thread is actually waiting on the
/// relevant edge (empty→non-empty for consumers, full→non-full for
/// producers). Waiter counts are maintained under the mutex, so a waiter
/// is always visible to the thread that makes its predicate true.
template <typename T>
class BoundedQueue {
 public:
  /// Requires capacity >= 1.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) { CHECK_GE(capacity, 1u); }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues. Returns the queue depth
  /// right after the push (for high-watermark accounting).
  size_t Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    WaitForRoom(lock);
    items_.push_back(std::move(item));
    const size_t depth = items_.size();
    const bool wake = waiting_consumers_ > 0;
    lock.unlock();
    if (wake) not_empty_.notify_one();
    return depth;
  }

  /// Enqueues every element of `*items` in order, draining the vector.
  /// Blocks while the queue is full; a batch larger than the remaining
  /// capacity is delivered in contiguous chunks as space frees up (batch
  /// boundaries are NOT atomic — other producers may interleave between
  /// chunks, which preserves per-producer FIFO, the only ordering the
  /// topology relies on). Returns the queue depth right after the last
  /// element lands.
  size_t PushBatch(std::vector<T>* items) {
    if (items->empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      return items_.size();
    }
    const size_t n = items->size();
    size_t i = 0;
    size_t depth = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (i < n) {
      if (items_.size() >= capacity_) {
        // Hand the partial chunk to any waiting consumer before sleeping,
        // or the two sides could wait on each other's wakeup.
        if (waiting_consumers_ > 0 && !items_.empty()) not_empty_.notify_one();
        WaitForRoom(lock);
      }
      while (i < n && items_.size() < capacity_) items_.push_back(std::move((*items)[i++]));
      depth = items_.size();
    }
    const int waiters = waiting_consumers_;
    lock.unlock();
    if (waiters > 0) {
      // A batch can satisfy several blocked consumers.
      if (n > 1 && waiters > 1) {
        not_empty_.notify_all();
      } else {
        not_empty_.notify_one();
      }
    }
    items->clear();
    return depth;
  }

  /// Blocks until an item is available, then dequeues it.
  T Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    WaitForItem(lock);
    T item = std::move(items_.front());
    items_.pop_front();
    const bool wake = waiting_producers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available, then appends up to
  /// `max_items` to `*out` under one lock. Returns the number popped.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    CHECK_GE(max_items, 1u);
    std::unique_lock<std::mutex> lock(mu_);
    WaitForItem(lock);
    const size_t n = std::min(max_items, items_.size());
    MoveOut(out, n);
    const int waiters = waiting_producers_;
    lock.unlock();
    NotifyProducers(waiters, n);
    return n;
  }

  /// Non-blocking: appends everything currently queued to `*out`. Returns
  /// the number drained (possibly zero).
  size_t Drain(std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t n = items_.size();
    MoveOut(out, n);
    const int waiters = waiting_producers_;
    lock.unlock();
    NotifyProducers(waiters, n);
    return n;
  }

  /// Non-blocking pop; returns false if the queue is empty.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    const bool wake = waiting_producers_ > 0;
    lock.unlock();
    if (wake) not_full_.notify_one();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  void WaitForRoom(std::unique_lock<std::mutex>& lock) {
    while (items_.size() >= capacity_) {
      ++waiting_producers_;
      not_full_.wait(lock);
      --waiting_producers_;
    }
  }

  void WaitForItem(std::unique_lock<std::mutex>& lock) {
    while (items_.empty()) {
      ++waiting_consumers_;
      not_empty_.wait(lock);
      --waiting_consumers_;
    }
  }

  // Caller holds mu_ and guarantees n <= items_.size().
  void MoveOut(std::vector<T>* out, size_t n) {
    for (size_t k = 0; k < n; ++k) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }

  void NotifyProducers(int waiters, size_t freed) {
    if (waiters <= 0 || freed == 0) return;
    if (freed > 1 && waiters > 1) {
      not_full_.notify_all();
    } else {
      not_full_.notify_one();
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  int waiting_producers_ = 0;
  int waiting_consumers_ = 0;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_QUEUE_H_
