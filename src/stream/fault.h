#ifndef DSSJ_STREAM_FAULT_H_
#define DSSJ_STREAM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dssj::stream {

/// Supervised-executor policy (see TopologyBuilder::SetSupervision).
struct SupervisorOptions {
  /// How many times one task may be restarted before the topology is marked
  /// failed (Topology::ok() turns false).
  int max_restarts = 3;

  /// Snapshot-capable tasks checkpoint every this-many canonical input
  /// tuples (spouts: NextTuple calls), truncating their replay log. 0
  /// disables periodic checkpoints: recovery then replays from the start of
  /// the stream, which stays exact but keeps the whole input in the log.
  uint64_t checkpoint_interval = 0;

  /// Exponential restart backoff: the k-th restart of a task sleeps
  /// min(initial << (k-1), max) microseconds before re-creating it.
  int64_t initial_backoff_micros = 1000;
  int64_t max_backoff_micros = 1000000;

  /// Test/bench seam: a task frozen for migration holds the frozen state
  /// this long before handing off, widening the handoff window so races
  /// (kills mid-STATE, watchdog ticks during the freeze) become
  /// deterministic to script. 0 in production.
  int64_t migration_freeze_hold_micros = 0;
};

/// Deterministically kill one task the moment its canonical progress counter
/// reaches `at_count`: for bolts that is "just before executing tuple
/// at_count + 1" (counted over canonical data tuples), for spouts "just
/// before NextTuple call at_count + 1". The simulated crash destroys the
/// spout/bolt object (all component state); the executor thread survives and
/// acts as supervisor.
struct KillFault {
  std::string component;
  int task_index = 0;
  uint64_t at_count = 0;
};

enum class LinkFaultKind {
  kDrop,        ///< envelope never reaches the consumer queue (recovered from retention)
  kDuplicate,   ///< envelope is delivered twice (consumer discards the copy)
  kDelay,       ///< producer sleeps before delivering the envelope
  kDisconnect,  ///< network fault: the remote connection carrying this link is
                ///< severed just before this envelope and re-established after
                ///< delay_micros; no envelope is lost (clean close drains the
                ///< socket). On an in-process link it degrades to a delay.
};

/// Kill every bolt task hosted by one simulated worker the moment the
/// topology's source progress (total canonical spout emissions) reaches
/// `at_seq`. Each task dies at its next execution boundary with the same
/// crash semantics as KillFault, so a whole-rank outage is one statement
/// instead of one kill per task — and it composes with migrations to script
/// "worker dies mid-handoff".
struct WorkerKillFault {
  int rank = 0;
  uint64_t at_seq = 0;
};

/// Live-migrate one bolt task to another worker when source progress
/// reaches `at_seq` (see Topology::MigrateTask). Scripted migrations are
/// the deterministic counterpart of the elastic controller's load-driven
/// ones.
struct MigrateAction {
  std::string component;
  int task_index = 0;
  int target_worker = 0;
  uint64_t at_seq = 0;
};

/// A fault on one (producer task → consumer task) link, firing when that
/// link's canonical data sequence number (1-based, assigned by the producer)
/// equals `at_seq`.
struct LinkFault {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  std::string src_component;
  int src_index = 0;
  std::string dst_component;
  int dst_index = 0;
  uint64_t at_seq = 0;
  int64_t delay_micros = 0;  ///< kDelay only
};

/// A deterministic schedule of injected faults, resolved against the
/// topology at Build() (unknown components / out-of-range task indices are
/// build errors). Construct programmatically with the builder methods or
/// from the CLI DSL via Parse():
///
///   kill:<comp>:<task>@<count>
///   kill_worker:<rank>@<seq>
///   migrate:<comp>:<task>-><rank>@<seq>
///   drop:<comp>:<i>-><comp>:<j>@<seq>
///   dup:<comp>:<i>-><comp>:<j>@<seq>
///   delay:<comp>:<i>-><comp>:<j>@<seq>x<micros>
///   disconnect:<comp>:<i>-><comp>:<j>@<seq>x<micros>
///
/// kill_worker and migrate fire on *source progress* — the total canonical
/// tuples emitted by the topology's spouts — because no single task counter
/// spans a whole worker; a UTF-8 "→" is accepted for migrate's arrow.
///
/// Statements are ';'-separated; whitespace around tokens is ignored, e.g.
/// "kill:joiner:0@500; drop:dispatcher:0->joiner:1@120".
class FaultScript {
 public:
  FaultScript() = default;

  static StatusOr<FaultScript> Parse(const std::string& text);

  FaultScript& KillAt(const std::string& component, int task_index, uint64_t at_count) {
    kills_.push_back(KillFault{component, task_index, at_count});
    return *this;
  }
  FaultScript& DropAt(const std::string& src, int src_index, const std::string& dst,
                      int dst_index, uint64_t at_seq) {
    links_.push_back(
        LinkFault{LinkFaultKind::kDrop, src, src_index, dst, dst_index, at_seq, 0});
    return *this;
  }
  FaultScript& DuplicateAt(const std::string& src, int src_index, const std::string& dst,
                           int dst_index, uint64_t at_seq) {
    links_.push_back(
        LinkFault{LinkFaultKind::kDuplicate, src, src_index, dst, dst_index, at_seq, 0});
    return *this;
  }
  FaultScript& DelayAt(const std::string& src, int src_index, const std::string& dst,
                       int dst_index, uint64_t at_seq, int64_t delay_micros) {
    links_.push_back(LinkFault{LinkFaultKind::kDelay, src, src_index, dst, dst_index, at_seq,
                               delay_micros});
    return *this;
  }
  /// Severs the remote connection carrying the (src task → dst task) link
  /// just before the envelope with canonical sequence `at_seq`, then
  /// reconnects after `reconnect_delay_micros`. Applied to the transport
  /// when the link crosses workers; an in-process link just delays.
  FaultScript& DisconnectAt(const std::string& src, int src_index, const std::string& dst,
                            int dst_index, uint64_t at_seq, int64_t reconnect_delay_micros) {
    links_.push_back(LinkFault{LinkFaultKind::kDisconnect, src, src_index, dst, dst_index,
                               at_seq, reconnect_delay_micros});
    return *this;
  }

  FaultScript& KillWorkerAt(int rank, uint64_t at_seq) {
    worker_kills_.push_back(WorkerKillFault{rank, at_seq});
    return *this;
  }
  FaultScript& MigrateAt(const std::string& component, int task_index, int target_worker,
                         uint64_t at_seq) {
    migrations_.push_back(MigrateAction{component, task_index, target_worker, at_seq});
    return *this;
  }

  bool empty() const {
    return kills_.empty() && links_.empty() && worker_kills_.empty() && migrations_.empty();
  }
  bool has_link_faults() const { return !links_.empty(); }
  /// True when any statement fires on source progress (needs the action
  /// driver thread).
  bool has_progress_actions() const { return !worker_kills_.empty() || !migrations_.empty(); }
  const std::vector<KillFault>& kills() const { return kills_; }
  const std::vector<LinkFault>& link_faults() const { return links_; }
  const std::vector<WorkerKillFault>& worker_kills() const { return worker_kills_; }
  const std::vector<MigrateAction>& migrations() const { return migrations_; }

 private:
  std::vector<KillFault> kills_;
  std::vector<LinkFault> links_;
  std::vector<WorkerKillFault> worker_kills_;
  std::vector<MigrateAction> migrations_;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_FAULT_H_
