#ifndef DSSJ_STREAM_TOPOLOGY_H_
#define DSSJ_STREAM_TOPOLOGY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/options.h"
#include "stream/channel.h"
#include "stream/component.h"
#include "stream/fault.h"
#include "stream/metrics.h"
#include "stream/overload.h"
#include "stream/value.h"

namespace dssj::stream {

/// How a bolt's tasks receive tuples from a producer component. Mirrors
/// Apache Storm's stream groupings.
enum class GroupingType {
  kShuffle,  ///< round-robin across consumer tasks
  kFields,   ///< hash of selected fields picks the consumer task
  kAll,      ///< every consumer task receives a copy (broadcast)
  kGlobal,   ///< all tuples go to consumer task 0
  kDirect,   ///< producer addresses tasks explicitly via EmitDirect
  kCustom,   ///< user partitioner maps each tuple to a set of tasks
  kPartner,  ///< producer task i feeds consumer task i (parallelisms must match)
};

/// User partitioner for kCustom: append the consumer-local target indices
/// for `tuple` (given `num_tasks` consumer tasks) to `targets`. Must be
/// thread-compatible: one instance may be invoked concurrently from
/// different producer tasks, so implementations should be stateless or
/// internally synchronized.
using CustomPartitioner =
    std::function<void(const Tuple& tuple, int num_tasks, std::vector<int>& targets)>;

/// A producer→consumer edge specification.
struct Grouping {
  GroupingType type = GroupingType::kShuffle;
  std::vector<size_t> fields;  ///< field indices for kFields
  CustomPartitioner custom;    ///< partitioner for kCustom
};

using SpoutFactory = std::function<std::unique_ptr<Spout>()>;
using BoltFactory = std::function<std::unique_ptr<Bolt>()>;

namespace internal_topology {
struct TopologyImpl;
struct ComponentSpec;
}  // namespace internal_topology

/// Fluent handle returned by TopologyBuilder::SetBolt for declaring input
/// subscriptions. At most one grouping per (producer, this bolt) pair.
class BoltDeclarer {
 public:
  BoltDeclarer& ShuffleGrouping(const std::string& source);
  BoltDeclarer& FieldsGrouping(const std::string& source, std::vector<size_t> fields);
  BoltDeclarer& AllGrouping(const std::string& source);
  BoltDeclarer& GlobalGrouping(const std::string& source);
  BoltDeclarer& DirectGrouping(const std::string& source);
  BoltDeclarer& CustomGrouping(const std::string& source, CustomPartitioner partitioner);
  /// One-to-one lane wiring: producer task i delivers only to consumer task
  /// i. Build() rejects the edge unless both components have the same
  /// parallelism. Used by the sharded ingestion front end, where each
  /// source lane owns a partner dispatcher lane.
  BoltDeclarer& PartnerGrouping(const std::string& source);

  /// Pins this component's tasks to explicit workers (one entry per task).
  BoltDeclarer& SetPlacement(std::vector<int> workers);

 private:
  friend class TopologyBuilder;
  BoltDeclarer(internal_topology::ComponentSpec* spec) : spec_(spec) {}
  internal_topology::ComponentSpec* spec_;
};

/// Fluent handle returned by TopologyBuilder::SetSpout.
class SpoutDeclarer {
 public:
  /// Pins this component's tasks to explicit workers (one entry per task).
  SpoutDeclarer& SetPlacement(std::vector<int> workers);

 private:
  friend class TopologyBuilder;
  SpoutDeclarer(internal_topology::ComponentSpec* spec) : spec_(spec) {}
  internal_topology::ComponentSpec* spec_;
};

/// A built, runnable dataflow. Obtain from TopologyBuilder::Build. A
/// topology can be run exactly once.
class Topology {
 public:
  ~Topology();
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Starts all executor threads. Call once.
  void Submit();
  /// Blocks until every task has processed end-of-stream and exited.
  void Wait();
  /// Submit() + Wait().
  void Run();

  /// Wall-clock seconds from Submit to the last task finishing. Valid after
  /// Wait(); while running, returns elapsed-so-far.
  double ElapsedSeconds() const;

  /// Metric views. Safe to call during and after the run.
  std::vector<TaskStats> AllTasks() const;
  std::vector<TaskStats> TasksOf(const std::string& component) const;

  /// Number of simulated workers tasks were placed on.
  int num_workers() const;

  /// Live-migrates one bolt task to `target_worker` while the topology runs
  /// (docs/INTERNALS.md §12). Requires SetElastic; blocks until the handoff
  /// completes. The task is frozen at an exact per-link sequence boundary,
  /// its state (bolt snapshot, progress counters, emission cursors) is
  /// serialized, verified, and restored into a fresh incarnation on the
  /// target worker, and routing flips while every producer into the task is
  /// quiesced — so the result stream is byte-identical to an unmigrated
  /// run. Migrating to the task's current worker is a no-op success.
  /// Serialized internally: concurrent calls run one at a time.
  ///
  /// With a real (TCP) transport, only the coordinator (rank 0) may call
  /// this, and every producer feeding the task must be hosted on rank 0
  /// (the distributed join's pinned placement guarantees that). Bolts
  /// without snapshot support migrate with fresh (empty) state — only
  /// migrate them when that is acceptable.
  Status MigrateTask(const std::string& component, int task_index, int target_worker);

  /// Current worker of one task (reflects completed migrations).
  int TaskWorker(const std::string& component, int task_index) const;

  /// False once any supervised task exhausted its restart budget (the run's
  /// results are then incomplete). Valid during and after the run; always
  /// true for unsupervised topologies.
  bool ok() const;
  /// Human-readable reason for ok() == false ("" while ok).
  std::string failure_message() const;

 private:
  friend class TopologyBuilder;
  explicit Topology(std::unique_ptr<internal_topology::TopologyImpl> impl);
  std::unique_ptr<internal_topology::TopologyImpl> impl_;
};

/// Declarative construction of a topology: components with parallelism and
/// factories, subscriptions with groupings, worker count, queue capacity.
/// Configuration errors abort via CHECK (they are programming errors).
class TopologyBuilder {
 public:
  TopologyBuilder();
  ~TopologyBuilder();

  /// Adds a spout component. The factory is invoked once per task at
  /// Build().
  SpoutDeclarer SetSpout(const std::string& name, SpoutFactory factory, int parallelism = 1);

  /// Adds a bolt component. Declare its inputs on the returned declarer.
  BoltDeclarer SetBolt(const std::string& name, BoltFactory factory, int parallelism = 1);

  /// Number of simulated workers tasks are placed on (default 1). Tuples
  /// crossing workers are counted as remote messages/bytes.
  TopologyBuilder& SetNumWorkers(int workers);

  /// Inbound queue capacity per task (default 1024 tuples); the backpressure
  /// bound.
  TopologyBuilder& SetQueueCapacity(size_t capacity);

  /// Inbound-queue implementation for co-located links (default
  /// QueueImpl::kRing): lock-free rings — SpscRingQueue for tasks with a
  /// single upstream task and no transport, RingQueue (MPMC) for fan-in —
  /// or the mutex+condvar BoundedQueue with kMutex. Purely a performance
  /// lever: both implementations preserve per-link FIFO, Close semantics,
  /// fault hooks, shed accounting, and queue-health gauges, and produce
  /// byte-identical results (tests/queue_equivalence_test.cc).
  TopologyBuilder& SetQueueImpl(QueueImpl impl);

  /// Pins executor threads round-robin across the machine's cores at
  /// Submit (Linux; best-effort, no-op elsewhere). Off by default — the OS
  /// scheduler usually does fine — but benchmarks that sweep task counts
  /// (bench_throughput_threshold's cores axis) pin so run-to-run placement
  /// noise does not drown the queue-implementation signal.
  TopologyBuilder& SetPinThreads(bool pin);

  /// Tuple-transport batch size (default 32). Producers buffer up to this
  /// many tuples per consumer task and hand them to the inbound queue under
  /// one lock with one wakeup; consumers likewise drain up to this many per
  /// lock and hand them to Bolt::ExecuteBatch. 1 restores strict per-tuple
  /// transport (lowest latency). Buffered tuples are always flushed before
  /// end-of-stream, and per-link FIFO order — the exactly-once invariant's
  /// foundation — is preserved for every batch size.
  TopologyBuilder& SetBatchSize(size_t batch_size);

  /// Simulated serialization/deserialization cost, in CPU-nanoseconds per
  /// byte, charged to the busy time of both endpoints of every tuple that
  /// crosses simulated workers (default 0 = free, as within one process).
  /// Real stream processors pay this with actual CPU (Kryo/JSON encode on
  /// the producer, decode on the consumer); the charge lets the
  /// cluster-model throughput reflect message volume. Accounting only — no
  /// time is actually burned.
  TopologyBuilder& SetRemoteByteCostNanos(double nanos_per_byte);

  /// Turns executors into supervisors: a (simulated) task crash destroys
  /// only the spout/bolt object, and the executor re-creates it — restoring
  /// the last checkpoint and replaying the gap — under the given restart /
  /// checkpoint / backoff policy. Per-link emission counters make recovery
  /// exactly-once: a restarted component's re-emissions are suppressed up
  /// to the last tuple each consumer already received.
  TopologyBuilder& SetSupervision(SupervisorOptions options);

  /// Turns on overload control: bolt inbound queues track health (depth
  /// EWMA, time at capacity, oldest-tuple age, exported through the task
  /// metrics and TaskContext::queue_health), and — when
  /// `options.stall_timeout_micros > 0` — a watchdog thread samples
  /// topology progress, failing the run with a per-task state dump (or
  /// forcing shedding, see OverloadOptions::fail_fast) when no task makes
  /// progress with work pending or a queued tuple exceeds the stall
  /// timeout. The shed policy itself is enforced by bolts that consult
  /// TaskContext::queue_health (e.g. the distributed join's JoinerBolt);
  /// the substrate never drops tuples on its own.
  TopologyBuilder& SetOverload(OverloadOptions options);

  /// Attaches a tiered state store (docs/INTERNALS.md §13). Requires
  /// supervision. Checkpoints then persist to `options.dir` instead of
  /// living only in the supervisor's memory: in kSync mode each
  /// checkpoint writes a full base image inline (durability without new
  /// moving parts); in kAsync mode the executor freezes a cheap
  /// copy-on-write view at the checkpoint boundary and a dedicated
  /// checkpoint thread encodes and writes it — deltas between full bases
  /// every `delta_base_interval` checkpoints — so the hot path never
  /// blocks on serialization or I/O. Recovery composes newest intact
  /// base + contiguous delta chain; a torn or corrupt newest checkpoint
  /// falls back to the previous consistent chain. Bolts under a memory
  /// budget additionally spill cold window state to checksummed segments
  /// in the same directory (see JoinerBolt). Each task owns a disjoint
  /// subdirectory, truncated when its executor starts — one topology run
  /// at a time owns the tree.
  TopologyBuilder& SetStore(store::StoreOptions options);

  /// Installs a deterministic fault schedule (task kills, link
  /// drop/duplicate/delay/disconnect); implies supervision (with default
  /// SupervisorOptions unless SetSupervision was called). Script targets
  /// are validated at Build(): unknown components, out-of-range task
  /// indices, or link faults on non-edges abort via CHECK.
  TopologyBuilder& SetFaultScript(FaultScript script);

  /// Enables live task migration (Topology::MigrateTask and the
  /// kill_worker/migrate fault-script actions). Implies supervision (the
  /// migration blob doubles as a checkpoint). Elastic topologies pay a
  /// small per-push cost: every delivery passes a per-task quiesce gate so
  /// a migration can freeze a task at an exact sequence boundary. With a
  /// real transport, every rank additionally materializes (dormant) bolt
  /// instances for tasks placed elsewhere, so any rank can receive a
  /// migrated task at runtime.
  TopologyBuilder& SetElastic(bool elastic);

  /// Attaches an inter-worker transport, making the worker placement real:
  /// this process hosts only the tasks whose worker equals the transport's
  /// local rank (all tasks under hosts_all_tasks(), e.g. LoopbackTransport),
  /// and every cross-worker link is routed through a transport channel —
  /// wire-encoded, sequence numbers preserved end-to-end. Without a
  /// transport the worker placement stays a single-process simulation.
  /// With a real transport, SetNumWorkers must match the transport's world
  /// size, and scripted drop/dup faults must stay on co-located links
  /// (their retention map is process-local). Wait() runs the transport's
  /// end-of-run barrier: rank 0 folds every remote task's counters into its
  /// own metrics view and surfaces remote failures through ok().
  TopologyBuilder& SetTransport(std::shared_ptr<Transport> transport);

  /// Validates the dataflow (existing sources, a DAG, bolts have inputs),
  /// instantiates components, and returns the runnable topology. The
  /// builder is consumed.
  std::unique_ptr<Topology> Build();

 private:
  std::unique_ptr<internal_topology::TopologyImpl> impl_;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_TOPOLOGY_H_
