#include "stream/topology.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/hash.h"
#include "common/logging.h"
#include "common/stats.h"
#include "stream/channel.h"
#include "stream/queue.h"
#include "stream/ring_queue.h"

namespace dssj::stream {
namespace internal_topology {

// Envelope (the unit travelling through inbound queues and channels) lives
// in stream/channel.h now that transports frame it onto the wire.

namespace {

uint64_t HashValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return Mix64(static_cast<uint64_t>(*i));
  if (const auto* d = std::get_if<double>(&v)) return Mix64(std::bit_cast<uint64_t>(*d));
  if (const auto* s = std::get_if<std::string>(&v)) return Fnv1a64(*s);
  LOG(FATAL) << "FieldsGrouping over an opaque payload field is not supported";
  return 0;
}

}  // namespace

struct Subscription {
  int consumer_comp = -1;
  Grouping grouping;
};

struct ComponentSpec {
  std::string name;
  bool is_spout = false;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  int parallelism = 1;
  std::vector<int> placement;  // explicit worker per task; empty = default

  // Declared inputs (bolts): source component name -> grouping.
  std::vector<std::pair<std::string, Grouping>> inputs;

  // Resolved at Build():
  int first_task = -1;
  std::vector<Subscription> subs_out;  // consumers of this component
  int upstream_tasks = 0;              // total producer tasks feeding each task
};

struct Task {
  int id = -1;
  int comp = -1;
  int local_index = 0;
  int worker = 0;
  /// Hosted (locally executing) bolt tasks only; null for spouts and for
  /// tasks a transport places on another rank.
  std::unique_ptr<Queue<Envelope>> queue;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  /// Allocated for every task, hosted or not: rank 0 folds remote tasks'
  /// counters into these at the transport's end-of-run barrier.
  std::unique_ptr<TaskMetrics> metrics;
  std::thread thread;
};

/// A link fault resolved to task ids at Build().
struct ResolvedLinkFault {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  uint64_t seq = 0;
  int64_t delay_micros = 0;
};

struct TopologyImpl {
  std::vector<std::unique_ptr<ComponentSpec>> comps;
  std::unordered_map<std::string, int> comp_index;
  std::vector<Task> tasks;
  int num_workers = 1;
  size_t queue_capacity = 1024;
  QueueImpl queue_impl = QueueImpl::kRing;
  bool pin_threads = false;
  size_t batch_size = 32;
  double remote_byte_cost_ns = 0.0;
  bool built = false;
  bool submitted = false;
  std::atomic<int64_t> start_us{0};
  std::atomic<int64_t> end_us{0};

  // Inter-worker transport (SetTransport). When null the worker placement
  // is a single-process simulation. local_rank caches transport->
  // local_rank(); `hosted` (by task id) marks the tasks this process
  // actually executes — non-hosted tasks keep only their metrics slot.
  std::shared_ptr<Transport> transport;
  int local_rank = 0;
  std::vector<uint8_t> hosted;
  bool finish_done = false;

  // Fault tolerance. `supervised` turns executors into supervisors (and
  // enables the per-link emission bookkeeping recovery needs);
  // `fault_active` additionally arms the consumer-side link guard.
  bool supervised = false;
  bool fault_active = false;
  SupervisorOptions supervision;
  FaultScript fault_script;
  // Resolved at Build(), indexed by task id: scripted kill counts (sorted)
  // and, per producer task, destination-task → link faults (sorted by seq).
  std::vector<std::vector<uint64_t>> kill_plan;
  std::vector<std::unordered_map<int, std::vector<ResolvedLinkFault>>> link_plan;

  // Retention for scripted drops: a dropped envelope parks here (keyed by
  // source task, destination task, link seq) until the destination detects
  // the sequence gap and fetches it. The producer inserts before pushing
  // any successor, so a consumer that sees the gap always finds the entry.
  std::mutex fault_mu;
  std::map<std::tuple<int, int, uint64_t>, Envelope> retained;

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string failure_message;

  // Overload control (SetOverload): queue-health instrumentation is enabled
  // on every bolt queue at Build(), and — when a stall timeout is set — a
  // watchdog thread samples progress while the topology runs. The watchdog
  // either fails the run with a per-task dump (fail_fast) or raises
  // `force_shed`, which TaskContext::queue_health exposes to shedding
  // bolts. `task_exited` mirrors thread liveness for the dump (one flag per
  // task, allocated at Build because Task objects are moved into `tasks`).
  bool overload_active = false;
  OverloadOptions overload;
  std::atomic<bool> force_shed{false};
  std::unique_ptr<std::atomic<uint8_t>[]> task_exited;
  std::thread watchdog;
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool watchdog_stop = false;

  void RunSpoutTask(Task& task);
  void RunBoltTask(Task& task);
  void NoteTaskExit(int task_id);
  void MarkFailed(const std::string& msg);
  void RunWatchdog();
  void StopWatchdog();
  std::string StallDump(const char* trigger, int64_t stalled_us);
  /// Refreshes one task's queue-health gauges from a snapshot.
  static void PublishQueueHealth(TaskMetrics& m, const QueueHealth& h);
  void Retain(int src, int dst, uint64_t seq, Envelope env);
  bool FetchRetained(int src, int dst, uint64_t seq, Envelope* out);
  /// Sleeps the current (exponential) restart backoff and doubles it.
  void SleepBackoff(int64_t* backoff_micros) const;

  bool Hosted(int task_id) const { return hosted[static_cast<size_t>(task_id)] != 0; }
  /// Producer endpoint for dst_task as seen from a producer on
  /// `producer_worker` (== local_rank for a real transport; under a
  /// hosts-all transport each simulated worker gets its own view, so
  /// cross-worker edges still pay the wire codec).
  std::unique_ptr<Channel> MakeChannel(int producer_worker, int dst_task);
  /// Transport inbound path: lands a decoded batch on a hosted task's queue.
  size_t DeliverInbound(int dst_task, std::vector<Envelope>&& batch);
  /// Transport failure path: fails the run and closes every hosted queue so
  /// local tasks unwind instead of waiting for remote envelopes.
  void FailFromTransport(const std::string& message);
};

std::unique_ptr<Channel> TopologyImpl::MakeChannel(int producer_worker, int dst_task) {
  Task& dst = tasks[static_cast<size_t>(dst_task)];
  const bool cross = transport != nullptr && (transport->hosts_all_tasks()
                                                  ? dst.worker != producer_worker
                                                  : dst.worker != local_rank);
  if (cross) return transport->OpenChannel(dst_task);
  CHECK(dst.queue != nullptr) << "channel to a task without an inbound queue";
  return std::make_unique<InprocChannel>(dst.queue.get());
}

size_t TopologyImpl::DeliverInbound(int dst_task, std::vector<Envelope>&& batch) {
  Task& target = tasks[static_cast<size_t>(dst_task)];
  if (target.queue == nullptr) return 0;  // not hosted here
  const size_t depth = target.queue->PushBatch(&batch);
  target.metrics->queue_highwater.Update(depth);
  return depth;
}

void TopologyImpl::FailFromTransport(const std::string& message) {
  MarkFailed("transport: " + message);
  for (Task& task : tasks) {
    if (task.queue != nullptr) task.queue->Close();
  }
}

void TopologyImpl::NoteTaskExit(int task_id) {
  if (task_exited != nullptr) task_exited[task_id].store(1, std::memory_order_relaxed);
  const int64_t now = NowMicros();
  int64_t cur = end_us.load(std::memory_order_relaxed);
  while (now > cur && !end_us.compare_exchange_weak(cur, now, std::memory_order_relaxed)) {
  }
}

void TopologyImpl::PublishQueueHealth(TaskMetrics& m, const QueueHealth& h) {
  m.queue_depth.Set(static_cast<int64_t>(h.depth));
  m.queue_depth_ewma_x1000.Set(static_cast<int64_t>(h.depth_ewma * 1000.0));
  m.queue_time_at_capacity_micros.Set(h.time_at_capacity_micros);
  m.queue_oldest_age_micros.Set(h.oldest_age_micros);
}

std::string TopologyImpl::StallDump(const char* trigger, int64_t stalled_us) {
  std::string out = "stall watchdog (" + std::string(trigger) + "): no healthy progress for " +
                    std::to_string(stalled_us / 1000) + " ms with work pending; task state:";
  for (Task& task : tasks) {
    const ComponentSpec& comp = *comps[task.comp];
    out += "\n  " + comp.name + "[" + std::to_string(task.local_index) + "]" +
           " worker=" + std::to_string(task.worker) +
           " executed=" + std::to_string(task.metrics->executed.Get()) +
           " emitted=" + std::to_string(task.metrics->emitted.Get());
    if (task.queue != nullptr) {
      const QueueHealth h = task.queue->Health();
      out += " queue=" + std::to_string(h.depth) + "/" + std::to_string(h.capacity) +
             " oldest_age_ms=" + std::to_string(h.oldest_age_micros / 1000) +
             " at_capacity_ms=" + std::to_string(h.at_capacity_stretch_micros / 1000);
    }
    out += task_exited[task.id].load(std::memory_order_relaxed) ? " exited" : " running";
  }
  return out;
}

void TopologyImpl::RunWatchdog() {
  uint64_t last_progress = ~uint64_t{0};  // first sample always "progresses"
  int64_t last_progress_us = NowMicros();
  std::unique_lock<std::mutex> lock(watchdog_mu);
  while (!watchdog_stop) {
    watchdog_cv.wait_for(lock,
                         std::chrono::microseconds(overload.watchdog_interval_micros));
    if (watchdog_stop) break;
    lock.unlock();

    uint64_t progress = 0;
    bool pending = false;
    bool all_exited = true;
    int64_t oldest_age_us = 0;
    for (Task& task : tasks) {
      progress += task.metrics->executed.Get() + task.metrics->emitted.Get();
      if (task_exited[task.id].load(std::memory_order_relaxed) == 0) all_exited = false;
      if (task.queue != nullptr) {
        const QueueHealth h = task.queue->Health();
        // Publish from here too, so a wedged task still reports fresh
        // health through the metrics.
        PublishQueueHealth(*task.metrics, h);
        if (h.depth > 0) pending = true;
        oldest_age_us = std::max(oldest_age_us, h.oldest_age_micros);
      }
    }

    const int64_t now = NowMicros();
    bool trip = false;
    const char* trigger = "";
    int64_t stalled_us = 0;
    if (progress != last_progress || all_exited || failed.load(std::memory_order_acquire)) {
      last_progress = progress;
      last_progress_us = now;
    } else if (pending && now - last_progress_us >= overload.stall_timeout_micros) {
      // (a) Nothing executed or emitted anywhere for a full timeout while
      // tuples sit queued: the topology is wedged.
      trip = true;
      trigger = "no progress";
      stalled_us = now - last_progress_us;
    }
    if (!trip && oldest_age_us >= overload.stall_timeout_micros && !all_exited &&
        !failed.load(std::memory_order_acquire)) {
      // (b) A queued tuple has waited longer than the stall timeout: the
      // topology may still be progressing, but sustained overload has
      // pushed queueing delay past the point the caller declared tolerable.
      trip = true;
      trigger = "tuple overdue";
      stalled_us = oldest_age_us;
    }
    if (trip) {
      if (overload.fail_fast) {
        MarkFailed(StallDump(trigger, stalled_us));
        // Unwedge everything: closed queues reject pushes (producers
        // unblock) and report drained to consumers (bolts unwind); the
        // spout loop checks failed and stops emitting.
        for (Task& task : tasks) {
          if (task.queue != nullptr) task.queue->Close();
        }
        lock.lock();
        break;
      }
      // Degrade instead of failing: every shedding bolt sees force_shed
      // through TaskContext::queue_health. Re-arm so recovery is observed
      // before the next trip.
      force_shed.store(true, std::memory_order_relaxed);
      last_progress_us = now;
    }
    lock.lock();
  }
}

void TopologyImpl::StopWatchdog() {
  if (!watchdog.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu);
    watchdog_stop = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();
}

void TopologyImpl::MarkFailed(const std::string& msg) {
  bool expected = false;
  if (failed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(fail_mu);
    failure_message = msg;
  }
}

void TopologyImpl::Retain(int src, int dst, uint64_t seq, Envelope env) {
  std::lock_guard<std::mutex> lock(fault_mu);
  retained.emplace(std::make_tuple(src, dst, seq), std::move(env));
}

bool TopologyImpl::FetchRetained(int src, int dst, uint64_t seq, Envelope* out) {
  std::lock_guard<std::mutex> lock(fault_mu);
  const auto it = retained.find(std::make_tuple(src, dst, seq));
  if (it == retained.end()) return false;
  *out = std::move(it->second);
  retained.erase(it);
  return true;
}

void TopologyImpl::SleepBackoff(int64_t* backoff_micros) const {
  if (*backoff_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(*backoff_micros));
  }
  *backoff_micros = std::min(*backoff_micros > 0 ? *backoff_micros * 2 : int64_t{1},
                             supervision.max_backoff_micros);
}

/// OutputCollector bound to one producer task. Owns per-subscription
/// round-robin counters for shuffle grouping; used only from the task's
/// executor thread.
///
/// With batch_size > 1, outbound envelopes are staged in per-consumer-task
/// buffers and handed to the consumer's queue via PushBatch once a buffer
/// reaches batch_size (one lock + one wakeup per batch instead of per
/// tuple). Buffering never reorders tuples headed to the same consumer
/// task, so per-link FIFO — the exactly-once rule's foundation — holds.
/// The executor flushes all buffers before emitting end-of-stream.
///
/// Under supervision the collector additionally keeps, per consumer task,
/// the *canonical* count of data envelopes this task has emitted on the
/// link (`emitted_`, rolled back to the last checkpoint on a crash) and the
/// monotonic count actually handed over (`delivered_`, advanced when an
/// envelope reaches the consumer queue or the drop-retention map, never
/// rolled back). A recovering component re-runs and re-emits; Deliver
/// suppresses every re-emission whose canonical number the consumer already
/// has — this is what makes recovery exactly-once without any consumer-side
/// dedup of replayed tuples.
class CollectorImpl : public OutputCollector {
 public:
  /// Producer-side view of emission progress, captured at checkpoints and
  /// restored on a crash. Only the canonical counters and the round-robin
  /// cursors roll back; delivery progress is irreversible.
  struct Cursor {
    std::vector<uint64_t> emitted;
    std::vector<uint64_t> rr;
  };

  CollectorImpl(TopologyImpl* topo, Task* task)
      : topo_(topo), task_(task), comp_(*topo->comps[task->comp]),
        batch_size_(topo->batch_size), tracking_(topo->supervised) {
    rr_.assign(comp_.subs_out.size(), static_cast<uint64_t>(task->local_index));
    channels_.resize(topo->tasks.size());
    if (batch_size_ > 1) {
      pending_.resize(topo->tasks.size());
      in_dirty_.assign(topo->tasks.size(), 0);
    }
    if (tracking_) {
      emitted_.assign(topo->tasks.size(), 0);
      delivered_.assign(topo->tasks.size(), 0);
    }
    if (topo->fault_active && !topo->link_plan[task->id].empty()) {
      link_faults_ = &topo->link_plan[task->id];
    }
  }

  /// Pushes every staged envelope to its consumer queue. Must be called
  /// before the producer sends EOS (and is harmless otherwise).
  void FlushAll() {
    for (const int task_id : dirty_) {
      if (!pending_[task_id].empty()) FlushTarget(task_id);
      in_dirty_[task_id] = 0;
    }
    dirty_.clear();
  }

  /// Emits the end-of-stream marker to every task of every subscribed
  /// consumer. Under supervision the marker carries the link's final data
  /// count so consumers can recover trailing dropped envelopes.
  void SendEosAll() {
    for (const Subscription& sub : comp_.subs_out) {
      const ComponentSpec& consumer = *topo_->comps[sub.consumer_comp];
      for (int i = 0; i < consumer.parallelism; ++i) {
        const int t = consumer.first_task + i;
        ChannelTo(t)->Push(Envelope{Tuple(), task_->id, /*eos=*/true, 0,
                                    tracking_ ? emitted_[t] : 0});
      }
    }
  }

  void SaveCursor(Cursor* cursor) const {
    cursor->emitted = emitted_;
    cursor->rr = rr_;
  }

  /// Crash recovery: rewinds the canonical emission counters and shuffle
  /// cursors to `cursor` and discards staged (not yet delivered) envelopes
  /// — they die with the crashed component and are regenerated, and only
  /// then delivered, by the replay.
  void Rollback(const Cursor& cursor) {
    emitted_ = cursor.emitted;
    rr_ = cursor.rr;
    for (const int task_id : dirty_) {
      pending_[task_id].clear();
      in_dirty_[task_id] = 0;
    }
    dirty_.clear();
  }

  void Emit(Tuple tuple) override {
    for (size_t si = 0; si < comp_.subs_out.size(); ++si) {
      const Subscription& sub = comp_.subs_out[si];
      const ComponentSpec& consumer = *topo_->comps[sub.consumer_comp];
      const int n = consumer.parallelism;
      switch (sub.grouping.type) {
        case GroupingType::kShuffle:
          Deliver(consumer.first_task + static_cast<int>(rr_[si]++ % n), tuple);
          break;
        case GroupingType::kGlobal:
          Deliver(consumer.first_task, tuple);
          break;
        case GroupingType::kFields: {
          uint64_t h = 0;
          for (size_t f : sub.grouping.fields) h = HashCombine(h, HashValue(tuple.field(f)));
          Deliver(consumer.first_task + static_cast<int>(h % static_cast<uint64_t>(n)), tuple);
          break;
        }
        case GroupingType::kAll:
          for (int i = 0; i < n; ++i) Deliver(consumer.first_task + i, tuple);
          break;
        case GroupingType::kCustom: {
          targets_.clear();
          sub.grouping.custom(tuple, n, targets_);
          for (int idx : targets_) {
            DCHECK_GE(idx, 0);
            DCHECK_LT(idx, n);
            Deliver(consumer.first_task + idx, tuple);
          }
          break;
        }
        case GroupingType::kDirect:
          break;  // only EmitDirect reaches direct subscribers
      }
    }
  }

  void EmitDirect(const std::string& component, int task_index, Tuple tuple) override {
    const auto it = topo_->comp_index.find(component);
    CHECK(it != topo_->comp_index.end()) << "unknown component " << component;
    const ComponentSpec& consumer = *topo_->comps[it->second];
    CHECK_GE(task_index, 0);
    CHECK_LT(task_index, consumer.parallelism);
    // The consumer must have declared DirectGrouping on this producer.
    DCHECK(HasDirectSubscription(it->second))
        << component << " did not DirectGrouping-subscribe to " << comp_.name;
    Deliver(consumer.first_task + task_index, std::move(tuple));
  }

 private:
  bool HasDirectSubscription(int consumer_comp) const {
    for (const Subscription& sub : comp_.subs_out) {
      if (sub.consumer_comp == consumer_comp && sub.grouping.type == GroupingType::kDirect) {
        return true;
      }
    }
    return false;
  }

  void Deliver(int task_id, Tuple tuple) {
    uint64_t seq = 0;
    if (tracking_) {
      seq = ++emitted_[task_id];
      // Recovery replay: the consumer already received this canonical
      // envelope from the pre-crash incarnation (or from drop retention).
      if (seq <= delivered_[task_id]) return;
    }
    Task& target = topo_->tasks[task_id];
    TaskMetrics& m = *task_->metrics;
    const size_t bytes = tuple.SerializedBytes();
    m.emitted.Increment();
    m.total_messages.Increment();
    m.total_bytes.Add(bytes);
    int64_t extra_busy_ns = 0;
    if (target.worker != task_->worker) {
      m.remote_messages.Increment();
      m.remote_bytes.Add(bytes);
      if (topo_->remote_byte_cost_ns > 0.0) {
        // Serialization on the producer, deserialization on the consumer.
        const int64_t cost =
            static_cast<int64_t>(topo_->remote_byte_cost_ns * static_cast<double>(bytes));
        m.busy_nanos.Add(static_cast<uint64_t>(cost));
        extra_busy_ns = cost;
      }
    }
    Envelope env{std::move(tuple), task_->id, /*eos=*/false, extra_busy_ns, seq};
    if (link_faults_ != nullptr && HandleLinkFault(task_id, env)) return;
    if (batch_size_ <= 1) {
      if (tracking_) delivered_[task_id] = seq;
      Channel* ch = ChannelTo(task_id);
      const size_t depth = ch->Push(std::move(env));
      // Remote channels report their send-buffer depth; only an in-process
      // push observes the consumer queue (remote highwater is tracked on
      // the receiving side by DeliverInbound).
      if (ch->inproc()) target.metrics->queue_highwater.Update(depth);
      return;
    }
    std::vector<Envelope>& buffer = pending_[task_id];
    if (!in_dirty_[task_id]) {
      in_dirty_[task_id] = 1;
      dirty_.push_back(task_id);
    }
    buffer.push_back(std::move(env));
    if (buffer.size() >= batch_size_) FlushTarget(task_id);
  }

  /// Applies any scripted fault on (this task → task_id) at env's canonical
  /// sequence number. Returns true when the envelope was consumed here
  /// (dropped into retention, or pushed — twice — for a duplicate).
  bool HandleLinkFault(int task_id, Envelope& env) {
    const auto it = link_faults_->find(task_id);
    if (it == link_faults_->end()) return false;
    bool drop = false;
    bool duplicate = false;
    for (const ResolvedLinkFault& fault : it->second) {
      if (fault.seq != env.link_seq) continue;
      switch (fault.kind) {
        case LinkFaultKind::kDelay:
          std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_micros));
          break;
        case LinkFaultKind::kDisconnect: {
          // Sever the connection exactly between this envelope's
          // predecessors and the envelope itself: flush what's staged, cut,
          // then deliver normally (a clean close loses nothing).
          if (batch_size_ > 1) FlushTarget(task_id);
          if (!ChannelTo(task_id)->inproc()) {
            topo_->transport->InjectDisconnect(task_id, fault.delay_micros);
          } else {
            // In-process link: no socket to sever; degrade to the stall the
            // outage would have caused.
            std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_micros));
          }
          break;
        }
        case LinkFaultKind::kDrop:
          drop = true;
          break;
        case LinkFaultKind::kDuplicate:
          duplicate = true;
          break;
      }
    }
    if (!drop && !duplicate) return false;  // delay/disconnect: deliver normally
    // Per-link FIFO: everything staged for this consumer must reach the
    // queue before the faulted envelope is retained or duplicated, so the
    // consumer's sequence guard sees the gap (or the copy) in order.
    if (batch_size_ > 1) FlushTarget(task_id);
    const uint64_t seq = env.link_seq;
    Channel* ch = ChannelTo(task_id);
    Task& target = topo_->tasks[task_id];
    if (drop) {
      topo_->Retain(task_->id, task_id, seq, std::move(env));
    } else {
      Envelope copy = env;
      const size_t d1 = ch->Push(std::move(copy));
      const size_t d2 = ch->Push(std::move(env));
      if (ch->inproc()) {
        target.metrics->queue_highwater.Update(d1);
        target.metrics->queue_highwater.Update(d2);
      }
    }
    if (tracking_) delivered_[task_id] = seq;
    return true;
  }

  void FlushTarget(int task_id) {
    std::vector<Envelope>& buffer = pending_[task_id];
    if (buffer.empty()) return;
    // Everything in the buffer is about to be irreversibly handed over.
    if (tracking_) delivered_[task_id] = buffer.back().link_seq;
    Channel* ch = ChannelTo(task_id);
    const size_t depth = ch->PushBatch(&buffer);
    if (ch->inproc()) topo_->tasks[task_id].metrics->queue_highwater.Update(depth);
    // A closed (failed-consumer) endpoint leaves a remainder; it has no
    // reader.
    buffer.clear();
  }

  /// Lazily opened per-consumer-task endpoint (in-process queue or
  /// transport channel). Per-collector so channels stay single-producer.
  Channel* ChannelTo(int task_id) {
    std::unique_ptr<Channel>& ch = channels_[static_cast<size_t>(task_id)];
    if (ch == nullptr) ch = topo_->MakeChannel(task_->worker, task_id);
    return ch.get();
  }

  TopologyImpl* topo_;
  Task* task_;
  const ComponentSpec& comp_;
  const size_t batch_size_;
  const bool tracking_;
  const std::unordered_map<int, std::vector<ResolvedLinkFault>>* link_faults_ = nullptr;
  std::vector<uint64_t> rr_;
  std::vector<int> targets_;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< by consumer task id
  std::vector<uint64_t> emitted_;    ///< canonical per-link emission counts
  std::vector<uint64_t> delivered_;  ///< monotonic per-link delivery counts
  std::vector<std::vector<Envelope>> pending_;  ///< staged per consumer task
  std::vector<int> dirty_;                      ///< consumer tasks staged since last FlushAll
  std::vector<uint8_t> in_dirty_;               ///< dirty_ membership flags
};

namespace {

/// Executor-side consumer guard, active only when a fault script is
/// installed: validates the canonical per-link sequence of every inbound
/// data envelope, discards scripted duplicates, and pulls scripted drops
/// out of retention the moment their gap (or the final count on EOS)
/// becomes visible. Downstream of this filter the envelope stream is
/// canonical again, so executor logging/replay and the bolt itself never
/// see an injected link fault.
class LinkGuard {
 public:
  LinkGuard(TopologyImpl* topo, Task* task)
      : topo_(topo), task_(task), next_seq_(topo->tasks.size(), 1) {}

  void Canonicalize(std::vector<Envelope>& in, std::vector<Envelope>* out) {
    out->clear();
    TaskMetrics& m = *task_->metrics;
    for (Envelope& env : in) {
      const int src = env.source_task;
      if (env.eos) {
        // The final count recovers trailing drops (no successor envelope
        // ever showed the gap). A failed producer may report a final count
        // below what it delivered; the guard just passes the EOS through.
        FetchThrough(src, env.link_seq, &m, out);
        out->push_back(std::move(env));
        continue;
      }
      if (env.link_seq < next_seq_[src]) {
        m.link_dups_discarded.Increment();
        continue;
      }
      FetchThrough(src, env.link_seq - 1, &m, out);
      ++next_seq_[src];
      out->push_back(std::move(env));
    }
  }

 private:
  /// Fetches retained envelopes (src → this task) up to sequence `upto`.
  void FetchThrough(int src, uint64_t upto, TaskMetrics* m, std::vector<Envelope>* out) {
    while (next_seq_[src] <= upto) {
      Envelope missing;
      CHECK(topo_->FetchRetained(src, task_->id, next_seq_[src], &missing))
          << "link " << src << "->" << task_->id << " gap at seq " << next_seq_[src]
          << " without a retained (dropped) envelope";
      m->link_drops_recovered.Increment();
      ++next_seq_[src];
      out->push_back(std::move(missing));
    }
  }

  TopologyImpl* topo_;
  Task* task_;
  std::vector<uint64_t> next_seq_;  ///< per source task, next expected data seq
};

}  // namespace

void TopologyImpl::RunSpoutTask(Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get(), /*queue_health=*/nullptr};
  CollectorImpl collector(this, &task);
  TaskMetrics& m = *task.metrics;
  const int64_t cpu_start = ThreadCpuNanos();

  task.spout->Open(ctx);

  // Supervision state. `calls` is the spout's canonical progress counter
  // (NextTuple invocations); kills and checkpoints trigger on it.
  std::deque<uint64_t> kills;
  if (supervised) {
    kills.assign(kill_plan[task.id].begin(), kill_plan[task.id].end());
  }
  const bool snap_ok = task.spout->SupportsSnapshot();
  const uint64_t ckpt_interval =
      (supervised && snap_ok) ? supervision.checkpoint_interval : 0;
  struct SpoutCheckpoint {
    bool has_state = false;
    std::string state;
    uint64_t calls = 0;
    CollectorImpl::Cursor cursor;
  } ckpt;
  collector.SaveCursor(&ckpt.cursor);
  if (snap_ok) {
    // Initial checkpoint: a crash before the first periodic one then
    // restores through the same path (matters for components whose state
    // outlives them — Restore must undo external side effects).
    task.spout->Snapshot(&ckpt.state);
    ckpt.has_state = true;
  }

  uint64_t calls = 0;
  int restarts = 0;
  int64_t backoff = supervision.initial_backoff_micros;
  bool gave_up = false;

  while (true) {
    // A watchdog- or transport-failed run has closed every queue; emitting
    // further is pointless (pushes are rejected), and a paced spout would
    // otherwise keep sleeping through the rest of its schedule.
    if ((overload_active || transport != nullptr) &&
        failed.load(std::memory_order_acquire)) {
      break;
    }
    if (!kills.empty() && calls == kills.front()) {
      kills.pop_front();
      if (restarts >= supervision.max_restarts) {
        MarkFailed("spout task " + comp.name + "[" + std::to_string(task.local_index) +
                   "] exceeded max_restarts=" + std::to_string(supervision.max_restarts));
        gave_up = true;
        break;
      }
      ++restarts;
      m.restarts.Increment();
      SleepBackoff(&backoff);
      // The simulated crash destroys the spout object — its entire state.
      // Recovery: fresh instance, restore the snapshot offset, rewind the
      // canonical emission counters, and re-run; Deliver suppresses every
      // re-emission the consumers already received.
      task.spout = comp.spout_factory();
      CHECK(task.spout != nullptr);
      task.spout->Open(ctx);
      if (ckpt.has_state) task.spout->Restore(ckpt.state);
      collector.Rollback(ckpt.cursor);
      m.replayed_tuples.Add(calls - ckpt.calls);
      calls = ckpt.calls;
      continue;
    }
    if (ckpt_interval > 0 && calls == ckpt.calls + ckpt_interval) {
      collector.FlushAll();  // checkpointed cursors must equal delivery state
      const int64_t t0 = NowNanos();
      ckpt.state.clear();
      task.spout->Snapshot(&ckpt.state);
      ckpt.has_state = true;
      ckpt.calls = calls;
      collector.SaveCursor(&ckpt.cursor);
      m.checkpoints.Increment();
      m.checkpoint_bytes.Add(ckpt.state.size());
      m.checkpoint_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
    }
    if (!task.spout->NextTuple(collector)) break;
    ++calls;
  }
  if (!gave_up) task.spout->Close();
  collector.FlushAll();
  collector.SendEosAll();
  m.busy_nanos.Add(static_cast<uint64_t>(ThreadCpuNanos() - cpu_start));
  NoteTaskExit(task.id);
}

void TopologyImpl::RunBoltTask(Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get(), /*queue_health=*/nullptr};
  if (overload_active) {
    Task* tp = &task;
    TopologyImpl* topo = this;
    ctx.queue_health = [topo, tp]() {
      QueueHealth h = tp->queue->Health();
      h.force_shed = topo->force_shed.load(std::memory_order_relaxed);
      PublishQueueHealth(*tp->metrics, h);
      return h;
    };
  }
  CollectorImpl collector(this, &task);
  TaskMetrics& m = *task.metrics;
  const int64_t cpu_start = ThreadCpuNanos();
  int64_t simulated_busy_ns = 0;

  task.bolt->Prepare(ctx);

  // Supervision state. `executed_total` is the bolt's canonical progress
  // counter (data tuples executed); kills and checkpoints trigger on it.
  // `log` holds the canonical data envelopes received since the last
  // checkpoint: log[0 .. replay_pos) has been executed by the current
  // incarnation, log[replay_pos ..) is pending (non-empty only right after
  // a crash rewound replay_pos to 0). Live input is appended to the log and
  // then executed from it, so the live and replay paths are one code path.
  std::deque<uint64_t> kills;
  if (supervised) {
    kills.assign(kill_plan[task.id].begin(), kill_plan[task.id].end());
  }
  const bool snap_ok = task.bolt->SupportsSnapshot();
  const uint64_t ckpt_interval =
      (supervised && snap_ok) ? supervision.checkpoint_interval : 0;
  struct BoltCheckpoint {
    bool has_state = false;
    std::string state;
    uint64_t executed = 0;
    CollectorImpl::Cursor cursor;
  } ckpt;
  collector.SaveCursor(&ckpt.cursor);
  if (snap_ok) {
    // Initial checkpoint (see RunSpoutTask): recovery always restores,
    // even before the first periodic checkpoint.
    task.bolt->Snapshot(&ckpt.state);
    ckpt.has_state = true;
  }

  uint64_t executed_total = 0;
  std::vector<Envelope> log;
  size_t replay_pos = 0;
  size_t log_high = 0;  // log entries executed at least once (replay metric)
  int restarts = 0;
  int64_t backoff = supervision.initial_backoff_micros;
  bool gave_up = false;

  TupleBatch batch;
  // Executes log[replay_pos..) honoring kill and checkpoint boundaries.
  // Returns false when the task exhausted its restart budget.
  const auto drain_log = [&]() -> bool {
    while (replay_pos < log.size()) {
      if (!kills.empty() && executed_total == kills.front()) {
        kills.pop_front();
        if (restarts >= supervision.max_restarts) return false;
        ++restarts;
        m.restarts.Increment();
        SleepBackoff(&backoff);
        // Simulated crash: the bolt object (all component state) dies; the
        // executor thread survives as supervisor. Restore the checkpoint,
        // rewind the emission cursors, and replay the log from the top —
        // nested crashes during replay just rewind again.
        task.bolt = comp.bolt_factory();
        CHECK(task.bolt != nullptr);
        task.bolt->Prepare(ctx);
        if (ckpt.has_state) task.bolt->Restore(ckpt.state);
        collector.Rollback(ckpt.cursor);
        executed_total = ckpt.executed;
        replay_pos = 0;
        continue;
      }
      if (ckpt_interval > 0 && executed_total == ckpt.executed + ckpt_interval) {
        collector.FlushAll();  // checkpointed cursors must equal delivery state
        const int64_t t0 = NowNanos();
        ckpt.state.clear();
        task.bolt->Snapshot(&ckpt.state);
        ckpt.has_state = true;
        ckpt.executed = executed_total;
        collector.SaveCursor(&ckpt.cursor);
        log.erase(log.begin(), log.begin() + static_cast<ptrdiff_t>(replay_pos));
        log_high -= replay_pos;
        replay_pos = 0;
        m.checkpoints.Increment();
        m.checkpoint_bytes.Add(ckpt.state.size());
        m.checkpoint_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
        continue;
      }
      // Cap the run so the next kill / checkpoint fires at its exact count.
      uint64_t cap = static_cast<uint64_t>(log.size() - replay_pos);
      if (!kills.empty()) cap = std::min(cap, kills.front() - executed_total);
      if (ckpt_interval > 0) {
        cap = std::min(cap, ckpt.executed + ckpt_interval - executed_total);
      }
      const size_t run = static_cast<size_t>(cap);
      batch.clear();
      int64_t batch_extra_ns = 0;
      for (size_t k = replay_pos; k < replay_pos + run; ++k) {
        batch_extra_ns += log[k].extra_busy_ns;
        // Copy: the log entry must survive for a future replay.
        batch.push_back(log[k].tuple);
      }
      if (replay_pos < log_high) {
        m.replayed_tuples.Add(std::min<uint64_t>(run, log_high - replay_pos));
      }
      const int64_t begin = NowNanos();
      task.bolt->ExecuteBatch(std::move(batch), collector);
      m.executed.Add(run);
      m.execute_nanos.Add(static_cast<uint64_t>(NowNanos() - begin));
      simulated_busy_ns += batch_extra_ns;
      executed_total += run;
      replay_pos += run;
      if (replay_pos > log_high) log_high = replay_pos;
    }
    return true;
  };

  LinkGuard guard(this, &task);
  int remaining = comp.upstream_tasks;
  std::vector<Envelope> inbox;
  inbox.reserve(batch_size);
  std::vector<Envelope> canon;
  while (remaining > 0) {
    inbox.clear();
    if (task.queue->PopBatch(&inbox, batch_size) == 0) break;  // closed
    std::vector<Envelope>* in = &inbox;
    if (fault_active) {
      guard.Canonicalize(inbox, &canon);
      in = &canon;
    }
    size_t idx = 0;
    while (idx < in->size()) {
      if ((*in)[idx].eos) {
        --remaining;
        ++idx;
        continue;
      }
      // Gather the run of data envelopes up to the next EOS marker,
      // preserving queue order (EOS never overtakes a link's data because
      // the queue is FIFO).
      const size_t run_begin = idx;
      while (idx < in->size() && !(*in)[idx].eos) ++idx;
      if (supervised) {
        for (size_t k = run_begin; k < idx; ++k) log.push_back(std::move((*in)[k]));
        if (!drain_log()) {
          gave_up = true;
          break;
        }
      } else {
        // Unsupervised fast path: no log, tuples move straight into the
        // batch (byte-for-byte the pre-supervision executor).
        batch.clear();
        int64_t batch_extra_ns = 0;
        for (size_t k = run_begin; k < idx; ++k) {
          batch_extra_ns += (*in)[k].extra_busy_ns;
          batch.push_back(std::move((*in)[k].tuple));
        }
        const size_t executed = idx - run_begin;
        const int64_t begin = NowNanos();
        task.bolt->ExecuteBatch(std::move(batch), collector);
        m.executed.Add(executed);
        // One sample per batch (per-tuple timing would dominate small
        // Execute bodies at large batch sizes).
        m.execute_nanos.Add(static_cast<uint64_t>(NowNanos() - begin));
        simulated_busy_ns += batch_extra_ns;
      }
    }
    if (gave_up) break;
  }

  if (gave_up) {
    MarkFailed("bolt task " + comp.name + "[" + std::to_string(task.local_index) +
               "] exceeded max_restarts=" + std::to_string(supervision.max_restarts));
    // Unblock producers stuck on this task's full queue; new pushes are
    // rejected, so upstream drains to its own EOS without us.
    task.queue->Close();
    collector.FlushAll();
    collector.SendEosAll();  // downstream still needs to terminate
  } else {
    task.bolt->Finish(collector);
    collector.FlushAll();
    collector.SendEosAll();
  }
  m.busy_nanos.Add(
      static_cast<uint64_t>(ThreadCpuNanos() - cpu_start + simulated_busy_ns));
  NoteTaskExit(task.id);
}

}  // namespace internal_topology

using internal_topology::ComponentSpec;
using internal_topology::ResolvedLinkFault;
using internal_topology::Subscription;
using internal_topology::Task;
using internal_topology::TopologyImpl;

// --- Declarers ---------------------------------------------------------

namespace {

void AddInput(ComponentSpec* spec, const std::string& source, Grouping grouping) {
  for (const auto& [name, _] : spec->inputs) {
    CHECK(name != source) << "duplicate subscription of " << spec->name << " to " << source;
  }
  spec->inputs.emplace_back(source, std::move(grouping));
}

/// Pins an executor thread to one core (SetPinThreads). Linux-only; a no-op
/// elsewhere, and best-effort on Linux (a failed setaffinity just leaves
/// the thread floating — pinning is a measurement aid, not a correctness
/// requirement).
void PinThreadToCore(std::thread& thread, unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

}  // namespace

BoltDeclarer& BoltDeclarer::ShuffleGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kShuffle, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::FieldsGrouping(const std::string& source, std::vector<size_t> fields) {
  CHECK(!fields.empty()) << "FieldsGrouping needs at least one field";
  AddInput(spec_, source, Grouping{GroupingType::kFields, std::move(fields), nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::AllGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kAll, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::GlobalGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kGlobal, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::DirectGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kDirect, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::CustomGrouping(const std::string& source,
                                           CustomPartitioner partitioner) {
  CHECK(partitioner != nullptr);
  AddInput(spec_, source, Grouping{GroupingType::kCustom, {}, std::move(partitioner)});
  return *this;
}
BoltDeclarer& BoltDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}
SpoutDeclarer& SpoutDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}

// --- Builder ------------------------------------------------------------

TopologyBuilder::TopologyBuilder() : impl_(std::make_unique<TopologyImpl>()) {}
TopologyBuilder::~TopologyBuilder() = default;

SpoutDeclarer TopologyBuilder::SetSpout(const std::string& name, SpoutFactory factory,
                                        int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = true;
  spec->spout_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return SpoutDeclarer(impl_->comps.back().get());
}

BoltDeclarer TopologyBuilder::SetBolt(const std::string& name, BoltFactory factory,
                                      int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = false;
  spec->bolt_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return BoltDeclarer(impl_->comps.back().get());
}

TopologyBuilder& TopologyBuilder::SetNumWorkers(int workers) {
  CHECK_GE(workers, 1);
  impl_->num_workers = workers;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetQueueCapacity(size_t capacity) {
  CHECK_GE(capacity, 1u);
  impl_->queue_capacity = capacity;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetQueueImpl(QueueImpl impl) {
  impl_->queue_impl = impl;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetPinThreads(bool pin) {
  impl_->pin_threads = pin;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetBatchSize(size_t batch_size) {
  CHECK_GE(batch_size, 1u);
  impl_->batch_size = batch_size;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetRemoteByteCostNanos(double nanos_per_byte) {
  CHECK_GE(nanos_per_byte, 0.0);
  impl_->remote_byte_cost_ns = nanos_per_byte;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetOverload(OverloadOptions options) {
  CHECK_GT(options.shed_watermark, 0.0);
  CHECK_LE(options.shed_watermark, 1.0);
  CHECK_GE(options.watchdog_interval_micros, 1);
  CHECK_GE(options.stall_timeout_micros, 0);
  impl_->overload = options;
  impl_->overload_active = options.enabled();
  return *this;
}

TopologyBuilder& TopologyBuilder::SetSupervision(SupervisorOptions options) {
  CHECK_GE(options.max_restarts, 0);
  CHECK_GE(options.initial_backoff_micros, 0);
  CHECK_GE(options.max_backoff_micros, options.initial_backoff_micros);
  impl_->supervision = options;
  impl_->supervised = true;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetFaultScript(FaultScript script) {
  impl_->fault_script = std::move(script);
  if (!impl_->fault_script.empty()) {
    impl_->fault_active = true;
    impl_->supervised = true;  // kills need a supervisor; defaults apply
  }
  return *this;
}

TopologyBuilder& TopologyBuilder::SetTransport(std::shared_ptr<Transport> transport) {
  impl_->transport = std::move(transport);
  return *this;
}

std::unique_ptr<Topology> TopologyBuilder::Build() {
  CHECK(impl_ != nullptr) << "builder already consumed";
  TopologyImpl& t = *impl_;
  CHECK(!t.built);
  t.built = true;

  // Resolve subscriptions.
  for (size_t ci = 0; ci < t.comps.size(); ++ci) {
    ComponentSpec& comp = *t.comps[ci];
    CHECK(comp.is_spout || !comp.inputs.empty())
        << "bolt " << comp.name << " has no input subscription";
    CHECK(!comp.is_spout || comp.inputs.empty()) << "spouts cannot subscribe to streams";
    for (auto& [source, grouping] : comp.inputs) {
      const auto it = t.comp_index.find(source);
      CHECK(it != t.comp_index.end())
          << comp.name << " subscribes to unknown component " << source;
      CHECK(static_cast<size_t>(it->second) != ci) << "self-loop on " << comp.name;
      t.comps[it->second]->subs_out.push_back(
          Subscription{static_cast<int>(ci), grouping});
      comp.upstream_tasks += t.comps[it->second]->parallelism;
    }
  }

  // Cycle check (DFS, 0=unvisited 1=in-stack 2=done).
  {
    std::vector<int> state(t.comps.size(), 0);
    std::function<void(int)> dfs = [&](int u) {
      state[u] = 1;
      for (const Subscription& sub : t.comps[u]->subs_out) {
        CHECK(state[sub.consumer_comp] != 1) << "topology contains a cycle";
        if (state[sub.consumer_comp] == 0) dfs(sub.consumer_comp);
      }
      state[u] = 2;
    };
    for (size_t i = 0; i < t.comps.size(); ++i) {
      if (state[i] == 0) dfs(static_cast<int>(i));
    }
  }

  // Materialize tasks. With a real (non-hosts-all) transport this process
  // instantiates components only for the tasks placed on its own rank; the
  // rest exist as metric slots, and the per-rank placement must agree
  // across processes (every rank runs the same Build on the same spec).
  const bool hosts_all = t.transport == nullptr || t.transport->hosts_all_tasks();
  if (t.transport != nullptr) {
    t.local_rank = t.transport->local_rank();
    if (!hosts_all) {
      CHECK_EQ(t.num_workers, t.transport->num_ranks())
          << "SetNumWorkers must equal the transport's world size";
    }
  }
  for (auto& comp_ptr : t.comps) {
    ComponentSpec& comp = *comp_ptr;
    comp.first_task = static_cast<int>(t.tasks.size());
    if (!comp.placement.empty()) {
      CHECK_EQ(comp.placement.size(), static_cast<size_t>(comp.parallelism))
          << "placement size mismatch for " << comp.name;
    }
    for (int i = 0; i < comp.parallelism; ++i) {
      Task task;
      task.id = static_cast<int>(t.tasks.size());
      task.comp = static_cast<int>(&comp_ptr - t.comps.data());
      task.local_index = i;
      task.worker = comp.placement.empty() ? i % t.num_workers : comp.placement[i];
      CHECK_GE(task.worker, 0);
      CHECK_LT(task.worker, t.num_workers);
      task.metrics = std::make_unique<TaskMetrics>();
      const bool host_here = hosts_all || task.worker == t.local_rank;
      t.hosted.push_back(host_here ? 1 : 0);
      if (!host_here) {
        t.tasks.push_back(std::move(task));
        continue;
      }
      if (comp.is_spout) {
        task.spout = comp.spout_factory();
        CHECK(task.spout != nullptr);
      } else {
        task.bolt = comp.bolt_factory();
        CHECK(task.bolt != nullptr);
        // An SPSC ring is safe only when exactly one producer-task thread
        // can ever push and no transport thread delivers inbound batches.
        const bool spsc_safe = comp.upstream_tasks == 1 && t.transport == nullptr;
        task.queue = MakeQueue<Envelope>(t.queue_impl, t.queue_capacity, spsc_safe);
      }
      t.tasks.push_back(std::move(task));
    }
  }

  if (t.overload_active) {
    t.task_exited = std::make_unique<std::atomic<uint8_t>[]>(t.tasks.size());
    for (size_t i = 0; i < t.tasks.size(); ++i) {
      // Non-hosted tasks run elsewhere; for the local watchdog they are
      // permanently "exited" (their progress is invisible here).
      t.task_exited[i].store(t.Hosted(static_cast<int>(i)) ? 0 : 1,
                             std::memory_order_relaxed);
      if (t.tasks[i].queue != nullptr) t.tasks[i].queue->EnableHealthTracking();
    }
  }

  // Resolve the fault script against the materialized tasks. Script errors
  // are configuration errors, so they abort like every other Build() check.
  t.kill_plan.assign(t.tasks.size(), {});
  t.link_plan.assign(t.tasks.size(), {});
  const auto resolve_task = [&t](const std::string& component, int index,
                                 const char* what) -> int {
    const auto it = t.comp_index.find(component);
    CHECK(it != t.comp_index.end())
        << "fault script " << what << " references unknown component '" << component << "'";
    const ComponentSpec& comp = *t.comps[it->second];
    CHECK(index >= 0 && index < comp.parallelism)
        << "fault script " << what << " task index " << index << " out of range for "
        << component << " (parallelism " << comp.parallelism << ")";
    return comp.first_task + index;
  };
  for (const KillFault& kill : t.fault_script.kills()) {
    t.kill_plan[resolve_task(kill.component, kill.task_index, "kill")].push_back(
        kill.at_count);
  }
  for (std::vector<uint64_t>& kills : t.kill_plan) std::sort(kills.begin(), kills.end());
  for (const LinkFault& fault : t.fault_script.link_faults()) {
    const int src = resolve_task(fault.src_component, fault.src_index, "link fault source");
    const int dst =
        resolve_task(fault.dst_component, fault.dst_index, "link fault destination");
    const ComponentSpec& src_comp = *t.comps[t.tasks[src].comp];
    bool edge = false;
    for (const Subscription& sub : src_comp.subs_out) {
      if (t.comps[sub.consumer_comp].get() == t.comps[t.tasks[dst].comp].get()) edge = true;
    }
    CHECK(edge) << "fault script link " << fault.src_component << "->" << fault.dst_component
                << " is not an edge of the topology";
    if (!hosts_all &&
        (fault.kind == LinkFaultKind::kDrop || fault.kind == LinkFaultKind::kDuplicate)) {
      // Drop retention (and the consumer-side gap recovery that drains it)
      // lives in one process; across real workers only disconnect faults
      // model network loss.
      CHECK_EQ(t.tasks[src].worker, t.tasks[dst].worker)
          << "scripted drop/dup on " << fault.src_component << "->" << fault.dst_component
          << " crosses workers; with a real transport these faults must stay co-located";
    }
    t.link_plan[src][dst].push_back(
        ResolvedLinkFault{fault.kind, fault.at_seq, fault.delay_micros});
  }
  for (auto& per_dst : t.link_plan) {
    for (auto& [dst, faults] : per_dst) {
      std::sort(faults.begin(), faults.end(),
                [](const ResolvedLinkFault& a, const ResolvedLinkFault& b) {
                  return a.seq < b.seq;
                });
    }
  }

  // Hand the placement to the transport and open the inbound path. The
  // impl pointer outlives the transport's threads: Wait() runs the
  // transport's Finish barrier (joining them) before the impl can die.
  if (t.transport != nullptr) {
    TransportPlan plan;
    plan.num_tasks = static_cast<int>(t.tasks.size());
    plan.task_worker.reserve(t.tasks.size());
    for (const Task& task : t.tasks) plan.task_worker.push_back(task.worker);
    TopologyImpl* tp = &t;
    t.transport->Start(
        plan,
        [tp](int dst_task, std::vector<Envelope>&& batch) {
          return tp->DeliverInbound(dst_task, std::move(batch));
        },
        [tp](const std::string& message) { tp->FailFromTransport(message); });
  }

  return std::unique_ptr<Topology>(new Topology(std::move(impl_)));
}

// --- Topology -----------------------------------------------------------

Topology::Topology(std::unique_ptr<TopologyImpl> impl) : impl_(std::move(impl)) {}
Topology::~Topology() {
  if (impl_ != nullptr && impl_->submitted) Wait();
}

void Topology::Submit() {
  TopologyImpl& t = *impl_;
  CHECK(!t.submitted) << "topology already submitted";
  t.submitted = true;
  t.start_us.store(NowMicros(), std::memory_order_relaxed);
  const unsigned ncores = std::max(1u, std::thread::hardware_concurrency());
  unsigned spawned = 0;
  for (Task& task : t.tasks) {
    if (task.spout != nullptr) {
      task.thread = std::thread([&t, &task] { t.RunSpoutTask(task); });
    } else if (task.bolt != nullptr) {
      task.thread = std::thread([&t, &task] { t.RunBoltTask(task); });
    }
    // Tasks hosted on another rank get no executor here.
    if (t.pin_threads && task.thread.joinable()) {
      PinThreadToCore(task.thread, spawned++ % ncores);
    }
  }
  if (t.overload_active && t.overload.stall_timeout_micros > 0) {
    t.watchdog = std::thread([&t] { t.RunWatchdog(); });
  }
}

void Topology::Wait() {
  TopologyImpl& t = *impl_;
  for (Task& task : t.tasks) {
    if (task.thread.joinable()) task.thread.join();
  }
  t.StopWatchdog();
  if (t.transport != nullptr && !t.finish_done) {
    t.finish_done = true;
    // End-of-run barrier: workers ship their hosted tasks' counters (and
    // any local failure) to rank 0; rank 0 folds the blobs into its metric
    // slots, so AllTasks()/Aggregate on the coordinator see cluster-wide
    // numbers. Joins every transport thread — after this the impl can die.
    Transport::LocalSummary local;
    local.failed = t.failed.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(t.fail_mu);
      local.failure_message = t.failure_message;
    }
    if (t.transport->local_rank() != 0 && !t.transport->hosts_all_tasks()) {
      for (const Task& task : t.tasks) {
        if (!t.Hosted(task.id)) continue;
        std::string blob;
        SerializeTaskCounters(*task.metrics, &blob);
        local.task_metrics.emplace_back(task.id, std::move(blob));
      }
    }
    TopologyImpl* tp = &t;
    const Transport::FinishReport report =
        t.transport->Finish(local, [tp](int task_id, const std::string& blob) {
          if (task_id < 0 || task_id >= static_cast<int>(tp->tasks.size())) return;
          if (!MergeTaskCounters(blob, tp->tasks[task_id].metrics.get())) {
            LOG(ERROR) << "discarding malformed metrics blob for task " << task_id;
          }
        });
    if (report.remote_failed) t.MarkFailed(report.remote_failure);
  }
}

void Topology::Run() {
  Submit();
  Wait();
}

double Topology::ElapsedSeconds() const {
  const int64_t start = impl_->start_us.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  int64_t end = impl_->end_us.load(std::memory_order_relaxed);
  if (end == 0) end = NowMicros();
  return static_cast<double>(end - start) / 1e6;
}

std::vector<TaskStats> Topology::AllTasks() const {
  std::vector<TaskStats> out;
  out.reserve(impl_->tasks.size());
  for (const Task& task : impl_->tasks) {
    out.push_back(TaskStats{impl_->comps[task.comp]->name, task.local_index, task.id,
                            task.worker, task.metrics.get()});
  }
  return out;
}

std::vector<TaskStats> Topology::TasksOf(const std::string& component) const {
  std::vector<TaskStats> out;
  for (TaskStats& s : AllTasks()) {
    if (s.component == component) out.push_back(std::move(s));
  }
  return out;
}

int Topology::num_workers() const { return impl_->num_workers; }

bool Topology::ok() const { return !impl_->failed.load(std::memory_order_acquire); }

std::string Topology::failure_message() const {
  std::lock_guard<std::mutex> lock(impl_->fail_mu);
  return impl_->failure_message;
}

}  // namespace dssj::stream
