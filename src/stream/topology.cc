#include "stream/topology.h"

#include <atomic>
#include <bit>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stats.h"
#include "stream/queue.h"

namespace dssj::stream {
namespace internal_topology {

/// A unit travelling through an inbound queue: either a data tuple or an
/// end-of-stream marker from one upstream task.
struct Envelope {
  Tuple tuple;
  int32_t source_task = -1;
  bool eos = false;
  /// Simulated deserialization cost charged to the consumer's busy time.
  int64_t extra_busy_ns = 0;
};

namespace {

uint64_t HashValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return Mix64(static_cast<uint64_t>(*i));
  if (const auto* d = std::get_if<double>(&v)) return Mix64(std::bit_cast<uint64_t>(*d));
  if (const auto* s = std::get_if<std::string>(&v)) return Fnv1a64(*s);
  LOG(FATAL) << "FieldsGrouping over an opaque payload field is not supported";
  return 0;
}

}  // namespace

struct Subscription {
  int consumer_comp = -1;
  Grouping grouping;
};

struct ComponentSpec {
  std::string name;
  bool is_spout = false;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  int parallelism = 1;
  std::vector<int> placement;  // explicit worker per task; empty = default

  // Declared inputs (bolts): source component name -> grouping.
  std::vector<std::pair<std::string, Grouping>> inputs;

  // Resolved at Build():
  int first_task = -1;
  std::vector<Subscription> subs_out;  // consumers of this component
  int upstream_tasks = 0;              // total producer tasks feeding each task
};

struct Task {
  int id = -1;
  int comp = -1;
  int local_index = 0;
  int worker = 0;
  std::unique_ptr<BoundedQueue<Envelope>> queue;  // bolts only
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  std::unique_ptr<TaskMetrics> metrics;
  std::thread thread;
};

struct TopologyImpl {
  std::vector<std::unique_ptr<ComponentSpec>> comps;
  std::unordered_map<std::string, int> comp_index;
  std::vector<Task> tasks;
  int num_workers = 1;
  size_t queue_capacity = 1024;
  size_t batch_size = 32;
  double remote_byte_cost_ns = 0.0;
  bool built = false;
  bool submitted = false;
  std::atomic<int64_t> start_us{0};
  std::atomic<int64_t> end_us{0};

  void RunSpoutTask(Task& task);
  void RunBoltTask(Task& task);
  void SendEos(const Task& task);
  void NoteTaskExit();
};

/// OutputCollector bound to one producer task. Owns per-subscription
/// round-robin counters for shuffle grouping; used only from the task's
/// executor thread.
///
/// With batch_size > 1, outbound envelopes are staged in per-consumer-task
/// buffers and handed to the consumer's queue via PushBatch once a buffer
/// reaches batch_size (one lock + one wakeup per batch instead of per
/// tuple). Buffering never reorders tuples headed to the same consumer
/// task, so per-link FIFO — the exactly-once rule's foundation — holds.
/// The executor flushes all buffers before emitting end-of-stream.
class CollectorImpl : public OutputCollector {
 public:
  CollectorImpl(TopologyImpl* topo, Task* task)
      : topo_(topo), task_(task), comp_(*topo->comps[task->comp]),
        batch_size_(topo->batch_size) {
    rr_.assign(comp_.subs_out.size(), static_cast<uint64_t>(task->local_index));
    if (batch_size_ > 1) {
      pending_.resize(topo->tasks.size());
      in_dirty_.assign(topo->tasks.size(), 0);
    }
  }

  /// Pushes every staged envelope to its consumer queue. Must be called
  /// before the producer sends EOS (and is harmless otherwise).
  void FlushAll() {
    for (const int task_id : dirty_) {
      if (!pending_[task_id].empty()) FlushTarget(task_id);
      in_dirty_[task_id] = 0;
    }
    dirty_.clear();
  }

  void Emit(Tuple tuple) override {
    for (size_t si = 0; si < comp_.subs_out.size(); ++si) {
      const Subscription& sub = comp_.subs_out[si];
      const ComponentSpec& consumer = *topo_->comps[sub.consumer_comp];
      const int n = consumer.parallelism;
      switch (sub.grouping.type) {
        case GroupingType::kShuffle:
          Deliver(consumer.first_task + static_cast<int>(rr_[si]++ % n), tuple);
          break;
        case GroupingType::kGlobal:
          Deliver(consumer.first_task, tuple);
          break;
        case GroupingType::kFields: {
          uint64_t h = 0;
          for (size_t f : sub.grouping.fields) h = HashCombine(h, HashValue(tuple.field(f)));
          Deliver(consumer.first_task + static_cast<int>(h % static_cast<uint64_t>(n)), tuple);
          break;
        }
        case GroupingType::kAll:
          for (int i = 0; i < n; ++i) Deliver(consumer.first_task + i, tuple);
          break;
        case GroupingType::kCustom: {
          targets_.clear();
          sub.grouping.custom(tuple, n, targets_);
          for (int idx : targets_) {
            DCHECK_GE(idx, 0);
            DCHECK_LT(idx, n);
            Deliver(consumer.first_task + idx, tuple);
          }
          break;
        }
        case GroupingType::kDirect:
          break;  // only EmitDirect reaches direct subscribers
      }
    }
  }

  void EmitDirect(const std::string& component, int task_index, Tuple tuple) override {
    const auto it = topo_->comp_index.find(component);
    CHECK(it != topo_->comp_index.end()) << "unknown component " << component;
    const ComponentSpec& consumer = *topo_->comps[it->second];
    CHECK_GE(task_index, 0);
    CHECK_LT(task_index, consumer.parallelism);
    // The consumer must have declared DirectGrouping on this producer.
    DCHECK(HasDirectSubscription(it->second))
        << component << " did not DirectGrouping-subscribe to " << comp_.name;
    Deliver(consumer.first_task + task_index, std::move(tuple));
  }

 private:
  bool HasDirectSubscription(int consumer_comp) const {
    for (const Subscription& sub : comp_.subs_out) {
      if (sub.consumer_comp == consumer_comp && sub.grouping.type == GroupingType::kDirect) {
        return true;
      }
    }
    return false;
  }

  void Deliver(int task_id, Tuple tuple) {
    Task& target = topo_->tasks[task_id];
    TaskMetrics& m = *task_->metrics;
    const size_t bytes = tuple.SerializedBytes();
    m.emitted.Increment();
    m.total_messages.Increment();
    m.total_bytes.Add(bytes);
    int64_t extra_busy_ns = 0;
    if (target.worker != task_->worker) {
      m.remote_messages.Increment();
      m.remote_bytes.Add(bytes);
      if (topo_->remote_byte_cost_ns > 0.0) {
        // Serialization on the producer, deserialization on the consumer.
        const int64_t cost =
            static_cast<int64_t>(topo_->remote_byte_cost_ns * static_cast<double>(bytes));
        m.busy_nanos.Add(static_cast<uint64_t>(cost));
        extra_busy_ns = cost;
      }
    }
    Envelope env{std::move(tuple), task_->id, /*eos=*/false, extra_busy_ns};
    if (batch_size_ <= 1) {
      const size_t depth = target.queue->Push(std::move(env));
      target.metrics->queue_highwater.Update(depth);
      return;
    }
    std::vector<Envelope>& buffer = pending_[task_id];
    if (!in_dirty_[task_id]) {
      in_dirty_[task_id] = 1;
      dirty_.push_back(task_id);
    }
    buffer.push_back(std::move(env));
    if (buffer.size() >= batch_size_) FlushTarget(task_id);
  }

  void FlushTarget(int task_id) {
    Task& target = topo_->tasks[task_id];
    const size_t depth = target.queue->PushBatch(&pending_[task_id]);
    target.metrics->queue_highwater.Update(depth);
  }

  TopologyImpl* topo_;
  Task* task_;
  const ComponentSpec& comp_;
  const size_t batch_size_;
  std::vector<uint64_t> rr_;
  std::vector<int> targets_;
  std::vector<std::vector<Envelope>> pending_;  ///< staged per consumer task
  std::vector<int> dirty_;                      ///< consumer tasks staged since last FlushAll
  std::vector<uint8_t> in_dirty_;               ///< dirty_ membership flags
};

void TopologyImpl::SendEos(const Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  for (const Subscription& sub : comp.subs_out) {
    const ComponentSpec& consumer = *comps[sub.consumer_comp];
    for (int i = 0; i < consumer.parallelism; ++i) {
      tasks[consumer.first_task + i].queue->Push(Envelope{Tuple(), task.id, /*eos=*/true});
    }
  }
}

void TopologyImpl::NoteTaskExit() {
  const int64_t now = NowMicros();
  int64_t cur = end_us.load(std::memory_order_relaxed);
  while (now > cur && !end_us.compare_exchange_weak(cur, now, std::memory_order_relaxed)) {
  }
}

void TopologyImpl::RunSpoutTask(Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get()};
  CollectorImpl collector(this, &task);
  const int64_t cpu_start = ThreadCpuNanos();
  task.spout->Open(ctx);
  while (task.spout->NextTuple(collector)) {
  }
  task.spout->Close();
  collector.FlushAll();
  SendEos(task);
  task.metrics->busy_nanos.Add(static_cast<uint64_t>(ThreadCpuNanos() - cpu_start));
  NoteTaskExit();
}

void TopologyImpl::RunBoltTask(Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get()};
  CollectorImpl collector(this, &task);
  const int64_t cpu_start = ThreadCpuNanos();
  int64_t simulated_busy_ns = 0;
  task.bolt->Prepare(ctx);
  int remaining = comp.upstream_tasks;
  std::vector<Envelope> inbox;
  inbox.reserve(batch_size);
  TupleBatch batch;
  while (remaining > 0) {
    inbox.clear();
    task.queue->PopBatch(&inbox, batch_size);
    size_t idx = 0;
    while (idx < inbox.size()) {
      // Gather the run of data envelopes up to the next EOS marker,
      // preserving queue order (EOS never overtakes a link's data because
      // the queue is FIFO).
      batch.clear();
      int64_t batch_extra_ns = 0;
      while (idx < inbox.size() && !inbox[idx].eos) {
        batch_extra_ns += inbox[idx].extra_busy_ns;
        batch.push_back(std::move(inbox[idx].tuple));
        ++idx;
      }
      if (!batch.empty()) {
        const size_t executed = batch.size();
        const int64_t begin = NowNanos();
        task.bolt->ExecuteBatch(std::move(batch), collector);
        task.metrics->executed.Add(executed);
        // One sample per batch (per-tuple timing would dominate small
        // Execute bodies at large batch sizes).
        task.metrics->execute_nanos.Add(static_cast<uint64_t>(NowNanos() - begin));
        simulated_busy_ns += batch_extra_ns;
      }
      while (idx < inbox.size() && inbox[idx].eos) {
        --remaining;
        ++idx;
      }
    }
  }
  task.bolt->Finish(collector);
  collector.FlushAll();
  SendEos(task);
  task.metrics->busy_nanos.Add(
      static_cast<uint64_t>(ThreadCpuNanos() - cpu_start + simulated_busy_ns));
  NoteTaskExit();
}

}  // namespace internal_topology

using internal_topology::ComponentSpec;
using internal_topology::Subscription;
using internal_topology::Task;
using internal_topology::TopologyImpl;

// --- Declarers ---------------------------------------------------------

namespace {

void AddInput(ComponentSpec* spec, const std::string& source, Grouping grouping) {
  for (const auto& [name, _] : spec->inputs) {
    CHECK(name != source) << "duplicate subscription of " << spec->name << " to " << source;
  }
  spec->inputs.emplace_back(source, std::move(grouping));
}

}  // namespace

BoltDeclarer& BoltDeclarer::ShuffleGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kShuffle, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::FieldsGrouping(const std::string& source, std::vector<size_t> fields) {
  CHECK(!fields.empty()) << "FieldsGrouping needs at least one field";
  AddInput(spec_, source, Grouping{GroupingType::kFields, std::move(fields), nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::AllGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kAll, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::GlobalGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kGlobal, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::DirectGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kDirect, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::CustomGrouping(const std::string& source,
                                           CustomPartitioner partitioner) {
  CHECK(partitioner != nullptr);
  AddInput(spec_, source, Grouping{GroupingType::kCustom, {}, std::move(partitioner)});
  return *this;
}
BoltDeclarer& BoltDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}
SpoutDeclarer& SpoutDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}

// --- Builder ------------------------------------------------------------

TopologyBuilder::TopologyBuilder() : impl_(std::make_unique<TopologyImpl>()) {}
TopologyBuilder::~TopologyBuilder() = default;

SpoutDeclarer TopologyBuilder::SetSpout(const std::string& name, SpoutFactory factory,
                                        int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = true;
  spec->spout_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return SpoutDeclarer(impl_->comps.back().get());
}

BoltDeclarer TopologyBuilder::SetBolt(const std::string& name, BoltFactory factory,
                                      int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = false;
  spec->bolt_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return BoltDeclarer(impl_->comps.back().get());
}

TopologyBuilder& TopologyBuilder::SetNumWorkers(int workers) {
  CHECK_GE(workers, 1);
  impl_->num_workers = workers;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetQueueCapacity(size_t capacity) {
  CHECK_GE(capacity, 1u);
  impl_->queue_capacity = capacity;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetBatchSize(size_t batch_size) {
  CHECK_GE(batch_size, 1u);
  impl_->batch_size = batch_size;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetRemoteByteCostNanos(double nanos_per_byte) {
  CHECK_GE(nanos_per_byte, 0.0);
  impl_->remote_byte_cost_ns = nanos_per_byte;
  return *this;
}

std::unique_ptr<Topology> TopologyBuilder::Build() {
  CHECK(impl_ != nullptr) << "builder already consumed";
  TopologyImpl& t = *impl_;
  CHECK(!t.built);
  t.built = true;

  // Resolve subscriptions.
  for (size_t ci = 0; ci < t.comps.size(); ++ci) {
    ComponentSpec& comp = *t.comps[ci];
    CHECK(comp.is_spout || !comp.inputs.empty())
        << "bolt " << comp.name << " has no input subscription";
    CHECK(!comp.is_spout || comp.inputs.empty()) << "spouts cannot subscribe to streams";
    for (auto& [source, grouping] : comp.inputs) {
      const auto it = t.comp_index.find(source);
      CHECK(it != t.comp_index.end())
          << comp.name << " subscribes to unknown component " << source;
      CHECK(static_cast<size_t>(it->second) != ci) << "self-loop on " << comp.name;
      t.comps[it->second]->subs_out.push_back(
          Subscription{static_cast<int>(ci), grouping});
      comp.upstream_tasks += t.comps[it->second]->parallelism;
    }
  }

  // Cycle check (DFS, 0=unvisited 1=in-stack 2=done).
  {
    std::vector<int> state(t.comps.size(), 0);
    std::function<void(int)> dfs = [&](int u) {
      state[u] = 1;
      for (const Subscription& sub : t.comps[u]->subs_out) {
        CHECK(state[sub.consumer_comp] != 1) << "topology contains a cycle";
        if (state[sub.consumer_comp] == 0) dfs(sub.consumer_comp);
      }
      state[u] = 2;
    };
    for (size_t i = 0; i < t.comps.size(); ++i) {
      if (state[i] == 0) dfs(static_cast<int>(i));
    }
  }

  // Materialize tasks.
  for (auto& comp_ptr : t.comps) {
    ComponentSpec& comp = *comp_ptr;
    comp.first_task = static_cast<int>(t.tasks.size());
    if (!comp.placement.empty()) {
      CHECK_EQ(comp.placement.size(), static_cast<size_t>(comp.parallelism))
          << "placement size mismatch for " << comp.name;
    }
    for (int i = 0; i < comp.parallelism; ++i) {
      Task task;
      task.id = static_cast<int>(t.tasks.size());
      task.comp = static_cast<int>(&comp_ptr - t.comps.data());
      task.local_index = i;
      task.worker = comp.placement.empty() ? i % t.num_workers : comp.placement[i];
      CHECK_GE(task.worker, 0);
      CHECK_LT(task.worker, t.num_workers);
      task.metrics = std::make_unique<TaskMetrics>();
      if (comp.is_spout) {
        task.spout = comp.spout_factory();
        CHECK(task.spout != nullptr);
      } else {
        task.bolt = comp.bolt_factory();
        CHECK(task.bolt != nullptr);
        task.queue = std::make_unique<BoundedQueue<internal_topology::Envelope>>(
            t.queue_capacity);
      }
      t.tasks.push_back(std::move(task));
    }
  }

  return std::unique_ptr<Topology>(new Topology(std::move(impl_)));
}

// --- Topology -----------------------------------------------------------

Topology::Topology(std::unique_ptr<TopologyImpl> impl) : impl_(std::move(impl)) {}
Topology::~Topology() {
  if (impl_ != nullptr && impl_->submitted) Wait();
}

void Topology::Submit() {
  TopologyImpl& t = *impl_;
  CHECK(!t.submitted) << "topology already submitted";
  t.submitted = true;
  t.start_us.store(NowMicros(), std::memory_order_relaxed);
  for (Task& task : t.tasks) {
    if (task.spout != nullptr) {
      task.thread = std::thread([&t, &task] { t.RunSpoutTask(task); });
    } else {
      task.thread = std::thread([&t, &task] { t.RunBoltTask(task); });
    }
  }
}

void Topology::Wait() {
  for (Task& task : impl_->tasks) {
    if (task.thread.joinable()) task.thread.join();
  }
}

void Topology::Run() {
  Submit();
  Wait();
}

double Topology::ElapsedSeconds() const {
  const int64_t start = impl_->start_us.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  int64_t end = impl_->end_us.load(std::memory_order_relaxed);
  if (end == 0) end = NowMicros();
  return static_cast<double>(end - start) / 1e6;
}

std::vector<TaskStats> Topology::AllTasks() const {
  std::vector<TaskStats> out;
  out.reserve(impl_->tasks.size());
  for (const Task& task : impl_->tasks) {
    out.push_back(TaskStats{impl_->comps[task.comp]->name, task.local_index, task.id,
                            task.worker, task.metrics.get()});
  }
  return out;
}

std::vector<TaskStats> Topology::TasksOf(const std::string& component) const {
  std::vector<TaskStats> out;
  for (TaskStats& s : AllTasks()) {
    if (s.component == component) out.push_back(std::move(s));
  }
  return out;
}

int Topology::num_workers() const { return impl_->num_workers; }

}  // namespace dssj::stream
