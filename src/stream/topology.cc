#include "stream/topology.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/hash.h"
#include "common/logging.h"
#include "common/stats.h"
#include "store/checkpoint_service.h"
#include "store/format.h"
#include "store/state_store.h"
#include "stream/channel.h"
#include "stream/migration.h"
#include "stream/queue.h"
#include "stream/ring_queue.h"

namespace dssj::stream {
namespace internal_topology {

// Envelope (the unit travelling through inbound queues and channels) lives
// in stream/channel.h now that transports frame it onto the wire.

namespace {

uint64_t HashValue(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return Mix64(static_cast<uint64_t>(*i));
  if (const auto* d = std::get_if<double>(&v)) return Mix64(std::bit_cast<uint64_t>(*d));
  if (const auto* s = std::get_if<std::string>(&v)) return Fnv1a64(*s);
  LOG(FATAL) << "FieldsGrouping over an opaque payload field is not supported";
  return 0;
}

}  // namespace

/// Sentinel source_task of the PREPARE marker envelope a migration injects
/// into the frozen task's inbound queue; link_seq carries the migration id.
/// Markers are split out of the inbox before the link guard (which indexes
/// its cursors by source task) or the bolt ever see them.
constexpr int kMigrationMarkerTask = -2;

struct Subscription {
  int consumer_comp = -1;
  Grouping grouping;
};

struct ComponentSpec {
  std::string name;
  bool is_spout = false;
  SpoutFactory spout_factory;
  BoltFactory bolt_factory;
  int parallelism = 1;
  std::vector<int> placement;  // explicit worker per task; empty = default

  // Declared inputs (bolts): source component name -> grouping.
  std::vector<std::pair<std::string, Grouping>> inputs;

  // Resolved at Build():
  int first_task = -1;
  std::vector<Subscription> subs_out;  // consumers of this component
  int upstream_tasks = 0;              // total producer tasks feeding each task
};

struct Task {
  int id = -1;
  int comp = -1;
  int local_index = 0;
  int worker = 0;
  /// Hosted (locally executing) bolt tasks only; null for spouts and for
  /// tasks a transport places on another rank.
  std::unique_ptr<Queue<Envelope>> queue;
  std::unique_ptr<Spout> spout;
  std::unique_ptr<Bolt> bolt;
  /// Allocated for every task, hosted or not: rank 0 folds remote tasks'
  /// counters into these at the transport's end-of-run barrier.
  std::unique_ptr<TaskMetrics> metrics;
  std::thread thread;
};

/// A link fault resolved to task ids at Build().
struct ResolvedLinkFault {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  uint64_t seq = 0;
  int64_t delay_micros = 0;
};

struct TopologyImpl {
  std::vector<std::unique_ptr<ComponentSpec>> comps;
  std::unordered_map<std::string, int> comp_index;
  std::vector<Task> tasks;
  int num_workers = 1;
  size_t queue_capacity = 1024;
  QueueImpl queue_impl = QueueImpl::kRing;
  bool pin_threads = false;
  size_t batch_size = 32;
  double remote_byte_cost_ns = 0.0;
  bool built = false;
  bool submitted = false;
  std::atomic<int64_t> start_us{0};
  std::atomic<int64_t> end_us{0};

  // Inter-worker transport (SetTransport). When null the worker placement
  // is a single-process simulation. local_rank caches transport->
  // local_rank(); `hosted` (by task id) marks the tasks this process
  // actually executes — non-hosted tasks keep only their metrics slot.
  std::shared_ptr<Transport> transport;
  int local_rank = 0;
  std::vector<uint8_t> hosted;
  /// Tasks this process executed at any point of the run (migration can
  /// clear `hosted` mid-run; end-of-run metric shipping must still cover
  /// the partial execution).
  std::vector<uint8_t> ever_hosted;
  bool finish_done = false;

  // Fault tolerance. `supervised` turns executors into supervisors (and
  // enables the per-link emission bookkeeping recovery needs);
  // `fault_active` additionally arms the consumer-side link guard.
  bool supervised = false;
  bool fault_active = false;
  SupervisorOptions supervision;
  FaultScript fault_script;
  // Resolved at Build(), indexed by task id: scripted kill counts (sorted)
  // and, per producer task, destination-task → link faults (sorted by seq).
  std::vector<std::vector<uint64_t>> kill_plan;
  std::vector<std::unordered_map<int, std::vector<ResolvedLinkFault>>> link_plan;

  // Retention for scripted drops: a dropped envelope parks here (keyed by
  // source task, destination task, link seq) until the destination detects
  // the sequence gap and fetches it. The producer inserts before pushing
  // any successor, so a consumer that sees the gap always finds the entry.
  std::mutex fault_mu;
  std::map<std::tuple<int, int, uint64_t>, Envelope> retained;

  std::atomic<bool> failed{false};
  std::mutex fail_mu;
  std::string failure_message;

  // Tiered state store (SetStore). `task_stores` (by task id) holds one
  // durable checkpoint-chain directory per hosted, snapshot-capable bolt
  // task; `ckpt_service` is the single encode+write thread shared by every
  // task in async mode (null in sync mode, where the executor writes its
  // base image inline).
  store::StoreOptions store_opts;
  std::unique_ptr<store::CheckpointService> ckpt_service;
  std::vector<std::unique_ptr<store::StateStore>> task_stores;

  // Overload control (SetOverload): queue-health instrumentation is enabled
  // on every bolt queue at Build(), and — when a stall timeout is set — a
  // watchdog thread samples progress while the topology runs. The watchdog
  // either fails the run with a per-task dump (fail_fast) or raises
  // `force_shed`, which TaskContext::queue_health exposes to shedding
  // bolts. `task_exited` mirrors thread liveness for the dump (one flag per
  // task, allocated at Build because Task objects are moved into `tasks`).
  bool overload_active = false;
  OverloadOptions overload;
  std::atomic<bool> force_shed{false};
  std::unique_ptr<std::atomic<uint8_t>[]> task_exited;
  std::thread watchdog;
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool watchdog_stop = false;

  // Elastic scaling (SetElastic): live task migration. Every producer-side
  // push passes the destination task's quiesce gate; MigrateTaskId pauses
  // the gate, injects a PREPARE marker, and drives the
  // freeze/ship/flip/decommission protocol (docs/INTERNALS.md §12).
  // `route_epoch` invalidates collector channel caches after a routing
  // flip; `task_quiesced` tells the stall watchdog a frozen task is
  // intentional, not wedged.
  bool elastic = false;
  std::atomic<uint64_t> route_epoch{0};
  struct TaskGate {
    std::mutex mu;
    std::condition_variable cv;
    bool paused = false;
    int in_flight = 0;  ///< pushes past the gate, not yet handed over
  };
  std::vector<std::unique_ptr<TaskGate>> gates;  ///< by task id; empty unless elastic
  std::unique_ptr<std::atomic<uint8_t>[]> task_quiesced;
  std::atomic<int> migrations_in_flight{0};
  /// Lock-free mirror of Task::worker for the per-tuple routing decisions
  /// (allocated only when elastic; Task::worker itself is guarded by mig_mu
  /// once routing can flip at runtime).
  std::unique_ptr<std::atomic<int>[]> live_worker;

  enum class MigPhase {
    kFreezing,      ///< marker in flight; executor not yet frozen
    kFrozen,        ///< blob captured; executor waiting for the verdict
    kShipped,       ///< blob forwarded to a remote target (awaiting HANDOFF)
    kHandoff,       ///< remote target reported its executor running
    kRestoreLocal,  ///< verdict: reincarnate in place
    kDecommission,  ///< verdict: the task moved; exit without EOS
    kRestored,      ///< handoff complete (terminal)
    kAbort,         ///< verdict: resume untouched (terminal)
  };
  struct MigrationRun {
    uint32_t id = 0;
    int task_id = -1;
    int target_worker = -1;
    bool remote_coordinator = false;  ///< created by an inbound PREPARE
    MigPhase phase = MigPhase::kFreezing;
    std::string blob;
  };
  // Runs are never erased (the frozen executor holds references across its
  // waits); completed entries keep a terminal phase and a cleared blob, and
  // double as the dedup record for duplicate control frames.
  std::mutex mig_mu;
  std::condition_variable mig_cv;
  uint32_t next_migration_id = 1;                   ///< guarded by mig_mu
  std::map<uint32_t, MigrationRun> migration_runs;  ///< guarded by mig_mu
  std::set<uint32_t> activated_migrations;          ///< target-side dedup (mig_mu)
  bool coordinator_done = false;  ///< rank 0 run-over broadcast landed (mig_mu)
  std::mutex elastic_mu;  ///< serializes migrations: one handoff at a time
  std::vector<std::thread> elastic_threads;  ///< adopted executors (mig_mu)

  // Progress-driven fault actions (kill_worker / migrate statements),
  // resolved at Build and fired by a driver thread watching total spout
  // emissions. `dyn_kill` flags a task for a simulated crash at its next
  // execution boundary.
  struct ResolvedAction {
    uint64_t at_seq = 0;
    bool is_kill = false;
    int rank = -1;           ///< kill_worker target rank
    int task_id = -1;        ///< migrate source task
    int target_worker = -1;  ///< migrate target rank
  };
  std::vector<ResolvedAction> actions;
  std::unique_ptr<std::atomic<uint8_t>[]> dyn_kill;
  std::thread action_driver;
  std::atomic<bool> driver_stop{false};

  void RunSpoutTask(Task& task);
  void RunBoltTask(Task& task, const MigrationState* restore = nullptr);
  void NoteTaskExit(int task_id);
  void MarkFailed(const std::string& msg);
  void RunWatchdog();
  void StopWatchdog();
  std::string StallDump(const char* trigger, int64_t stalled_us);
  /// Refreshes one task's queue-health gauges from a snapshot.
  static void PublishQueueHealth(TaskMetrics& m, const QueueHealth& h);
  void Retain(int src, int dst, uint64_t seq, Envelope env);
  bool FetchRetained(int src, int dst, uint64_t seq, Envelope* out);
  /// Sleeps the current (exponential) restart backoff and doubles it.
  void SleepBackoff(int64_t* backoff_micros) const;

  /// Closes the quiesce gate of `task_id` and waits until every push
  /// already past it has been handed over; subsequent pushes park.
  void PauseGate(int task_id);
  void ResumeGate(int task_id);
  /// Current worker of a task, synchronized against routing flips.
  int WorkerOf(int task_id);
  /// Re-homes a task in every local routing structure (placement, hosted
  /// set, transport plan, channel-cache epoch). Callers hold the task's
  /// gate paused so no producer sees a half-flipped route.
  void FlipRoute(int task_id, int new_worker);
  /// Live-migrates one bolt task (Topology::MigrateTask resolves names).
  Status MigrateTaskId(int task_id, int target_worker);
  /// One executor incarnation of a bolt task; returns true when a local
  /// migration verdict asks the caller to reincarnate in place with
  /// `*reincarnate`.
  bool RunBoltIncarnation(Task& task, const MigrationState* restore,
                          MigrationState* reincarnate);
  /// Inbound migration control frames (invoked from transport threads).
  void HandleControl(ControlFrame&& frame);
  /// Target side of a distributed handoff: decode the blob, adopt the
  /// dormant task, start its executor, optionally report HANDOFF to the
  /// coordinator. Returns false (and fails the run) on a rejected blob.
  bool ActivateMigratedTask(uint32_t migration_id, int task_id, std::string blob,
                            bool notify_coordinator);
  void RunActionDriver();

  bool Hosted(int task_id) const { return hosted[static_cast<size_t>(task_id)] != 0; }
  /// Lock-free current worker of a task (hot path: per-tuple routing).
  int CurWorker(int task_id) const {
    return live_worker != nullptr
               ? live_worker[static_cast<size_t>(task_id)].load(std::memory_order_acquire)
               : tasks[static_cast<size_t>(task_id)].worker;
  }
  /// Producer endpoint for dst_task as seen from a producer on
  /// `producer_worker` (== local_rank for a real transport; under a
  /// hosts-all transport each simulated worker gets its own view, so
  /// cross-worker edges still pay the wire codec).
  std::unique_ptr<Channel> MakeChannel(int producer_worker, int dst_task);
  /// Transport inbound path: lands a decoded batch on a hosted task's queue.
  size_t DeliverInbound(int dst_task, std::vector<Envelope>&& batch);
  /// Transport failure path: fails the run and closes every hosted queue so
  /// local tasks unwind instead of waiting for remote envelopes.
  void FailFromTransport(const std::string& message);
};

/// RAII producer-side pass through a destination task's quiesce gate: parks
/// while the gate is paused (a migration is moving the task), then counts
/// itself in-flight so PauseGate can wait out pushes already past the
/// barrier. A no-op for non-elastic topologies. The paused wait polls the
/// failure flag so a failed run never strands producers at a closed gate.
class GateHold {
 public:
  GateHold(TopologyImpl* topo, int task_id) {
    if (topo->gates.empty()) return;
    gate_ = topo->gates[static_cast<size_t>(task_id)].get();
    std::unique_lock<std::mutex> lock(gate_->mu);
    while (gate_->paused && !topo->failed.load(std::memory_order_acquire)) {
      gate_->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    ++gate_->in_flight;
  }
  ~GateHold() {
    if (gate_ == nullptr) return;
    std::lock_guard<std::mutex> lock(gate_->mu);
    if (--gate_->in_flight == 0) gate_->cv.notify_all();
  }
  GateHold(const GateHold&) = delete;
  GateHold& operator=(const GateHold&) = delete;

 private:
  TopologyImpl::TaskGate* gate_ = nullptr;
};

void TopologyImpl::PauseGate(int task_id) {
  TaskGate& gate = *gates[static_cast<size_t>(task_id)];
  std::unique_lock<std::mutex> lock(gate.mu);
  gate.paused = true;
  // In-flight pushes drain on their own: the migrating task's executor
  // keeps consuming until it reaches the PREPARE marker, which is only
  // injected after this wait completes.
  while (gate.in_flight > 0 && !failed.load(std::memory_order_acquire)) {
    gate.cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void TopologyImpl::ResumeGate(int task_id) {
  TaskGate& gate = *gates[static_cast<size_t>(task_id)];
  {
    std::lock_guard<std::mutex> lock(gate.mu);
    gate.paused = false;
  }
  gate.cv.notify_all();
}

int TopologyImpl::WorkerOf(int task_id) {
  std::lock_guard<std::mutex> lock(mig_mu);
  return tasks[static_cast<size_t>(task_id)].worker;
}

void TopologyImpl::FlipRoute(int task_id, int new_worker) {
  const bool hosts_all = transport == nullptr || transport->hosts_all_tasks();
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    tasks[static_cast<size_t>(task_id)].worker = new_worker;
    if (live_worker != nullptr) {
      live_worker[static_cast<size_t>(task_id)].store(new_worker, std::memory_order_release);
    }
    if (!hosts_all) {
      hosted[static_cast<size_t>(task_id)] = new_worker == local_rank ? 1 : 0;
    }
  }
  if (transport != nullptr) transport->UpdateTaskWorker(task_id, new_worker);
  // Producers re-resolve their cached channels at the next push.
  route_epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::unique_ptr<Channel> TopologyImpl::MakeChannel(int producer_worker, int dst_task) {
  Task& dst = tasks[static_cast<size_t>(dst_task)];
  const int dst_worker = CurWorker(dst_task);
  const bool cross = transport != nullptr && (transport->hosts_all_tasks()
                                                  ? dst_worker != producer_worker
                                                  : dst_worker != local_rank);
  if (cross) return transport->OpenChannel(dst_task);
  CHECK(dst.queue != nullptr) << "channel to a task without an inbound queue";
  return std::make_unique<InprocChannel>(dst.queue.get());
}

size_t TopologyImpl::DeliverInbound(int dst_task, std::vector<Envelope>&& batch) {
  Task& target = tasks[static_cast<size_t>(dst_task)];
  if (target.queue == nullptr) return 0;  // not hosted here
  const size_t depth = target.queue->PushBatch(&batch);
  target.metrics->queue_highwater.Update(depth);
  return depth;
}

void TopologyImpl::FailFromTransport(const std::string& message) {
  MarkFailed("transport: " + message);
  for (Task& task : tasks) {
    if (task.queue != nullptr) task.queue->Close();
  }
}

void TopologyImpl::NoteTaskExit(int task_id) {
  if (task_exited != nullptr) task_exited[task_id].store(1, std::memory_order_relaxed);
  const int64_t now = NowMicros();
  int64_t cur = end_us.load(std::memory_order_relaxed);
  while (now > cur && !end_us.compare_exchange_weak(cur, now, std::memory_order_relaxed)) {
  }
}

void TopologyImpl::PublishQueueHealth(TaskMetrics& m, const QueueHealth& h) {
  m.queue_depth.Set(static_cast<int64_t>(h.depth));
  m.queue_depth_ewma_x1000.Set(static_cast<int64_t>(h.depth_ewma * 1000.0));
  m.queue_time_at_capacity_micros.Set(h.time_at_capacity_micros);
  m.queue_oldest_age_micros.Set(h.oldest_age_micros);
}

std::string TopologyImpl::StallDump(const char* trigger, int64_t stalled_us) {
  std::string out = "stall watchdog (" + std::string(trigger) + "): no healthy progress for " +
                    std::to_string(stalled_us / 1000) + " ms with work pending; task state:";
  for (Task& task : tasks) {
    const ComponentSpec& comp = *comps[task.comp];
    out += "\n  " + comp.name + "[" + std::to_string(task.local_index) + "]" +
           " worker=" + std::to_string(task.worker) +
           " executed=" + std::to_string(task.metrics->executed.Get()) +
           " emitted=" + std::to_string(task.metrics->emitted.Get());
    if (task.queue != nullptr) {
      const QueueHealth h = task.queue->Health();
      out += " queue=" + std::to_string(h.depth) + "/" + std::to_string(h.capacity) +
             " oldest_age_ms=" + std::to_string(h.oldest_age_micros / 1000) +
             " at_capacity_ms=" + std::to_string(h.at_capacity_stretch_micros / 1000);
    }
    out += task_exited[task.id].load(std::memory_order_relaxed) ? " exited" : " running";
    if (task_quiesced != nullptr &&
        task_quiesced[task.id].load(std::memory_order_acquire) != 0) {
      out += " quiesced(migrating)";
    }
  }
  return out;
}

void TopologyImpl::RunWatchdog() {
  uint64_t last_progress = ~uint64_t{0};  // first sample always "progresses"
  int64_t last_progress_us = NowMicros();
  std::unique_lock<std::mutex> lock(watchdog_mu);
  while (!watchdog_stop) {
    watchdog_cv.wait_for(lock,
                         std::chrono::microseconds(overload.watchdog_interval_micros));
    if (watchdog_stop) break;
    lock.unlock();

    uint64_t progress = 0;
    bool pending = false;
    bool all_exited = true;
    int64_t oldest_age_us = 0;
    for (Task& task : tasks) {
      progress += task.metrics->executed.Get() + task.metrics->emitted.Get();
      if (task_exited[task.id].load(std::memory_order_relaxed) == 0) all_exited = false;
      if (task.queue != nullptr) {
        const QueueHealth h = task.queue->Health();
        // Publish from here too, so a wedged task still reports fresh
        // health through the metrics.
        PublishQueueHealth(*task.metrics, h);
        if (h.depth > 0) pending = true;
        oldest_age_us = std::max(oldest_age_us, h.oldest_age_micros);
      }
    }

    // A migration legitimately freezes a task (and pauses its producers)
    // for as long as the handoff takes; that is quiescence, not a stall.
    // Reset the progress clock instead of tripping while one is in flight.
    bool quiesced = migrations_in_flight.load(std::memory_order_acquire) > 0;
    if (!quiesced && task_quiesced != nullptr) {
      for (const Task& task : tasks) {
        if (task_quiesced[task.id].load(std::memory_order_acquire) != 0) {
          quiesced = true;
          break;
        }
      }
    }

    const int64_t now = NowMicros();
    bool trip = false;
    const char* trigger = "";
    int64_t stalled_us = 0;
    if (progress != last_progress || all_exited || quiesced ||
        failed.load(std::memory_order_acquire)) {
      last_progress = progress;
      last_progress_us = now;
    } else if (pending && now - last_progress_us >= overload.stall_timeout_micros) {
      // (a) Nothing executed or emitted anywhere for a full timeout while
      // tuples sit queued: the topology is wedged.
      trip = true;
      trigger = "no progress";
      stalled_us = now - last_progress_us;
    }
    if (!trip && !quiesced && oldest_age_us >= overload.stall_timeout_micros && !all_exited &&
        !failed.load(std::memory_order_acquire)) {
      // (b) A queued tuple has waited longer than the stall timeout: the
      // topology may still be progressing, but sustained overload has
      // pushed queueing delay past the point the caller declared tolerable.
      trip = true;
      trigger = "tuple overdue";
      stalled_us = oldest_age_us;
    }
    if (trip) {
      if (overload.fail_fast) {
        MarkFailed(StallDump(trigger, stalled_us));
        // Unwedge everything: closed queues reject pushes (producers
        // unblock) and report drained to consumers (bolts unwind); the
        // spout loop checks failed and stops emitting.
        for (Task& task : tasks) {
          if (task.queue != nullptr) task.queue->Close();
        }
        lock.lock();
        break;
      }
      // Degrade instead of failing: every shedding bolt sees force_shed
      // through TaskContext::queue_health. Re-arm so recovery is observed
      // before the next trip.
      force_shed.store(true, std::memory_order_relaxed);
      last_progress_us = now;
    }
    lock.lock();
  }
}

void TopologyImpl::StopWatchdog() {
  if (!watchdog.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watchdog_mu);
    watchdog_stop = true;
  }
  watchdog_cv.notify_all();
  watchdog.join();
}

void TopologyImpl::MarkFailed(const std::string& msg) {
  bool expected = false;
  if (failed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(fail_mu);
    failure_message = msg;
  }
}

void TopologyImpl::Retain(int src, int dst, uint64_t seq, Envelope env) {
  std::lock_guard<std::mutex> lock(fault_mu);
  retained.emplace(std::make_tuple(src, dst, seq), std::move(env));
}

bool TopologyImpl::FetchRetained(int src, int dst, uint64_t seq, Envelope* out) {
  std::lock_guard<std::mutex> lock(fault_mu);
  const auto it = retained.find(std::make_tuple(src, dst, seq));
  if (it == retained.end()) return false;
  *out = std::move(it->second);
  retained.erase(it);
  return true;
}

void TopologyImpl::SleepBackoff(int64_t* backoff_micros) const {
  if (*backoff_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(*backoff_micros));
  }
  *backoff_micros = std::min(*backoff_micros > 0 ? *backoff_micros * 2 : int64_t{1},
                             supervision.max_backoff_micros);
}

/// OutputCollector bound to one producer task. Owns per-subscription
/// round-robin counters for shuffle grouping; used only from the task's
/// executor thread.
///
/// With batch_size > 1, outbound envelopes are staged in per-consumer-task
/// buffers and handed to the consumer's queue via PushBatch once a buffer
/// reaches batch_size (one lock + one wakeup per batch instead of per
/// tuple). Buffering never reorders tuples headed to the same consumer
/// task, so per-link FIFO — the exactly-once rule's foundation — holds.
/// The executor flushes all buffers before emitting end-of-stream.
///
/// Under supervision the collector additionally keeps, per consumer task,
/// the *canonical* count of data envelopes this task has emitted on the
/// link (`emitted_`, rolled back to the last checkpoint on a crash) and the
/// monotonic count actually handed over (`delivered_`, advanced when an
/// envelope reaches the consumer queue or the drop-retention map, never
/// rolled back). A recovering component re-runs and re-emits; Deliver
/// suppresses every re-emission whose canonical number the consumer already
/// has — this is what makes recovery exactly-once without any consumer-side
/// dedup of replayed tuples.
class CollectorImpl : public OutputCollector {
 public:
  /// Producer-side view of emission progress, captured at checkpoints and
  /// restored on a crash. Only the canonical counters and the round-robin
  /// cursors roll back; delivery progress is irreversible.
  struct Cursor {
    std::vector<uint64_t> emitted;
    std::vector<uint64_t> rr;
  };

  CollectorImpl(TopologyImpl* topo, Task* task)
      : topo_(topo), task_(task), comp_(*topo->comps[task->comp]),
        batch_size_(topo->batch_size), tracking_(topo->supervised) {
    rr_.assign(comp_.subs_out.size(), static_cast<uint64_t>(task->local_index));
    channels_.resize(topo->tasks.size());
    if (batch_size_ > 1) {
      pending_.resize(topo->tasks.size());
      in_dirty_.assign(topo->tasks.size(), 0);
    }
    if (tracking_) {
      emitted_.assign(topo->tasks.size(), 0);
      delivered_.assign(topo->tasks.size(), 0);
    }
    if (topo->fault_active && !topo->link_plan[task->id].empty()) {
      link_faults_ = &topo->link_plan[task->id];
    }
  }

  /// Pushes every staged envelope to its consumer queue. Must be called
  /// before the producer sends EOS (and is harmless otherwise).
  void FlushAll() {
    for (const int task_id : dirty_) {
      if (!pending_[task_id].empty()) FlushTarget(task_id);
      in_dirty_[task_id] = 0;
    }
    dirty_.clear();
  }

  /// Emits the end-of-stream marker to every task of every subscribed
  /// consumer. Under supervision the marker carries the link's final data
  /// count so consumers can recover trailing dropped envelopes.
  void SendEosAll() {
    for (const Subscription& sub : comp_.subs_out) {
      const ComponentSpec& consumer = *topo_->comps[sub.consumer_comp];
      for (int i = 0; i < consumer.parallelism; ++i) {
        const int t = consumer.first_task + i;
        GateHold hold(topo_, t);
        ChannelTo(t)->Push(Envelope{Tuple(), task_->id, /*eos=*/true, 0,
                                    tracking_ ? emitted_[t] : 0});
      }
    }
  }

  void SaveCursor(Cursor* cursor) const {
    cursor->emitted = emitted_;
    cursor->rr = rr_;
  }

  /// Captures the producer-side migration state: canonical emission
  /// counters and shuffle cursors. Only valid at a flushed boundary
  /// (FlushAll first), where delivery state equals the canonical counters.
  void SaveMigration(MigrationState* state) const {
    state->rr = rr_;
    for (size_t t = 0; t < emitted_.size(); ++t) {
      if (emitted_[t] != 0) {
        state->emitted.emplace_back(static_cast<uint32_t>(t), emitted_[t]);
      }
    }
  }

  /// Adopts a migrated task's producer-side state on its new incarnation.
  /// The source flushed everything before freezing, so the consumers have
  /// received exactly the canonical counters — delivery state follows.
  void RestoreMigration(const MigrationState& state) {
    if (state.rr.size() == rr_.size()) rr_ = state.rr;
    if (!tracking_) return;
    std::fill(emitted_.begin(), emitted_.end(), 0);
    for (const auto& [t, seq] : state.emitted) {
      if (t < emitted_.size()) emitted_[t] = seq;
    }
    delivered_ = emitted_;
  }

  /// Crash recovery: rewinds the canonical emission counters and shuffle
  /// cursors to `cursor` and discards staged (not yet delivered) envelopes
  /// — they die with the crashed component and are regenerated, and only
  /// then delivered, by the replay.
  void Rollback(const Cursor& cursor) {
    emitted_ = cursor.emitted;
    rr_ = cursor.rr;
    for (const int task_id : dirty_) {
      pending_[task_id].clear();
      in_dirty_[task_id] = 0;
    }
    dirty_.clear();
  }

  void Emit(Tuple tuple) override {
    for (size_t si = 0; si < comp_.subs_out.size(); ++si) {
      const Subscription& sub = comp_.subs_out[si];
      const ComponentSpec& consumer = *topo_->comps[sub.consumer_comp];
      const int n = consumer.parallelism;
      switch (sub.grouping.type) {
        case GroupingType::kShuffle:
          Deliver(consumer.first_task + static_cast<int>(rr_[si]++ % n), tuple);
          break;
        case GroupingType::kGlobal:
          Deliver(consumer.first_task, tuple);
          break;
        case GroupingType::kFields: {
          uint64_t h = 0;
          for (size_t f : sub.grouping.fields) h = HashCombine(h, HashValue(tuple.field(f)));
          Deliver(consumer.first_task + static_cast<int>(h % static_cast<uint64_t>(n)), tuple);
          break;
        }
        case GroupingType::kAll:
          for (int i = 0; i < n; ++i) Deliver(consumer.first_task + i, tuple);
          break;
        case GroupingType::kCustom: {
          targets_.clear();
          sub.grouping.custom(tuple, n, targets_);
          for (int idx : targets_) {
            DCHECK_GE(idx, 0);
            DCHECK_LT(idx, n);
            Deliver(consumer.first_task + idx, tuple);
          }
          break;
        }
        case GroupingType::kPartner:
          Deliver(consumer.first_task + task_->local_index, tuple);
          break;
        case GroupingType::kDirect:
          break;  // only EmitDirect reaches direct subscribers
      }
    }
  }

  void EmitDirect(const std::string& component, int task_index, Tuple tuple) override {
    const auto it = topo_->comp_index.find(component);
    CHECK(it != topo_->comp_index.end()) << "unknown component " << component;
    const ComponentSpec& consumer = *topo_->comps[it->second];
    CHECK_GE(task_index, 0);
    CHECK_LT(task_index, consumer.parallelism);
    // The consumer must have declared DirectGrouping on this producer.
    DCHECK(HasDirectSubscription(it->second))
        << component << " did not DirectGrouping-subscribe to " << comp_.name;
    Deliver(consumer.first_task + task_index, std::move(tuple));
  }

 private:
  bool HasDirectSubscription(int consumer_comp) const {
    for (const Subscription& sub : comp_.subs_out) {
      if (sub.consumer_comp == consumer_comp && sub.grouping.type == GroupingType::kDirect) {
        return true;
      }
    }
    return false;
  }

  void Deliver(int task_id, Tuple tuple) {
    uint64_t seq = 0;
    if (tracking_) {
      seq = ++emitted_[task_id];
      // Recovery replay: the consumer already received this canonical
      // envelope from the pre-crash incarnation (or from drop retention).
      if (seq <= delivered_[task_id]) return;
    }
    Task& target = topo_->tasks[task_id];
    TaskMetrics& m = *task_->metrics;
    const size_t bytes = tuple.SerializedBytes();
    m.emitted.Increment();
    m.total_messages.Increment();
    m.total_bytes.Add(bytes);
    int64_t extra_busy_ns = 0;
    if (topo_->CurWorker(task_id) != task_->worker) {
      m.remote_messages.Increment();
      m.remote_bytes.Add(bytes);
      if (topo_->remote_byte_cost_ns > 0.0) {
        // Serialization on the producer, deserialization on the consumer.
        const int64_t cost =
            static_cast<int64_t>(topo_->remote_byte_cost_ns * static_cast<double>(bytes));
        m.busy_nanos.Add(static_cast<uint64_t>(cost));
        extra_busy_ns = cost;
      }
    }
    Envelope env{std::move(tuple), task_->id, /*eos=*/false, extra_busy_ns, seq};
    if (link_faults_ != nullptr && HandleLinkFault(task_id, env)) return;
    if (batch_size_ <= 1) {
      if (tracking_) delivered_[task_id] = seq;
      // Gate before resolving the channel: a migration may flip the route
      // while this push parks, and the post-flip ChannelTo must see it.
      GateHold hold(topo_, task_id);
      Channel* ch = ChannelTo(task_id);
      const int64_t push_t0 = NowNanos();
      const size_t depth = ch->Push(std::move(env));
      task_->metrics->blocked_nanos.Add(static_cast<uint64_t>(NowNanos() - push_t0));
      // Remote channels report their send-buffer depth; only an in-process
      // push observes the consumer queue (remote highwater is tracked on
      // the receiving side by DeliverInbound).
      if (ch->inproc()) target.metrics->queue_highwater.Update(depth);
      return;
    }
    std::vector<Envelope>& buffer = pending_[task_id];
    if (!in_dirty_[task_id]) {
      in_dirty_[task_id] = 1;
      dirty_.push_back(task_id);
    }
    buffer.push_back(std::move(env));
    if (buffer.size() >= batch_size_) FlushTarget(task_id);
  }

  /// Applies any scripted fault on (this task → task_id) at env's canonical
  /// sequence number. Returns true when the envelope was consumed here
  /// (dropped into retention, or pushed — twice — for a duplicate).
  bool HandleLinkFault(int task_id, Envelope& env) {
    const auto it = link_faults_->find(task_id);
    if (it == link_faults_->end()) return false;
    bool drop = false;
    bool duplicate = false;
    for (const ResolvedLinkFault& fault : it->second) {
      if (fault.seq != env.link_seq) continue;
      switch (fault.kind) {
        case LinkFaultKind::kDelay:
          std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_micros));
          break;
        case LinkFaultKind::kDisconnect: {
          // Sever the connection exactly between this envelope's
          // predecessors and the envelope itself: flush what's staged, cut,
          // then deliver normally (a clean close loses nothing).
          if (batch_size_ > 1) FlushTarget(task_id);
          if (!ChannelTo(task_id)->inproc()) {
            topo_->transport->InjectDisconnect(task_id, fault.delay_micros);
          } else {
            // In-process link: no socket to sever; degrade to the stall the
            // outage would have caused.
            std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_micros));
          }
          break;
        }
        case LinkFaultKind::kDrop:
          drop = true;
          break;
        case LinkFaultKind::kDuplicate:
          duplicate = true;
          break;
      }
    }
    if (!drop && !duplicate) return false;  // delay/disconnect: deliver normally
    // Per-link FIFO: everything staged for this consumer must reach the
    // queue before the faulted envelope is retained or duplicated, so the
    // consumer's sequence guard sees the gap (or the copy) in order.
    if (batch_size_ > 1) FlushTarget(task_id);
    const uint64_t seq = env.link_seq;
    Task& target = topo_->tasks[task_id];
    if (drop) {
      topo_->Retain(task_->id, task_id, seq, std::move(env));
    } else {
      Envelope copy = env;
      GateHold hold(topo_, task_id);
      Channel* ch = ChannelTo(task_id);
      const size_t d1 = ch->Push(std::move(copy));
      const size_t d2 = ch->Push(std::move(env));
      if (ch->inproc()) {
        target.metrics->queue_highwater.Update(d1);
        target.metrics->queue_highwater.Update(d2);
      }
    }
    if (tracking_) delivered_[task_id] = seq;
    return true;
  }

  void FlushTarget(int task_id) {
    std::vector<Envelope>& buffer = pending_[task_id];
    if (buffer.empty()) return;
    // Everything in the buffer is about to be irreversibly handed over.
    if (tracking_) delivered_[task_id] = buffer.back().link_seq;
    GateHold hold(topo_, task_id);
    Channel* ch = ChannelTo(task_id);
    const int64_t push_t0 = NowNanos();
    const size_t depth = ch->PushBatch(&buffer);
    task_->metrics->blocked_nanos.Add(static_cast<uint64_t>(NowNanos() - push_t0));
    if (ch->inproc()) topo_->tasks[task_id].metrics->queue_highwater.Update(depth);
    // A closed (failed-consumer) endpoint leaves a remainder; it has no
    // reader.
    buffer.clear();
  }

  /// Lazily opened per-consumer-task endpoint (in-process queue or
  /// transport channel). Per-collector so channels stay single-producer. A
  /// routing flip bumps the topology's route epoch; stale caches re-resolve
  /// through MakeChannel on their next use.
  Channel* ChannelTo(int task_id) {
    if (topo_->elastic) {
      const uint64_t epoch = topo_->route_epoch.load(std::memory_order_acquire);
      if (epoch != route_epoch_seen_) {
        route_epoch_seen_ = epoch;
        for (std::unique_ptr<Channel>& cached : channels_) cached.reset();
      }
    }
    std::unique_ptr<Channel>& ch = channels_[static_cast<size_t>(task_id)];
    if (ch == nullptr) ch = topo_->MakeChannel(task_->worker, task_id);
    return ch.get();
  }

  TopologyImpl* topo_;
  Task* task_;
  const ComponentSpec& comp_;
  const size_t batch_size_;
  const bool tracking_;
  const std::unordered_map<int, std::vector<ResolvedLinkFault>>* link_faults_ = nullptr;
  std::vector<uint64_t> rr_;
  std::vector<int> targets_;
  uint64_t route_epoch_seen_ = 0;
  std::vector<std::unique_ptr<Channel>> channels_;  ///< by consumer task id
  std::vector<uint64_t> emitted_;    ///< canonical per-link emission counts
  std::vector<uint64_t> delivered_;  ///< monotonic per-link delivery counts
  std::vector<std::vector<Envelope>> pending_;  ///< staged per consumer task
  std::vector<int> dirty_;                      ///< consumer tasks staged since last FlushAll
  std::vector<uint8_t> in_dirty_;               ///< dirty_ membership flags
};

namespace {

/// Executor-side consumer guard, active only when a fault script is
/// installed: validates the canonical per-link sequence of every inbound
/// data envelope, discards scripted duplicates, and pulls scripted drops
/// out of retention the moment their gap (or the final count on EOS)
/// becomes visible. Downstream of this filter the envelope stream is
/// canonical again, so executor logging/replay and the bolt itself never
/// see an injected link fault.
class LinkGuard {
 public:
  LinkGuard(TopologyImpl* topo, Task* task)
      : topo_(topo), task_(task), next_seq_(topo->tasks.size(), 1) {}

  /// Captures the consumer-side migration state: the next expected data
  /// sequence per inbound link (links still at their initial value are
  /// omitted).
  void Save(std::vector<std::pair<uint32_t, uint64_t>>* out) const {
    for (size_t src = 0; src < next_seq_.size(); ++src) {
      if (next_seq_[src] != 1) {
        out->emplace_back(static_cast<uint32_t>(src), next_seq_[src]);
      }
    }
  }

  /// Adopts a migrated task's consumer-side cursors on its new incarnation.
  void Restore(const std::vector<std::pair<uint32_t, uint64_t>>& saved) {
    for (const auto& [src, seq] : saved) {
      if (src < next_seq_.size()) next_seq_[src] = seq;
    }
  }

  void Canonicalize(std::vector<Envelope>& in, std::vector<Envelope>* out) {
    out->clear();
    TaskMetrics& m = *task_->metrics;
    for (Envelope& env : in) {
      const int src = env.source_task;
      if (env.eos) {
        // The final count recovers trailing drops (no successor envelope
        // ever showed the gap). A failed producer may report a final count
        // below what it delivered; the guard just passes the EOS through.
        FetchThrough(src, env.link_seq, &m, out);
        out->push_back(std::move(env));
        continue;
      }
      if (env.link_seq < next_seq_[src]) {
        m.link_dups_discarded.Increment();
        continue;
      }
      FetchThrough(src, env.link_seq - 1, &m, out);
      ++next_seq_[src];
      out->push_back(std::move(env));
    }
  }

 private:
  /// Fetches retained envelopes (src → this task) up to sequence `upto`.
  void FetchThrough(int src, uint64_t upto, TaskMetrics* m, std::vector<Envelope>* out) {
    while (next_seq_[src] <= upto) {
      Envelope missing;
      CHECK(topo_->FetchRetained(src, task_->id, next_seq_[src], &missing))
          << "link " << src << "->" << task_->id << " gap at seq " << next_seq_[src]
          << " without a retained (dropped) envelope";
      m->link_drops_recovered.Increment();
      ++next_seq_[src];
      out->push_back(std::move(missing));
    }
  }

  TopologyImpl* topo_;
  Task* task_;
  std::vector<uint64_t> next_seq_;  ///< per source task, next expected data seq
};

}  // namespace

void TopologyImpl::RunSpoutTask(Task& task) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get(), /*queue_health=*/nullptr};
  CollectorImpl collector(this, &task);
  TaskMetrics& m = *task.metrics;
  const int64_t cpu_start = ThreadCpuNanos();

  task.spout->Open(ctx);

  // Supervision state. `calls` is the spout's canonical progress counter
  // (NextTuple invocations); kills and checkpoints trigger on it.
  std::deque<uint64_t> kills;
  if (supervised) {
    kills.assign(kill_plan[task.id].begin(), kill_plan[task.id].end());
  }
  const bool snap_ok = task.spout->SupportsSnapshot();
  const uint64_t ckpt_interval =
      (supervised && snap_ok) ? supervision.checkpoint_interval : 0;
  struct SpoutCheckpoint {
    bool has_state = false;
    std::string state;
    uint64_t calls = 0;
    CollectorImpl::Cursor cursor;
  } ckpt;
  collector.SaveCursor(&ckpt.cursor);
  if (snap_ok) {
    // Initial checkpoint: a crash before the first periodic one then
    // restores through the same path (matters for components whose state
    // outlives them — Restore must undo external side effects).
    task.spout->Snapshot(&ckpt.state);
    ckpt.has_state = true;
  }

  uint64_t calls = 0;
  int restarts = 0;
  int64_t backoff = supervision.initial_backoff_micros;
  bool gave_up = false;

  while (true) {
    // A watchdog- or transport-failed run has closed every queue; emitting
    // further is pointless (pushes are rejected), and a paced spout would
    // otherwise keep sleeping through the rest of its schedule.
    if ((overload_active || transport != nullptr) &&
        failed.load(std::memory_order_acquire)) {
      break;
    }
    if (!kills.empty() && calls == kills.front()) {
      kills.pop_front();
      if (restarts >= supervision.max_restarts) {
        MarkFailed("spout task " + comp.name + "[" + std::to_string(task.local_index) +
                   "] exceeded max_restarts=" + std::to_string(supervision.max_restarts));
        gave_up = true;
        break;
      }
      ++restarts;
      m.restarts.Increment();
      SleepBackoff(&backoff);
      // The simulated crash destroys the spout object — its entire state.
      // Recovery: fresh instance, restore the snapshot offset, rewind the
      // canonical emission counters, and re-run; Deliver suppresses every
      // re-emission the consumers already received.
      task.spout = comp.spout_factory();
      CHECK(task.spout != nullptr);
      task.spout->Open(ctx);
      if (ckpt.has_state) task.spout->Restore(ckpt.state);
      collector.Rollback(ckpt.cursor);
      m.replayed_tuples.Add(calls - ckpt.calls);
      calls = ckpt.calls;
      continue;
    }
    if (ckpt_interval > 0 && calls == ckpt.calls + ckpt_interval) {
      collector.FlushAll();  // checkpointed cursors must equal delivery state
      const int64_t t0 = NowNanos();
      ckpt.state.clear();
      task.spout->Snapshot(&ckpt.state);
      ckpt.has_state = true;
      ckpt.calls = calls;
      collector.SaveCursor(&ckpt.cursor);
      m.checkpoints.Increment();
      m.checkpoint_bytes.Add(ckpt.state.size());
      m.checkpoint_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
    }
    if (!task.spout->NextTuple(collector)) break;
    ++calls;
  }
  if (!gave_up) task.spout->Close();
  collector.FlushAll();
  collector.SendEosAll();
  m.busy_nanos.Add(static_cast<uint64_t>(ThreadCpuNanos() - cpu_start));
  NoteTaskExit(task.id);
}

void TopologyImpl::RunBoltTask(Task& task, const MigrationState* restore) {
  MigrationState adopted;
  MigrationState next;
  const MigrationState* cur = restore;
  while (RunBoltIncarnation(task, cur, &next)) {
    // Local migration verdict (docs/INTERNALS.md §12): the routing already
    // flipped; reincarnate the task in place on this executor thread with a
    // fresh component object and the frozen state.
    task.bolt = comps[task.comp]->bolt_factory();
    CHECK(task.bolt != nullptr);
    adopted = std::move(next);
    cur = &adopted;
  }
}

bool TopologyImpl::RunBoltIncarnation(Task& task, const MigrationState* restore,
                                      MigrationState* reincarnate) {
  const ComponentSpec& comp = *comps[task.comp];
  TaskContext ctx{comp.name, task.local_index, comp.parallelism, task.worker,
                  task.metrics.get(), /*queue_health=*/nullptr};
  if (overload_active) {
    Task* tp = &task;
    TopologyImpl* topo = this;
    ctx.queue_health = [topo, tp]() {
      QueueHealth h = tp->queue->Health();
      h.force_shed = topo->force_shed.load(std::memory_order_relaxed);
      PublishQueueHealth(*tp->metrics, h);
      return h;
    };
  }
  CollectorImpl collector(this, &task);
  TaskMetrics& m = *task.metrics;
  const int64_t cpu_start = ThreadCpuNanos();
  int64_t simulated_busy_ns = 0;

  task.bolt->Prepare(ctx);

  // Supervision state. `executed_total` is the bolt's canonical progress
  // counter (data tuples executed); kills and checkpoints trigger on it.
  // `log` holds the canonical data envelopes received since the last
  // checkpoint: log[0 .. replay_pos) has been executed by the current
  // incarnation, log[replay_pos ..) is pending (non-empty only right after
  // a crash rewound replay_pos to 0). Live input is appended to the log and
  // then executed from it, so the live and replay paths are one code path.
  std::deque<uint64_t> kills;
  if (supervised) {
    kills.assign(kill_plan[task.id].begin(), kill_plan[task.id].end());
  }
  const bool snap_ok = task.bolt->SupportsSnapshot();
  const uint64_t ckpt_interval =
      (supervised && snap_ok) ? supervision.checkpoint_interval : 0;
  struct BoltCheckpoint {
    bool has_state = false;
    std::string state;
    uint64_t executed = 0;
    CollectorImpl::Cursor cursor;
  } ckpt;

  uint64_t executed_total = 0;
  LinkGuard guard(this, &task);
  int remaining = comp.upstream_tasks;

  if (restore != nullptr) {
    // Migrated-in incarnation: adopt the frozen task's exact state — bolt
    // snapshot, canonical progress, producer cursors, consumer cursors. A
    // scripted kill at exactly the migration boundary fires here, on the
    // new incarnation (strictly earlier kills fired on the old one).
    if (restore->has_bolt_state) task.bolt->Restore(restore->bolt_state);
    executed_total = restore->executed_total;
    remaining = static_cast<int>(restore->remaining_eos);
    collector.RestoreMigration(*restore);
    guard.Restore(restore->next_seq);
    while (!kills.empty() && kills.front() < executed_total) kills.pop_front();
  }

  ckpt.executed = executed_total;
  collector.SaveCursor(&ckpt.cursor);
  if (snap_ok) {
    // Initial checkpoint (see RunSpoutTask): recovery always restores,
    // even before the first periodic checkpoint.
    task.bolt->Snapshot(&ckpt.state);
    ckpt.has_state = true;
  }

  std::vector<Envelope> log;
  size_t replay_pos = 0;
  size_t log_high = 0;  // log entries executed at least once (replay metric)
  int restarts = 0;
  int64_t backoff = supervision.initial_backoff_micros;
  bool gave_up = false;

  // Tiered state store (SetStore): this task's durable checkpoint chain.
  // Sync mode mirrors each in-memory checkpoint with a full base image
  // written inline; async mode freezes a view at the boundary, hands
  // encode + write to the checkpoint service, and truncates the replay log
  // only once the service reports the epoch durable — so a crash at any
  // point recovers from the newest consistent base + delta chain plus the
  // still-retained log suffix.
  store::StateStore* sstore =
      ckpt_interval > 0 && task.id < static_cast<int>(task_stores.size())
          ? task_stores[task.id].get()
          : nullptr;
  const bool async_store = sstore != nullptr && store_opts.async();
  struct PendingCkpt {
    uint64_t epoch = 0;
    uint64_t executed = 0;
    CollectorImpl::Cursor cursor;
    bool is_base = false;
  };
  std::deque<PendingCkpt> pending_ckpts;  // submitted, durability unknown
  uint64_t next_epoch = 0;
  // Freeze cadence anchor. In sync mode it mirrors ckpt.executed; in async
  // mode ckpt.executed lags at the last *durable* epoch while freezes keep
  // firing every ckpt_interval on this counter.
  uint64_t freeze_anchor = executed_total;
  const auto submit_frozen = [&](store::FrozenBlob fb) {
    const bool is_base = !fb.is_delta;
    PendingCkpt p;
    p.epoch = next_epoch++;
    p.executed = executed_total;
    collector.SaveCursor(&p.cursor);
    p.is_base = is_base;
    store::CheckpointJob job;
    job.task_id = task.id;
    job.epoch = p.epoch;
    job.is_base = is_base;
    job.blob = std::move(fb);
    job.store = sstore;
    TaskMetrics* mp = &m;
    job.on_complete = [mp, is_base](bool ok, uint64_t bytes, uint64_t nanos) {
      if (!ok) return;  // wedge-skips and failed writes count nothing
      // Runs on the service thread; all sinks are atomic.
      mp->checkpoints.Increment();
      mp->checkpoint_bytes.Add(bytes);
      mp->checkpoint_nanos.Add(nanos);
      (is_base ? mp->base_checkpoints : mp->delta_checkpoints).Increment();
      (is_base ? mp->base_checkpoint_bytes : mp->delta_checkpoint_bytes).Add(bytes);
    };
    pending_ckpts.push_back(std::move(p));
    ckpt_service->Submit(std::move(job));
  };
  // Polls the durable epoch and retires confirmed checkpoints: notify the
  // bolt (segment GC hooks), truncate the replay log, and advance the
  // recovery anchor. A wedged store never advances, so the log keeps
  // everything needed to recover from the last durable chain.
  const auto confirm_durable = [&]() {
    if (!async_store || !ckpt_service->DurableSet(task.id)) return;
    const uint64_t durable = ckpt_service->DurableEpoch(task.id);
    while (!pending_ckpts.empty() && pending_ckpts.front().epoch <= durable) {
      PendingCkpt p = std::move(pending_ckpts.front());
      pending_ckpts.pop_front();
      task.bolt->OnCheckpointDurable(p.epoch, p.is_base);
      const uint64_t advance = p.executed - ckpt.executed;
      if (advance > 0) {
        log.erase(log.begin(), log.begin() + static_cast<ptrdiff_t>(advance));
        replay_pos -= advance;
        log_high -= advance;
      }
      ckpt.executed = p.executed;
      ckpt.cursor = p.cursor;
    }
  };
  if (sstore != nullptr) {
    // Incarnation start: this run owns the chain — drop whatever a prior
    // incarnation left, then seed epoch 0 with a full base so recovery
    // always has a floor to compose from.
    if (async_store) {
      ckpt_service->Barrier(task.id);
      ckpt_service->Reset(task.id);
    }
    Status st = sstore->Truncate();
    if (st.ok() && async_store) {
      store::FrozenBlob init;
      auto blob = std::make_shared<std::string>(ckpt.state);
      init.encode = [blob](std::string* out) { *out = std::move(*blob); };
      submit_frozen(std::move(init));
    } else if (st.ok()) {
      st = sstore->WriteBase(next_epoch++, ckpt.state);
      if (st.ok()) {
        m.base_checkpoints.Increment();
        m.base_checkpoint_bytes.Add(ckpt.state.size());
      }
    }
    if (!st.ok()) {
      LOG(ERROR) << "state store init failed for task " << task.id << ": "
                 << st.message();
    }
  }

  TupleBatch batch;
  // Simulated crash shared by scripted kills and progress-driven
  // kill_worker actions. Returns false on an exhausted restart budget.
  const auto crash_and_restore = [&]() -> bool {
    if (restarts >= supervision.max_restarts) return false;
    ++restarts;
    m.restarts.Increment();
    SleepBackoff(&backoff);
    // Simulated crash: the bolt object (all component state) dies; the
    // executor thread survives as supervisor. Restore the checkpoint,
    // rewind the emission cursors, and replay the log from the top —
    // nested crashes during replay just rewind again.
    task.bolt = comp.bolt_factory();
    CHECK(task.bolt != nullptr);
    task.bolt->Prepare(ctx);
    if (async_store) {
      // Quiesce the checkpoint thread, then recover from the durable
      // chain: newest intact base + contiguous deltas, in epoch order.
      // The replay log still covers everything past the durable epoch
      // (truncation waits for durability), so chain + replay reproduces
      // the pre-crash state exactly.
      ckpt_service->Barrier(task.id);
      confirm_durable();
      pending_ckpts.clear();  // processed; anything past durable is gone
      store::RecoveredChain chain;
      const Status st = sstore->Recover(&chain);
      if (!st.ok()) {
        LOG(ERROR) << "recovery scan failed for task " << task.id << ": "
                   << st.message();
      }
      if (chain.valid) {
        task.bolt->Restore(chain.base);
        for (const std::string& d : chain.deltas) task.bolt->RestoreDelta(d);
        task.bolt->OnRestoreComplete();
      } else {
        // Nothing durable yet (crash before epoch 0 landed): the anchor
        // still sits at the in-memory initial checkpoint.
        CHECK(!ckpt_service->DurableSet(task.id))
            << "durable chain lost for task " << task.id;
        if (ckpt.has_state) task.bolt->Restore(ckpt.state);
      }
    } else {
      if (ckpt.has_state) task.bolt->Restore(ckpt.state);
    }
    collector.Rollback(ckpt.cursor);
    executed_total = ckpt.executed;
    freeze_anchor = executed_total;
    replay_pos = 0;
    return true;
  };
  // Executes log[replay_pos..) honoring kill and checkpoint boundaries.
  // Returns false when the task exhausted its restart budget.
  const auto drain_log = [&]() -> bool {
    while (replay_pos < log.size()) {
      if (dyn_kill != nullptr &&
          dyn_kill[task.id].exchange(0, std::memory_order_acq_rel) != 0) {
        // kill_worker action: crash at this execution boundary.
        if (!crash_and_restore()) return false;
        continue;
      }
      if (!kills.empty() && executed_total == kills.front()) {
        kills.pop_front();
        if (!crash_and_restore()) return false;
        continue;
      }
      if (ckpt_interval > 0 && executed_total == freeze_anchor + ckpt_interval) {
        collector.FlushAll();  // checkpointed cursors must equal delivery state
        const int64_t t0 = NowNanos();
        if (async_store) {
          // Freeze a consistent view at this exact boundary and hand it to
          // the service thread. Only the capture cost lands on the hot
          // path; encode + write time is attributed via on_complete. The
          // log is NOT truncated here — that waits for durability.
          const bool want_delta = task.bolt->SupportsDeltaSnapshot() &&
                                  store_opts.delta_base_interval > 0 &&
                                  (next_epoch % store_opts.delta_base_interval) != 0;
          submit_frozen(task.bolt->Freeze(want_delta));
          freeze_anchor = executed_total;
          m.checkpoint_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
          confirm_durable();
        } else {
          ckpt.state.clear();
          task.bolt->Snapshot(&ckpt.state);
          ckpt.has_state = true;
          ckpt.executed = executed_total;
          collector.SaveCursor(&ckpt.cursor);
          log.erase(log.begin(), log.begin() + static_cast<ptrdiff_t>(replay_pos));
          log_high -= replay_pos;
          replay_pos = 0;
          freeze_anchor = executed_total;
          m.checkpoints.Increment();
          m.checkpoint_bytes.Add(ckpt.state.size());
          m.checkpoint_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
          if (sstore != nullptr) {
            // Sync store: mirror the checkpoint with a durable base image.
            const Status st = sstore->WriteBase(next_epoch++, ckpt.state);
            if (st.ok()) {
              m.base_checkpoints.Increment();
              m.base_checkpoint_bytes.Add(ckpt.state.size());
            } else {
              LOG(ERROR) << "sync base write failed for task " << task.id << ": "
                         << st.message();
            }
          }
        }
        continue;
      }
      // Cap the run so the next kill / checkpoint fires at its exact count.
      uint64_t cap = static_cast<uint64_t>(log.size() - replay_pos);
      if (!kills.empty()) cap = std::min(cap, kills.front() - executed_total);
      if (ckpt_interval > 0) {
        cap = std::min(cap, freeze_anchor + ckpt_interval - executed_total);
      }
      const size_t run = static_cast<size_t>(cap);
      batch.clear();
      int64_t batch_extra_ns = 0;
      for (size_t k = replay_pos; k < replay_pos + run; ++k) {
        batch_extra_ns += log[k].extra_busy_ns;
        // Copy: the log entry must survive for a future replay.
        batch.push_back(log[k].tuple);
      }
      if (replay_pos < log_high) {
        m.replayed_tuples.Add(std::min<uint64_t>(run, log_high - replay_pos));
      }
      const int64_t begin = NowNanos();
      task.bolt->ExecuteBatch(std::move(batch), collector);
      m.executed.Add(run);
      m.execute_nanos.Add(static_cast<uint64_t>(NowNanos() - begin));
      simulated_busy_ns += batch_extra_ns;
      executed_total += run;
      replay_pos += run;
      if (replay_pos > log_high) log_high = replay_pos;
    }
    return true;
  };

  std::vector<Envelope> inbox;
  inbox.reserve(batch_size);
  std::vector<Envelope> canon;
  std::vector<Envelope> segment;  // marker-splitting scratch (elastic only)

  // Canonicalizes and executes one marker-free run of envelopes (the whole
  // inbox, or a between-markers segment), consuming it. Returns false when
  // the task exhausted its restart budget.
  const auto process_segment = [&](std::vector<Envelope>& seg) -> bool {
    if (seg.empty()) return true;
    std::vector<Envelope>* in = &seg;
    if (fault_active) {
      guard.Canonicalize(seg, &canon);
      in = &canon;
    }
    size_t idx = 0;
    while (idx < in->size()) {
      if ((*in)[idx].eos) {
        --remaining;
        ++idx;
        continue;
      }
      // Gather the run of data envelopes up to the next EOS marker,
      // preserving queue order (EOS never overtakes a link's data because
      // the queue is FIFO).
      const size_t run_begin = idx;
      while (idx < in->size() && !(*in)[idx].eos) ++idx;
      if (supervised) {
        for (size_t k = run_begin; k < idx; ++k) log.push_back(std::move((*in)[k]));
        if (!drain_log()) return false;
      } else {
        // Unsupervised fast path: no log, tuples move straight into the
        // batch (byte-for-byte the pre-supervision executor).
        batch.clear();
        int64_t batch_extra_ns = 0;
        for (size_t k = run_begin; k < idx; ++k) {
          batch_extra_ns += (*in)[k].extra_busy_ns;
          batch.push_back(std::move((*in)[k].tuple));
        }
        const size_t executed = idx - run_begin;
        const int64_t begin = NowNanos();
        task.bolt->ExecuteBatch(std::move(batch), collector);
        m.executed.Add(executed);
        // One sample per batch (per-tuple timing would dominate small
        // Execute bodies at large batch sizes).
        m.execute_nanos.Add(static_cast<uint64_t>(NowNanos() - begin));
        simulated_busy_ns += batch_extra_ns;
      }
    }
    seg.clear();
    return true;
  };

  enum class MarkerOutcome { kResume, kReincarnate, kDecommission };
  // Freezes this task at the exact boundary the PREPARE marker marks
  // (docs/INTERNALS.md §12): flush everything emitted so the canonical
  // cursors equal delivery state, snapshot component + progress + cursors,
  // publish the encoded blob on the migration run, and wait for the
  // coordinator's verdict.
  const auto handle_marker = [&](uint64_t marker_id) -> MarkerOutcome {
    const uint32_t migration_id = static_cast<uint32_t>(marker_id);
    collector.FlushAll();
    if (async_store) {
      // No checkpoint write may race the handoff. The migration blob is a
      // full self-contained snapshot; the next incarnation (here or on the
      // target) truncates and reseeds the chain.
      ckpt_service->Barrier(task.id);
      confirm_durable();
    }
    MigrationState st;
    st.task_id = static_cast<uint32_t>(task.id);
    st.executed_total = executed_total;
    st.remaining_eos = static_cast<uint32_t>(remaining);
    if (task.bolt->SupportsSnapshot()) {
      st.has_bolt_state = true;
      task.bolt->Snapshot(&st.bolt_state);
    }
    collector.SaveMigration(&st);
    guard.Save(&st.next_seq);
    std::string blob;
    EncodeMigrationState(st, &blob);
    if (task_quiesced != nullptr) {
      task_quiesced[task.id].store(1, std::memory_order_release);
    }
    if (supervision.migration_freeze_hold_micros > 0) {
      // Test seam: hold the freeze open so watchdog interplay is testable.
      std::this_thread::sleep_for(
          std::chrono::microseconds(supervision.migration_freeze_hold_micros));
    }
    MarkerOutcome outcome = MarkerOutcome::kResume;
    {
      std::unique_lock<std::mutex> lock(mig_mu);
      const auto it = migration_runs.find(migration_id);
      if (it == migration_runs.end()) {
        // Unknown marker (stale duplicate): resume untouched.
        if (task_quiesced != nullptr) {
          task_quiesced[task.id].store(0, std::memory_order_release);
        }
        return MarkerOutcome::kResume;
      }
      MigrationRun& run = it->second;
      if (run.phase == MigPhase::kFreezing) {
        run.blob = std::move(blob);
        run.phase = MigPhase::kFrozen;
        mig_cv.notify_all();
        if (run.remote_coordinator) {
          // The coordinator lives on rank 0: ship the frozen state there.
          ControlFrame frame;
          frame.kind = ControlKind::kState;
          frame.migration_id = run.id;
          frame.task_id = task.id;
          frame.worker = run.target_worker;
          frame.blob = run.blob;
          lock.unlock();
          if (!transport->SendControl(0, frame)) {
            MarkFailed("migration " + std::to_string(run.id) +
                       ": cannot ship state to the coordinator");
          }
          lock.lock();
        }
      }
      // Wait for the verdict. A failed run resumes untouched — the closed
      // queues end the executor on their own.
      while (run.phase != MigPhase::kRestoreLocal &&
             run.phase != MigPhase::kDecommission && run.phase != MigPhase::kAbort &&
             !failed.load(std::memory_order_acquire)) {
        mig_cv.wait_for(lock, std::chrono::milliseconds(10));
      }
      const MigPhase verdict = run.phase;
      if (verdict == MigPhase::kRestoreLocal) {
        MigrationState adopted;
        const Status status =
            DecodeMigrationState(run.blob.data(), run.blob.size(), &adopted);
        if (status.ok()) {
          run.phase = MigPhase::kRestored;
          outcome = MarkerOutcome::kReincarnate;
          *reincarnate = std::move(adopted);
        } else {
          run.phase = MigPhase::kAbort;
          MarkFailed("migration " + std::to_string(run.id) +
                     ": restore rejected: " + status.message());
        }
        run.blob.clear();
        mig_cv.notify_all();
      } else if (verdict == MigPhase::kDecommission) {
        // The task now runs on run.target_worker. Update the local view
        // (idempotent when the coordinator already flipped it) and exit
        // without Finish or EOS — the new incarnation owns those.
        outcome = MarkerOutcome::kDecommission;
        tasks[task.id].worker = run.target_worker;
        if (live_worker != nullptr) {
          live_worker[task.id].store(run.target_worker, std::memory_order_release);
        }
        hosted[task.id] = 0;
        run.blob.clear();
      } else {
        run.blob.clear();  // abort / failed run: resume untouched
      }
      if (run.remote_coordinator) {
        migrations_in_flight.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (task_quiesced != nullptr) {
      task_quiesced[task.id].store(0, std::memory_order_release);
    }
    return outcome;
  };

  while (remaining > 0) {
    inbox.clear();
    const int64_t pop_t0 = NowNanos();
    const size_t popped = task.queue->PopBatch(&inbox, batch_size);
    m.idle_nanos.Add(static_cast<uint64_t>(NowNanos() - pop_t0));
    if (popped == 0) break;  // closed
    if (elastic) {
      bool has_marker = false;
      for (const Envelope& env : inbox) {
        if (env.source_task == kMigrationMarkerTask) {
          has_marker = true;
          break;
        }
      }
      if (has_marker) {
        // Split the batch at each marker: data before a marker belongs to
        // the pre-freeze boundary and must execute before the snapshot.
        segment.clear();
        MarkerOutcome outcome = MarkerOutcome::kResume;
        for (Envelope& env : inbox) {
          if (env.source_task != kMigrationMarkerTask) {
            segment.push_back(std::move(env));
            continue;
          }
          if (!process_segment(segment)) {
            gave_up = true;
            break;
          }
          outcome = handle_marker(env.link_seq);
          if (outcome != MarkerOutcome::kResume) break;
        }
        if (gave_up) break;
        if (outcome == MarkerOutcome::kReincarnate) {
          m.busy_nanos.Add(
              static_cast<uint64_t>(ThreadCpuNanos() - cpu_start + simulated_busy_ns));
          return true;
        }
        if (outcome == MarkerOutcome::kDecommission) {
          m.busy_nanos.Add(
              static_cast<uint64_t>(ThreadCpuNanos() - cpu_start + simulated_busy_ns));
          NoteTaskExit(task.id);
          return false;
        }
        if (!process_segment(segment)) {
          gave_up = true;
          break;
        }
        continue;
      }
    }
    if (!process_segment(inbox)) {
      gave_up = true;
      break;
    }
  }

  if (gave_up) {
    MarkFailed("bolt task " + comp.name + "[" + std::to_string(task.local_index) +
               "] exceeded max_restarts=" + std::to_string(supervision.max_restarts));
    // Unblock producers stuck on this task's full queue; new pushes are
    // rejected, so upstream drains to its own EOS without us.
    task.queue->Close();
    collector.FlushAll();
    collector.SendEosAll();  // downstream still needs to terminate
  } else {
    if (async_store) {
      // Settle in-flight checkpoints so end-of-run counters and spill
      // segment GC are deterministic before Finish publishes stats.
      ckpt_service->Barrier(task.id);
      confirm_durable();
    }
    task.bolt->Finish(collector);
    collector.FlushAll();
    collector.SendEosAll();
  }
  m.busy_nanos.Add(
      static_cast<uint64_t>(ThreadCpuNanos() - cpu_start + simulated_busy_ns));
  NoteTaskExit(task.id);
  return false;
}

Status TopologyImpl::MigrateTaskId(int task_id, int target_worker) {
  if (!elastic) {
    return Status::FailedPrecondition("topology is not elastic (TopologyBuilder::SetElastic)");
  }
  if (!submitted) return Status::FailedPrecondition("topology not submitted");
  if (task_id < 0 || task_id >= static_cast<int>(tasks.size())) {
    return Status::NotFound("no such task id " + std::to_string(task_id));
  }
  Task& task = tasks[static_cast<size_t>(task_id)];
  const ComponentSpec& comp = *comps[task.comp];
  if (comp.is_spout) {
    return Status::InvalidArgument("cannot migrate spout task " + comp.name + "[" +
                                   std::to_string(task.local_index) + "]");
  }
  if (target_worker < 0 || target_worker >= num_workers) {
    return Status::OutOfRange("target worker " + std::to_string(target_worker) +
                              " outside [0, " + std::to_string(num_workers) + ")");
  }
  const bool hosts_all = transport == nullptr || transport->hosts_all_tasks();
  if (!hosts_all) {
    if (local_rank != 0) {
      return Status::FailedPrecondition("only the coordinator (rank 0) may migrate tasks");
    }
    // PauseGate quiesces producers through process-local gates, so every
    // producer feeding the task must execute on this rank.
    for (const auto& [src_name, grouping] : comp.inputs) {
      (void)grouping;
      const ComponentSpec& src = *comps[static_cast<size_t>(comp_index.at(src_name))];
      for (int i = 0; i < src.parallelism; ++i) {
        if (!Hosted(src.first_task + i)) {
          return Status::FailedPrecondition("producer " + src.name + "[" + std::to_string(i) +
                                            "] is not hosted on the coordinator");
        }
      }
    }
  }

  // One migration at a time: concurrent callers serialize here.
  std::lock_guard<std::mutex> serial(elastic_mu);
  const int src_rank = WorkerOf(task_id);
  if (src_rank == target_worker) return Status::OK();
  const bool src_local = hosts_all || src_rank == local_rank;
  if (src_local && task_exited != nullptr &&
      task_exited[static_cast<size_t>(task_id)].load(std::memory_order_acquire) != 0) {
    return Status::FailedPrecondition("task already exited (stream finished)");
  }
  if (failed.load(std::memory_order_acquire)) {
    return Status::Internal("topology already failed");
  }

  uint32_t migration_id = 0;
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    migration_id = next_migration_id++;
    MigrationRun run;
    run.id = migration_id;
    run.task_id = task_id;
    run.target_worker = target_worker;
    run.remote_coordinator = false;
    run.phase = MigPhase::kFreezing;
    migration_runs.emplace(migration_id, std::move(run));
  }
  migrations_in_flight.fetch_add(1, std::memory_order_acq_rel);
  const int64_t t0 = NowNanos();

  const auto abort_run = [&](Status status) {
    {
      std::lock_guard<std::mutex> lock(mig_mu);
      MigrationRun& run = migration_runs.at(migration_id);
      if (run.phase == MigPhase::kFreezing || run.phase == MigPhase::kFrozen ||
          run.phase == MigPhase::kShipped) {
        run.phase = MigPhase::kAbort;
        run.blob.clear();
      }
      mig_cv.notify_all();
    }
    ResumeGate(task_id);
    migrations_in_flight.fetch_sub(1, std::memory_order_acq_rel);
    return status;
  };

  // 1. Quiesce: park every producer push into the task and wait out
  //    in-flight ones, so the freeze marker lands at an exact boundary.
  PauseGate(task_id);

  // 2. Freeze: inject the marker (directly, or via PREPARE to the source
  //    rank) and wait for the executor to snapshot and publish the blob.
  if (src_local) {
    if (task.queue == nullptr ||
        task.queue->Push(Envelope{Tuple(), kMigrationMarkerTask, /*eos=*/false, 0,
                                  static_cast<uint64_t>(migration_id)}) == 0) {
      return abort_run(Status::FailedPrecondition("task queue already closed"));
    }
  } else {
    ControlFrame frame;
    frame.kind = ControlKind::kPrepare;
    frame.migration_id = migration_id;
    frame.task_id = task_id;
    frame.worker = target_worker;
    if (!transport->SendControl(src_rank, frame)) {
      return abort_run(Status::Internal("cannot reach source rank " + std::to_string(src_rank)));
    }
  }
  {
    std::unique_lock<std::mutex> lock(mig_mu);
    MigrationRun& run = migration_runs.at(migration_id);
    while (run.phase == MigPhase::kFreezing && !failed.load(std::memory_order_acquire) &&
           !(src_local && task_exited != nullptr &&
             task_exited[static_cast<size_t>(task_id)].load(std::memory_order_acquire) != 0)) {
      mig_cv.wait_for(lock, std::chrono::milliseconds(5));
    }
    if (run.phase != MigPhase::kFrozen) {
      const bool aborted = run.phase == MigPhase::kAbort;
      lock.unlock();
      if (aborted || failed.load(std::memory_order_acquire)) {
        // kAbort here means the source could not freeze (task finished
        // first) — benign for scripted schedules that race stream end.
        return abort_run(failed.load(std::memory_order_acquire)
                             ? Status::Internal("topology failed during freeze")
                             : Status::FailedPrecondition("task finished before freezing"));
      }
      return abort_run(Status::FailedPrecondition("task finished before freezing"));
    }
  }

  std::string blob;
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    blob = migration_runs.at(migration_id).blob;
  }
  const uint64_t blob_bytes = blob.size();

  // 3. Handoff: route flips while producers are still parked, then the
  //    verdict releases (or decommissions) the frozen incarnation.
  if (hosts_all) {
    FlipRoute(task_id, target_worker);
    {
      std::lock_guard<std::mutex> lock(mig_mu);
      migration_runs.at(migration_id).phase = MigPhase::kRestoreLocal;
      mig_cv.notify_all();
    }
    ResumeGate(task_id);
    std::unique_lock<std::mutex> lock(mig_mu);
    MigrationRun& run = migration_runs.at(migration_id);
    while (run.phase != MigPhase::kRestored && run.phase != MigPhase::kAbort &&
           !failed.load(std::memory_order_acquire)) {
      mig_cv.wait_for(lock, std::chrono::milliseconds(5));
    }
    if (run.phase != MigPhase::kRestored) {
      lock.unlock();
      migrations_in_flight.fetch_sub(1, std::memory_order_acq_rel);
      return Status::Internal("migration " + std::to_string(migration_id) +
                              " aborted during restore");
    }
  } else if (target_worker == local_rank) {
    // The task moves onto the coordinator: activate locally, flip, and tell
    // the remote source to decommission its frozen incarnation.
    if (!ActivateMigratedTask(migration_id, task_id, std::move(blob),
                              /*notify_coordinator=*/false)) {
      return abort_run(Status::Internal("migration " + std::to_string(migration_id) +
                                        ": local activation failed"));
    }
    FlipRoute(task_id, target_worker);
    ControlFrame ack;
    ack.kind = ControlKind::kAck;
    ack.migration_id = migration_id;
    ack.task_id = task_id;
    ack.worker = target_worker;
    if (!transport->SendControl(src_rank, ack)) {
      MarkFailed("migration " + std::to_string(migration_id) +
                 ": cannot decommission source rank " + std::to_string(src_rank));
    }
    {
      std::lock_guard<std::mutex> lock(mig_mu);
      MigrationRun& run = migration_runs.at(migration_id);
      run.phase = MigPhase::kRestored;
      run.blob.clear();
      mig_cv.notify_all();
    }
    ResumeGate(task_id);
  } else {
    // Remote target: ship the blob, wait for its HANDOFF, flip, then
    // decommission the source (local verdict or ACK frame).
    {
      std::lock_guard<std::mutex> lock(mig_mu);
      migration_runs.at(migration_id).phase = MigPhase::kShipped;
    }
    ControlFrame state;
    state.kind = ControlKind::kState;
    state.migration_id = migration_id;
    state.task_id = task_id;
    state.worker = target_worker;
    state.blob = std::move(blob);
    if (!transport->SendControl(target_worker, state)) {
      return abort_run(Status::Internal("cannot ship state to rank " +
                                        std::to_string(target_worker)));
    }
    {
      std::unique_lock<std::mutex> lock(mig_mu);
      MigrationRun& run = migration_runs.at(migration_id);
      while (run.phase == MigPhase::kShipped && !failed.load(std::memory_order_acquire)) {
        mig_cv.wait_for(lock, std::chrono::milliseconds(5));
      }
      if (run.phase != MigPhase::kHandoff) {
        lock.unlock();
        return abort_run(Status::Internal("migration " + std::to_string(migration_id) +
                                          ": handoff did not complete"));
      }
    }
    FlipRoute(task_id, target_worker);
    if (src_local) {
      std::lock_guard<std::mutex> lock(mig_mu);
      MigrationRun& run = migration_runs.at(migration_id);
      run.phase = MigPhase::kDecommission;
      mig_cv.notify_all();
    } else {
      ControlFrame ack;
      ack.kind = ControlKind::kAck;
      ack.migration_id = migration_id;
      ack.task_id = task_id;
      ack.worker = target_worker;
      if (!transport->SendControl(src_rank, ack)) {
        MarkFailed("migration " + std::to_string(migration_id) +
                   ": cannot decommission source rank " + std::to_string(src_rank));
      }
      std::lock_guard<std::mutex> lock(mig_mu);
      MigrationRun& run = migration_runs.at(migration_id);
      run.phase = MigPhase::kDecommission;
      run.blob.clear();
    }
    ResumeGate(task_id);
  }

  TaskMetrics& m = *task.metrics;
  m.migrations.Increment();
  m.migration_bytes.Add(blob_bytes);
  m.migration_nanos.Add(static_cast<uint64_t>(NowNanos() - t0));
  migrations_in_flight.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

void TopologyImpl::HandleControl(ControlFrame&& frame) {
  switch (frame.kind) {
    case ControlKind::kPrepare: {
      // Coordinator asks this rank to freeze one of its tasks.
      const int task_id = frame.task_id;
      if (task_id < 0 || task_id >= static_cast<int>(tasks.size()) || !Hosted(task_id) ||
          tasks[static_cast<size_t>(task_id)].queue == nullptr) {
        MarkFailed("migration " + std::to_string(frame.migration_id) +
                   ": PREPARE for a task not hosted here");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mig_mu);
        if (migration_runs.count(frame.migration_id) != 0) return;  // duplicate PREPARE
        MigrationRun run;
        run.id = frame.migration_id;
        run.task_id = task_id;
        run.target_worker = frame.worker;
        run.remote_coordinator = true;
        run.phase = MigPhase::kFreezing;
        migration_runs.emplace(frame.migration_id, std::move(run));
      }
      migrations_in_flight.fetch_add(1, std::memory_order_acq_rel);
      if (tasks[static_cast<size_t>(task_id)].queue->Push(
              Envelope{Tuple(), kMigrationMarkerTask, /*eos=*/false, 0,
                       static_cast<uint64_t>(frame.migration_id)}) == 0) {
        // Queue closed: the task finished first. Tell the coordinator the
        // freeze is off (an ACK toward rank 0 only ever means that).
        {
          std::lock_guard<std::mutex> lock(mig_mu);
          migration_runs.at(frame.migration_id).phase = MigPhase::kAbort;
          mig_cv.notify_all();
        }
        migrations_in_flight.fetch_sub(1, std::memory_order_acq_rel);
        ControlFrame nak;
        nak.kind = ControlKind::kAck;
        nak.migration_id = frame.migration_id;
        nak.task_id = task_id;
        nak.worker = 0;
        transport->SendControl(0, nak);
      }
      return;
    }
    case ControlKind::kState: {
      if (local_rank == 0) {
        // Frozen state arriving back at the coordinator from a remote
        // source; MigrateTaskId is waiting on the phase.
        std::lock_guard<std::mutex> lock(mig_mu);
        const auto it = migration_runs.find(frame.migration_id);
        if (it != migration_runs.end() && it->second.phase == MigPhase::kFreezing) {
          it->second.blob = std::move(frame.blob);
          it->second.phase = MigPhase::kFrozen;
          mig_cv.notify_all();
        }
        return;
      }
      // Target rank: adopt the task and confirm with HANDOFF.
      ActivateMigratedTask(frame.migration_id, frame.task_id, std::move(frame.blob),
                           /*notify_coordinator=*/true);
      return;
    }
    case ControlKind::kHandoff: {
      std::lock_guard<std::mutex> lock(mig_mu);
      const auto it = migration_runs.find(frame.migration_id);
      if (it != migration_runs.end() && it->second.phase == MigPhase::kShipped) {
        it->second.phase = MigPhase::kHandoff;
        mig_cv.notify_all();
      }
      return;
    }
    case ControlKind::kAck: {
      std::lock_guard<std::mutex> lock(mig_mu);
      const auto it = migration_runs.find(frame.migration_id);
      if (it == migration_runs.end()) return;
      MigrationRun& run = it->second;
      if (run.remote_coordinator && run.phase == MigPhase::kFrozen) {
        // Coordinator's verdict: the task now lives elsewhere.
        run.phase = MigPhase::kDecommission;
      } else if (!run.remote_coordinator && run.phase == MigPhase::kFreezing) {
        // Source rank could not freeze (task finished first).
        run.phase = MigPhase::kAbort;
      }
      mig_cv.notify_all();
      return;
    }
    case ControlKind::kFinish: {
      // Coordinator's run-over broadcast: no task can migrate here anymore,
      // so Wait()'s elastic finish hold can release.
      std::lock_guard<std::mutex> lock(mig_mu);
      coordinator_done = true;
      mig_cv.notify_all();
      return;
    }
  }
}

bool TopologyImpl::ActivateMigratedTask(uint32_t migration_id, int task_id, std::string blob,
                                        bool notify_coordinator) {
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    if (!activated_migrations.insert(migration_id).second) return true;  // duplicate STATE
  }
  MigrationState st;
  const Status status = DecodeMigrationState(blob.data(), blob.size(), &st);
  if (!status.ok()) {
    MarkFailed("migration " + std::to_string(migration_id) + ": " + status.message());
    return false;
  }
  if (task_id < 0 || task_id >= static_cast<int>(tasks.size()) ||
      st.task_id != static_cast<uint32_t>(task_id)) {
    MarkFailed("migration " + std::to_string(migration_id) + ": blob/task mismatch");
    return false;
  }
  Task& task = tasks[static_cast<size_t>(task_id)];
  const ComponentSpec& comp = *comps[task.comp];
  if (comp.is_spout || task.queue == nullptr) {
    MarkFailed("migration " + std::to_string(migration_id) + ": task not migratable here");
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    task.worker = local_rank;
    if (live_worker != nullptr) {
      live_worker[static_cast<size_t>(task_id)].store(local_rank, std::memory_order_release);
    }
    hosted[static_cast<size_t>(task_id)] = 1;
    ever_hosted[static_cast<size_t>(task_id)] = 1;
  }
  if (task_exited != nullptr) {
    task_exited[static_cast<size_t>(task_id)].store(0, std::memory_order_relaxed);
  }
  // Fresh incarnation: the dormant Build-time bolt was never Prepared.
  task.bolt = comp.bolt_factory();
  CHECK(task.bolt != nullptr);
  {
    std::lock_guard<std::mutex> lock(mig_mu);
    elastic_threads.push_back(std::thread(
        [this, &task, st = std::move(st)]() mutable { RunBoltTask(task, &st); }));
  }
  if (notify_coordinator) {
    ControlFrame frame;
    frame.kind = ControlKind::kHandoff;
    frame.migration_id = migration_id;
    frame.task_id = task_id;
    frame.worker = local_rank;
    if (!transport->SendControl(0, frame)) {
      MarkFailed("migration " + std::to_string(migration_id) + ": cannot confirm handoff");
      return false;
    }
  }
  return true;
}

void TopologyImpl::RunActionDriver() {
  size_t next = 0;
  while (next < actions.size() && !driver_stop.load(std::memory_order_acquire) &&
         !failed.load(std::memory_order_acquire)) {
    uint64_t emitted = 0;
    bool any_alive = false;
    for (Task& task : tasks) {
      if (comps[task.comp]->is_spout) emitted += task.metrics->emitted.Get();
      if (task_exited != nullptr &&
          task_exited[static_cast<size_t>(task.id)].load(std::memory_order_relaxed) == 0) {
        any_alive = true;
      }
    }
    while (next < actions.size() && actions[next].at_seq <= emitted) {
      const ResolvedAction& action = actions[next++];
      if (action.is_kill) {
        // "Kill worker": every bolt task currently placed on the rank
        // crashes at its next execution step (spouts are the workload
        // source; killing them would change the input, not test recovery).
        for (Task& task : tasks) {
          if (!comps[task.comp]->is_spout && WorkerOf(task.id) == action.rank) {
            dyn_kill[static_cast<size_t>(task.id)].store(1, std::memory_order_release);
          }
        }
      } else {
        const Status status = MigrateTaskId(action.task_id, action.target_worker);
        if (!status.ok() && status.code() != StatusCode::kFailedPrecondition) {
          // FailedPrecondition = the task finished before the scripted
          // point — benign for schedules that race stream end.
          MarkFailed("scripted migration failed: " + status.message());
        }
      }
    }
    if (!any_alive) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace internal_topology

using internal_topology::ComponentSpec;
using internal_topology::ResolvedLinkFault;
using internal_topology::Subscription;
using internal_topology::Task;
using internal_topology::TopologyImpl;

// --- Declarers ---------------------------------------------------------

namespace {

void AddInput(ComponentSpec* spec, const std::string& source, Grouping grouping) {
  for (const auto& [name, _] : spec->inputs) {
    CHECK(name != source) << "duplicate subscription of " << spec->name << " to " << source;
  }
  spec->inputs.emplace_back(source, std::move(grouping));
}

/// Pins an executor thread to one core (SetPinThreads). Linux-only; a no-op
/// elsewhere, and best-effort on Linux (a failed setaffinity just leaves
/// the thread floating — pinning is a measurement aid, not a correctness
/// requirement).
void PinThreadToCore(std::thread& thread, unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

}  // namespace

BoltDeclarer& BoltDeclarer::ShuffleGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kShuffle, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::FieldsGrouping(const std::string& source, std::vector<size_t> fields) {
  CHECK(!fields.empty()) << "FieldsGrouping needs at least one field";
  AddInput(spec_, source, Grouping{GroupingType::kFields, std::move(fields), nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::AllGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kAll, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::GlobalGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kGlobal, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::DirectGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kDirect, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::CustomGrouping(const std::string& source,
                                           CustomPartitioner partitioner) {
  CHECK(partitioner != nullptr);
  AddInput(spec_, source, Grouping{GroupingType::kCustom, {}, std::move(partitioner)});
  return *this;
}
BoltDeclarer& BoltDeclarer::PartnerGrouping(const std::string& source) {
  AddInput(spec_, source, Grouping{GroupingType::kPartner, {}, nullptr});
  return *this;
}
BoltDeclarer& BoltDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}
SpoutDeclarer& SpoutDeclarer::SetPlacement(std::vector<int> workers) {
  spec_->placement = std::move(workers);
  return *this;
}

// --- Builder ------------------------------------------------------------

TopologyBuilder::TopologyBuilder() : impl_(std::make_unique<TopologyImpl>()) {}
TopologyBuilder::~TopologyBuilder() = default;

SpoutDeclarer TopologyBuilder::SetSpout(const std::string& name, SpoutFactory factory,
                                        int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = true;
  spec->spout_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return SpoutDeclarer(impl_->comps.back().get());
}

BoltDeclarer TopologyBuilder::SetBolt(const std::string& name, BoltFactory factory,
                                      int parallelism) {
  CHECK(impl_ != nullptr) << "builder already consumed";
  CHECK(factory != nullptr);
  CHECK_GE(parallelism, 1);
  CHECK(impl_->comp_index.find(name) == impl_->comp_index.end())
      << "duplicate component " << name;
  auto spec = std::make_unique<ComponentSpec>();
  spec->name = name;
  spec->is_spout = false;
  spec->bolt_factory = std::move(factory);
  spec->parallelism = parallelism;
  impl_->comp_index[name] = static_cast<int>(impl_->comps.size());
  impl_->comps.push_back(std::move(spec));
  return BoltDeclarer(impl_->comps.back().get());
}

TopologyBuilder& TopologyBuilder::SetNumWorkers(int workers) {
  CHECK_GE(workers, 1);
  impl_->num_workers = workers;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetQueueCapacity(size_t capacity) {
  CHECK_GE(capacity, 1u);
  impl_->queue_capacity = capacity;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetQueueImpl(QueueImpl impl) {
  impl_->queue_impl = impl;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetPinThreads(bool pin) {
  impl_->pin_threads = pin;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetBatchSize(size_t batch_size) {
  CHECK_GE(batch_size, 1u);
  impl_->batch_size = batch_size;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetRemoteByteCostNanos(double nanos_per_byte) {
  CHECK_GE(nanos_per_byte, 0.0);
  impl_->remote_byte_cost_ns = nanos_per_byte;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetOverload(OverloadOptions options) {
  CHECK_GT(options.shed_watermark, 0.0);
  CHECK_LE(options.shed_watermark, 1.0);
  CHECK_GE(options.watchdog_interval_micros, 1);
  CHECK_GE(options.stall_timeout_micros, 0);
  impl_->overload = options;
  impl_->overload_active = options.enabled();
  return *this;
}

TopologyBuilder& TopologyBuilder::SetSupervision(SupervisorOptions options) {
  CHECK_GE(options.max_restarts, 0);
  CHECK_GE(options.initial_backoff_micros, 0);
  CHECK_GE(options.max_backoff_micros, options.initial_backoff_micros);
  impl_->supervision = options;
  impl_->supervised = true;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetStore(store::StoreOptions options) {
  CHECK(options.enabled()) << "SetStore requires a non-empty directory";
  impl_->store_opts = std::move(options);
  return *this;
}

TopologyBuilder& TopologyBuilder::SetFaultScript(FaultScript script) {
  impl_->fault_script = std::move(script);
  if (!impl_->fault_script.empty()) {
    impl_->fault_active = true;
    impl_->supervised = true;  // kills need a supervisor; defaults apply
  }
  return *this;
}

TopologyBuilder& TopologyBuilder::SetElastic(bool elastic) {
  impl_->elastic = elastic;
  return *this;
}

TopologyBuilder& TopologyBuilder::SetTransport(std::shared_ptr<Transport> transport) {
  impl_->transport = std::move(transport);
  return *this;
}

std::unique_ptr<Topology> TopologyBuilder::Build() {
  CHECK(impl_ != nullptr) << "builder already consumed";
  TopologyImpl& t = *impl_;
  CHECK(!t.built);
  t.built = true;

  // Resolve subscriptions.
  for (size_t ci = 0; ci < t.comps.size(); ++ci) {
    ComponentSpec& comp = *t.comps[ci];
    CHECK(comp.is_spout || !comp.inputs.empty())
        << "bolt " << comp.name << " has no input subscription";
    CHECK(!comp.is_spout || comp.inputs.empty()) << "spouts cannot subscribe to streams";
    for (auto& [source, grouping] : comp.inputs) {
      const auto it = t.comp_index.find(source);
      CHECK(it != t.comp_index.end())
          << comp.name << " subscribes to unknown component " << source;
      CHECK(static_cast<size_t>(it->second) != ci) << "self-loop on " << comp.name;
      if (grouping.type == GroupingType::kPartner) {
        CHECK_EQ(t.comps[it->second]->parallelism, comp.parallelism)
            << "partner grouping " << source << " -> " << comp.name
            << " requires matching parallelism";
      }
      t.comps[it->second]->subs_out.push_back(
          Subscription{static_cast<int>(ci), grouping});
      comp.upstream_tasks += t.comps[it->second]->parallelism;
    }
  }

  // Cycle check (DFS, 0=unvisited 1=in-stack 2=done).
  {
    std::vector<int> state(t.comps.size(), 0);
    std::function<void(int)> dfs = [&](int u) {
      state[u] = 1;
      for (const Subscription& sub : t.comps[u]->subs_out) {
        CHECK(state[sub.consumer_comp] != 1) << "topology contains a cycle";
        if (state[sub.consumer_comp] == 0) dfs(sub.consumer_comp);
      }
      state[u] = 2;
    };
    for (size_t i = 0; i < t.comps.size(); ++i) {
      if (state[i] == 0) dfs(static_cast<int>(i));
    }
  }

  // Materialize tasks. With a real (non-hosts-all) transport this process
  // instantiates components only for the tasks placed on its own rank; the
  // rest exist as metric slots, and the per-rank placement must agree
  // across processes (every rank runs the same Build on the same spec).
  const bool hosts_all = t.transport == nullptr || t.transport->hosts_all_tasks();
  if (t.transport != nullptr) {
    t.local_rank = t.transport->local_rank();
    if (!hosts_all) {
      CHECK_EQ(t.num_workers, t.transport->num_ranks())
          << "SetNumWorkers must equal the transport's world size";
    }
  }
  if (t.fault_script.has_progress_actions()) {
    // The action driver reads every task's progress and flips routes
    // directly; both need the whole topology in one process.
    CHECK(hosts_all) << "kill_worker/migrate fault actions require a single-process "
                        "(hosts-all) topology; drive real ranks via Topology::MigrateTask";
    t.elastic = true;
  }
  if (t.elastic) t.supervised = true;  // the migration blob doubles as a checkpoint
  for (auto& comp_ptr : t.comps) {
    ComponentSpec& comp = *comp_ptr;
    comp.first_task = static_cast<int>(t.tasks.size());
    if (!comp.placement.empty()) {
      CHECK_EQ(comp.placement.size(), static_cast<size_t>(comp.parallelism))
          << "placement size mismatch for " << comp.name;
    }
    for (int i = 0; i < comp.parallelism; ++i) {
      Task task;
      task.id = static_cast<int>(t.tasks.size());
      task.comp = static_cast<int>(&comp_ptr - t.comps.data());
      task.local_index = i;
      task.worker = comp.placement.empty() ? i % t.num_workers : comp.placement[i];
      CHECK_GE(task.worker, 0);
      CHECK_LT(task.worker, t.num_workers);
      task.metrics = std::make_unique<TaskMetrics>();
      const bool host_here = hosts_all || task.worker == t.local_rank;
      t.hosted.push_back(host_here ? 1 : 0);
      // Elastic + real transport: every rank materializes dormant bolt
      // instances (and queues) for tasks placed elsewhere, so any rank can
      // adopt a migrated task at runtime. Only hosted tasks get executors.
      const bool materialize = host_here || (t.elastic && !comp.is_spout && !hosts_all);
      if (!materialize) {
        t.tasks.push_back(std::move(task));
        continue;
      }
      if (comp.is_spout) {
        task.spout = comp.spout_factory();
        CHECK(task.spout != nullptr);
      } else {
        task.bolt = comp.bolt_factory();
        CHECK(task.bolt != nullptr);
        // An SPSC ring is safe only when exactly one producer-task thread
        // can ever push and no transport thread delivers inbound batches.
        // Elastic topologies add the migration driver as a second pusher.
        const bool spsc_safe =
            comp.upstream_tasks == 1 && t.transport == nullptr && !t.elastic;
        task.queue = MakeQueue<Envelope>(t.queue_impl, t.queue_capacity, spsc_safe);
      }
      t.tasks.push_back(std::move(task));
    }
  }

  t.ever_hosted = t.hosted;  // migrations extend this; Build placement seeds it

  if (t.store_opts.enabled()) {
    CHECK(t.supervised) << "SetStore requires SetSupervision";
    Status st = store::EnsureDir(t.store_opts.dir);
    CHECK(st.ok()) << "cannot create store dir " << t.store_opts.dir << ": "
                   << st.message();
    t.task_stores.resize(t.tasks.size());
    for (Task& task : t.tasks) {
      if (task.bolt == nullptr || !t.Hosted(task.id)) continue;
      // Per-task chain directories are disjoint, so multi-rank runs over a
      // shared filesystem never race each other; stale contents are
      // truncated when the executor starts its incarnation.
      const std::string dir = t.store_opts.dir + "/task_" + std::to_string(task.id);
      st = store::EnsureDir(dir);
      CHECK(st.ok()) << "cannot create task store dir " << dir << ": " << st.message();
      t.task_stores[task.id] = std::make_unique<store::StateStore>(dir);
    }
    if (t.store_opts.async()) {
      t.ckpt_service = std::make_unique<store::CheckpointService>();
    }
  }

  if (t.overload_active) {
    t.task_exited = std::make_unique<std::atomic<uint8_t>[]>(t.tasks.size());
    for (size_t i = 0; i < t.tasks.size(); ++i) {
      // Non-hosted tasks run elsewhere; for the local watchdog they are
      // permanently "exited" (their progress is invisible here).
      t.task_exited[i].store(t.Hosted(static_cast<int>(i)) ? 0 : 1,
                             std::memory_order_relaxed);
      if (t.tasks[i].queue != nullptr) t.tasks[i].queue->EnableHealthTracking();
    }
  }

  if (t.elastic) {
    t.gates.resize(t.tasks.size());
    for (auto& gate : t.gates) gate = std::make_unique<TopologyImpl::TaskGate>();
    t.task_quiesced = std::make_unique<std::atomic<uint8_t>[]>(t.tasks.size());
    t.live_worker = std::make_unique<std::atomic<int>[]>(t.tasks.size());
    for (size_t i = 0; i < t.tasks.size(); ++i) {
      t.task_quiesced[i].store(0, std::memory_order_relaxed);
      t.live_worker[i].store(t.tasks[i].worker, std::memory_order_relaxed);
    }
    if (t.task_exited == nullptr) {
      // The migration driver and Wait() need exit tracking even without
      // overload control.
      t.task_exited = std::make_unique<std::atomic<uint8_t>[]>(t.tasks.size());
      for (size_t i = 0; i < t.tasks.size(); ++i) {
        t.task_exited[i].store(t.Hosted(static_cast<int>(i)) ? 0 : 1,
                               std::memory_order_relaxed);
      }
    }
  }

  // Resolve the fault script against the materialized tasks. Script errors
  // are configuration errors, so they abort like every other Build() check.
  t.kill_plan.assign(t.tasks.size(), {});
  t.link_plan.assign(t.tasks.size(), {});
  const auto resolve_task = [&t](const std::string& component, int index,
                                 const char* what) -> int {
    const auto it = t.comp_index.find(component);
    CHECK(it != t.comp_index.end())
        << "fault script " << what << " references unknown component '" << component << "'";
    const ComponentSpec& comp = *t.comps[it->second];
    CHECK(index >= 0 && index < comp.parallelism)
        << "fault script " << what << " task index " << index << " out of range for "
        << component << " (parallelism " << comp.parallelism << ")";
    return comp.first_task + index;
  };
  for (const KillFault& kill : t.fault_script.kills()) {
    t.kill_plan[resolve_task(kill.component, kill.task_index, "kill")].push_back(
        kill.at_count);
  }
  for (std::vector<uint64_t>& kills : t.kill_plan) std::sort(kills.begin(), kills.end());
  for (const LinkFault& fault : t.fault_script.link_faults()) {
    const int src = resolve_task(fault.src_component, fault.src_index, "link fault source");
    const int dst =
        resolve_task(fault.dst_component, fault.dst_index, "link fault destination");
    const ComponentSpec& src_comp = *t.comps[t.tasks[src].comp];
    bool edge = false;
    for (const Subscription& sub : src_comp.subs_out) {
      if (t.comps[sub.consumer_comp].get() == t.comps[t.tasks[dst].comp].get()) edge = true;
    }
    CHECK(edge) << "fault script link " << fault.src_component << "->" << fault.dst_component
                << " is not an edge of the topology";
    if (!hosts_all &&
        (fault.kind == LinkFaultKind::kDrop || fault.kind == LinkFaultKind::kDuplicate)) {
      // Drop retention (and the consumer-side gap recovery that drains it)
      // lives in one process; across real workers only disconnect faults
      // model network loss.
      CHECK_EQ(t.tasks[src].worker, t.tasks[dst].worker)
          << "scripted drop/dup on " << fault.src_component << "->" << fault.dst_component
          << " crosses workers; with a real transport these faults must stay co-located";
    }
    t.link_plan[src][dst].push_back(
        ResolvedLinkFault{fault.kind, fault.at_seq, fault.delay_micros});
  }
  for (auto& per_dst : t.link_plan) {
    for (auto& [dst, faults] : per_dst) {
      std::sort(faults.begin(), faults.end(),
                [](const ResolvedLinkFault& a, const ResolvedLinkFault& b) {
                  return a.seq < b.seq;
                });
    }
  }

  // Resolve progress-driven actions (kill_worker / migrate statements).
  for (const WorkerKillFault& kill : t.fault_script.worker_kills()) {
    CHECK(kill.rank >= 0 && kill.rank < t.num_workers)
        << "fault script kill_worker rank " << kill.rank << " outside [0, " << t.num_workers
        << ")";
    t.actions.push_back(
        TopologyImpl::ResolvedAction{kill.at_seq, /*is_kill=*/true, kill.rank, -1, -1});
  }
  for (const MigrateAction& mig : t.fault_script.migrations()) {
    const int task_id = resolve_task(mig.component, mig.task_index, "migrate");
    CHECK(!t.comps[t.tasks[task_id].comp]->is_spout)
        << "fault script cannot migrate spout component " << mig.component;
    CHECK(mig.target_worker >= 0 && mig.target_worker < t.num_workers)
        << "fault script migrate target " << mig.target_worker << " outside [0, "
        << t.num_workers << ")";
    t.actions.push_back(TopologyImpl::ResolvedAction{mig.at_seq, /*is_kill=*/false, -1,
                                                     task_id, mig.target_worker});
  }
  std::stable_sort(t.actions.begin(), t.actions.end(),
                   [](const TopologyImpl::ResolvedAction& a,
                      const TopologyImpl::ResolvedAction& b) { return a.at_seq < b.at_seq; });
  if (!t.actions.empty()) {
    t.dyn_kill = std::make_unique<std::atomic<uint8_t>[]>(t.tasks.size());
    for (size_t i = 0; i < t.tasks.size(); ++i) {
      t.dyn_kill[i].store(0, std::memory_order_relaxed);
    }
  }

  // Hand the placement to the transport and open the inbound path. The
  // impl pointer outlives the transport's threads: Wait() runs the
  // transport's Finish barrier (joining them) before the impl can die.
  if (t.transport != nullptr) {
    TransportPlan plan;
    plan.num_tasks = static_cast<int>(t.tasks.size());
    plan.task_worker.reserve(t.tasks.size());
    for (const Task& task : t.tasks) plan.task_worker.push_back(task.worker);
    TopologyImpl* tp = &t;
    if (t.elastic && !hosts_all) {
      t.transport->SetControlSink(
          [tp](ControlFrame&& frame) { tp->HandleControl(std::move(frame)); });
    }
    t.transport->Start(
        plan,
        [tp](int dst_task, std::vector<Envelope>&& batch) {
          return tp->DeliverInbound(dst_task, std::move(batch));
        },
        [tp](const std::string& message) { tp->FailFromTransport(message); });
  }

  return std::unique_ptr<Topology>(new Topology(std::move(impl_)));
}

// --- Topology -----------------------------------------------------------

Topology::Topology(std::unique_ptr<TopologyImpl> impl) : impl_(std::move(impl)) {}
Topology::~Topology() {
  if (impl_ != nullptr && impl_->submitted) Wait();
}

void Topology::Submit() {
  TopologyImpl& t = *impl_;
  CHECK(!t.submitted) << "topology already submitted";
  t.submitted = true;
  t.start_us.store(NowMicros(), std::memory_order_relaxed);
  const unsigned ncores = std::max(1u, std::thread::hardware_concurrency());
  unsigned spawned = 0;
  for (Task& task : t.tasks) {
    if (task.spout != nullptr) {
      task.thread = std::thread([&t, &task] { t.RunSpoutTask(task); });
    } else if (task.bolt != nullptr && t.Hosted(task.id)) {
      // Dormant elastic bolts (placed on another rank) get no executor
      // until a migration adopts them.
      task.thread = std::thread([&t, &task] { t.RunBoltTask(task); });
    }
    // Tasks hosted on another rank get no executor here.
    if (t.pin_threads && task.thread.joinable()) {
      PinThreadToCore(task.thread, spawned++ % ncores);
    }
  }
  if (t.overload_active && t.overload.stall_timeout_micros > 0) {
    t.watchdog = std::thread([&t] { t.RunWatchdog(); });
  }
  if (!t.actions.empty()) {
    t.action_driver = std::thread([&t] { t.RunActionDriver(); });
  }
}

void Topology::Wait() {
  TopologyImpl& t = *impl_;
  for (Task& task : t.tasks) {
    if (task.thread.joinable()) task.thread.join();
  }
  if (t.action_driver.joinable()) {
    t.driver_stop.store(true, std::memory_order_release);
    t.action_driver.join();
  }
  // Elastic workers can adopt a migrating task at any point before the
  // coordinator's run ends — even when they hosted nothing at startup (a
  // packed placement leaves spare ranks idle until the controller spreads).
  // Hold the finish barrier until rank 0's run-over broadcast (kFinish) or
  // a failure, so the transport stays accepting and the senders stay open
  // for any task that lands here late.
  if (t.elastic && t.transport != nullptr && !t.transport->hosts_all_tasks() &&
      t.transport->local_rank() != 0) {
    std::unique_lock<std::mutex> lock(t.mig_mu);
    while (!t.coordinator_done && !t.failed.load(std::memory_order_acquire)) {
      t.mig_cv.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
  // Join executors adopted through migrations; new ones can be pushed while
  // we join (a remote STATE can still arrive), so drain in rounds.
  for (;;) {
    std::vector<std::thread> adopted;
    {
      std::lock_guard<std::mutex> lock(t.mig_mu);
      adopted.swap(t.elastic_threads);
    }
    if (adopted.empty()) break;
    for (std::thread& th : adopted) th.join();
  }
  if (t.ckpt_service != nullptr) {
    // Every executor is done; drain the checkpoint queue so the metric
    // shipping below sees final counter values. Stop is idempotent.
    t.ckpt_service->Stop();
  }
  t.StopWatchdog();
  if (t.transport != nullptr && !t.finish_done) {
    t.finish_done = true;
    // End-of-run barrier: workers ship their hosted tasks' counters (and
    // any local failure) to rank 0; rank 0 folds the blobs into its metric
    // slots, so AllTasks()/Aggregate on the coordinator see cluster-wide
    // numbers. Joins every transport thread — after this the impl can die.
    Transport::LocalSummary local;
    local.failed = t.failed.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(t.fail_mu);
      local.failure_message = t.failure_message;
    }
    if (!t.transport->hosts_all_tasks()) {
      // Surface connection-health counters through the metric pipeline:
      // they are per-process, so park them on the first task this rank
      // ever hosted (MergeTaskCounters adds, so ranks' counts sum).
      const Transport::NetStats net = t.transport->Stats();
      if (net.connect_retries != 0 || net.reconnects != 0) {
        for (const Task& task : t.tasks) {
          if (t.ever_hosted[static_cast<size_t>(task.id)] == 0) continue;
          task.metrics->net_connect_retries.Add(net.connect_retries);
          task.metrics->net_reconnects.Add(net.reconnects);
          break;
        }
      }
    }
    if (t.transport->local_rank() != 0 && !t.transport->hosts_all_tasks()) {
      for (const Task& task : t.tasks) {
        // ever_hosted, not hosted: a task migrated away mid-run still
        // executed here for a while, and those partial counters must reach
        // the coordinator (the incarnations' counters sum in the merge).
        if (t.ever_hosted[static_cast<size_t>(task.id)] == 0) continue;
        std::string blob;
        SerializeTaskCounters(*task.metrics, &blob);
        local.task_metrics.emplace_back(task.id, std::move(blob));
      }
    }
    TopologyImpl* tp = &t;
    const Transport::FinishReport report =
        t.transport->Finish(local, [tp](int task_id, const std::string& blob) {
          if (task_id < 0 || task_id >= static_cast<int>(tp->tasks.size())) return;
          if (!MergeTaskCounters(blob, tp->tasks[task_id].metrics.get())) {
            LOG(ERROR) << "discarding malformed metrics blob for task " << task_id;
          }
        });
    if (report.remote_failed) t.MarkFailed(report.remote_failure);
    // A STATE frame racing the barrier can adopt an executor after the
    // drain above; join any stragglers so no thread outlives the impl.
    std::vector<std::thread> stragglers;
    {
      std::lock_guard<std::mutex> lock(t.mig_mu);
      stragglers.swap(t.elastic_threads);
    }
    for (std::thread& th : stragglers) th.join();
  }
}

void Topology::Run() {
  Submit();
  Wait();
}

double Topology::ElapsedSeconds() const {
  const int64_t start = impl_->start_us.load(std::memory_order_relaxed);
  if (start == 0) return 0.0;
  int64_t end = impl_->end_us.load(std::memory_order_relaxed);
  if (end == 0) end = NowMicros();
  return static_cast<double>(end - start) / 1e6;
}

std::vector<TaskStats> Topology::AllTasks() const {
  std::vector<TaskStats> out;
  out.reserve(impl_->tasks.size());
  for (const Task& task : impl_->tasks) {
    out.push_back(TaskStats{impl_->comps[task.comp]->name, task.local_index, task.id,
                            task.worker, task.metrics.get()});
  }
  return out;
}

std::vector<TaskStats> Topology::TasksOf(const std::string& component) const {
  std::vector<TaskStats> out;
  for (TaskStats& s : AllTasks()) {
    if (s.component == component) out.push_back(std::move(s));
  }
  return out;
}

int Topology::num_workers() const { return impl_->num_workers; }

Status Topology::MigrateTask(const std::string& component, int task_index, int target_worker) {
  const auto it = impl_->comp_index.find(component);
  if (it == impl_->comp_index.end()) {
    return Status::NotFound("unknown component '" + component + "'");
  }
  const ComponentSpec& comp = *impl_->comps[static_cast<size_t>(it->second)];
  if (task_index < 0 || task_index >= comp.parallelism) {
    return Status::OutOfRange("task index " + std::to_string(task_index) +
                              " out of range for " + component + " (parallelism " +
                              std::to_string(comp.parallelism) + ")");
  }
  return impl_->MigrateTaskId(comp.first_task + task_index, target_worker);
}

int Topology::TaskWorker(const std::string& component, int task_index) const {
  const auto it = impl_->comp_index.find(component);
  CHECK(it != impl_->comp_index.end()) << "unknown component " << component;
  const ComponentSpec& comp = *impl_->comps[static_cast<size_t>(it->second)];
  CHECK(task_index >= 0 && task_index < comp.parallelism)
      << "task index " << task_index << " out of range for " << component;
  return impl_->WorkerOf(comp.first_task + task_index);
}

bool Topology::ok() const { return !impl_->failed.load(std::memory_order_acquire); }

std::string Topology::failure_message() const {
  std::lock_guard<std::mutex> lock(impl_->fail_mu);
  return impl_->failure_message;
}

}  // namespace dssj::stream
