#ifndef DSSJ_STREAM_METRICS_H_
#define DSSJ_STREAM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace dssj::stream {

/// Per-task runtime metrics, updated by the executor and the output
/// collector. All fields are thread-safe to read while the topology runs.
struct TaskMetrics {
  /// Data tuples executed (bolts) or emitted by NextTuple (spouts count 0).
  Counter executed;
  /// Tuples emitted by this task (all edges, including local).
  Counter emitted;
  /// Messages / bytes sent to a task on a *different* simulated worker.
  Counter remote_messages;
  Counter remote_bytes;
  /// Messages / bytes sent anywhere (local included).
  Counter total_messages;
  Counter total_bytes;
  /// Peak inbound-queue depth observed (bolts; backpressure indicator —
  /// a value pinned at the queue capacity means the task was saturated).
  MaxGauge queue_highwater;
  /// Wall nanoseconds per Execute call (profiling; includes preemption).
  Histogram execute_nanos;
  /// Total CPU nanoseconds this task consumed: the executor thread's CPU
  /// time (blocking on the queue burns none) plus any simulated
  /// serialization cost (see TopologyBuilder::SetRemoteByteCostNanos).
  /// Finalized when the task finishes — read after Topology::Wait().
  Counter busy_nanos;
  /// Wall nanoseconds the executor spent waiting on an empty inbound queue
  /// (bolts only; spouts pace themselves and report 0). High idle with low
  /// busy means the stage is starved by its upstream.
  Counter idle_nanos;
  /// Wall nanoseconds the output collector spent pushing into downstream
  /// queues (includes backpressure blocking when a consumer is full). High
  /// blocked means this stage is throttled by its downstream.
  Counter blocked_nanos;

  // Fault tolerance (supervised executors; all zero in unsupervised runs).
  /// Times this task's component object was destroyed and re-created.
  Counter restarts;
  /// Tuples re-executed (bolts) or NextTuple calls re-issued (spouts)
  /// during recovery; their emissions are suppressed per-link.
  Counter replayed_tuples;
  /// Checkpoints taken, and their cumulative serialized size / wall time.
  Counter checkpoints;
  Counter checkpoint_bytes;
  Counter checkpoint_nanos;
  /// Injected-link-fault recovery: envelopes fetched from retention after a
  /// scripted drop, and duplicate deliveries discarded by sequence check.
  Counter link_drops_recovered;
  Counter link_dups_discarded;

  // Tiered state store (zero unless TopologyBuilder::SetStore). The
  // `checkpoints` triple above keeps counting every checkpoint; these
  // split the async path by kind so overhead attribution (small frequent
  // deltas vs. rare full bases) survives aggregation.
  Counter delta_checkpoints;
  Counter base_checkpoints;
  Counter delta_checkpoint_bytes;
  Counter base_checkpoint_bytes;
  /// Bytes moved to the on-disk spill tier, and cold-record read-backs
  /// triggered by probes that survived the in-memory stub filters.
  Counter spilled_bytes;
  Counter spill_reads;

  // Overload control (all zero unless TopologyBuilder::SetOverload).
  /// Probe sides shed by admission control; stores are always processed,
  /// so each shed loses at most the pairs the probe would have found.
  Counter shed_probes;
  /// Σ stored-window size at each shed — an upper bound on pairs lost.
  Counter shed_pairs_upper_bound;
  /// Application-defined result counter (e.g. pairs found by a joiner
  /// task). Components publish into it at Finish so multi-process runs can
  /// aggregate results on the coordinator without sharing memory.
  Counter app_results;

  // Elastic scaling (zero unless TopologyBuilder::SetElastic).
  /// Completed live migrations of this task, the cumulative size of the
  /// shipped state blobs, and the wall time spent frozen (pause → resume).
  Counter migrations;
  Counter migration_bytes;
  Counter migration_nanos;

  // Network transport health (filled from Transport::Stats at end of run,
  // attributed to the first locally hosted task of each rank).
  /// Connect attempts beyond the first per dial (the backoff retry loop).
  Counter net_connect_retries;
  /// Connections re-established after an established link dropped.
  Counter net_reconnects;
  /// Queue-health snapshots (see QueueHealth), refreshed by the executor
  /// once per batch and by the watchdog tick. EWMA is scaled ×1000 to fit
  /// an integer gauge.
  Gauge queue_depth;
  Gauge queue_depth_ewma_x1000;
  Gauge queue_time_at_capacity_micros;
  Gauge queue_oldest_age_micros;
};

/// Identity + metrics of one task, exposed by Topology after (or during) a
/// run.
struct TaskStats {
  std::string component;
  int task_index = 0;  ///< index within the component
  int task_id = 0;     ///< global id
  int worker = 0;      ///< simulated worker hosting this task
  const TaskMetrics* metrics = nullptr;
};

/// Aggregate of one component's tasks (helper for benches).
struct ComponentAggregate {
  uint64_t executed = 0;
  uint64_t emitted = 0;
  uint64_t remote_messages = 0;
  uint64_t remote_bytes = 0;
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t busy_nanos_max = 0;  ///< bottleneck task busy time
  uint64_t busy_nanos_sum = 0;
  uint64_t idle_nanos_sum = 0;     ///< executor wall time starved upstream
  uint64_t blocked_nanos_sum = 0;  ///< collector wall time pushing downstream

  // Fault tolerance (zero in unsupervised runs).
  uint64_t restarts = 0;
  uint64_t replayed_tuples = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t checkpoint_nanos = 0;
  uint64_t link_drops_recovered = 0;
  uint64_t link_dups_discarded = 0;

  // Tiered state store (zero unless a store is configured).
  uint64_t delta_checkpoints = 0;
  uint64_t base_checkpoints = 0;
  uint64_t delta_checkpoint_bytes = 0;
  uint64_t base_checkpoint_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_reads = 0;

  // Overload control (zero when no shed policy / watchdog is active).
  uint64_t shed_probes = 0;
  uint64_t shed_pairs_upper_bound = 0;
  uint64_t app_results = 0;
  int64_t queue_time_at_capacity_micros_max = 0;
  int64_t queue_oldest_age_micros_max = 0;

  // Elastic scaling (zero in static runs).
  uint64_t migrations = 0;
  uint64_t migration_bytes = 0;
  uint64_t migration_nanos = 0;
  uint64_t net_connect_retries = 0;
  uint64_t net_reconnects = 0;
};

/// Sums `tasks` (typically Topology::TasksOf(component)).
ComponentAggregate Aggregate(const std::vector<TaskStats>& tasks);

/// Serializes a task's counters into a portable blob (fixed field order
/// with a leading count, so old readers accept new writers and vice versa).
/// Used by the network transport to ship worker-side metrics to the
/// coordinator at end of run.
void SerializeTaskCounters(const TaskMetrics& m, std::string* out);

/// Merges a SerializeTaskCounters blob into `m`: counters add, the queue
/// high-watermark max-merges. Returns false on a malformed blob (left
/// partially merged only if the blob was truncated mid-field — callers
/// treat false as a transport-level failure).
bool MergeTaskCounters(const std::string& blob, TaskMetrics* m);

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_METRICS_H_
