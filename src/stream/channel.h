#ifndef DSSJ_STREAM_CHANNEL_H_
#define DSSJ_STREAM_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stream/migration.h"
#include "stream/queue.h"
#include "stream/value.h"

namespace dssj::stream {

/// A unit travelling over one producer-task → consumer-task link: either a
/// data tuple or an end-of-stream marker from one upstream task. Within a
/// process envelopes move through a Queue<Envelope> (the mutex BoundedQueue
/// or a lock-free ring, per QueueImpl); across processes
/// they are framed by the wire format (src/net/wire.h) with every field
/// except extra_busy_ns preserved end-to-end.
///
/// Envelopes parsed from the network may carry *borrowed* payloads: record
/// token arrays that alias the receive arena holding the raw frame bytes
/// (see src/net/frame_arena.h). The alias is safe to pass along the
/// topology — the tuple's shared_ptr pins the arena — but any consumer that
/// stores tokens past the tuple's lifetime (index inserts, checkpoints,
/// shed-log captures) must detach first via DetachRecord().
struct Envelope {
  Tuple tuple;
  int32_t source_task = -1;
  bool eos = false;
  /// Simulated deserialization cost charged to the consumer's busy time.
  /// Process-local accounting only; never crosses the wire (a real
  /// transport pays real CPU instead).
  int64_t extra_busy_ns = 0;
  /// Canonical per-link sequence number (1-based over the data envelopes of
  /// one producer-task → consumer-task link), assigned by the producer's
  /// collector. 0 when the topology runs unsupervised (nothing tracks it).
  /// On an EOS marker this instead carries the link's final data count, so
  /// the consumer can detect (and recover) trailing dropped envelopes.
  uint64_t link_seq = 0;
};

/// Producer-side endpoint of one consumer task. The topology routes every
/// delivery through a Channel so the same collector code drives an
/// in-process queue, a serializing loopback, or a TCP connection. Semantics
/// mirror Queue<T>: Push/PushBatch block for backpressure and return
/// the depth after the push (the consumer queue for in-process channels,
/// the bounded send buffer for remote ones), or 0 when the endpoint is
/// closed and the items were rejected. Channels are not thread-safe — each
/// producer task uses its own view (remote channels serialize on their
/// shared send queue internally).
class Channel {
 public:
  virtual ~Channel() = default;

  virtual size_t Push(Envelope env) = 0;

  /// Pushes every element in order, draining the vector; a closed endpoint
  /// leaves the unaccepted remainder (callers clear it — the consumer is
  /// gone).
  virtual size_t PushBatch(std::vector<Envelope>* envs) = 0;

  /// True when Push lands directly on the consumer's inbound queue in this
  /// process (the returned depth is then that queue's depth).
  virtual bool inproc() const = 0;
};

/// Channel over the consumer's in-process inbound queue — the single-process
/// fast path, byte-for-byte the pre-transport delivery.
class InprocChannel final : public Channel {
 public:
  explicit InprocChannel(Queue<Envelope>* queue) : queue_(queue) {}

  size_t Push(Envelope env) override { return queue_->Push(std::move(env)); }
  size_t PushBatch(std::vector<Envelope>* envs) override { return queue_->PushBatch(envs); }
  bool inproc() const override { return true; }

 private:
  Queue<Envelope>* queue_;
};

/// Task → worker(rank) placement handed to a transport at start.
struct TransportPlan {
  int num_tasks = 0;
  /// Worker (= rank for a real transport) hosting each task, by task id.
  std::vector<int> task_worker;
};

/// Abstract inter-worker transport. Implementations live in src/net/
/// (TcpTransport, LoopbackTransport); the stream layer only needs this
/// interface to rewire cross-worker links through remote channels.
///
/// Lifecycle: Start() once (from Topology Build), OpenChannel() per
/// non-local consumer task, Finish() once after the local tasks exited
/// (from Topology Wait). All methods are called from the topology; the
/// transport may deliver inbound batches and failures from its own threads.
class Transport {
 public:
  /// Delivers inbound envelopes to a locally hosted task, returning the
  /// consumer queue depth after the push (0 = rejected/closed). Thread-safe;
  /// blocks for backpressure.
  using InboundSink = std::function<size_t(int dst_task, std::vector<Envelope>&& batch)>;

  /// Reports a fatal transport error (malformed frame, connect timeout,
  /// peer failure). The topology marks the run failed and unblocks.
  using FailureSink = std::function<void(const std::string& message)>;

  /// This process's view handed to Finish: local failure state plus the
  /// serialized per-task metric blobs to ship to the coordinator
  /// (SerializeTaskCounters; empty on the coordinator itself).
  struct LocalSummary {
    bool failed = false;
    std::string failure_message;
    std::vector<std::pair<int, std::string>> task_metrics;  ///< (task id, blob)
  };

  /// Invoked on the coordinator for every metrics blob received from a
  /// worker (MergeTaskCounters into the matching task).
  using MetricsMerge = std::function<void(int task_id, const std::string& blob)>;

  struct FinishReport {
    bool remote_failed = false;
    std::string remote_failure;
  };

  virtual ~Transport() = default;

  virtual int local_rank() const = 0;
  virtual int num_ranks() const = 0;

  /// True when every task runs in this process regardless of its worker id
  /// (LoopbackTransport): cross-worker links still serialize through the
  /// wire codec, but deliver locally.
  virtual bool hosts_all_tasks() const { return false; }

  virtual void Start(const TransportPlan& plan, InboundSink sink, FailureSink on_failure) = 0;

  /// Producer endpoint for a task hosted on another rank (or, under
  /// hosts_all_tasks, for a cross-worker edge).
  virtual std::unique_ptr<Channel> OpenChannel(int dst_task) = 0;

  /// Scripted network fault: sever the connection carrying dst_task's
  /// frames after everything already submitted to it, then reconnect after
  /// `reconnect_delay_micros`. Frames submitted after this call ride the
  /// new connection; nothing is lost (clean close drains the socket).
  virtual void InjectDisconnect(int dst_task, int64_t reconnect_delay_micros) = 0;

  // --- Elastic scaling (live migration) ---------------------------------
  //
  // Default no-ops: a transport without migration support simply never
  // routes control frames, and the topology falls back to its in-process
  // protocol when hosts_all_tasks() is true.

  /// Re-points `dst_task` at `new_worker` for every OpenChannel issued after
  /// this call. The topology only calls it while all producers into
  /// dst_task are quiesced, so no frame is in flight across the flip.
  virtual void UpdateTaskWorker(int /*dst_task*/, int /*new_worker*/) {}

  /// Sink for inbound migration control frames (stream/migration.h),
  /// invoked from transport threads. Install before Start.
  using ControlSink = std::function<void(ControlFrame&&)>;
  virtual void SetControlSink(ControlSink /*sink*/) {}

  /// Sends a migration control frame to `rank` (delivered to that rank's
  /// ControlSink; rank == local_rank() loops back in-process). Frames to
  /// one rank are FIFO with the data frames already submitted toward it.
  /// Returns false when the transport cannot route control frames.
  virtual bool SendControl(int /*rank*/, const ControlFrame& /*frame*/) { return false; }

  /// Connection-health counters (satellite view for transport metrics).
  struct NetStats {
    uint64_t connect_attempts = 0;  ///< dial attempts, first tries included
    uint64_t connect_retries = 0;   ///< attempts beyond the first per dial
    uint64_t reconnects = 0;        ///< links re-established after a drop
  };
  virtual NetStats Stats() const { return {}; }

  /// End-of-run barrier: workers ship `local` (metrics + failure) to the
  /// coordinator; the coordinator collects every worker's report, invoking
  /// `merge` per remote metrics blob, and returns whether any rank failed.
  /// Tears down connections; the transport is unusable afterwards.
  virtual FinishReport Finish(const LocalSummary& local, const MetricsMerge& merge) = 0;
};

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_CHANNEL_H_
