#ifndef DSSJ_STREAM_VALUE_H_
#define DSSJ_STREAM_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace dssj::stream {

/// One field of a tuple. Opaque application payloads (e.g., records) travel
/// as shared_ptr<const void>; within one process that is a pointer copy, and
/// the communication model charges the payload's declared byte size when the
/// edge crosses simulated workers.
using Value = std::variant<int64_t, double, std::string, std::shared_ptr<const void>>;

/// The unit of data flowing through a topology. A tuple is an ordered list
/// of fields plus a serialized-size estimate used by the network accounting.
/// Copyable (copies share opaque payloads).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_fields() const { return values_.size(); }
  const Value& field(size_t i) const {
    DCHECK_LT(i, values_.size());
    return values_[i];
  }

  int64_t Int(size_t i) const { return std::get<int64_t>(field(i)); }
  double Double(size_t i) const { return std::get<double>(field(i)); }
  const std::string& Str(size_t i) const { return std::get<std::string>(field(i)); }

  /// Typed view of an opaque payload field. The caller asserts the type; a
  /// mismatched cast is undefined behaviour exactly like static_pointer_cast.
  template <typename T>
  std::shared_ptr<const T> Ptr(size_t i) const {
    return std::static_pointer_cast<const T>(std::get<std::shared_ptr<const void>>(field(i)));
  }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Declares the wire size of opaque payload fields (bytes). Scalar and
  /// string fields are sized automatically; call this once per tuple whose
  /// payloads should count more than a pointer.
  void set_payload_bytes(size_t bytes) { payload_bytes_ = bytes; }

  /// Estimated bytes on the (simulated) wire: 8 per scalar, 4+len per
  /// string, declared payload bytes for opaque fields, plus a fixed header.
  size_t SerializedBytes() const {
    size_t bytes = 16;  // frame header
    for (const Value& v : values_) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        bytes += 4 + s->size();
      } else {
        bytes += 8;
      }
    }
    return bytes + payload_bytes_;
  }

 private:
  std::vector<Value> values_;
  size_t payload_bytes_ = 0;
};

/// Builds a tuple from values with terse call sites:
/// MakeTuple(int64_t{1}, 2.0, std::string("x"), payload_ptr).
template <typename... Args>
Tuple MakeTuple(Args&&... args) {
  std::vector<Value> values;
  values.reserve(sizeof...(Args));
  (values.push_back(Value(std::forward<Args>(args))), ...);
  return Tuple(std::move(values));
}

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_VALUE_H_
