#ifndef DSSJ_STREAM_VALUE_H_
#define DSSJ_STREAM_VALUE_H_

#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace dssj::stream {

/// One field of a tuple. Opaque application payloads (e.g., records) travel
/// as shared_ptr<const void>; within one process that is a pointer copy, and
/// the communication model charges the payload's declared byte size when the
/// edge crosses simulated workers.
using Value = std::variant<int64_t, double, std::string, std::shared_ptr<const void>>;

namespace detail {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_MEMORY__)
#define DSSJ_VALUE_FREELIST 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define DSSJ_VALUE_FREELIST 0
#endif
#endif
#ifndef DSSJ_VALUE_FREELIST
#define DSSJ_VALUE_FREELIST 1
#endif

/// Allocator for a tuple's field vector. Almost every tuple carries a
/// handful of fields, and the frame receive path constructs one short-lived
/// field vector per decoded tuple, so requests of up to kSmall elements are
/// served from a thread-local freelist of fixed kSmall-element blocks
/// instead of malloc. Larger vectors fall through to operator new. Stateless
/// (all instances compare equal), so vector moves still steal the buffer.
/// Disabled under ASan/MSan: recycling would hide use-after-free of freed
/// tuples from the sanitizer.
template <typename T>
class SmallVecAllocator {
 public:
  using value_type = T;
  static constexpr size_t kSmall = 4;

  SmallVecAllocator() noexcept = default;
  template <typename U>
  SmallVecAllocator(const SmallVecAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
#if DSSJ_VALUE_FREELIST
    if (n <= kSmall) {
      auto& fl = Freelist();
      if (!fl.blocks.empty()) {
        T* p = static_cast<T*>(fl.blocks.back());
        fl.blocks.pop_back();
        return p;
      }
      return static_cast<T*>(::operator new(kSmall * sizeof(T)));
    }
#endif
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) noexcept {
#if DSSJ_VALUE_FREELIST
    // Any allocation with n <= kSmall handed out a full kSmall-element
    // block, so every block on the freelist has the same size.
    if (n <= kSmall) {
      auto& fl = Freelist();
      if (fl.blocks.size() < kMaxFree) {
        fl.blocks.push_back(p);
        return;
      }
    }
#else
    (void)n;
#endif
    ::operator delete(p);
  }

  friend bool operator==(const SmallVecAllocator&, const SmallVecAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const SmallVecAllocator&, const SmallVecAllocator&) noexcept {
    return false;
  }

 private:
  /// Caps per-thread retention (kMaxFree * kSmall * sizeof(Value) bytes);
  /// producer/consumer threads free into their own lists, so an unbounded
  /// list on a consumer-only thread would grow forever.
  static constexpr size_t kMaxFree = 4096;

  struct FreelistHolder {
    std::vector<void*> blocks;
    ~FreelistHolder() {
      for (void* p : blocks) ::operator delete(p);
    }
  };

  static FreelistHolder& Freelist() {
    thread_local FreelistHolder fl;
    return fl;
  }
};

}  // namespace detail

/// The unit of data flowing through a topology. A tuple is an ordered list
/// of fields plus a serialized-size estimate used by the network accounting.
/// Copyable (copies share opaque payloads).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) {
    values_.reserve(values.size());
    for (Value& v : values) values_.push_back(std::move(v));
  }

  size_t num_fields() const { return values_.size(); }
  const Value& field(size_t i) const {
    DCHECK_LT(i, values_.size());
    return values_[i];
  }

  int64_t Int(size_t i) const { return std::get<int64_t>(field(i)); }
  double Double(size_t i) const { return std::get<double>(field(i)); }
  const std::string& Str(size_t i) const { return std::get<std::string>(field(i)); }

  /// Typed view of an opaque payload field. The caller asserts the type; a
  /// mismatched cast is undefined behaviour exactly like static_pointer_cast.
  template <typename T>
  std::shared_ptr<const T> Ptr(size_t i) const {
    return std::static_pointer_cast<const T>(std::get<std::shared_ptr<const void>>(field(i)));
  }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Pre-sizes the field vector (frame decoding knows the count up front).
  void Reserve(size_t n) { values_.reserve(n); }

  /// Declares the wire size of opaque payload fields (bytes). Scalar and
  /// string fields are sized automatically; call this once per tuple whose
  /// payloads should count more than a pointer.
  void set_payload_bytes(size_t bytes) { payload_bytes_ = bytes; }
  size_t payload_bytes() const { return payload_bytes_; }

  /// Estimated bytes on the (simulated) wire: 8 per scalar, 4+len per
  /// string, declared payload bytes for opaque fields, plus a fixed header.
  size_t SerializedBytes() const {
    size_t bytes = 16;  // frame header
    for (const Value& v : values_) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        bytes += 4 + s->size();
      } else {
        bytes += 8;
      }
    }
    return bytes + payload_bytes_;
  }

 private:
  std::vector<Value, detail::SmallVecAllocator<Value>> values_;
  size_t payload_bytes_ = 0;
};

/// A batch of tuples travelling through the executor hot path as one unit.
/// Small-vector: up to kInlineCapacity tuples live inline (no heap
/// allocation for the common dispatcher fan-out of a handful of targets);
/// larger batches spill to a single heap block. Elements are always
/// contiguous, so iteration is pointer-based. Move-only — copying a batch
/// on the hot path is almost certainly a bug.
class TupleBatch {
 public:
  static constexpr size_t kInlineCapacity = 8;

  TupleBatch() noexcept : data_(InlineData()) {}

  TupleBatch(TupleBatch&& other) noexcept : data_(InlineData()) { StealFrom(other); }

  TupleBatch& operator=(TupleBatch&& other) noexcept {
    if (this != &other) {
      Reset();
      StealFrom(other);
    }
    return *this;
  }

  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  ~TupleBatch() { Reset(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  Tuple& operator[](size_t i) {
    DCHECK_LT(i, size_);
    return data_[i];
  }
  const Tuple& operator[](size_t i) const {
    DCHECK_LT(i, size_);
    return data_[i];
  }

  Tuple* begin() { return data_; }
  Tuple* end() { return data_ + size_; }
  const Tuple* begin() const { return data_; }
  const Tuple* end() const { return data_ + size_; }

  void push_back(Tuple t) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    new (data_ + size_) Tuple(std::move(t));
    ++size_;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  /// Destroys the elements but keeps the current storage (inline or heap),
  /// so a reused batch stops allocating after the first fill.
  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~Tuple();
    size_ = 0;
  }

 private:
  Tuple* InlineData() noexcept { return reinterpret_cast<Tuple*>(inline_); }
  bool IsInline() const noexcept { return data_ == reinterpret_cast<const Tuple*>(inline_); }

  void Grow(size_t new_capacity) {
    if (new_capacity < kInlineCapacity * 2) new_capacity = kInlineCapacity * 2;
    Tuple* fresh = static_cast<Tuple*>(::operator new(new_capacity * sizeof(Tuple)));
    for (size_t i = 0; i < size_; ++i) {
      new (fresh + i) Tuple(std::move(data_[i]));
      data_[i].~Tuple();
    }
    if (!IsInline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = new_capacity;
  }

  /// Leaves `other` empty with inline storage.
  void StealFrom(TupleBatch& other) noexcept {
    if (other.IsInline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        new (data_ + i) Tuple(std::move(other.data_[i]));
        other.data_[i].~Tuple();
      }
      size_ = other.size_;
      capacity_ = kInlineCapacity;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.capacity_ = kInlineCapacity;
    }
    other.size_ = 0;
  }

  /// Destroys elements and releases any heap block (back to inline state).
  void Reset() {
    clear();
    if (!IsInline()) {
      ::operator delete(data_);
      data_ = InlineData();
      capacity_ = kInlineCapacity;
    }
  }

  Tuple* data_;
  size_t size_ = 0;
  size_t capacity_ = kInlineCapacity;
  alignas(Tuple) unsigned char inline_[sizeof(Tuple) * kInlineCapacity];
};

/// Builds a tuple from values with terse call sites:
/// MakeTuple(int64_t{1}, 2.0, std::string("x"), payload_ptr).
template <typename... Args>
Tuple MakeTuple(Args&&... args) {
  Tuple t;
  t.Reserve(sizeof...(Args));
  (t.Append(Value(std::forward<Args>(args))), ...);
  return t;
}

}  // namespace dssj::stream

#endif  // DSSJ_STREAM_VALUE_H_
