#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace dssj {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  DCHECK_GT(n, 0u);
  // Lemire's unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t floor = (-n) % n;
    while (l < floor) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DCHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double lambda) {
  DCHECK_GT(lambda, 0.0);
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double skew) : n_(n), skew_(skew) {
  CHECK_GE(n, 1u);
  CHECK_GE(skew, 0.0);
  // Rejection-inversion per W. Hormann & G. Derflinger, adapted to ranks
  // 1..n then shifted to 0-based. For skew == 0 we sample uniformly.
  if (skew_ > 0.0) {
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -skew_));
  } else {
    h_x1_ = h_n_ = s_ = 0.0;
  }
}

double ZipfDistribution::H(double x) const {
  // Integral of 1/x^skew: log for skew == 1, power otherwise.
  if (skew_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - skew_) - 1.0) / (1.0 - skew_);
}

double ZipfDistribution::HInverse(double x) const {
  if (skew_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - skew_), 1.0 / (1.0 - skew_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (skew_ == 0.0 || n_ == 1) return rng.Uniform(n_);
  while (true) {
    const double u = h_n_ + rng.UniformDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n_)) kd = static_cast<double>(n_);
    const uint64_t k = static_cast<uint64_t>(kd);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -skew_)) {
      return k - 1;  // shift to 0-based rank
    }
  }
}

}  // namespace dssj
