#ifndef DSSJ_COMMON_LOGGING_H_
#define DSSJ_COMMON_LOGGING_H_

#include <ostream>
#include <sstream>
#include <string>

namespace dssj {

/// Log severities in increasing order. kFatal aborts the process after the
/// message is flushed.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is actually printed (default kInfo).
/// Thread-safe. Messages below the level are still evaluated but discarded;
/// use DLOG/DCHECK for zero-cost-when-off logging.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

/// Accumulates one log line and emits it (with timestamp, severity, file and
/// line) on destruction. Not for direct use; see the LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Helper that swallows the ostream produced by a disabled DLOG so the
/// expression still type-checks.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed expression into void so CHECK can be used inside the
/// ternary operator (classic glog "voidify" idiom; avoids dangling-else).
struct Voidify {
  void operator&(std::ostream&) {}
};

// Severity aliases so call sites read LOG(INFO) in the glog tradition.
inline constexpr LogSeverity kSeverity_DEBUG = LogSeverity::kDebug;
inline constexpr LogSeverity kSeverity_INFO = LogSeverity::kInfo;
inline constexpr LogSeverity kSeverity_WARNING = LogSeverity::kWarning;
inline constexpr LogSeverity kSeverity_ERROR = LogSeverity::kError;
inline constexpr LogSeverity kSeverity_FATAL = LogSeverity::kFatal;

}  // namespace internal_logging
}  // namespace dssj

#define DSSJ_LOG_INTERNAL(severity) \
  ::dssj::internal_logging::LogMessage(severity, __FILE__, __LINE__).stream()

/// Usage: LOG(INFO) << "joined " << n << " pairs";
#define LOG(severity) DSSJ_LOG_INTERNAL(::dssj::internal_logging::kSeverity_##severity)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard library invariants, not user input (user input errors are
/// reported via Status).
#define CHECK(cond)                                    \
  (cond) ? (void)0                                     \
         : ::dssj::internal_logging::Voidify() &       \
               DSSJ_LOG_INTERNAL(::dssj::LogSeverity::kFatal) << "CHECK failed: " #cond " "

#define DSSJ_CHECK_OP(name, op, a, b)                                                   \
  ((a)op(b)) ? (void)0                                                                  \
             : ::dssj::internal_logging::Voidify() &                                    \
                   DSSJ_LOG_INTERNAL(::dssj::LogSeverity::kFatal)                       \
                       << "CHECK_" #name " failed: " #a " " #op " " #b " (" << (a)      \
                       << " vs " << (b) << ") "

#define CHECK_EQ(a, b) DSSJ_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) DSSJ_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) DSSJ_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) DSSJ_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) DSSJ_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) DSSJ_CHECK_OP(GE, >=, a, b)

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#define DLOG(severity) ::dssj::internal_logging::NullStream()
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DLOG(severity) LOG(severity)
#endif

#endif  // DSSJ_COMMON_LOGGING_H_
