#ifndef DSSJ_COMMON_SERIALIZE_H_
#define DSSJ_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace dssj {

/// Minimal little-endian binary writer for checkpoint blobs. Appends to a
/// caller-owned string so composite snapshots (bolt header + joiner state)
/// concatenate without copies. Not an interchange format: blobs are only
/// ever read back by the same binary that wrote them (in-process recovery),
/// so there is no versioning or endianness negotiation.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void WriteU8(uint8_t v) { Append(&v, sizeof(v)); }
  void WriteU16(uint16_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }

  /// String with a u32 length prefix (wire frames; WriteBytes uses u64).
  void WriteBytesU32(const std::string& blob) {
    WriteU32(static_cast<uint32_t>(blob.size()));
    out_->append(blob);
  }

  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) Append(v.data(), v.size() * sizeof(uint32_t));
  }

  void WriteBytes(const std::string& blob) {
    WriteU64(blob.size());
    out_->append(blob);
  }

 private:
  void Append(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// Bounds-checked reader over a blob produced by BinaryWriter. A malformed
/// or truncated blob is a programming error (checkpoints never leave the
/// process), so out-of-bounds reads abort via CHECK.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& blob)
      : p_(blob.data()), end_(blob.data() + blob.size()) {}

  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }

  void ReadU32Vec(std::vector<uint32_t>* out) {
    const uint64_t n = ReadU64();
    out->resize(n);
    if (n > 0) Copy(out->data(), n * sizeof(uint32_t));
  }

  void ReadBytes(std::string* out) {
    const uint64_t n = ReadU64();
    CHECK_LE(n, static_cast<uint64_t>(end_ - p_)) << "truncated checkpoint blob";
    out->assign(p_, n);
    p_ += n;
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  T ReadPod() {
    T v;
    Copy(&v, sizeof(v));
    return v;
  }

  void Copy(void* dst, size_t n) {
    CHECK_LE(n, static_cast<size_t>(end_ - p_)) << "truncated checkpoint blob";
    std::memcpy(dst, p_, n);
    p_ += n;
  }

  const char* p_;
  const char* end_;
};

/// Bounds-checked reader for *untrusted* bytes (network frames): unlike
/// BinaryReader, a truncated or malformed input is an expected runtime
/// condition, so every read reports success instead of aborting. After any
/// read returns false the reader is poisoned (all further reads fail).
class SafeBinaryReader {
 public:
  SafeBinaryReader(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ReadU8(uint8_t* out) { return ReadPod(out); }
  bool ReadU16(uint16_t* out) { return ReadPod(out); }
  bool ReadU32(uint32_t* out) { return ReadPod(out); }
  bool ReadU64(uint64_t* out) { return ReadPod(out); }
  bool ReadI64(int64_t* out) { return ReadPod(out); }

  /// Reads a u32 length prefix and that many raw bytes (BinaryWriter::
  /// WriteBytesU32 counterpart).
  bool ReadBytesU32(std::string* out) {
    uint32_t n = 0;
    if (!ReadU32(&n) || n > remaining()) return Fail();
    out->assign(p_, n);
    p_ += n;
    return true;
  }

  /// View variant of ReadBytesU32: no copy, pointers valid while the
  /// underlying buffer lives.
  bool ReadSpanU32(const char** data, size_t* size) {
    uint32_t n = 0;
    if (!ReadU32(&n) || n > remaining()) return Fail();
    *data = p_;
    *size = n;
    p_ += n;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  bool ReadPod(T* out) {
    if (sizeof(T) > remaining()) return Fail();
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  bool Fail() {
    p_ = end_ = nullptr;
    return false;
  }

  const char* p_;
  const char* end_;
};

}  // namespace dssj

#endif  // DSSJ_COMMON_SERIALIZE_H_
