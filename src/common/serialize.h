#ifndef DSSJ_COMMON_SERIALIZE_H_
#define DSSJ_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace dssj {

/// Minimal little-endian binary writer for checkpoint blobs. Appends to a
/// caller-owned string so composite snapshots (bolt header + joiner state)
/// concatenate without copies. Not an interchange format: blobs are only
/// ever read back by the same binary that wrote them (in-process recovery),
/// so there is no versioning or endianness negotiation.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void WriteU8(uint8_t v) { Append(&v, sizeof(v)); }
  void WriteU16(uint16_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }

  /// String with a u32 length prefix (wire frames; WriteBytes uses u64).
  void WriteBytesU32(const std::string& blob) {
    WriteU32(static_cast<uint32_t>(blob.size()));
    out_->append(blob);
  }

  /// LEB128 varint: 7 value bits per byte, low group first, high bit set on
  /// every byte except the last. Always emits the minimal (canonical)
  /// encoding; SafeBinaryReader::ReadVarint rejects anything else.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }

  /// Zigzag-mapped varint for signed values (small magnitudes of either
  /// sign stay short).
  void WriteVarintI64(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) Append(v.data(), v.size() * sizeof(uint32_t));
  }

  /// Same layout as WriteU32Vec from a raw span (token views that are not
  /// materialized as vectors).
  void WriteU32Span(const uint32_t* data, size_t n) {
    WriteU64(n);
    if (n > 0) Append(data, n * sizeof(uint32_t));
  }

  void WriteBytes(const std::string& blob) {
    WriteU64(blob.size());
    out_->append(blob);
  }

 private:
  void Append(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// Bounds-checked reader over a blob produced by BinaryWriter. A malformed
/// or truncated blob is a programming error (checkpoints never leave the
/// process), so out-of-bounds reads abort via CHECK.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& blob)
      : p_(blob.data()), end_(blob.data() + blob.size()) {}

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }

  void ReadU32Vec(std::vector<uint32_t>* out) {
    const uint64_t n = ReadU64();
    out->resize(n);
    if (n > 0) Copy(out->data(), n * sizeof(uint32_t));
  }

  void ReadBytes(std::string* out) {
    const uint64_t n = ReadU64();
    CHECK_LE(n, static_cast<uint64_t>(end_ - p_)) << "truncated checkpoint blob";
    out->assign(p_, n);
    p_ += n;
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  T ReadPod() {
    T v;
    Copy(&v, sizeof(v));
    return v;
  }

  void Copy(void* dst, size_t n) {
    CHECK_LE(n, static_cast<size_t>(end_ - p_)) << "truncated checkpoint blob";
    std::memcpy(dst, p_, n);
    p_ += n;
  }

  const char* p_;
  const char* end_;
};

/// Canonical LEB128 decode over a raw byte range. On success advances `p`
/// past the varint; on failure leaves `p` untouched. *Canonical encodings
/// only*: a value has exactly one accepted byte sequence, so redundantly
/// padded varints (a zero final group) and encodings that overflow 64 bits
/// are rejected, not silently normalized. The 1-4 byte cases are unrolled —
/// delta-coded wire sections are dominated by short varints (token gaps,
/// counts, lengths) and this is the receive path's hottest decode.
inline bool DecodeCanonicalVarint(const uint8_t*& p, const uint8_t* end, uint64_t* out) {
  const size_t avail = static_cast<size_t>(end - p);
  if (avail >= 1 && p[0] < 0x80) {
    *out = p[0];
    p += 1;
    return true;
  }
  // Below here byte 0 has its continuation bit set (or the input is empty).
  if (avail >= 2 && p[1] < 0x80) {
    if (p[1] == 0) return false;  // non-minimal (trailing zero group)
    *out = static_cast<uint64_t>(p[0] & 0x7f) | static_cast<uint64_t>(p[1]) << 7;
    p += 2;
    return true;
  }
  if (avail >= 3 && p[2] < 0x80) {
    if (p[2] == 0) return false;
    *out = static_cast<uint64_t>(p[0] & 0x7f) | static_cast<uint64_t>(p[1] & 0x7f) << 7 |
           static_cast<uint64_t>(p[2]) << 14;
    p += 3;
    return true;
  }
  if (avail >= 4 && p[3] < 0x80) {
    if (p[3] == 0) return false;
    *out = static_cast<uint64_t>(p[0] & 0x7f) | static_cast<uint64_t>(p[1] & 0x7f) << 7 |
           static_cast<uint64_t>(p[2] & 0x7f) << 14 | static_cast<uint64_t>(p[3]) << 21;
    p += 4;
    return true;
  }
  uint64_t v = 0;
  uint8_t byte = 0;
  int i = 0;
  const uint8_t* q = p;
  do {
    if (i == 10 || q == end) return false;  // 64 bits never need more than 10 groups
    byte = *q++;
    if (i == 9 && byte > 1) return false;  // bits past position 63
    v |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
    ++i;
  } while (byte & 0x80);
  if (i > 1 && byte == 0) return false;  // non-minimal (trailing zero group)
  *out = v;
  p = q;
  return true;
}

/// Bounds-checked reader for *untrusted* bytes (network frames): unlike
/// BinaryReader, a truncated or malformed input is an expected runtime
/// condition, so every read reports success instead of aborting. After any
/// read returns false the reader is poisoned (all further reads fail).
class SafeBinaryReader {
 public:
  SafeBinaryReader(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ReadU8(uint8_t* out) { return ReadPod(out); }
  bool ReadU16(uint16_t* out) { return ReadPod(out); }
  bool ReadU32(uint32_t* out) { return ReadPod(out); }
  bool ReadU64(uint64_t* out) { return ReadPod(out); }
  bool ReadI64(int64_t* out) { return ReadPod(out); }

  /// Reads a u32 length prefix and that many raw bytes (BinaryWriter::
  /// WriteBytesU32 counterpart).
  bool ReadBytesU32(std::string* out) {
    uint32_t n = 0;
    if (!ReadU32(&n) || n > remaining()) return Fail();
    out->assign(p_, n);
    p_ += n;
    return true;
  }

  /// LEB128 varint (BinaryWriter::WriteVarint counterpart). *Canonical
  /// encodings only* (see DecodeCanonicalVarint): rejecting redundant
  /// paddings keeps wire bytes bijective with values — byte-identical
  /// re-encoding is a meaningful equivalence check.
  bool ReadVarint(uint64_t* out) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(p_);
    if (!DecodeCanonicalVarint(p, reinterpret_cast<const uint8_t*>(end_), out)) {
      return Fail();
    }
    p_ = reinterpret_cast<const char*>(p);
    return true;
  }

  /// Varint bounded to u32 range (token counts, lengths).
  bool ReadVarint32(uint32_t* out) {
    uint64_t v = 0;
    if (!ReadVarint(&v)) return false;
    if (v > 0xffffffffull) return Fail();
    *out = static_cast<uint32_t>(v);
    return true;
  }

  /// Zigzag-mapped varint (BinaryWriter::WriteVarintI64 counterpart).
  bool ReadVarintI64(int64_t* out) {
    uint64_t v = 0;
    if (!ReadVarint(&v)) return false;
    *out = static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
    return true;
  }

  /// View variant of ReadBytesU32: no copy, pointers valid while the
  /// underlying buffer lives.
  bool ReadSpanU32(const char** data, size_t* size) {
    uint32_t n = 0;
    if (!ReadU32(&n) || n > remaining()) return Fail();
    *data = p_;
    *size = n;
    p_ += n;
    return true;
  }

  /// View of the next `n` bytes (caller already knows the length, e.g. from
  /// a varint prefix it read itself).
  bool ReadSpan(const char** data, size_t* size, uint64_t n) {
    if (n > remaining()) return Fail();
    *data = p_;
    *size = static_cast<size_t>(n);
    p_ += n;
    return true;
  }

  /// Varint length prefix + that many raw bytes (the delta-codec string
  /// layout).
  bool ReadBytesVarint(std::string* out) {
    uint64_t n = 0;
    if (!ReadVarint(&n) || n > remaining()) return Fail();
    out->assign(p_, static_cast<size_t>(n));
    p_ += n;
    return true;
  }

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  bool ReadPod(T* out) {
    if (sizeof(T) > remaining()) return Fail();
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return true;
  }

  bool Fail() {
    p_ = end_ = nullptr;
    return false;
  }

  const char* p_;
  const char* end_;
};

}  // namespace dssj

#endif  // DSSJ_COMMON_SERIALIZE_H_
