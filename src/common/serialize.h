#ifndef DSSJ_COMMON_SERIALIZE_H_
#define DSSJ_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace dssj {

/// Minimal little-endian binary writer for checkpoint blobs. Appends to a
/// caller-owned string so composite snapshots (bolt header + joiner state)
/// concatenate without copies. Not an interchange format: blobs are only
/// ever read back by the same binary that wrote them (in-process recovery),
/// so there is no versioning or endianness negotiation.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }

  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) Append(v.data(), v.size() * sizeof(uint32_t));
  }

  void WriteBytes(const std::string& blob) {
    WriteU64(blob.size());
    out_->append(blob);
  }

 private:
  void Append(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// Bounds-checked reader over a blob produced by BinaryWriter. A malformed
/// or truncated blob is a programming error (checkpoints never leave the
/// process), so out-of-bounds reads abort via CHECK.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& blob)
      : p_(blob.data()), end_(blob.data() + blob.size()) {}

  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }

  void ReadU32Vec(std::vector<uint32_t>* out) {
    const uint64_t n = ReadU64();
    out->resize(n);
    if (n > 0) Copy(out->data(), n * sizeof(uint32_t));
  }

  void ReadBytes(std::string* out) {
    const uint64_t n = ReadU64();
    CHECK_LE(n, static_cast<uint64_t>(end_ - p_)) << "truncated checkpoint blob";
    out->assign(p_, n);
    p_ += n;
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  template <typename T>
  T ReadPod() {
    T v;
    Copy(&v, sizeof(v));
    return v;
  }

  void Copy(void* dst, size_t n) {
    CHECK_LE(n, static_cast<size_t>(end_ - p_)) << "truncated checkpoint blob";
    std::memcpy(dst, p_, n);
    p_ += n;
  }

  const char* p_;
  const char* end_;
};

}  // namespace dssj

#endif  // DSSJ_COMMON_SERIALIZE_H_
