#include "common/stats.h"

#include <ctime>

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace dssj {

int64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketsLog2;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  const int bucket = (msb - kSubBucketsLog2 + 1) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int exp = bucket / kSubBuckets - 1 + kSubBucketsLog2;
  const int sub = bucket % kSubBuckets;
  const uint64_t base = 1ULL << exp;
  const uint64_t step = base >> kSubBucketsLog2;
  return base + static_cast<uint64_t>(sub + 1) * step - 1;
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur && !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  uint64_t om = other.min_.load(std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (om < cur && !min_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
  }
  om = other.max_.load(std::memory_order_relaxed);
  cur = max_.load(std::memory_order_relaxed);
  while (om > cur && !max_.compare_exchange_weak(cur, om, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(n);
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

uint64_t Histogram::ValueAtQuantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t n = count();
  if (n == 0) return 0;
  const uint64_t rank = std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return std::min(BucketUpperBound(i), max());
  }
  return max();
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << p50() << " p95=" << p95()
     << " p99=" << p99() << " max=" << max();
  return os.str();
}

}  // namespace dssj
