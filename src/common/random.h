#ifndef DSSJ_COMMON_RANDOM_H_
#define DSSJ_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dssj {

/// Fast, seedable, reproducible PRNG (xoshiro256**). Satisfies the
/// UniformRandomBitGenerator concept so it can drive <random> distributions,
/// but the library prefers the exact helpers below for bit-reproducibility
/// across standard library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via SplitMix64, per the xoshiro
  /// authors' recommendation. Equal seeds give equal sequences everywhere.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 random bits.
  uint64_t Next();
  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's multiply-shift
  /// rejection method (unbiased).
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard-normal variate (Box-Muller, one value per call).
  double Gaussian();

  /// Exponential variate with rate lambda (> 0); mean 1/lambda.
  double Exponential(double lambda);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf (zeta) distribution over {0, 1, ..., n-1} with exponent `skew`:
/// P(k) ∝ 1 / (k+1)^skew. skew = 0 is uniform. Sampling is O(1) amortized
/// via Gray/Jacobson rejection-inversion, so huge token universes (tens of
/// millions) need no precomputed table.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and skew >= 0.
  ZipfDistribution(uint64_t n, double skew);

  /// Draws a rank in [0, n). Rank 0 is the most frequent item.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double skew_;
  // Precomputed constants of the rejection-inversion sampler.
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace dssj

#endif  // DSSJ_COMMON_RANDOM_H_
