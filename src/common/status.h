#ifndef DSSJ_COMMON_STATUS_H_
#define DSSJ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dssj {

/// Error codes used across the library. Modeled after absl::StatusCode but
/// restricted to the cases this codebase actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...). Never returns null.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. The library does not use
/// exceptions; fallible operations return `Status` (or `StatusOr<T>`), and
/// programming errors abort via CHECK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a human-readable `message`.
  /// `message` is ignored for kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// a non-OK StatusOr aborts the process (there are no exceptions to throw).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or a non-OK status keeps call sites
  /// terse (`return MakeThing();` / `return Status::InvalidArgument(...)`),
  /// matching absl::StatusOr.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    AbortIfOkWithoutValue();
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return value_;
  }
  T& value() & {
    AbortIfNotOk();
    return value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(value_);
  }

 private:
  void AbortIfNotOk() const;
  void AbortIfOkWithoutValue() const;

  Status status_;
  T value_{};
};

namespace internal_status {
/// Aborts the process with `status` printed to stderr. Out-of-line so that
/// StatusOr does not need to include logging.h.
[[noreturn]] void DieBecauseStatus(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfNotOk() const {
  if (!status_.ok()) internal_status::DieBecauseStatus(status_);
}

template <typename T>
void StatusOr<T>::AbortIfOkWithoutValue() const {
  if (status_.ok()) {
    internal_status::DieBecauseStatus(
        Status::Internal("StatusOr constructed from OK status without a value"));
  }
}

/// Propagates a non-OK status to the caller.
#define DSSJ_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::dssj::Status dssj_return_if_error_s = (expr); \
    if (!dssj_return_if_error_s.ok()) return dssj_return_if_error_s; \
  } while (false)

}  // namespace dssj

#endif  // DSSJ_COMMON_STATUS_H_
