#include "common/flags.h"

#include <cstdlib>

#include "common/logging.h"

namespace dssj {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string key, value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      // `--flag` followed by a non-flag token is `--flag value`; a bare
      // trailing `--flag` is boolean true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (key.empty()) return Status::InvalidArgument("empty flag name in '" + arg + "'");
    flags.values_[key] = value;
    flags.used_[key] = false;
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it != values_.end()) used_[key] = true;
  return it != values_.end();
}

std::string Flags::GetString(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[key] = true;
  return it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[key] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects an integer, got '" << it->second << "'";
  return static_cast<int64_t>(v);
}

double Flags::GetDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[key] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects a number, got '" << it->second << "'";
  return v;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  used_[key] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  LOG(FATAL) << "flag --" << key << " expects a boolean, got '" << v << "'";
  return def;
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, was_used] : used_) {
    if (!was_used) unused.push_back(key);
  }
  return unused;
}

}  // namespace dssj
