#ifndef DSSJ_COMMON_HASH_H_
#define DSSJ_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dssj {

/// 64-bit FNV-1a over arbitrary bytes. Deterministic across platforms, used
/// for token partitioning and hash groupings (not for adversarial input).
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

/// Strong 64-bit integer mixer (SplitMix64 finalizer). Good avalanche; used
/// to spread sequential ids across hash partitions.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Combines a hash with another value, boost-style but with a 64-bit mixer.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2)));
}

}  // namespace dssj

#endif  // DSSJ_COMMON_HASH_H_
