#ifndef DSSJ_COMMON_FLAGS_H_
#define DSSJ_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dssj {

/// Minimal command-line flag parser for the example/tool binaries:
/// `--key=value` or `--key value`; everything else is a positional
/// argument. No registration step — callers query typed getters with
/// defaults, and unknown keys are reported so typos fail loudly.
class Flags {
 public:
  /// Parses argv (skipping argv[0]). Returns InvalidArgument on malformed
  /// input (e.g. `--key` at the end without a value, empty key).
  static StatusOr<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Typed getters; return `def` when the flag is absent and abort via
  /// CHECK when the value does not parse (a CLI usage error worth failing
  /// loudly on).
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never queried — call after all getters to
  /// reject typos.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace dssj

#endif  // DSSJ_COMMON_FLAGS_H_
