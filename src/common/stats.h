#ifndef DSSJ_COMMON_STATS_H_
#define DSSJ_COMMON_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace dssj {

/// Thread-safe monotonically increasing counter (relaxed ordering; readers
/// get an eventually consistent snapshot, which is all metrics need).
class Counter {
 public:
  Counter() : value_(0) {}

  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_;
};

/// Thread-safe high-watermark gauge (e.g. peak queue depth).
class MaxGauge {
 public:
  MaxGauge() : value_(0) {}

  void Update(uint64_t candidate) {
    uint64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_;
};

/// Thread-safe last-value gauge (e.g. current queue depth). Writers
/// overwrite, readers get the most recent value (relaxed ordering).
class Gauge {
 public:
  Gauge() : value_(0) {}

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_;
};

/// Single-threaded running aggregate: count, mean, variance (Welford),
/// min and max. Merge two instances with Merge().
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-bucketed histogram of non-negative 64-bit values (e.g., latencies in
/// microseconds). 64 power-of-two buckets, each split into 16 linear
/// sub-buckets: <= 3.2% quantile error, constant memory. Thread-safe adds.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean() const;
  uint64_t min() const;
  uint64_t max() const;

  /// Value at quantile q in [0, 1]; approximate per bucketing error above.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t p50() const { return ValueAtQuantile(0.50); }
  uint64_t p95() const { return ValueAtQuantile(0.95); }
  uint64_t p99() const { return ValueAtQuantile(0.99); }

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

  static constexpr int kSubBucketsLog2 = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketsLog2;
  static constexpr int kNumBuckets = 64 * kSubBuckets;

 private:
  static int BucketFor(uint64_t value);
  /// Upper bound of values mapping to `bucket` (inclusive).
  static uint64_t BucketUpperBound(int bucket);

  std::atomic<uint64_t> buckets_[kNumBuckets];
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
};

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                                 start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Current steady-clock time in microseconds since an arbitrary epoch;
/// the stream substrate stamps tuples with this for latency measurement.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current steady-clock time in nanoseconds (cheap vDSO read).
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the *calling thread*, in nanoseconds. Unlike wall
/// clock this is immune to preemption, so per-task busy accounting stays
/// meaningful when many executor threads share few cores (the basis of the
/// cluster-model throughput, see DistributedJoinResult). May be a real
/// syscall (~1µs under virtualization) — call once per task, not per tuple.
int64_t ThreadCpuNanos();

}  // namespace dssj

#endif  // DSSJ_COMMON_STATS_H_
