#ifndef DSSJ_CORE_JOIN_TOPOLOGY_H_
#define DSSJ_CORE_JOIN_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/adaptive_router.h"
#include "core/bundle_joiner.h"
#include "core/local_joiner.h"
#include "core/partition.h"
#include "core/record_joiner.h"
#include "core/router.h"
#include "core/similarity.h"
#include "core/window.h"
#include "net/wire.h"
#include "store/options.h"
#include "stream/fault.h"
#include "stream/overload.h"
#include "stream/queue.h"
#include "text/record.h"

namespace dssj {

/// Which distribution strategy the dispatcher tier uses (DESIGN.md §1).
/// kReplicated is the store-everywhere/probe-local mirror of kBroadcast.
enum class DistributionStrategy { kLengthBased, kPrefixBased, kBroadcast, kReplicated };
const char* DistributionStrategyName(DistributionStrategy s);

/// Which local join algorithm each joiner partition runs.
enum class LocalAlgorithm { kRecord, kBundle, kBruteForce };
const char* LocalAlgorithmName(LocalAlgorithm a);

/// How the topology's workers map onto the machine (docs/INTERNALS.md §9).
/// kInproc: the classic single-process run — worker placement is a
/// simulation, tuples move on in-process queues. kLoopback: still one
/// process, but every cross-worker tuple is wire-encoded and re-parsed
/// (measures serialization/framing cost; results identical to kInproc).
/// kTcp: real multi-process execution — each rank in `cluster` hosts its
/// workers' tasks and cross-worker links run over localhost/LAN TCP.
enum class JoinTransport { kInproc, kLoopback, kTcp };
const char* JoinTransportName(JoinTransport t);

/// Payload codec for Record payloads crossing process boundaries. Dispatches
/// on the per-call wire codec: raw (EncodeRecord/DecodeRecord) or delta
/// (EncodeRecordDelta/DecodeRecordDelta). When the transport supplies a
/// frame arena, decoding is zero-copy: records and their token arrays live
/// in arena storage (raw token bytes alias the frame buffer directly) and
/// are handed out as aliasing shared_ptrs pinning the arena. Shared by the
/// join topology and the transport tests.
net::PayloadCodec RecordWireCodec();

/// How to derive the length partition for the length-based strategy.
/// kLoadAwareFull uses the JoinCostModel (pair work + probe-visit
/// overhead); the plain kLoadAware variants balance pair work only.
enum class PartitionMethod {
  kLoadAwareGreedy,
  kLoadAwareDP,
  kLoadAwareFull,
  kUniform,
  kEqualFrequency,
};
const char* PartitionMethodName(PartitionMethod m);

/// Computes a k-way length partition from a sample of the stream using
/// `method` (the load-aware variants minimize the estimated bottleneck join
/// cost, see ComputePerLengthLoad).
LengthPartition PlanLengthPartition(const std::vector<RecordPtr>& sample,
                                    const SimilaritySpec& sim, int k, PartitionMethod method);

/// Full configuration of a distributed streaming join run.
struct DistributedJoinOptions {
  SimilaritySpec sim{SimilarityFunction::kJaccard, 800};
  WindowSpec window = WindowSpec::Unbounded();

  DistributionStrategy strategy = DistributionStrategy::kLengthBased;
  LocalAlgorithm local = LocalAlgorithm::kRecord;

  int num_joiners = 4;
  /// Dispatcher parallelism. With 1 dispatcher the emission rule yields
  /// exactly-once results; with more, cross-dispatcher races can drop (but
  /// never duplicate) pairs — measured in experiment E10.
  int num_dispatchers = 1;

  /// Sharded ingestion front end (docs/INTERNALS.md §14). With N > 1 the
  /// source and dispatcher tiers each run N partner lanes: source lane i
  /// replays the records at input indices ≡ i (mod N) and feeds its own
  /// dispatcher instance one-to-one. Joiners merge the lane streams back
  /// into global sequence order before processing, so — unlike
  /// num_dispatchers > 1 — results stay byte-identical to ingest_lanes=1.
  /// Requires num_dispatchers == 1, a stateless routing strategy
  /// (length/prefix), and strictly increasing record seqs in the input.
  /// Adaptive routing works (lanes share one CAS-published epoch list) but
  /// replan timing becomes interleaving-dependent, so adaptive runs are
  /// excluded from the byte-identical guarantee.
  int ingest_lanes = 1;

  /// Length partition for kLengthBased (from PlanLengthPartition). Ignored
  /// by the other strategies. Empty = uniform fallback over [1, 256].
  LengthPartition length_partition;

  /// Epoch-based adaptive routing for kLengthBased (see
  /// AdaptiveLengthRouter): the dispatcher monitors drift and replans
  /// without state migration. Requires num_dispatchers == 1. The router's
  /// window span is taken from `window` when it is a time window.
  bool adaptive = false;
  AdaptiveRouterOptions adaptive_options;

  /// Local-algorithm tuning.
  BundleJoinerOptions bundle;
  bool positional_filter = true;

  /// Collect every result pair (tests, small runs) or only count them
  /// (throughput benches).
  bool collect_results = true;

  /// Per-task inbound queue capacity (backpressure bound).
  size_t queue_capacity = 4096;

  /// Inbound-queue implementation for co-located links (--queue): lock-free
  /// rings (default) or the mutex+condvar BoundedQueue. Results are
  /// byte-identical either way; the ring keeps per-tuple dispatch cost off
  /// the verification path (see TopologyBuilder::SetQueueImpl).
  stream::QueueImpl queue_impl = stream::QueueImpl::kRing;

  /// Pins executor threads round-robin across cores (see
  /// TopologyBuilder::SetPinThreads). Benchmarks only.
  bool pin_threads = false;

  /// Tuple-transport batch size (see TopologyBuilder::SetBatchSize): tuples
  /// are moved between tasks in groups of up to this many under one lock
  /// and one wakeup. 1 restores strict per-tuple transport. Batching never
  /// reorders a (producer task → consumer task) link, so the seq-order
  /// exactly-once rule is unaffected; the result set is identical for every
  /// batch size.
  size_t batch_size = 32;

  /// Simulated workers for communication accounting; 0 = num_joiners.
  /// Ignored under kTcp, where the worker count is the cluster size.
  int num_workers = 0;

  /// Execution substrate (see JoinTransport). Under kLoopback and kTcp the
  /// run pins placement deterministically: source, dispatchers, and sink on
  /// worker 0, joiner i on worker i % num_workers — so every rank builds
  /// the identical plan and the coordinator owns the result set.
  JoinTransport transport = JoinTransport::kInproc;
  /// This process's rank for kTcp (0 = coordinator; collects results and
  /// cluster-wide metrics). Every rank must run RunDistributedJoin with the
  /// same options (and the same input on rank 0 — other ranks never read
  /// it) differing only in `rank`.
  int rank = 0;
  /// Rank-ordered "host:port,host:port,..." list for kTcp.
  std::string cluster;
  /// Optional bind override for this rank ("0.0.0.0:port"); default is
  /// cluster[rank].
  std::string listen;
  /// Per-peer bounded send buffer, in frames (network backpressure bound).
  size_t net_send_queue = 1024;
  /// How long TCP connect retries cover workers starting out of order.
  int64_t net_connect_timeout_micros = 30'000'000;
  /// Tuple-section coding for frames this process sends under kLoopback /
  /// kTcp (--wire_codec=raw|delta|delta+lz). Frames are self-describing, so
  /// mixed-codec clusters still interoperate; results are byte-identical
  /// across codecs.
  net::WireCodec wire_codec = net::WireCodec::kDelta;
  /// Frame-arena recycling bound for the zero-copy receive path (0 = free
  /// every arena immediately; used by borrow-lifetime tests under ASan).
  size_t net_arena_pool = 8;

  /// Source pacing in records/second; 0 = replay as fast as possible.
  double arrival_rate_per_sec = 0.0;

  /// Simulated ser/deser CPU cost per byte crossing workers (charged to
  /// both endpoints' busy time; affects scaled_throughput_rps, not wall
  /// clock). 0 = inter-worker messages cost nothing beyond the Execute
  /// work, as within one process. Storm-like stacks sit around 1-5 ns/byte.
  double remote_byte_cost_ns = 0.0;

  /// Fault tolerance. `supervise` turns executors into supervisors (see
  /// TopologyBuilder::SetSupervision): task crashes are recovered from the
  /// last checkpoint with exactly-once replay. `supervision` carries the
  /// restart budget, backoff, and checkpoint interval (in tuples executed /
  /// emitted per task; 0 disables periodic checkpoints and recovery replays
  /// from the start of the stream).
  bool supervise = false;
  stream::SupervisorOptions supervision;

  /// Deterministic fault schedule (FaultScript DSL, e.g.
  /// "kill:joiner:0@500; drop:dispatcher:0->joiner:1@100"); empty = none.
  /// A non-empty script implies `supervise`. Parse or resolution errors
  /// abort (they are test-configuration errors).
  std::string fault_script;

  /// Overload control (docs/INTERNALS.md §8). With a policy other than
  /// kNone, a joiner whose inbound queue crosses `shed_watermark` (fraction
  /// of queue_capacity) sheds the *probe* side of incoming tuples — stores
  /// always land, so index/window state is identical to an unshed run and
  /// the recall loss is exactly the shed probes' pairs (counted in
  /// shed_probes / shed_probe_seqs).
  stream::ShedPolicy shed_policy = stream::ShedPolicy::kNone;
  double shed_watermark = 0.75;

  /// Stall watchdog: when > 0, a monitor thread fails the run (or forces
  /// shedding, per watchdog_fail_fast) if the topology stops progressing or
  /// a queued tuple sits undelivered for this long.
  int64_t stall_timeout_micros = 0;
  bool watchdog_fail_fast = true;

  /// Per-joiner memory budget in approximate bytes (0 = unlimited),
  /// forwarded to RecordJoinerOptions / BundleJoinerOptions
  /// max_index_bytes. Ignored by the brute-force joiner.
  size_t max_index_bytes = 0;

  /// Tiered state store (docs/INTERNALS.md §13). A non-empty store_dir
  /// roots an on-disk store there (requires `supervise`): checkpoints are
  /// persisted per task under store_dir/task_<id>/, and joiners with a
  /// spill_watermark > 0 overflow cold window state to
  /// store_dir/spill_<component>_p<partition>/ instead of budget-evicting
  /// it. kAsync moves checkpoint encoding + disk writes off the task
  /// thread (frozen views; deltas between every delta_base_interval-th
  /// full base image); kSync writes a full base inline at each boundary.
  std::string store_dir;
  store::CheckpointMode checkpoint_mode = store::CheckpointMode::kSync;
  uint32_t delta_base_interval = 8;
  /// Fraction of max_index_bytes at which the record joiner starts
  /// spilling cold records to disk rather than evicting them (<= 0 keeps
  /// PR 3 eviction; needs store_dir and max_index_bytes).
  double spill_watermark = 0.0;
  /// Spill segment rotation size (per joiner task).
  size_t store_segment_bytes = 4u << 20;

  /// Elastic worker scaling (docs/INTERNALS.md §12). Enables live task
  /// migration (Topology::MigrateTask plus the kill_worker/migrate fault
  /// verbs) and starts a controller thread that samples per-joiner load
  /// every `elastic_interval_micros` and migrates joiner tasks: growing the
  /// active worker set when total load nears its observed peak, shrinking
  /// it when load collapses, and rebalancing whenever the bottleneck worker
  /// carries more than (1 + migrate_threshold) x the mean (see
  /// PlanWorkerMigrations). Results stay byte-identical to a static run —
  /// migration freezes each task at an exact sequence boundary. Implies
  /// `supervise`. Under kTcp only rank 0 runs the controller.
  bool elastic = false;
  /// Load-imbalance trigger for elastic rebalancing (fraction above mean).
  double migrate_threshold = 0.5;
  /// Elastic controller sampling period.
  int64_t elastic_interval_micros = 20'000;
  /// Initial active workers for elastic runs: joiners start packed onto
  /// this many workers (0 = all), and the controller spreads or packs
  /// between 1 and num_workers at runtime. Ignored unless `elastic`.
  int elastic_initial_workers = 0;
};

/// Latency percentiles of per-record end-to-end processing (source emit →
/// joiner finished probing), microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
};

/// Everything a run produces: results (or their count), timing, and the
/// communication/load metrics the paper's evaluation reports.
///
/// Under JoinTransport::kTcp the coordinator (rank 0) reports cluster-wide
/// values for every counter that rides the end-of-run metrics barrier —
/// result_count, communication, busy times, fault/overload counters — and
/// owns `pairs` (the sink is placed on worker 0). Fields published through
/// process-local shared state (joiner_stats, latency, shed_probe_seqs,
/// replication_factor/total_stores, router_*) cover only the joiners this
/// rank hosts. Worker ranks (> 0) report their local view; use ok() /
/// failure_message there.
struct DistributedJoinResult {
  std::vector<ResultPair> pairs;  ///< filled iff options.collect_results
  uint64_t result_count = 0;

  uint64_t input_records = 0;
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;  ///< input_records / elapsed (wall clock)

  /// Cluster-model throughput: input_records divided by the busiest task's
  /// processing time (the pipeline's critical path if every task had its
  /// own core). On a single-core host this — not wall clock — carries the
  /// paper's scalability shape; see EXPERIMENTS.md.
  double scaled_throughput_rps = 0.0;
  uint64_t bottleneck_busy_micros = 0;  ///< max busy time over all tasks

  /// Dispatch communication (dispatcher tier → joiner tier).
  uint64_t dispatch_messages = 0;
  uint64_t dispatch_bytes = 0;
  /// Subset of the above crossing simulated workers.
  uint64_t remote_messages = 0;
  uint64_t remote_bytes = 0;

  /// Σ stores across joiners / input records: 1.0 means no replication.
  double replication_factor = 0.0;
  uint64_t total_stores = 0;

  LatencySummary latency;

  /// Per-joiner-partition detail (index = partition).
  std::vector<JoinerStats> joiner_stats;
  std::vector<uint64_t> joiner_busy_micros;

  /// Per-stage pipeline breakdown (source, dispatcher, joiner, sink): CPU
  /// busy time, executor wall time starved on an empty inbound queue, and
  /// collector wall time pushing downstream (includes backpressure). Sums
  /// over the stage's tasks; micros.
  struct StageTime {
    std::string component;
    int tasks = 0;
    uint64_t busy_micros = 0;
    uint64_t idle_micros = 0;
    uint64_t blocked_micros = 0;
  };
  std::vector<StageTime> stage_times;

  /// Adaptive routing introspection (0 unless options.adaptive).
  uint64_t router_replans = 0;
  uint64_t router_live_epochs = 0;

  /// Fault tolerance (meaningful under options.supervise; ok is always true
  /// otherwise). ok == false means some task exhausted its restart budget
  /// and the result set is incomplete.
  bool ok = true;
  std::string failure_message;
  uint64_t restarts = 0;
  uint64_t replayed_tuples = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_bytes = 0;
  /// Tiered-store split of the above (0 unless options.store_dir), plus
  /// spill-tier traffic: bytes moved to cold segments and cold read-backs.
  uint64_t delta_checkpoints = 0;
  uint64_t base_checkpoints = 0;
  uint64_t delta_checkpoint_bytes = 0;
  uint64_t base_checkpoint_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t spill_reads = 0;
  uint64_t link_drops_recovered = 0;
  uint64_t link_dups_discarded = 0;

  /// Overload control (0/empty unless options enable a shed policy).
  /// `shed_probes` counts probe sides dropped under pressure; every shed
  /// record still stored, so `pairs` misses exactly the oracle pairs whose
  /// probe seq appears in `shed_probe_seqs` (filled iff collect_results;
  /// each entry is (probe seq, joiner partition)). `shed_pairs_upper_bound`
  /// sums StoredCount at each shed — a cheap overestimate of lost pairs.
  uint64_t shed_probes = 0;
  uint64_t shed_pairs_upper_bound = 0;
  std::vector<std::pair<uint64_t, int>> shed_probe_seqs;

  /// Memory-budget evictions across joiners (see JoinerStats).
  uint64_t budget_evictions = 0;
  uint64_t eviction_horizon_seq = 0;

  /// Elastic scaling (0 unless options.elastic or a migrate/kill_worker
  /// fault verb ran): completed live migrations and the cumulative
  /// serialized state shipped between incarnations.
  uint64_t migrations = 0;
  uint64_t migration_bytes = 0;
};

/// Runs the distributed streaming join over `input` (replayed in order as a
/// stream) and blocks until completion.
DistributedJoinResult RunDistributedJoin(const std::vector<RecordPtr>& input,
                                         const DistributedJoinOptions& options);

/// Single-threaded reference: feeds `input` through one local joiner
/// (store+probe) and returns all pairs. Oracle for the distributed runs.
std::vector<ResultPair> SingleNodeJoin(const std::vector<RecordPtr>& input,
                                       LocalJoiner& joiner);

/// Constructs the configured local joiner (used by the joiner bolts and by
/// examples/tests that want a standalone joiner).
std::unique_ptr<LocalJoiner> MakeLocalJoiner(const DistributedJoinOptions& options,
                                             int partition);

/// Constructs the configured router (one per dispatcher task). For
/// adaptive routing across sharded dispatcher lanes, pass the run's shared
/// AdaptiveRouterState so every lane routes against one coherent epoch
/// list; with the default null state, adaptive routing requires a single
/// dispatcher.
std::unique_ptr<Router> MakeRouter(const DistributedJoinOptions& options,
                                   std::shared_ptr<AdaptiveRouterState> adaptive_state = nullptr);

}  // namespace dssj

#endif  // DSSJ_CORE_JOIN_TOPOLOGY_H_
