#ifndef DSSJ_CORE_MINHASH_JOINER_H_
#define DSSJ_CORE_MINHASH_JOINER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/local_joiner.h"
#include "core/similarity.h"
#include "core/window.h"

namespace dssj {

/// Configuration of the approximate joiner.
struct MinHashJoinerOptions {
  /// LSH shape: bands × rows hash functions. Two records collide in a band
  /// with probability sim^rows; P(candidate) = 1 − (1 − t^rows)^bands.
  /// The defaults (16 × 4) put the S-curve threshold near
  /// (1/bands)^(1/rows) ≈ 0.5.
  int bands = 16;
  int rows = 4;
  /// Seed of the hash family (same seed ⇒ same signatures everywhere).
  uint64_t seed = 0x5EEDu;
};

/// Extension (paper future work): an *approximate* streaming joiner using
/// MinHash signatures and banded LSH. Candidates come from band-bucket
/// collisions instead of prefix filtering; every candidate is still
/// verified exactly, so results have perfect precision but recall < 1
/// (pairs whose signatures never collide are missed). Trades recall for
/// probe cost independent of record length — useful far below the
/// thresholds where prefix filtering stays selective.
class MinHashJoiner : public LocalJoiner {
 public:
  MinHashJoiner(const SimilaritySpec& sim, const WindowSpec& window,
                MinHashJoinerOptions options = {});

  void Process(const RecordPtr& r, bool store, bool probe, const ResultCallback& cb) override;

  size_t StoredCount() const override { return store_.size(); }
  size_t MemoryBytes() const override;
  const JoinerStats& stats() const override { return stats_; }

 private:
  struct Stored {
    RecordPtr record;
    std::vector<uint64_t> band_keys;  ///< one bucket key per band
  };

  bool Alive(uint64_t local_id) const { return local_id >= base_; }
  void Evict(int64_t now);
  void EvictOldest();
  std::vector<uint64_t> BandKeys(const Record& r) const;

  SimilaritySpec sim_;
  WindowSpec window_;
  MinHashJoinerOptions options_;

  std::deque<Stored> store_;
  uint64_t base_ = 0;
  /// buckets_[band]: bucket key -> stored local ids (lazily purged).
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> buckets_;
  /// Scratch: last probe stamp per candidate to dedup across bands.
  std::unordered_map<uint64_t, uint64_t> last_seen_;
  uint64_t probe_stamp_ = 0;

  JoinerStats stats_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_MINHASH_JOINER_H_
