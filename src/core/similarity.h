#ifndef DSSJ_CORE_SIMILARITY_H_
#define DSSJ_CORE_SIMILARITY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dssj {

/// Set similarity functions supported by the join. All are defined over the
/// sizes |r|, |s| and the overlap o = |r ∩ s|:
///   Jaccard  o / (|r| + |s| - o)
///   Cosine   o / sqrt(|r| * |s|)
///   Dice     2o / (|r| + |s|)
///   Overlap  o                     (absolute threshold)
enum class SimilarityFunction { kJaccard, kCosine, kDice, kOverlap };

const char* SimilarityFunctionName(SimilarityFunction fn);

/// A similarity predicate `sim(r, s) >= t` with t expressed in integer
/// permille (800 = 0.8), except Overlap where the threshold is an absolute
/// overlap count. Every derived bound (minimum overlap, partner length
/// range, prefix length) and the final accept test are *exact integer
/// arithmetic* — no floating-point boundary ambiguity, so joiners are
/// bit-reproducible and comparable against brute force.
///
/// All bounds are standard prefix-filtering results (AllPairs/PPJoin
/// lineage), specialized to the streaming setting where a record meets
/// partners both shorter and longer than itself.
class SimilaritySpec {
 public:
  static constexpr int64_t kPermille = 1000;
  /// Upper bound on record lengths the bounds are meaningful for; guards
  /// against overflow in the integer cross-multiplications.
  static constexpr size_t kMaxLength = 1u << 24;

  /// For kOverlap, `threshold_permille` is the absolute overlap count c >= 1.
  /// For the others it must lie in [1, 1000].
  SimilaritySpec(SimilarityFunction fn, int64_t threshold_permille);

  SimilarityFunction function() const { return fn_; }
  int64_t threshold_permille() const { return p_; }

  /// True iff a pair with sizes (l1, l2) and overlap `o` satisfies the
  /// predicate. Exact. Pairs of empty sets never satisfy it.
  bool Satisfies(size_t o, size_t l1, size_t l2) const;

  /// Smallest overlap that satisfies the predicate for sizes (l1, l2):
  /// Satisfies(o) ⇔ o >= MinOverlap(l1, l2), for o <= min(l1, l2).
  size_t MinOverlap(size_t l1, size_t l2) const;

  /// Partner-length range: sim(r, s) >= t implies
  /// LengthLowerBound(|r|) <= |s| <= LengthUpperBound(|r|).
  /// The relation is symmetric: l2 in range(l1) ⇔ l1 in range(l2).
  size_t LengthLowerBound(size_t l) const;
  size_t LengthUpperBound(size_t l) const;  ///< clamped to kMaxLength

  /// Streaming prefix length: any partner (shorter or longer) that
  /// satisfies the predicate shares a token with the first PrefixLength(l)
  /// tokens of a size-l record. Returns 0 when no partner can satisfy the
  /// predicate (e.g. l == 0, or l < c for Overlap).
  size_t PrefixLength(size_t l) const;

  /// The similarity value as a double, for reporting only (never used in
  /// accept decisions).
  double EvaluateSimilarity(size_t o, size_t l1, size_t l2) const;

  std::string ToString() const;

  friend bool operator==(const SimilaritySpec& a, const SimilaritySpec& b) {
    return a.fn_ == b.fn_ && a.p_ == b.p_;
  }

 private:
  SimilarityFunction fn_;
  int64_t p_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_SIMILARITY_H_
