#ifndef DSSJ_CORE_LOCAL_JOINER_H_
#define DSSJ_CORE_LOCAL_JOINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/serialize.h"
#include "core/verify.h"
#include "store/frozen.h"
#include "text/record.h"

namespace dssj {

namespace store {
class SpillStore;
}  // namespace store

/// One emitted join result: the probing record and a previously stored
/// partner. Sequence numbers let distributed callers apply the
/// exactly-once rule (emit iff partner_seq < probe_seq).
struct ResultPair {
  uint64_t probe_id = 0;
  uint64_t probe_seq = 0;
  uint64_t partner_id = 0;
  uint64_t partner_seq = 0;

  friend bool operator==(const ResultPair& a, const ResultPair& b) = default;
};

using ResultCallback = std::function<void(const ResultPair&)>;

/// Instrumentation shared by all joiner implementations; benches read these
/// to attribute filtering vs verification cost. Fields irrelevant to an
/// implementation stay zero.
struct JoinerStats {
  uint64_t probes = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;
  uint64_t results = 0;
  /// Records evicted *ahead of* the window policy — memory budget
  /// (max_index_bytes) or shed-policy pressure (LocalJoiner::EvictOldest).
  /// Also counted in `evictions`.
  uint64_t budget_evictions = 0;
  /// Highest sequence number evicted ahead of the window: probes can miss
  /// stored partners with seq <= this horizon (and only those).
  uint64_t eviction_horizon_seq = 0;

  // Filtering.
  uint64_t postings_scanned = 0;
  uint64_t dead_postings_purged = 0;
  uint64_t candidates = 0;         ///< distinct candidates reaching verification
  uint64_t length_filtered = 0;    ///< pruned by the partner-length bound
  uint64_t position_filtered = 0;  ///< pruned by the positional filter
  uint64_t suffix_filtered = 0;    ///< pruned by the suffix filter (if on)

  // Verification.
  VerifyCounters verify;

  // Bundle-specific.
  uint64_t bundles_created = 0;
  uint64_t members_added = 0;
  uint64_t bundle_candidates = 0;       ///< candidate bundles probed
  uint64_t batch_accepts = 0;           ///< members accepted by the lower bound
  uint64_t batch_rejects = 0;           ///< members rejected by the upper bound
  uint64_t member_diff_resolutions = 0; ///< members resolved via diff merge

  // Tiered spill (joiners with an attached store::SpillStore).
  uint64_t spilled_records = 0;    ///< hot records moved to the cold on-disk tier
  uint64_t spilled_bytes = 0;      ///< payload bytes appended to spill segments
  uint64_t spill_reads = 0;        ///< cold frames read back during probes
  uint64_t spill_read_errors = 0;  ///< unreadable cold frames skipped (corrupt segment)
};

/// A single-partition streaming set-similarity joiner: maintains a sliding
/// window of stored records and, for each probing record, reports every
/// stored record satisfying the similarity predicate.
///
/// Implementations are deliberately single-threaded (the distributed layer
/// provides parallelism by running one joiner per task); callers must
/// serialize Process calls.
class LocalJoiner {
 public:
  virtual ~LocalJoiner() = default;

  /// Handles one record. When `probe` is set, invokes `cb` once per stored
  /// record matching `r` (all matches — callers apply any cross-partition
  /// dedup rule). When `store` is set, `r` joins the window afterwards, so
  /// a record never matches itself. Eviction (by `r`'s timestamp for time
  /// windows) happens before probing. Empty records neither match nor
  /// store.
  virtual void Process(const RecordPtr& r, bool store, bool probe,
                       const ResultCallback& cb) = 0;

  /// Records currently stored in the window.
  virtual size_t StoredCount() const = 0;

  /// Evicts up to `n` of the oldest stored records ahead of the window
  /// policy (memory budgets, overload shedding), always keeping at least
  /// one. Returns the number evicted; counted in stats as budget_evictions
  /// and reflected in eviction_horizon_seq. The default does nothing — not
  /// every joiner has an eviction order (e.g. the brute-force oracle keeps
  /// exact window semantics).
  virtual size_t EvictOldest(size_t /*n*/) { return 0; }

  /// Approximate resident bytes of window + index state.
  virtual size_t MemoryBytes() const = 0;

  virtual const JoinerStats& stats() const = 0;

  /// Checkpoint support for supervised recovery. An implementation
  /// returning true must make Restore(blob-from-Snapshot) on a freshly
  /// constructed joiner (same spec/window/options) reproduce the
  /// snapshotted joiner's observable behavior exactly: identical matches,
  /// in identical callback order, for any subsequent Process sequence.
  /// Internal scratch (probe stamps, caches) need not round-trip.
  virtual bool SupportsSnapshot() const { return false; }
  virtual void Snapshot(std::string* /*out*/) const {
    LOG(FATAL) << "joiner does not support snapshots";
  }
  virtual void Restore(const std::string& /*blob*/) {
    LOG(FATAL) << "joiner does not support snapshots";
  }

  /// Incremental checkpointing for the async tiered store. FreezeBase and
  /// FreezeDelta capture a cheap immutable view of the state at the call
  /// boundary (reference bumps + small copies of dirty bookkeeping) and
  /// return the encoder that serializes it later on the checkpoint thread;
  /// both reset the joiner's dirty tracking, so the next FreezeDelta
  /// covers exactly the state touched since this call. A delta blob
  /// (is_delta = true) replays on top of the preceding image via
  /// RestoreDelta; recovery therefore applies Restore(base) then
  /// RestoreDelta(each delta, epoch order). The defaults serialize a full
  /// image eagerly (is_delta = false), so every joiner works under the
  /// async driver and incremental support is a pure optimization.
  virtual bool SupportsIncrementalSnapshot() const { return false; }
  virtual store::FrozenBlob FreezeBase() {
    auto blob = std::make_shared<std::string>();
    Snapshot(blob.get());
    store::FrozenBlob f;
    f.encode = [blob](std::string* out) { *out = std::move(*blob); };
    return f;
  }
  virtual store::FrozenBlob FreezeDelta() { return FreezeBase(); }
  virtual void RestoreDelta(const std::string& /*blob*/) {
    LOG(FATAL) << "joiner does not support delta snapshots";
  }

  /// Tiered spill: when attached, the memory-budget path moves cold
  /// window state to `spill` once approximate hot bytes would exceed
  /// `watermark_bytes`, instead of evicting it — probes read cold records
  /// back on demand, so recall is preserved for windows larger than the
  /// budget. The default ignores the store (implementations without an
  /// eviction order, or where cold state has no per-record granularity,
  /// keep PR 3 budget eviction — see docs/INTERNALS.md §13).
  virtual bool SupportsSpill() const { return false; }
  virtual void AttachSpillStore(store::SpillStore* /*spill*/, size_t /*watermark_bytes*/) {}
};

/// Checkpoint helpers shared by the joiner implementations.

inline void WriteRecordTo(const Record& r, BinaryWriter* w) {
  w->WriteU64(r.id);
  w->WriteU64(r.seq);
  w->WriteI64(r.timestamp);
  w->WriteU32Span(r.tokens.data(), r.tokens.size());
}

inline RecordPtr ReadRecordFrom(BinaryReader* r) {
  const uint64_t id = r->ReadU64();
  const uint64_t seq = r->ReadU64();
  const int64_t timestamp = r->ReadI64();
  std::vector<TokenId> tokens;
  r->ReadU32Vec(&tokens);
  return std::make_shared<const Record>(id, seq, timestamp, std::move(tokens));
}

inline void WriteJoinerStats(const JoinerStats& s, BinaryWriter* w) {
  w->WriteU64(s.probes);
  w->WriteU64(s.stores);
  w->WriteU64(s.evictions);
  w->WriteU64(s.results);
  w->WriteU64(s.budget_evictions);
  w->WriteU64(s.eviction_horizon_seq);
  w->WriteU64(s.postings_scanned);
  w->WriteU64(s.dead_postings_purged);
  w->WriteU64(s.candidates);
  w->WriteU64(s.length_filtered);
  w->WriteU64(s.position_filtered);
  w->WriteU64(s.suffix_filtered);
  w->WriteU64(s.verify.merge_steps);
  w->WriteU64(s.verify.full_verifications);
  w->WriteU64(s.verify.diff_verifications);
  w->WriteU64(s.verify.early_exits);
  w->WriteU64(s.bundles_created);
  w->WriteU64(s.members_added);
  w->WriteU64(s.bundle_candidates);
  w->WriteU64(s.batch_accepts);
  w->WriteU64(s.batch_rejects);
  w->WriteU64(s.member_diff_resolutions);
  w->WriteU64(s.spilled_records);
  w->WriteU64(s.spilled_bytes);
  w->WriteU64(s.spill_reads);
  w->WriteU64(s.spill_read_errors);
}

inline void ReadJoinerStats(BinaryReader* r, JoinerStats* s) {
  s->probes = r->ReadU64();
  s->stores = r->ReadU64();
  s->evictions = r->ReadU64();
  s->results = r->ReadU64();
  s->budget_evictions = r->ReadU64();
  s->eviction_horizon_seq = r->ReadU64();
  s->postings_scanned = r->ReadU64();
  s->dead_postings_purged = r->ReadU64();
  s->candidates = r->ReadU64();
  s->length_filtered = r->ReadU64();
  s->position_filtered = r->ReadU64();
  s->suffix_filtered = r->ReadU64();
  s->verify.merge_steps = r->ReadU64();
  s->verify.full_verifications = r->ReadU64();
  s->verify.diff_verifications = r->ReadU64();
  s->verify.early_exits = r->ReadU64();
  s->bundles_created = r->ReadU64();
  s->members_added = r->ReadU64();
  s->bundle_candidates = r->ReadU64();
  s->batch_accepts = r->ReadU64();
  s->batch_rejects = r->ReadU64();
  s->member_diff_resolutions = r->ReadU64();
  s->spilled_records = r->ReadU64();
  s->spilled_bytes = r->ReadU64();
  s->spill_reads = r->ReadU64();
  s->spill_read_errors = r->ReadU64();
}

}  // namespace dssj

#endif  // DSSJ_CORE_LOCAL_JOINER_H_
