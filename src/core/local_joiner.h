#ifndef DSSJ_CORE_LOCAL_JOINER_H_
#define DSSJ_CORE_LOCAL_JOINER_H_

#include <cstdint>
#include <functional>

#include "core/verify.h"
#include "text/record.h"

namespace dssj {

/// One emitted join result: the probing record and a previously stored
/// partner. Sequence numbers let distributed callers apply the
/// exactly-once rule (emit iff partner_seq < probe_seq).
struct ResultPair {
  uint64_t probe_id = 0;
  uint64_t probe_seq = 0;
  uint64_t partner_id = 0;
  uint64_t partner_seq = 0;

  friend bool operator==(const ResultPair& a, const ResultPair& b) = default;
};

using ResultCallback = std::function<void(const ResultPair&)>;

/// Instrumentation shared by all joiner implementations; benches read these
/// to attribute filtering vs verification cost. Fields irrelevant to an
/// implementation stay zero.
struct JoinerStats {
  uint64_t probes = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;
  uint64_t results = 0;

  // Filtering.
  uint64_t postings_scanned = 0;
  uint64_t dead_postings_purged = 0;
  uint64_t candidates = 0;         ///< distinct candidates reaching verification
  uint64_t length_filtered = 0;    ///< pruned by the partner-length bound
  uint64_t position_filtered = 0;  ///< pruned by the positional filter
  uint64_t suffix_filtered = 0;    ///< pruned by the suffix filter (if on)

  // Verification.
  VerifyCounters verify;

  // Bundle-specific.
  uint64_t bundles_created = 0;
  uint64_t members_added = 0;
  uint64_t bundle_candidates = 0;       ///< candidate bundles probed
  uint64_t batch_accepts = 0;           ///< members accepted by the lower bound
  uint64_t batch_rejects = 0;           ///< members rejected by the upper bound
  uint64_t member_diff_resolutions = 0; ///< members resolved via diff merge
};

/// A single-partition streaming set-similarity joiner: maintains a sliding
/// window of stored records and, for each probing record, reports every
/// stored record satisfying the similarity predicate.
///
/// Implementations are deliberately single-threaded (the distributed layer
/// provides parallelism by running one joiner per task); callers must
/// serialize Process calls.
class LocalJoiner {
 public:
  virtual ~LocalJoiner() = default;

  /// Handles one record. When `probe` is set, invokes `cb` once per stored
  /// record matching `r` (all matches — callers apply any cross-partition
  /// dedup rule). When `store` is set, `r` joins the window afterwards, so
  /// a record never matches itself. Eviction (by `r`'s timestamp for time
  /// windows) happens before probing. Empty records neither match nor
  /// store.
  virtual void Process(const RecordPtr& r, bool store, bool probe,
                       const ResultCallback& cb) = 0;

  /// Records currently stored in the window.
  virtual size_t StoredCount() const = 0;

  /// Approximate resident bytes of window + index state.
  virtual size_t MemoryBytes() const = 0;

  virtual const JoinerStats& stats() const = 0;
};

}  // namespace dssj

#endif  // DSSJ_CORE_LOCAL_JOINER_H_
