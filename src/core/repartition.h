#ifndef DSSJ_CORE_REPARTITION_H_
#define DSSJ_CORE_REPARTITION_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "core/similarity.h"

namespace dssj {

/// Exponentially decayed length histogram: recent stream records weigh
/// more, so the snapshot tracks non-stationary length distributions. One
/// record of "weight" decays by `half_life_records` halving.
class DecayingLengthHistogram {
 public:
  /// Requires half_life_records >= 1.
  explicit DecayingLengthHistogram(uint64_t half_life_records);

  void Add(size_t length);

  /// The decayed distribution as an integer histogram (counts scaled so
  /// that the total equals the *effective* number of recent records).
  LengthHistogram Snapshot() const;

  /// Effective (decayed) record count.
  double EffectiveCount() const;

 private:
  void Renormalize();

  double growth_per_record_;
  double weight_ = 1.0;
  double total_weight_ = 0.0;
  std::vector<double> counts_;
};

/// Outcome of evaluating a repartition opportunity.
struct MigrationPlan {
  LengthPartition new_partition;
  /// Estimated bottleneck load of the current / new partition under the
  /// *current* (recent) length distribution.
  double current_bottleneck = 0.0;
  double new_bottleneck = 0.0;
  /// current_bottleneck / new_bottleneck; > 1 means the new partition is
  /// predicted better.
  double improvement_factor = 1.0;
  /// Stored records whose owner changes (must be shipped between joiners)
  /// and their estimated bytes, from the stored-window histogram.
  uint64_t records_to_move = 0;
  uint64_t bytes_to_move = 0;
  double move_fraction = 0.0;  ///< records_to_move / window size
  bool recommended = false;
};

/// When a replan is worth its migration cost.
struct RepartitionPolicy {
  /// Replan only when the predicted bottleneck shrinks at least this much.
  double min_improvement = 1.2;
  /// Never move more than this fraction of the stored window at once.
  double max_move_fraction = 0.5;
};

/// Watches the incoming stream's length distribution (decayed) and, on
/// demand, proposes a better length partition together with its predicted
/// benefit and migration cost. The paper plans the partition from a sample
/// of the stream; this extension closes the loop for non-stationary
/// streams (live state migration itself is out of scope — callers decide
/// when to apply the plan, e.g. at window boundaries).
class RepartitionAdvisor {
 public:
  RepartitionAdvisor(const SimilaritySpec& sim, int num_partitions,
                     RepartitionPolicy policy = {},
                     uint64_t half_life_records = 20000);

  /// Feed every incoming record's length.
  void ObserveLength(size_t length);

  /// Evaluates replacing `current` with a freshly planned partition.
  /// `stored_window` is the length histogram of records currently held by
  /// the joiners (for migration cost); pass the recent-stream snapshot if
  /// unknown.
  MigrationPlan Evaluate(const LengthPartition& current,
                         const LengthHistogram& stored_window) const;

  /// The recent-stream histogram (decayed).
  LengthHistogram RecentHistogram() const { return monitor_.Snapshot(); }

 private:
  SimilaritySpec sim_;
  int num_partitions_;
  RepartitionPolicy policy_;
  DecayingLengthHistogram monitor_;
};

/// One planned task relocation (see PlanWorkerMigrations).
struct WorkerMove {
  int task_index = -1;
  int target_worker = -1;
};

/// Plans live task→worker migrations for elastic scaling. `load[i]` is the
/// recent load of task i (any nonnegative unit, e.g. tuples/interval) and
/// `current_worker[i]` its current placement. The plan (a) evacuates every
/// task placed outside the active set [0, target_active_workers) — heaviest
/// first onto the least-loaded active worker — and (b) rebalances within
/// the active set while the bottleneck worker carries more than
/// (1 + imbalance_threshold) × mean load and moving a task still helps.
/// Deterministic (ties break on lowest index) and stable: an already
/// balanced placement yields no moves. At most one move per task.
std::vector<WorkerMove> PlanWorkerMigrations(const std::vector<double>& load,
                                             const std::vector<int>& current_worker,
                                             int target_active_workers,
                                             double imbalance_threshold);

}  // namespace dssj

#endif  // DSSJ_CORE_REPARTITION_H_
