#ifndef DSSJ_CORE_VERIFY_H_
#define DSSJ_CORE_VERIFY_H_

#include <cstddef>
#include <vector>

#include "text/record.h"

namespace dssj {

/// Counters shared by verification routines so benches can attribute cost.
struct VerifyCounters {
  uint64_t merge_steps = 0;      ///< token comparisons performed
  uint64_t full_verifications = 0;
  uint64_t diff_verifications = 0;
  uint64_t early_exits = 0;
};

/// Merge-counts the overlap of two ascending token arrays with early
/// termination: returns the exact overlap if it is >= `required`; otherwise
/// returns some value < `required` (callers only compare against
/// `required`). `required` == 0 disables early exit and the result is exact.
size_t VerifyOverlap(const std::vector<TokenId>& a, const std::vector<TokenId>& b,
                     size_t required, VerifyCounters* counters = nullptr);

/// Counts |probe ∩ diff| where both arrays are ascending. Used by bundle
/// batch verification: a member's overlap with the probe is derived from
/// the pivot overlap plus intersections with the (small) added/removed
/// token diffs instead of a full merge.
size_t IntersectCount(const std::vector<TokenId>& probe, const std::vector<TokenId>& diff,
                      VerifyCounters* counters = nullptr);

/// Lower-bounds the symmetric-difference size |a △ b| of two ascending
/// token arrays in O(2^depth · log) by divide and conquer (the PPJoin+
/// suffix-filter bound): split `b` at its middle token w; tokens of `a`
/// below w can only match tokens of `b` below w (and likewise above), so
/// |a △ b| >= lb(a<w, b<w) + lb(a>w, b>w) + [w ∉ a], with
/// lb(x, y) >= ||x| − |y|| at the recursion base. Never exceeds the true
/// symmetric difference. Since overlap = (|a| + |b| − |a △ b|) / 2, a pair
/// requiring overlap α can be pruned when the bound exceeds
/// |a| + |b| − 2α.
size_t SymmetricDifferenceLowerBound(const std::vector<TokenId>& a,
                                     const std::vector<TokenId>& b, int max_depth);

}  // namespace dssj

#endif  // DSSJ_CORE_VERIFY_H_
