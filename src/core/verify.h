#ifndef DSSJ_CORE_VERIFY_H_
#define DSSJ_CORE_VERIFY_H_

#include <cstddef>
#include <vector>

#include "text/record.h"

namespace dssj {

/// Counters shared by verification routines so benches can attribute cost.
struct VerifyCounters {
  uint64_t merge_steps = 0;      ///< kernel loop iterations (blocks/searches)
  uint64_t full_verifications = 0;
  uint64_t diff_verifications = 0;
  uint64_t early_exits = 0;
};

/// Which implementation the verification routines dispatch to. kBlock is
/// the optimized default: a branch-light 4-token block merge (SIMD when the
/// CPU supports it) with galloping binary search once the input lengths are
/// skewed >= 16x. kScalar is the pre-optimization reference loop — kept
/// callable so equivalence tests and before/after benchmarks can pin it.
enum class VerifyKernel { kScalar, kBlock };

/// Process-wide kernel selection (benches/tests; default kBlock). Not
/// intended to be toggled while joiners are running.
void SetVerifyKernel(VerifyKernel kernel);
VerifyKernel GetVerifyKernel();

/// Merge-counts the overlap of two ascending token arrays with early
/// termination: returns the exact overlap if it is >= `required`; otherwise
/// returns some value < `required` (callers only compare against
/// `required`). `required` == 0 disables early exit and the result is exact.
///
/// The span form is the hot-path entry point: joiners hand in raw
/// `const TokenId*` ranges (stored records, bundle pivots, diff-decoded
/// members) without materializing vectors.
size_t VerifyOverlap(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                     size_t required, VerifyCounters* counters = nullptr);

/// TokenSpan convenience form: accepts std::vector<TokenId>, TokenArray
/// (owning or frame-borrowed) and raw spans alike.
size_t VerifyOverlap(TokenSpan a, TokenSpan b, size_t required,
                     VerifyCounters* counters = nullptr);

/// The reference scalar merge loop (pre-optimization behaviour), exposed so
/// fuzz tests can cross-check the block/SIMD kernel and benches can measure
/// the baseline. Identical contract to VerifyOverlap.
size_t VerifyOverlapScalar(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                           size_t required, VerifyCounters* counters = nullptr);

/// Counts |probe ∩ diff| where both arrays are ascending. Used by bundle
/// batch verification: a member's overlap with the probe is derived from
/// the pivot overlap plus intersections with the (small) added/removed
/// token diffs instead of a full merge.
size_t IntersectCount(const TokenId* probe, size_t nprobe, const TokenId* diff,
                      size_t ndiff, VerifyCounters* counters = nullptr);

size_t IntersectCount(TokenSpan probe, TokenSpan diff, VerifyCounters* counters = nullptr);

/// Lower-bounds the symmetric-difference size |a △ b| of two ascending
/// token arrays in O(2^depth · log) by divide and conquer (the PPJoin+
/// suffix-filter bound): split `b` at its middle token w; tokens of `a`
/// below w can only match tokens of `b` below w (and likewise above), so
/// |a △ b| >= lb(a<w, b<w) + lb(a>w, b>w) + [w ∉ a], with
/// lb(x, y) >= ||x| − |y|| at the recursion base. Never exceeds the true
/// symmetric difference. Since overlap = (|a| + |b| − |a △ b|) / 2, a pair
/// requiring overlap α can be pruned when the bound exceeds
/// |a| + |b| − 2α.
size_t SymmetricDifferenceLowerBound(TokenSpan a, TokenSpan b, int max_depth);

}  // namespace dssj

#endif  // DSSJ_CORE_VERIFY_H_
