#include "core/join_topology.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <variant>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "core/brute_force_joiner.h"
#include "core/repartition.h"
#include "net/transport.h"
#include "store/spill.h"
#include "stream/topology.h"

namespace dssj {
namespace {

constexpr int64_t kFlagStore = 1;
constexpr int64_t kFlagProbe = 2;
/// Lane id rides in the flag word's upper bits (data tuples under sharded
/// ingestion). Bits 0-1 stay the store/probe flags.
constexpr int kFlagLaneShift = 2;

/// Records between lane-frontier watermarks (sharded ingestion). Each
/// dispatcher lane broadcasts its frontier to every joiner at this cadence
/// so merge buffers drain even when the lane routes nothing to a joiner
/// for a while. Checkpointed (cadence counter), so recovery replays the
/// identical emission pattern.
constexpr uint64_t kWatermarkEvery = 32;

const char* kSourceName = "source";
const char* kDispatcherName = "dispatcher";
const char* kJoinerName = "joiner";
const char* kSinkName = "sink";

/// State shared between the driver and the bolts of one run.
struct SharedState {
  explicit SharedState(int num_joiners)
      : joiner_stats(num_joiners), joiner_stored(num_joiners, 0) {}

  std::atomic<uint64_t> result_count{0};
  Histogram latency;

  std::mutex pairs_mu;
  std::vector<ResultPair> pairs;

  // Written once per joiner task at Finish (disjoint slots).
  std::vector<JoinerStats> joiner_stats;
  std::vector<size_t> joiner_stored;

  // Written by the (single) adaptive dispatcher at Finish.
  std::atomic<uint64_t> router_replans{0};
  std::atomic<uint64_t> router_live_epochs{0};

  // Shedding totals, published by joiners at Finish (like result_count, so
  // a crashed incarnation's half-done sheds die with it).
  std::atomic<uint64_t> shed_probes{0};
  std::atomic<uint64_t> shed_pairs_upper_bound{0};
  std::mutex shed_mu;
  std::vector<std::pair<uint64_t, int>> shed_probe_seqs;  ///< (probe seq, partition)
};

/// Replays a pre-built record vector as a stream, optionally paced to an
/// arrival rate. Tuple layout: [record payload, emit-time micros].
///
/// Under sharded ingestion (spout parallelism N > 1) lane i replays the
/// records at global indices ≡ i (mod N): a round-robin stripe, so the N
/// lane streams interleave finely and the joiners' merge buffers stay
/// shallow. Pacing targets use the *global* index, keeping the aggregate
/// arrival rate at `rate_per_sec` regardless of the lane count.
class RecordStreamSpout : public stream::Spout {
 public:
  RecordStreamSpout(std::shared_ptr<const std::vector<RecordPtr>> input, double rate_per_sec)
      : input_(std::move(input)), rate_(rate_per_sec) {}

  void Open(const stream::TaskContext& ctx) override {
    lane_ = ctx.task_index;
    lanes_ = std::max(1, ctx.parallelism);
    start_us_ = NowMicros();
  }

  bool NextTuple(stream::OutputCollector& out) override {
    const size_t idx = static_cast<size_t>(lane_) + pos_ * static_cast<size_t>(lanes_);
    if (idx >= input_->size()) return false;
    if (rate_ > 0.0) {
      const int64_t target_us =
          start_us_ + static_cast<int64_t>(static_cast<double>(idx) * 1e6 / rate_);
      int64_t now = NowMicros();
      while (now < target_us) {
        if (target_us - now > 200) {
          std::this_thread::sleep_for(std::chrono::microseconds(target_us - now - 100));
        }
        now = NowMicros();
      }
    }
    const RecordPtr& r = (*input_)[idx];
    ++pos_;
    stream::Tuple t = stream::MakeTuple(std::shared_ptr<const void>(r),
                                        static_cast<int64_t>(NowMicros()));
    t.set_payload_bytes(r->SerializedBytes());
    out.Emit(std::move(t));
    return true;
  }

  /// Checkpoint = lane-local replay offset (the lane/stripe layout is a
  /// pure function of the task context, so it is not serialized). A
  /// restored spout continues from the next unread record; pacing restarts
  /// from the new Open time (emit timestamps shift, but they only feed the
  /// latency histogram, which is documented as distorted under faults).
  bool SupportsSnapshot() const override { return true; }
  void Snapshot(std::string* out) const override { BinaryWriter(out).WriteU64(pos_); }
  void Restore(const std::string& blob) override {
    BinaryReader r(blob);
    pos_ = static_cast<size_t>(r.ReadU64());
  }

 private:
  std::shared_ptr<const std::vector<RecordPtr>> input_;
  double rate_;
  size_t pos_ = 0;  ///< lane-local stripe position
  int lane_ = 0;
  int lanes_ = 1;
  int64_t start_us_ = 0;
};

/// Routes each record to joiner partitions per the configured strategy.
///
/// Under sharded ingestion (dispatcher parallelism N > 1, one-to-one with
/// the source lanes) each lane tags its data tuples with its lane id (in
/// the flag word) and broadcasts a frontier *watermark* to every joiner
/// every kWatermarkEvery records: "this lane will emit no record with seq
/// below W". Watermarks advance even for records that route nowhere, so
/// the joiners' lane merge never stalls on a quiet lane. Watermark tuples
/// are [lane, frontier] int pairs — joiners tell them apart from data
/// tuples by the type of field 0.
class DispatcherBolt : public stream::Bolt {
 public:
  DispatcherBolt(const DistributedJoinOptions* options, std::shared_ptr<SharedState> shared,
                 std::shared_ptr<AdaptiveRouterState> adaptive_state = nullptr)
      : options_(options),
        shared_(std::move(shared)),
        adaptive_state_(std::move(adaptive_state)) {}

  void Prepare(const stream::TaskContext& ctx) override {
    lane_ = ctx.task_index;
    // Not ctx.parallelism: multi-dispatcher runs (num_dispatchers > 1,
    // lanes == 1) must not emit watermarks — joiners only merge when the
    // run was configured with ingest lanes.
    lanes_ = std::max(1, options_->ingest_lanes);
    router_ = MakeRouter(*options_, adaptive_state_);
  }

  void Finish(stream::OutputCollector& out) override {
    if (lanes_ > 1) {
      // Terminal watermark: this lane is done; joiners may drain whatever
      // they buffered for it. Precedes EOS (the executor broadcasts EOS
      // after Finish + flush).
      EmitWatermarks(out, std::numeric_limits<int64_t>::max());
    }
    if (const auto* adaptive = dynamic_cast<const AdaptiveLengthRouter*>(router_.get())) {
      shared_->router_replans.store(adaptive->replans(), std::memory_order_relaxed);
      shared_->router_live_epochs.store(adaptive->live_epochs(), std::memory_order_relaxed);
    }
  }

  void Execute(stream::Tuple tuple, stream::OutputCollector& out) override {
    Dispatch(tuple, out);
  }

  void ExecuteBatch(stream::TupleBatch batch, stream::OutputCollector& out) override {
    // Whole inbound batch routed without per-tuple virtual dispatch; the
    // collector coalesces the resulting EmitDirects per joiner task.
    for (stream::Tuple& tuple : batch) Dispatch(tuple, out);
  }

  /// The static routers are pure functions of the options, so a fresh
  /// Prepare almost fully recovers the dispatcher; the snapshot carries
  /// only the lane-watermark cadence state so a replayed lane re-emits
  /// watermarks at the identical points (the per-link sequence guard
  /// suppresses the duplicates). The adaptive router is excluded — its
  /// epoch state evolves with wall time, so a replayed run may route
  /// differently; it recovers by full replay only and is not covered by
  /// the exact-recovery guarantee.
  bool SupportsSnapshot() const override { return !options_->adaptive; }
  void Snapshot(std::string* out) const override {
    BinaryWriter w(out);
    w.WriteU64(since_watermark_);
    w.WriteU64(static_cast<uint64_t>(last_seq_));
  }
  void Restore(const std::string& blob) override {
    BinaryReader r(blob);
    since_watermark_ = r.ReadU64();
    last_seq_ = static_cast<int64_t>(r.ReadU64());
  }

 private:
  void Dispatch(stream::Tuple& tuple, stream::OutputCollector& out) {
    const auto record = tuple.Ptr<Record>(0);
    const int64_t emit_us = tuple.Int(1);
    router_->Route(*record, targets_);
    const int64_t lane_bits = static_cast<int64_t>(lane_) << kFlagLaneShift;
    for (const RouteTarget& target : targets_) {
      int64_t flags = lane_bits;
      if (target.store) flags |= kFlagStore;
      if (target.probe) flags |= kFlagProbe;
      stream::Tuple t = stream::MakeTuple(std::shared_ptr<const void>(record), flags, emit_us);
      t.set_payload_bytes(record->SerializedBytes());
      out.EmitDirect(kJoinerName, target.partition, std::move(t));
    }
    if (lanes_ > 1) {
      // Frontier advances on every routed record — including ones with no
      // targets — so degenerate records never stall the merge.
      last_seq_ = static_cast<int64_t>(record->seq);
      if (++since_watermark_ >= kWatermarkEvery) {
        since_watermark_ = 0;
        EmitWatermarks(out, last_seq_ + 1);
      }
    }
  }

  void EmitWatermarks(stream::OutputCollector& out, int64_t frontier) {
    for (int p = 0; p < options_->num_joiners; ++p) {
      out.EmitDirect(kJoinerName, p,
                     stream::MakeTuple(static_cast<int64_t>(lane_), frontier));
    }
  }

  const DistributedJoinOptions* options_;
  std::shared_ptr<SharedState> shared_;
  std::shared_ptr<AdaptiveRouterState> adaptive_state_;
  std::unique_ptr<Router> router_;
  std::vector<RouteTarget> targets_;
  int lane_ = 0;
  int lanes_ = 1;
  uint64_t since_watermark_ = 0;
  int64_t last_seq_ = -1;
};

/// Runs one local joiner partition; applies the seq-order emission rule and
/// reports latency + stats through SharedState.
class JoinerBolt : public stream::Bolt {
 public:
  JoinerBolt(const DistributedJoinOptions* options, std::shared_ptr<SharedState> shared)
      : options_(options), shared_(std::move(shared)) {}

  void Prepare(const stream::TaskContext& ctx) override {
    partition_ = ctx.task_index;
    metrics_ = ctx.metrics;
    queue_health_ = ctx.queue_health;
    shed_threshold_ = std::max<size_t>(
        1, static_cast<size_t>(options_->shed_watermark *
                               static_cast<double>(options_->queue_capacity)));
    lanes_ = std::max(1, options_->ingest_lanes);
    if (lanes_ > 1) {
      lane_buf_.assign(static_cast<size_t>(lanes_), {});
      lane_frontier_.assign(static_cast<size_t>(lanes_), 0);
    }
    joiner_ = MakeLocalJoiner(*options_, partition_);
    if (!options_->store_dir.empty() && options_->spill_watermark > 0.0 &&
        options_->max_index_bytes > 0 && joiner_->SupportsSpill()) {
      // The spill directory is NOT cleared here: after a crash the
      // recovered base/delta chain holds handles into the previous
      // incarnation's segments. Open() treats leftover frames as
      // unclaimed; Restore re-claims the referenced ones and the rest are
      // purged once recovery completes.
      const std::string dir =
          options_->store_dir + "/spill_" + ctx.component + "_p" + std::to_string(partition_);
      const auto gc = options_->checkpoint_mode == store::CheckpointMode::kAsync
                          ? store::SpillStore::GcPolicy::kDeferred
                          : store::SpillStore::GcPolicy::kImmediate;
      const Status st = store::SpillStore::Open(dir, options_->store_segment_bytes, gc, &spill_);
      if (st.ok()) {
        const auto watermark = static_cast<size_t>(
            options_->spill_watermark * static_cast<double>(options_->max_index_bytes));
        joiner_->AttachSpillStore(spill_.get(), watermark);
      } else {
        // Spill is a memory/recall optimization; a joiner without it
        // falls back to budget eviction, so the run degrades, not dies.
        LOG(ERROR) << "spill store unavailable (" << st.ToString() << "); using eviction";
        spill_.reset();
      }
    }
  }

  void Execute(stream::Tuple tuple, stream::OutputCollector& out) override {
    SampleHealth();
    Process(tuple, out);
  }

  void ExecuteBatch(stream::TupleBatch batch, stream::OutputCollector& out) override {
    // One health read per batch: the queue cannot refill mid-batch beyond
    // what the sample saw by more than the in-flight producers, and the
    // sample itself takes the queue lock.
    SampleHealth();
    for (stream::Tuple& tuple : batch) Process(tuple, out);
  }

  void Finish(stream::OutputCollector& out) override {
    if (lanes_ > 1) {
      // EOS from every dispatcher lane implies every lane is complete.
      // Normally the lanes' terminal watermarks have already drained the
      // merge buffers; release the frontiers and drain defensively so a
      // fault-path reordering can never swallow buffered tuples.
      for (uint64_t& f : lane_frontier_) f = std::numeric_limits<uint64_t>::max();
      DrainMerge(out);
    }
    // Side effects stay bolt-local until here so a crashed incarnation's
    // half-done work dies with it (the supervisor replays into a fresh
    // instance); the surviving incarnation publishes once.
    shared_->result_count.fetch_add(result_count_, std::memory_order_relaxed);
    shared_->latency.Merge(latency_);
    shared_->joiner_stats[partition_] = joiner_->stats();
    shared_->joiner_stored[partition_] = joiner_->StoredCount();
    shared_->shed_probes.fetch_add(shed_probes_, std::memory_order_relaxed);
    shared_->shed_pairs_upper_bound.fetch_add(shed_ub_, std::memory_order_relaxed);
    if (!shed_seqs_.empty()) {
      std::lock_guard<std::mutex> lock(shared_->shed_mu);
      for (const uint64_t seq : shed_seqs_) {
        shared_->shed_probe_seqs.emplace_back(seq, partition_);
      }
    }
    if (metrics_ != nullptr) {
      // app_results rides the transport's metrics barrier, so the
      // coordinator's result_count is cluster-wide under kTcp.
      metrics_->app_results.Add(result_count_);
      metrics_->shed_probes.Add(shed_probes_);
      metrics_->shed_pairs_upper_bound.Add(shed_ub_);
      const JoinerStats& js = joiner_->stats();
      metrics_->spilled_bytes.Add(js.spilled_bytes);
      metrics_->spill_reads.Add(js.spill_reads);
    }
  }

  /// Checkpoint = emission-rule result count + shed accounting + (under
  /// sharded ingestion) the lane-merge state + the joiner's own snapshot.
  /// Merge-buffered tuples were consumed from the inbound queue *before*
  /// the checkpoint boundary and are never replayed, so they must ride in
  /// the checkpoint; lane frontiers ride along so the drain rule resumes
  /// exactly. Shed state rides in the checkpoint so a recovered task's
  /// counters stay exactly consistent with its emitted results (sheds
  /// during replay may differ from the crashed run's — queue pressure is
  /// not replayed — but count and seq list always move together). The
  /// latency histogram is deliberately not checkpointed: replayed probes
  /// re-measure, so under injected faults the latency distribution is
  /// approximate (result sets stay exact).
  bool SupportsSnapshot() const override { return joiner_->SupportsSnapshot(); }
  void Snapshot(std::string* out) const override {
    BinaryWriter w(out);
    w.WriteU64(result_count_);
    w.WriteU64(shed_probes_);
    w.WriteU64(shed_ub_);
    w.WriteU64(shed_pending_);
    w.WriteU32(shed_active_ ? 1 : 0);
    w.WriteU64(shed_seqs_.size());
    for (const uint64_t seq : shed_seqs_) w.WriteU64(seq);
    WriteMergeState(w);
    std::string joiner_blob;
    joiner_->Snapshot(&joiner_blob);
    w.WriteBytes(joiner_blob);
  }
  void Restore(const std::string& blob) override {
    BinaryReader r(blob);
    result_count_ = r.ReadU64();
    shed_probes_ = r.ReadU64();
    shed_ub_ = r.ReadU64();
    shed_pending_ = r.ReadU64();
    shed_active_ = r.ReadU32() != 0;
    shed_seqs_.clear();
    const uint64_t n = r.ReadU64();
    shed_seqs_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) shed_seqs_.push_back(r.ReadU64());
    ReadMergeState(r);
    std::string joiner_blob;
    r.ReadBytes(&joiner_blob);
    joiner_->Restore(joiner_blob);
    // A self-contained image (tag 0: migration blob or in-memory fallback)
    // re-appends its cold records to fresh frames, so whatever the
    // previous incarnation left on disk is garbage now. Tiered bases wait
    // for OnRestoreComplete — the delta chain still claims frames.
    if (spill_ != nullptr && !joiner_blob.empty() && joiner_blob[0] == 0) {
      spill_->PurgeUnclaimed();
    }
  }

  /// Async-checkpoint path (TopologyBuilder::SetStore). The bolt header
  /// (a few counters + the shed seq list) is copied eagerly — it mutates
  /// with the very next tuple; the joiner contributes its frozen view,
  /// which serializes later on the checkpoint thread. Layout matches
  /// Snapshot/Restore, so bases restore through Restore() unchanged.
  bool SupportsDeltaSnapshot() const override {
    return joiner_->SupportsIncrementalSnapshot();
  }
  store::FrozenBlob Freeze(bool want_delta) override {
    auto header = std::make_shared<std::string>();
    {
      BinaryWriter w(header.get());
      w.WriteU64(result_count_);
      w.WriteU64(shed_probes_);
      w.WriteU64(shed_ub_);
      w.WriteU64(shed_pending_);
      w.WriteU32(shed_active_ ? 1 : 0);
      w.WriteU64(shed_seqs_.size());
      for (const uint64_t seq : shed_seqs_) w.WriteU64(seq);
      // Merge buffers mutate with the very next tuple, so they are copied
      // eagerly into the header rather than deferred to the freeze view.
      WriteMergeState(w);
    }
    store::FrozenBlob inner = want_delta ? joiner_->FreezeDelta() : joiner_->FreezeBase();
    if (!inner.is_delta && spill_ != nullptr &&
        options_->checkpoint_mode == store::CheckpointMode::kAsync) {
      // Segments fully retired before this base was frozen are invisible
      // to it and to every later delta; reclaim them once it is durable.
      retire_marks_.push_back(spill_->TakeRetireMark());
    }
    auto inner_encode =
        std::make_shared<std::function<void(std::string*)>>(std::move(inner.encode));
    store::FrozenBlob f;
    f.is_delta = inner.is_delta;
    f.encode = [header, inner_encode](std::string* out) {
      *out = std::move(*header);
      std::string joiner_blob;
      (*inner_encode)(&joiner_blob);
      BinaryWriter(out).WriteBytes(joiner_blob);
    };
    return f;
  }
  void RestoreDelta(const std::string& blob) override {
    BinaryReader r(blob);
    result_count_ = r.ReadU64();
    shed_probes_ = r.ReadU64();
    shed_ub_ = r.ReadU64();
    shed_pending_ = r.ReadU64();
    shed_active_ = r.ReadU32() != 0;
    shed_seqs_.clear();
    const uint64_t n = r.ReadU64();
    shed_seqs_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) shed_seqs_.push_back(r.ReadU64());
    ReadMergeState(r);
    std::string joiner_blob;
    r.ReadBytes(&joiner_blob);
    joiner_->RestoreDelta(joiner_blob);
  }
  void OnCheckpointDurable(uint64_t /*epoch*/, bool is_base) override {
    // Marks queue in freeze order and bases confirm in epoch order, so
    // front() is the mark taken when this base froze. The driver-submitted
    // initial base (epoch 0) predates Prepare's first Freeze and has no
    // mark — the empty-queue guard skips it.
    if (!is_base || spill_ == nullptr || retire_marks_.empty()) return;
    spill_->DeleteRetiredBefore(retire_marks_.front());
    retire_marks_.pop_front();
  }
  void OnRestoreComplete() override {
    if (spill_ != nullptr) spill_->PurgeUnclaimed();
    retire_marks_.clear();
  }

 private:
  /// Reads the inbound queue's health and updates the shed state machine.
  /// kProbe/kBundle are level-triggered (shed while over the watermark);
  /// kOldest latches the backlog size on the upward crossing and sheds
  /// exactly that many probes. kBundle additionally shrinks the stored
  /// window by 1/8 on each crossing, trading recall for service rate.
  void SampleHealth() {
    if (options_->shed_policy == stream::ShedPolicy::kNone || !queue_health_) return;
    const stream::QueueHealth h = queue_health_();
    const bool over = h.force_shed || h.depth >= shed_threshold_;
    const bool was_over = shed_active_;
    shed_active_ = over;
    if (over && !was_over) {
      if (options_->shed_policy == stream::ShedPolicy::kOldest) {
        shed_pending_ += h.depth;
      } else if (options_->shed_policy == stream::ShedPolicy::kBundle) {
        joiner_->EvictOldest(std::max<size_t>(1, joiner_->StoredCount() / 8));
      }
    }
  }

  bool ShouldShedProbe() {
    switch (options_->shed_policy) {
      case stream::ShedPolicy::kNone:
        return false;
      case stream::ShedPolicy::kProbe:
      case stream::ShedPolicy::kBundle:
        return shed_active_;
      case stream::ShedPolicy::kOldest:
        if (shed_pending_ > 0) {
          --shed_pending_;
          return true;
        }
        return false;
    }
    return false;
  }

  /// A data tuple queued behind the lane merge (sharded ingestion).
  struct PendingTuple {
    RecordPtr record;
    int64_t flags = 0;
    int64_t emit_us = 0;
  };

  void Process(stream::Tuple& tuple, stream::OutputCollector& out) {
    if (lanes_ > 1) {
      if (std::holds_alternative<int64_t>(tuple.field(0))) {
        // Watermark [lane, frontier]: the lane promises no record below
        // `frontier` from now on.
        const auto lane = static_cast<size_t>(tuple.Int(0));
        const auto frontier = static_cast<uint64_t>(tuple.Int(1));
        lane_frontier_[lane] = std::max(lane_frontier_[lane], frontier);
      } else {
        PendingTuple p{tuple.Ptr<Record>(0), tuple.Int(1), tuple.Int(2)};
        lane_buf_[static_cast<size_t>(p.flags >> kFlagLaneShift)].push_back(std::move(p));
      }
      DrainMerge(out);
      return;
    }
    ProcessInOrder(tuple.Ptr<Record>(0), tuple.Int(1), tuple.Int(2), out);
  }

  /// Releases merge-buffered tuples in global seq order: the next tuple to
  /// process is the minimum head seq across lane buffers, and it is safe
  /// to process once every *empty* lane's frontier has passed it (a lane's
  /// tuples arrive in ascending seq order, so a non-empty buffer's head
  /// already bounds that lane). This reproduces the per-joiner arrival
  /// order of a single-lane run, which the exactly-once emission rule and
  /// count-window eviction both depend on.
  void DrainMerge(stream::OutputCollector& out) {
    for (;;) {
      int best = -1;
      uint64_t best_seq = 0;
      uint64_t bound = std::numeric_limits<uint64_t>::max();
      for (int l = 0; l < lanes_; ++l) {
        const auto& buf = lane_buf_[static_cast<size_t>(l)];
        if (!buf.empty()) {
          const uint64_t head = buf.front().record->seq;
          if (best < 0 || head < best_seq) {
            best = l;
            best_seq = head;
          }
        } else {
          bound = std::min(bound, lane_frontier_[static_cast<size_t>(l)]);
        }
      }
      if (best < 0 || best_seq >= bound) return;
      PendingTuple p = std::move(lane_buf_[static_cast<size_t>(best)].front());
      lane_buf_[static_cast<size_t>(best)].pop_front();
      lane_frontier_[static_cast<size_t>(best)] =
          std::max(lane_frontier_[static_cast<size_t>(best)], best_seq + 1);
      ProcessInOrder(p.record, p.flags, p.emit_us, out);
    }
  }

  /// Serializes lane frontiers + buffered tuples (records re-encoded in
  /// full — buffered payloads may borrow frame arenas that do not survive
  /// an incarnation). No-op layout when sharding is off, keeping
  /// single-lane checkpoint blobs byte-identical to earlier builds.
  void WriteMergeState(BinaryWriter& w) const {
    if (lanes_ <= 1) return;
    w.WriteU32(static_cast<uint32_t>(lanes_));
    std::string encoded;
    for (int l = 0; l < lanes_; ++l) {
      w.WriteU64(lane_frontier_[static_cast<size_t>(l)]);
      const auto& buf = lane_buf_[static_cast<size_t>(l)];
      w.WriteU64(buf.size());
      for (const PendingTuple& p : buf) {
        w.WriteU64(static_cast<uint64_t>(p.flags));
        w.WriteU64(static_cast<uint64_t>(p.emit_us));
        encoded.clear();
        EncodeRecord(*p.record, &encoded);
        w.WriteBytes(encoded);
      }
    }
  }
  void ReadMergeState(BinaryReader& r) {
    if (lanes_ <= 1) return;
    const uint32_t lanes = r.ReadU32();
    CHECK_EQ(static_cast<int>(lanes), lanes_) << "checkpoint from a different lane count";
    for (int l = 0; l < lanes_; ++l) {
      lane_frontier_[static_cast<size_t>(l)] = r.ReadU64();
      auto& buf = lane_buf_[static_cast<size_t>(l)];
      buf.clear();
      const uint64_t n = r.ReadU64();
      for (uint64_t i = 0; i < n; ++i) {
        PendingTuple p;
        p.flags = static_cast<int64_t>(r.ReadU64());
        p.emit_us = static_cast<int64_t>(r.ReadU64());
        std::string encoded;
        r.ReadBytes(&encoded);
        auto record = std::make_shared<Record>();
        CHECK(DecodeRecord(encoded.data(), encoded.size(), record.get()))
            << "corrupt merge-buffer record in checkpoint";
        p.record = std::move(record);
        buf.push_back(std::move(p));
      }
    }
  }

  void ProcessInOrder(const RecordPtr& record, int64_t flags, int64_t emit_us,
                      stream::OutputCollector& out) {
    const bool store = (flags & kFlagStore) != 0;
    bool probe = (flags & kFlagProbe) != 0;
    if (probe && ShouldShedProbe()) {
      // Shed the probe side only: the store below still lands, so window
      // and index state match an unshed run and the loss is exactly this
      // record's pairs. No latency sample — the record was not served.
      probe = false;
      ++shed_probes_;
      shed_ub_ += joiner_->StoredCount();
      if (options_->collect_results) shed_seqs_.push_back(record->seq);
    }
    if (!store && !probe) return;
    // Detach-on-store: a record entering the index outlives this frame's
    // processing window, so a frame-borrowed token array is copied to
    // owning storage here — otherwise every stored record would pin its
    // whole frame arena (and checkpoints would serialize borrowed spans
    // racing frame-buffer recycling). Probe-only traffic — the bulk under
    // replicating strategies — keeps the zero-copy borrow.
    const RecordPtr durable = store ? DetachRecord(record) : record;
    joiner_->Process(durable, store, probe, [&](const ResultPair& pair) {
      // Exactly-once rule: only the probe that arrives after its partner
      // reports the pair (see DESIGN.md §4).
      if (pair.partner_seq >= pair.probe_seq) return;
      ++result_count_;
      if (options_->collect_results) {
        out.Emit(stream::MakeTuple(
            static_cast<int64_t>(pair.probe_id), static_cast<int64_t>(pair.probe_seq),
            static_cast<int64_t>(pair.partner_id), static_cast<int64_t>(pair.partner_seq)));
      }
    });
    if (probe) {
      latency_.Add(static_cast<uint64_t>(std::max<int64_t>(0, NowMicros() - emit_us)));
    }
  }

  const DistributedJoinOptions* options_;
  std::shared_ptr<SharedState> shared_;
  int partition_ = 0;
  /// Lane merge (sharded ingestion; inert at lanes_ == 1). frontier[l] is
  /// the smallest seq lane l may still deliver; buffers hold tuples whose
  /// global turn has not come. Memory is bounded by how far lanes drift
  /// apart (kWatermarkEvery bounds the quiet-lane case; a genuinely slow
  /// lane can back up the others' buffers — see docs/INTERNALS.md §14).
  int lanes_ = 1;
  std::vector<std::deque<PendingTuple>> lane_buf_;
  std::vector<uint64_t> lane_frontier_;
  stream::TaskMetrics* metrics_ = nullptr;
  std::function<stream::QueueHealth()> queue_health_;
  std::unique_ptr<LocalJoiner> joiner_;
  std::unique_ptr<store::SpillStore> spill_;
  /// Spill retire marks taken at each async base freeze, consumed when
  /// that base becomes durable (see OnCheckpointDurable).
  std::deque<uint64_t> retire_marks_;
  uint64_t result_count_ = 0;
  Histogram latency_;

  // Shed state machine (see SampleHealth / ShouldShedProbe).
  size_t shed_threshold_ = 0;
  bool shed_active_ = false;
  uint64_t shed_pending_ = 0;
  uint64_t shed_probes_ = 0;
  uint64_t shed_ub_ = 0;
  std::vector<uint64_t> shed_seqs_;
};

/// Accumulates collected result pairs (parallelism 1).
class SinkBolt : public stream::Bolt {
 public:
  explicit SinkBolt(std::shared_ptr<SharedState> shared) : shared_(std::move(shared)) {}

  void Execute(stream::Tuple tuple, stream::OutputCollector& /*out*/) override {
    ResultPair pair{static_cast<uint64_t>(tuple.Int(0)), static_cast<uint64_t>(tuple.Int(1)),
                    static_cast<uint64_t>(tuple.Int(2)), static_cast<uint64_t>(tuple.Int(3))};
    std::lock_guard<std::mutex> lock(shared_->pairs_mu);
    shared_->pairs.push_back(pair);
  }

  /// The sink's state lives in SharedState (it must outlive the run), so
  /// the snapshot is just the count of pairs appended; a restore truncates
  /// back to it, undoing the crashed incarnation's appends. Safe because
  /// the sink is the vector's only writer while the topology runs.
  bool SupportsSnapshot() const override { return true; }
  void Snapshot(std::string* out) const override {
    std::lock_guard<std::mutex> lock(shared_->pairs_mu);
    BinaryWriter(out).WriteU64(shared_->pairs.size());
  }
  void Restore(const std::string& blob) override {
    BinaryReader r(blob);
    const uint64_t n = r.ReadU64();
    std::lock_guard<std::mutex> lock(shared_->pairs_mu);
    CHECK_LE(n, shared_->pairs.size());
    shared_->pairs.resize(n);
  }

 private:
  std::shared_ptr<SharedState> shared_;
};

LatencySummary SummarizeLatency(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.mean_us = h.mean();
  s.p50_us = h.p50();
  s.p95_us = h.p95();
  s.p99_us = h.p99();
  s.max_us = h.max();
  return s;
}

}  // namespace

const char* DistributionStrategyName(DistributionStrategy s) {
  switch (s) {
    case DistributionStrategy::kLengthBased:
      return "length";
    case DistributionStrategy::kPrefixBased:
      return "prefix";
    case DistributionStrategy::kBroadcast:
      return "broadcast";
    case DistributionStrategy::kReplicated:
      return "replicated";
  }
  return "unknown";
}

const char* LocalAlgorithmName(LocalAlgorithm a) {
  switch (a) {
    case LocalAlgorithm::kRecord:
      return "record";
    case LocalAlgorithm::kBundle:
      return "bundle";
    case LocalAlgorithm::kBruteForce:
      return "bruteforce";
  }
  return "unknown";
}

const char* JoinTransportName(JoinTransport t) {
  switch (t) {
    case JoinTransport::kInproc:
      return "inproc";
    case JoinTransport::kLoopback:
      return "loopback";
    case JoinTransport::kTcp:
      return "tcp";
  }
  return "unknown";
}

net::PayloadCodec RecordWireCodec() {
  net::PayloadCodec codec;
  codec.encode = [](net::WireCodec wire, const std::shared_ptr<const void>& payload,
                    std::string* out) {
    const Record& r = *static_cast<const Record*>(payload.get());
    if (wire == net::WireCodec::kRaw) {
      EncodeRecord(r, out);
    } else {
      EncodeRecordDelta(r, out);
    }
  };
  codec.decode = [](net::WireCodec wire, const char* data, size_t size,
                    const std::shared_ptr<net::FrameArena>& arena,
                    std::shared_ptr<const void>* out) {
    const bool raw = wire == net::WireCodec::kRaw;
    if (arena == nullptr) {
      // Materializing path (no stable frame storage): the record owns its
      // tokens.
      auto record = std::make_shared<Record>();
      const bool ok = raw ? DecodeRecord(data, size, record.get())
                          : DecodeRecordDelta(data, size, record.get());
      if (!ok) return false;
      *out = std::shared_ptr<const void>(std::move(record));
      return true;
    }
    // Zero-copy path: the record lives in arena storage and its tokens
    // either alias the frame bytes (raw, aligned, little-endian) or decode
    // into arena token chunks. The aliasing shared_ptr pins the arena, so
    // the views stay valid for as long as anyone holds the payload.
    const auto alloc = [](void* ctx, size_t n) -> TokenId* {
      return static_cast<net::FrameArena*>(ctx)->AllocTokens(n);
    };
    Record* record = arena->AllocRecord();
    const bool ok = raw ? DecodeRecordBorrowed(data, size, alloc, arena.get(), record)
                        : DecodeRecordDeltaBorrowed(data, size, alloc, arena.get(), record);
    if (!ok) return false;
    *out = std::shared_ptr<const void>(arena, record);
    return true;
  };
  return codec;
}

const char* PartitionMethodName(PartitionMethod m) {
  switch (m) {
    case PartitionMethod::kLoadAwareGreedy:
      return "load-aware-greedy";
    case PartitionMethod::kLoadAwareDP:
      return "load-aware-dp";
    case PartitionMethod::kLoadAwareFull:
      return "load-aware-full";
    case PartitionMethod::kUniform:
      return "uniform";
    case PartitionMethod::kEqualFrequency:
      return "equal-frequency";
  }
  return "unknown";
}

LengthPartition PlanLengthPartition(const std::vector<RecordPtr>& sample,
                                    const SimilaritySpec& sim, int k, PartitionMethod method) {
  LengthHistogram histogram;
  histogram.AddRecords(sample);
  if (histogram.TotalRecords() == 0) return PartitionUniform(1, 256, k);
  switch (method) {
    case PartitionMethod::kLoadAwareGreedy:
      return PartitionLoadAwareGreedy(ComputePerLengthLoad(histogram, sim), k);
    case PartitionMethod::kLoadAwareDP:
      return PartitionLoadAwareDP(ComputePerLengthLoad(histogram, sim), k);
    case PartitionMethod::kLoadAwareFull:
      return PartitionByCostModelGreedy(JoinCostModel(histogram, sim), k);
    case PartitionMethod::kUniform: {
      size_t min_l = histogram.MaxLength();
      for (size_t l = 0; l <= histogram.MaxLength(); ++l) {
        if (histogram.CountAt(l) > 0) {
          min_l = l;
          break;
        }
      }
      return PartitionUniform(min_l, histogram.MaxLength(), k);
    }
    case PartitionMethod::kEqualFrequency:
      return PartitionEqualFrequency(histogram, k);
  }
  return PartitionUniform(1, 256, k);
}

std::unique_ptr<Router> MakeRouter(const DistributedJoinOptions& options,
                                   std::shared_ptr<AdaptiveRouterState> adaptive_state) {
  if (adaptive_state != nullptr) {
    // Lane-sharded adaptive routing: every dispatcher lane routes against
    // the same CAS-published epoch list.
    CHECK(options.adaptive);
    return std::make_unique<AdaptiveLengthRouter>(std::move(adaptive_state));
  }
  switch (options.strategy) {
    case DistributionStrategy::kLengthBased: {
      LengthPartition partition = options.length_partition;
      if (partition.bounds().empty()) {
        partition = PartitionUniform(1, 256, options.num_joiners);
      }
      CHECK_EQ(partition.num_partitions(), options.num_joiners)
          << "length partition size must match num_joiners";
      if (options.adaptive) {
        CHECK_EQ(options.num_dispatchers, 1)
            << "adaptive routing keeps epoch state per dispatcher; use one dispatcher";
        AdaptiveRouterOptions adaptive = options.adaptive_options;
        if (options.window.kind == WindowSpec::Kind::kTime) {
          adaptive.window_span_micros = options.window.span_micros;
        }
        return std::make_unique<AdaptiveLengthRouter>(options.sim, std::move(partition),
                                                      adaptive);
      }
      return std::make_unique<LengthRouter>(options.sim, std::move(partition));
    }
    case DistributionStrategy::kPrefixBased:
      return std::make_unique<PrefixRouter>(options.sim, options.num_joiners);
    case DistributionStrategy::kBroadcast:
      return std::make_unique<BroadcastRouter>(options.num_joiners);
    case DistributionStrategy::kReplicated:
      return std::make_unique<ReplicatedRouter>(options.num_joiners);
  }
  LOG(FATAL) << "unknown strategy";
  return nullptr;
}

std::unique_ptr<LocalJoiner> MakeLocalJoiner(const DistributedJoinOptions& options,
                                             int partition) {
  const bool prefix_strategy = options.strategy == DistributionStrategy::kPrefixBased;
  // Partitioned joiners each hold a sparse slice of the full token-id
  // range; a direct-addressed table would cost every joiner the whole
  // range, so they index with a hash map instead.
  const bool direct_index = options.num_joiners <= 1;
  switch (options.local) {
    case LocalAlgorithm::kRecord: {
      RecordJoinerOptions ro;
      ro.positional_filter = options.positional_filter;
      ro.direct_index = direct_index;
      ro.max_index_bytes = options.max_index_bytes;
      if (prefix_strategy) {
        ro.token_filter =
            PrefixRouter(options.sim, options.num_joiners).TokenFilterFor(partition);
        ro.dedup_by_min_prefix_token = true;
      }
      return std::make_unique<RecordJoiner>(options.sim, options.window, std::move(ro));
    }
    case LocalAlgorithm::kBundle: {
      CHECK(!prefix_strategy)
          << "bundle joiner is not defined for the prefix distribution strategy";
      BundleJoinerOptions bo = options.bundle;
      bo.direct_index = direct_index;
      bo.max_index_bytes = options.max_index_bytes;
      return std::make_unique<BundleJoiner>(options.sim, options.window, bo);
    }
    case LocalAlgorithm::kBruteForce:
      CHECK(!prefix_strategy)
          << "brute-force joiner cannot apply the prefix dedup rule";
      return std::make_unique<BruteForceJoiner>(options.sim, options.window);
  }
  LOG(FATAL) << "unknown local algorithm";
  return nullptr;
}

DistributedJoinResult RunDistributedJoin(const std::vector<RecordPtr>& input,
                                         const DistributedJoinOptions& options) {
  CHECK_GE(options.num_joiners, 1);
  CHECK_GE(options.num_dispatchers, 1);
  const int lanes = std::max(1, options.ingest_lanes);
  std::shared_ptr<AdaptiveRouterState> adaptive_state;
  if (lanes > 1) {
    CHECK_EQ(options.num_dispatchers, 1)
        << "--ingest_lanes shards the single logical dispatcher; "
           "num_dispatchers must stay 1";
    CHECK(options.strategy == DistributionStrategy::kLengthBased ||
          options.strategy == DistributionStrategy::kPrefixBased)
        << "--ingest_lanes requires a stateless routing strategy "
           "(length or prefix); " << DistributionStrategyName(options.strategy)
        << " keeps per-dispatcher round-robin state";
    // The joiners' lane merge orders by record seq, so the interleaved
    // stream is only well defined when seqs strictly increase in input
    // order (the corpus loader guarantees this).
    for (size_t i = 1; i < input.size(); ++i) {
      CHECK_LT(input[i - 1]->seq, input[i]->seq)
          << "--ingest_lanes requires strictly increasing record seqs";
    }
    if (options.adaptive && options.strategy == DistributionStrategy::kLengthBased) {
      // All lanes must share one epoch list; build the state here and hand
      // it to every lane's router (mirrors MakeRouter's defaults).
      LengthPartition partition = options.length_partition;
      if (partition.bounds().empty()) {
        partition = PartitionUniform(1, 256, options.num_joiners);
      }
      CHECK_EQ(partition.num_partitions(), options.num_joiners)
          << "length partition size must match num_joiners";
      AdaptiveRouterOptions adaptive = options.adaptive_options;
      if (options.window.kind == WindowSpec::Kind::kTime) {
        adaptive.window_span_micros = options.window.span_micros;
      }
      adaptive_state = std::make_shared<AdaptiveRouterState>(
          options.sim, std::move(partition), adaptive);
    }
  }
  int workers = options.num_workers > 0 ? options.num_workers : options.num_joiners;

  std::shared_ptr<stream::Transport> transport;
  if (options.transport == JoinTransport::kLoopback) {
    transport = std::make_shared<net::LoopbackTransport>(
        workers, RecordWireCodec(), options.wire_codec, options.net_arena_pool);
  } else if (options.transport == JoinTransport::kTcp) {
    StatusOr<std::vector<net::Endpoint>> cluster = net::ParseClusterSpec(options.cluster);
    CHECK(cluster.ok()) << "bad cluster spec: " << cluster.status().message();
    workers = static_cast<int>(cluster.value().size());
    CHECK_GE(options.rank, 0);
    CHECK_LT(options.rank, workers) << "rank outside the cluster";
    net::TcpTransportOptions net_options;
    net_options.cluster = std::move(cluster).value();
    net_options.rank = options.rank;
    net_options.listen_override = options.listen;
    net_options.send_queue_capacity = options.net_send_queue;
    net_options.connect_timeout_micros = options.net_connect_timeout_micros;
    net_options.codec = RecordWireCodec();
    net_options.wire_codec = options.wire_codec;
    net_options.arena_pool_capacity = options.net_arena_pool;
    transport = std::make_shared<net::TcpTransport>(std::move(net_options));
  }

  auto shared = std::make_shared<SharedState>(options.num_joiners);
  auto input_copy = std::make_shared<const std::vector<RecordPtr>>(input);

  stream::TopologyBuilder builder;
  builder.SetNumWorkers(workers)
      .SetQueueCapacity(options.queue_capacity)
      .SetQueueImpl(options.queue_impl)
      .SetPinThreads(options.pin_threads)
      .SetBatchSize(options.batch_size)
      .SetRemoteByteCostNanos(options.remote_byte_cost_ns);
  if (options.supervise || options.elastic || !options.fault_script.empty()) {
    builder.SetSupervision(options.supervision);
  }
  if (!options.store_dir.empty()) {
    CHECK(options.supervise || options.elastic || !options.fault_script.empty())
        << "store_dir requires supervision (checkpoints drive the store)";
    store::StoreOptions so;
    so.dir = options.store_dir;
    so.mode = options.checkpoint_mode;
    so.delta_base_interval = options.delta_base_interval;
    so.spill_watermark = options.spill_watermark;
    so.segment_bytes = options.store_segment_bytes;
    builder.SetStore(std::move(so));
  }
  if (options.elastic) builder.SetElastic(true);
  if (!options.fault_script.empty()) {
    StatusOr<stream::FaultScript> script = stream::FaultScript::Parse(options.fault_script);
    CHECK(script.ok()) << "bad --fault_script: " << script.status().message();
    builder.SetFaultScript(std::move(script).value());
  }
  stream::OverloadOptions overload;
  overload.shed_policy = options.shed_policy;
  overload.shed_watermark = options.shed_watermark;
  overload.stall_timeout_micros = options.stall_timeout_micros;
  overload.fail_fast = options.watchdog_fail_fast;
  if (overload.enabled()) builder.SetOverload(overload);
  if (transport != nullptr) builder.SetTransport(transport);
  const bool pin = transport != nullptr;
  // Sharded front end: `lanes` spout/dispatcher pairs, wired one-to-one so
  // lane i's stripe of the input flows through lane i's router instance.
  stream::SpoutDeclarer source = builder.SetSpout(
      kSourceName,
      [input_copy, &options] {
        return std::make_unique<RecordStreamSpout>(input_copy, options.arrival_rate_per_sec);
      },
      lanes);
  if (pin) source.SetPlacement(std::vector<int>(lanes, 0));
  const int dispatcher_tasks = lanes > 1 ? lanes : options.num_dispatchers;
  stream::BoltDeclarer dispatcher = builder.SetBolt(
      kDispatcherName,
      [&options, shared, adaptive_state] {
        return std::make_unique<DispatcherBolt>(&options, shared, adaptive_state);
      },
      dispatcher_tasks);
  if (lanes > 1) {
    dispatcher.PartnerGrouping(kSourceName);
  } else {
    dispatcher.ShuffleGrouping(kSourceName);
  }
  if (pin) dispatcher.SetPlacement(std::vector<int>(dispatcher_tasks, 0));
  stream::BoltDeclarer joiner =
      builder
          .SetBolt(
              kJoinerName,
              [&options, shared] { return std::make_unique<JoinerBolt>(&options, shared); },
              options.num_joiners)
          .DirectGrouping(kDispatcherName);
  // Elastic runs may start packed onto fewer workers; the controller
  // spreads/packs the joiner tasks at runtime.
  const int init_workers = options.elastic && options.elastic_initial_workers > 0
                               ? std::min(options.elastic_initial_workers, workers)
                               : workers;
  if (pin || options.elastic) {
    std::vector<int> placement(options.num_joiners);
    for (int i = 0; i < options.num_joiners; ++i) placement[i] = i % init_workers;
    joiner.SetPlacement(std::move(placement));
  }
  if (options.collect_results) {
    stream::BoltDeclarer sink =
        builder.SetBolt(kSinkName, [shared] { return std::make_unique<SinkBolt>(shared); }, 1)
            .GlobalGrouping(kJoinerName);
    if (pin) sink.SetPlacement({0});
  }

  std::unique_ptr<stream::Topology> topology = builder.Build();
  // The elastic controller runs beside Wait(): it samples per-joiner
  // execution rates and live-migrates joiner tasks (spread near peak load,
  // pack when load collapses, rebalance past migrate_threshold). Under
  // kTcp only the coordinator drives migrations.
  const bool run_controller =
      options.elastic && workers > 1 &&
      (options.transport != JoinTransport::kTcp || options.rank == 0);
  if (!run_controller) {
    topology->Run();
  } else {
    topology->Submit();
    std::atomic<bool> controller_stop{false};
    stream::Topology* topo = topology.get();
    std::thread controller([&options, topo, &controller_stop, workers, init_workers] {
      const int n = options.num_joiners;
      std::vector<uint64_t> last_exec(static_cast<size_t>(n), 0);
      double peak_rate = 0.0;
      int active = init_workers;
      while (!controller_stop.load(std::memory_order_acquire)) {
        // Sleep in slices so Wait() never blocks a full interval on join.
        int64_t left = options.elastic_interval_micros;
        while (left > 0 && !controller_stop.load(std::memory_order_acquire)) {
          const int64_t slice = left < 2000 ? left : 2000;
          std::this_thread::sleep_for(std::chrono::microseconds(slice));
          left -= slice;
        }
        if (controller_stop.load(std::memory_order_acquire)) break;
        const std::vector<stream::TaskStats> stats = topo->TasksOf(kJoinerName);
        std::vector<double> load(static_cast<size_t>(n), 0.0);
        double total = 0.0;
        for (int i = 0; i < n; ++i) {
          const uint64_t exec = stats[static_cast<size_t>(i)].metrics->executed.Get();
          load[static_cast<size_t>(i)] =
              static_cast<double>(exec - last_exec[static_cast<size_t>(i)]);
          last_exec[static_cast<size_t>(i)] = exec;
          total += load[static_cast<size_t>(i)];
        }
        peak_rate = std::max(total, peak_rate * 0.95);  // decaying peak tracker
        int desired = active;
        if (total > 0.7 * peak_rate && active < workers) {
          desired = std::min(workers, active * 2);  // near peak: spread out
        } else if (total < 0.3 * peak_rate && active > 1) {
          desired = (active + 1) / 2;  // load collapsed: pack together
        }
        std::vector<int> cur(static_cast<size_t>(n), 0);
        for (int i = 0; i < n; ++i) {
          cur[static_cast<size_t>(i)] = topo->TaskWorker(kJoinerName, i);
        }
        const std::vector<WorkerMove> moves =
            PlanWorkerMigrations(load, cur, desired, options.migrate_threshold);
        bool all_ok = true;
        for (const WorkerMove& mv : moves) {
          const Status st = topo->MigrateTask(kJoinerName, mv.task_index, mv.target_worker);
          if (!st.ok()) {
            // Usually the stream ending under us (FailedPrecondition);
            // keep the old active count and re-evaluate next tick.
            all_ok = false;
            break;
          }
        }
        if (all_ok) active = desired;
      }
    });
    topology->Wait();
    controller_stop.store(true, std::memory_order_release);
    controller.join();
  }

  DistributedJoinResult result;
  result.input_records = input.size();
  result.elapsed_seconds = topology->ElapsedSeconds();
  result.throughput_rps = result.elapsed_seconds > 0.0
                              ? static_cast<double>(input.size()) / result.elapsed_seconds
                              : 0.0;
  result.result_count = shared->result_count.load(std::memory_order_relaxed);
  if (options.transport == JoinTransport::kTcp) {
    // Remote joiners publish result_count through the metrics barrier, not
    // the process-local SharedState.
    result.result_count = stream::Aggregate(topology->TasksOf(kJoinerName)).app_results;
  }
  if (options.collect_results) result.pairs = std::move(shared->pairs);

  const stream::ComponentAggregate dispatch =
      stream::Aggregate(topology->TasksOf(kDispatcherName));
  result.dispatch_messages = dispatch.total_messages;
  result.dispatch_bytes = dispatch.total_bytes;
  const stream::ComponentAggregate all = stream::Aggregate(topology->AllTasks());
  result.remote_messages = all.remote_messages;
  result.remote_bytes = all.remote_bytes;

  result.joiner_stats = shared->joiner_stats;
  result.joiner_busy_micros.reserve(options.num_joiners);
  for (const stream::TaskStats& t : topology->TasksOf(kJoinerName)) {
    result.joiner_busy_micros.push_back(t.metrics->busy_nanos.Get() / 1000);
  }
  // Pipeline breakdown: per-stage busy/idle/blocked sums for the bench's
  // stage table (source idle is pacing sleep, not queue waiting).
  const auto add_stage = [&result, &topology](const char* name) {
    const std::vector<stream::TaskStats> tasks = topology->TasksOf(name);
    if (tasks.empty()) return;
    const stream::ComponentAggregate agg = stream::Aggregate(tasks);
    DistributedJoinResult::StageTime st;
    st.component = name;
    st.tasks = static_cast<int>(tasks.size());
    st.busy_micros = agg.busy_nanos_sum / 1000;
    st.idle_micros = agg.idle_nanos_sum / 1000;
    st.blocked_micros = agg.blocked_nanos_sum / 1000;
    result.stage_times.push_back(std::move(st));
  };
  add_stage(kSourceName);
  add_stage(kDispatcherName);
  add_stage(kJoinerName);
  if (options.collect_results) add_stage(kSinkName);
  // Critical path over the system's tasks. The source is the experiment
  // harness (its CPU includes pacing), so it is excluded.
  uint64_t bottleneck_ns = 0;
  for (const stream::TaskStats& t : topology->AllTasks()) {
    if (t.component == kSourceName) continue;
    bottleneck_ns = std::max(bottleneck_ns, t.metrics->busy_nanos.Get());
  }
  result.bottleneck_busy_micros = bottleneck_ns / 1000;
  result.scaled_throughput_rps =
      bottleneck_ns > 0
          ? static_cast<double>(input.size()) / (static_cast<double>(bottleneck_ns) / 1e9)
          : 0.0;
  uint64_t stores = 0;
  for (const JoinerStats& s : result.joiner_stats) stores += s.stores;
  result.total_stores = stores;
  result.replication_factor =
      input.empty() ? 0.0 : static_cast<double>(stores) / static_cast<double>(input.size());
  result.latency = SummarizeLatency(shared->latency);
  result.router_replans = shared->router_replans.load(std::memory_order_relaxed);
  result.router_live_epochs = shared->router_live_epochs.load(std::memory_order_relaxed);
  result.ok = topology->ok();
  result.failure_message = topology->failure_message();
  result.restarts = all.restarts;
  result.replayed_tuples = all.replayed_tuples;
  result.checkpoints = all.checkpoints;
  result.checkpoint_bytes = all.checkpoint_bytes;
  result.delta_checkpoints = all.delta_checkpoints;
  result.base_checkpoints = all.base_checkpoints;
  result.delta_checkpoint_bytes = all.delta_checkpoint_bytes;
  result.base_checkpoint_bytes = all.base_checkpoint_bytes;
  result.spilled_bytes = all.spilled_bytes;
  result.spill_reads = all.spill_reads;
  result.link_drops_recovered = all.link_drops_recovered;
  result.link_dups_discarded = all.link_dups_discarded;
  result.migrations = all.migrations;
  result.migration_bytes = all.migration_bytes;
  result.shed_probes = shared->shed_probes.load(std::memory_order_relaxed);
  result.shed_pairs_upper_bound =
      shared->shed_pairs_upper_bound.load(std::memory_order_relaxed);
  result.shed_probe_seqs = std::move(shared->shed_probe_seqs);
  for (const JoinerStats& s : result.joiner_stats) {
    result.budget_evictions += s.budget_evictions;
    result.eviction_horizon_seq =
        std::max(result.eviction_horizon_seq, s.eviction_horizon_seq);
  }
  return result;
}

std::vector<ResultPair> SingleNodeJoin(const std::vector<RecordPtr>& input,
                                       LocalJoiner& joiner) {
  std::vector<ResultPair> pairs;
  for (const RecordPtr& r : input) {
    joiner.Process(r, /*store=*/true, /*probe=*/true,
                   [&pairs](const ResultPair& p) { pairs.push_back(p); });
  }
  return pairs;
}

}  // namespace dssj
