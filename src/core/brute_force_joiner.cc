#include "core/brute_force_joiner.h"

namespace dssj {

void BruteForceJoiner::Evict(int64_t now) {
  if (window_.kind == WindowSpec::Kind::kTime) {
    while (!store_.empty() && window_.ExpiredByTime(store_.front()->timestamp, now)) {
      store_.pop_front();
      ++stats_.evictions;
    }
  }
}

void BruteForceJoiner::Process(const RecordPtr& r, bool store, bool probe,
                               const ResultCallback& cb) {
  if (r->size() == 0) return;
  Evict(r->timestamp);
  if (probe) {
    ++stats_.probes;
    for (const RecordPtr& s : store_) {
      const size_t alpha = sim_.MinOverlap(r->size(), s->size());
      if (alpha > std::min(r->size(), s->size())) continue;
      ++stats_.candidates;
      const size_t o = VerifyOverlap(r->tokens, s->tokens, alpha, &stats_.verify);
      if (o >= alpha) {
        ++stats_.results;
        cb(ResultPair{r->id, r->seq, s->id, s->seq});
      }
    }
  }
  if (store) {
    while (window_.OverCount(store_.size())) {
      store_.pop_front();
      ++stats_.evictions;
    }
    store_.push_back(r);
    ++stats_.stores;
  }
}

void BruteForceJoiner::Snapshot(std::string* out) const {
  BinaryWriter w(out);
  w.WriteU64(store_.size());
  for (const RecordPtr& r : store_) WriteRecordTo(*r, &w);
  WriteJoinerStats(stats_, &w);
}

void BruteForceJoiner::Restore(const std::string& blob) {
  store_.clear();
  BinaryReader r(blob);
  const uint64_t n = r.ReadU64();
  for (uint64_t i = 0; i < n; ++i) store_.push_back(ReadRecordFrom(&r));
  ReadJoinerStats(&r, &stats_);
}

size_t BruteForceJoiner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const RecordPtr& s : store_) bytes += sizeof(Record) + s->tokens.size() * sizeof(TokenId);
  return bytes;
}

}  // namespace dssj
