#include "core/adaptive_router.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace dssj {

AdaptiveRouterState::AdaptiveRouterState(const SimilaritySpec& sim, LengthPartition initial,
                                         AdaptiveRouterOptions options)
    : sim_(sim),
      num_partitions_(initial.num_partitions()),
      options_(options),
      advisor_(sim, initial.num_partitions(), options.policy, options.half_life_records) {
  CHECK_GE(num_partitions_, 1);
  CHECK_GE(options_.max_epochs, 1u);
  CHECK_GE(options_.replan_interval, 1u);
  snapshot_.store(std::make_shared<const Snapshot>(
                      Snapshot{PartitionEpoch{std::move(initial), 0}}),
                  std::memory_order_release);
}

bool AdaptiveRouterState::TryObserve(std::vector<size_t>* pending, size_t length,
                                     int64_t now) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  // Fold the backlog first so observations enter the advisor in lane
  // order; each folded record runs the same retire/replan checks it would
  // have run had the lock been free when it arrived. (Backlogged records
  // borrow the newest record's stream time — under contention the replan
  // timing is already interleaving-dependent.)
  for (const size_t l : *pending) ObserveOneLocked(l, now);
  pending->clear();
  ObserveOneLocked(length, now);
  return true;
}

void AdaptiveRouterState::ObserveOneLocked(size_t length, int64_t now) {
  advisor_.ObserveLength(length);
  MaybeRetireLocked(now);
  MaybeReplanLocked(now);
}

void AdaptiveRouterState::MaybeRetireLocked(int64_t now) {
  if (options_.window_span_micros <= 0) return;
  // The oldest epoch retires once every record stored under it (all with
  // timestamp <= closed_at) has expired from the joiners' time windows.
  std::shared_ptr<const Snapshot> cur = Load();
  size_t drop = 0;
  while (cur->size() - drop > 1 &&
         (*cur)[drop].closed_at < now - options_.window_span_micros) {
    ++drop;
  }
  if (drop == 0) return;
  PublishLocked(Snapshot(cur->begin() + static_cast<ptrdiff_t>(drop), cur->end()));
}

void AdaptiveRouterState::MaybeReplanLocked(int64_t now) {
  if (++since_replan_ < options_.replan_interval) return;
  since_replan_ = 0;
  std::shared_ptr<const Snapshot> cur = Load();
  if (cur->size() >= options_.max_epochs) return;  // fan-out budget exhausted
  // The joiners' stored contents are approximately the recent stream; use
  // the decayed histogram as the migration-free cost proxy (no records
  // move under epoch-based adaptation — move_fraction gates nothing here,
  // but improvement still must clear the policy bar).
  const LengthHistogram recent = advisor_.RecentHistogram();
  MigrationPlan plan = advisor_.Evaluate(cur->back().partition, recent);
  if (plan.improvement_factor < options_.policy.min_improvement) return;
  Snapshot next(*cur);
  next.back().closed_at = now;
  next.push_back(PartitionEpoch{std::move(plan.new_partition), 0});
  PublishLocked(std::move(next));
  replans_.fetch_add(1, std::memory_order_relaxed);
}

void AdaptiveRouterState::PublishLocked(Snapshot next) {
  // mu_ serializes writers, so the exchange succeeds first try; the CAS
  // loop keeps the publish correct even if a future writer path skips the
  // lock.
  auto fresh = std::make_shared<const Snapshot>(std::move(next));
  std::shared_ptr<const Snapshot> expected = snapshot_.load(std::memory_order_acquire);
  while (!snapshot_.compare_exchange_weak(expected, fresh, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
  }
}

AdaptiveLengthRouter::AdaptiveLengthRouter(const SimilaritySpec& sim,
                                           LengthPartition initial,
                                           AdaptiveRouterOptions options)
    : AdaptiveLengthRouter(
          std::make_shared<AdaptiveRouterState>(sim, std::move(initial), options)) {}

AdaptiveLengthRouter::AdaptiveLengthRouter(std::shared_ptr<AdaptiveRouterState> state)
    : state_(std::move(state)) {
  CHECK(state_ != nullptr);
  probe_mask_.assign(static_cast<size_t>(state_->num_partitions()), false);
}

void AdaptiveLengthRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  const size_t l = r.size();
  if (!state_->TryObserve(&pending_lengths_, l, r.timestamp)) {
    pending_lengths_.push_back(l);
  }
  const SimilaritySpec& sim = state_->sim();
  if (l == 0 || sim.PrefixLength(l) == 0) return;

  const std::shared_ptr<const AdaptiveRouterState::Snapshot> epochs = state_->Load();
  const int owner = epochs->back().partition.PartitionOf(l);
  const size_t lo = sim.LengthLowerBound(l);
  const size_t hi = sim.LengthUpperBound(l);

  std::fill(probe_mask_.begin(), probe_mask_.end(), false);
  for (const PartitionEpoch& epoch : *epochs) {
    const auto [first, last] = epoch.partition.PartitionsCovering(lo, hi);
    for (int p = first; p <= last; ++p) probe_mask_[static_cast<size_t>(p)] = true;
  }
  DCHECK(probe_mask_[static_cast<size_t>(owner)]);
  const int num_partitions = state_->num_partitions();
  for (int p = 0; p < num_partitions; ++p) {
    if (probe_mask_[static_cast<size_t>(p)]) {
      out.push_back(RouteTarget{p, /*store=*/p == owner, /*probe=*/true});
    }
  }
}

}  // namespace dssj
