#include "core/adaptive_router.h"

#include <algorithm>

#include "common/logging.h"

namespace dssj {

AdaptiveLengthRouter::AdaptiveLengthRouter(const SimilaritySpec& sim, LengthPartition initial,
                                           AdaptiveRouterOptions options)
    : sim_(sim),
      num_partitions_(initial.num_partitions()),
      options_(options),
      advisor_(sim, initial.num_partitions(), options.policy, options.half_life_records) {
  CHECK_GE(num_partitions_, 1);
  CHECK_GE(options_.max_epochs, 1u);
  CHECK_GE(options_.replan_interval, 1u);
  epochs_.push_back(Epoch{std::move(initial), 0});
  probe_mask_.assign(static_cast<size_t>(num_partitions_), false);
}

void AdaptiveLengthRouter::MaybeRetire(int64_t now) {
  if (options_.window_span_micros <= 0) return;
  // The oldest epoch retires once every record stored under it (all with
  // timestamp <= closed_at) has expired from the joiners' time windows.
  while (epochs_.size() > 1 && epochs_.front().closed_at < now - options_.window_span_micros) {
    epochs_.pop_front();
  }
}

void AdaptiveLengthRouter::MaybeReplan(const Record& r) {
  if (++since_replan_ < options_.replan_interval) return;
  since_replan_ = 0;
  if (epochs_.size() >= options_.max_epochs) return;  // fan-out budget exhausted
  // The joiners' stored contents are approximately the recent stream; use
  // the decayed histogram as the migration-free cost proxy (no records
  // move under epoch-based adaptation — move_fraction gates nothing here,
  // but improvement still must clear the policy bar).
  const LengthHistogram recent = advisor_.RecentHistogram();
  MigrationPlan plan = advisor_.Evaluate(epochs_.back().partition, recent);
  if (plan.improvement_factor < options_.policy.min_improvement) return;
  epochs_.back().closed_at = r.timestamp;
  epochs_.push_back(Epoch{std::move(plan.new_partition), 0});
  ++replans_;
}

void AdaptiveLengthRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  const size_t l = r.size();
  advisor_.ObserveLength(l);
  MaybeRetire(r.timestamp);
  MaybeReplan(r);
  if (l == 0 || sim_.PrefixLength(l) == 0) return;

  const int owner = epochs_.back().partition.PartitionOf(l);
  const size_t lo = sim_.LengthLowerBound(l);
  const size_t hi = sim_.LengthUpperBound(l);

  std::fill(probe_mask_.begin(), probe_mask_.end(), false);
  for (const Epoch& epoch : epochs_) {
    const auto [first, last] = epoch.partition.PartitionsCovering(lo, hi);
    for (int p = first; p <= last; ++p) probe_mask_[static_cast<size_t>(p)] = true;
  }
  DCHECK(probe_mask_[static_cast<size_t>(owner)]);
  for (int p = 0; p < num_partitions_; ++p) {
    if (probe_mask_[static_cast<size_t>(p)]) {
      out.push_back(RouteTarget{p, /*store=*/p == owner, /*probe=*/true});
    }
  }
}

}  // namespace dssj
