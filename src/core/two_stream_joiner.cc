#include "core/two_stream_joiner.h"

namespace dssj {

TwoStreamJoiner::TwoStreamJoiner(const SimilaritySpec& sim, const WindowSpec& r_window,
                                 const WindowSpec& s_window, RecordJoinerOptions options)
    : r_index_(std::make_unique<RecordJoiner>(sim, r_window, options)),
      s_index_(std::make_unique<RecordJoiner>(sim, s_window, options)) {}

void TwoStreamJoiner::Process(Side side, const RecordPtr& record, const RsCallback& cb) {
  const Side other = side == Side::kR ? Side::kS : Side::kR;
  // Probe the other side's stored records; orient the pair as (R, S).
  IndexOf(other).Process(record, /*store=*/false, /*probe=*/true,
                         [&](const ResultPair& pair) {
                           if (side == Side::kR) {
                             cb(RsPair{pair.probe_id, pair.probe_seq, pair.partner_id,
                                       pair.partner_seq});
                           } else {
                             cb(RsPair{pair.partner_id, pair.partner_seq, pair.probe_id,
                                       pair.probe_seq});
                           }
                         });
  // Store into this side's own index (no probing of same-stream records).
  IndexOf(side).Process(record, /*store=*/true, /*probe=*/false,
                        [](const ResultPair&) {});
}

size_t TwoStreamJoiner::StoredCount(Side side) const { return IndexOf(side).StoredCount(); }

const JoinerStats& TwoStreamJoiner::stats(Side side) const { return IndexOf(side).stats(); }

size_t TwoStreamJoiner::MemoryBytes() const {
  return r_index_->MemoryBytes() + s_index_->MemoryBytes();
}

void TwoStreamJoiner::Snapshot(std::string* out) const {
  BinaryWriter w(out);
  std::string side;
  r_index_->Snapshot(&side);
  w.WriteBytes(side);
  side.clear();
  s_index_->Snapshot(&side);
  w.WriteBytes(side);
}

void TwoStreamJoiner::Restore(const std::string& blob) {
  BinaryReader r(blob);
  std::string side;
  r.ReadBytes(&side);
  r_index_->Restore(side);
  r.ReadBytes(&side);
  s_index_->Restore(side);
}

namespace {

store::FrozenBlob CombineSides(store::FrozenBlob r, store::FrozenBlob s) {
  store::FrozenBlob f;
  f.is_delta = r.is_delta && s.is_delta;
  auto rp = std::make_shared<store::FrozenBlob>(std::move(r));
  auto sp = std::make_shared<store::FrozenBlob>(std::move(s));
  f.encode = [rp, sp](std::string* out) {
    BinaryWriter w(out);
    std::string side;
    rp->encode(&side);
    w.WriteBytes(side);
    side.clear();
    sp->encode(&side);
    w.WriteBytes(side);
  };
  return f;
}

}  // namespace

store::FrozenBlob TwoStreamJoiner::FreezeBase() {
  return CombineSides(r_index_->FreezeBase(), s_index_->FreezeBase());
}

store::FrozenBlob TwoStreamJoiner::FreezeDelta() {
  return CombineSides(r_index_->FreezeDelta(), s_index_->FreezeDelta());
}

void TwoStreamJoiner::RestoreDelta(const std::string& blob) {
  BinaryReader r(blob);
  std::string side;
  r.ReadBytes(&side);
  r_index_->RestoreDelta(side);
  r.ReadBytes(&side);
  s_index_->RestoreDelta(side);
}

}  // namespace dssj
