#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace dssj {

void LengthHistogram::Add(size_t length) { AddWeighted(length, 1); }

void LengthHistogram::AddWeighted(size_t length, uint64_t count) {
  if (length >= counts_.size()) counts_.resize(length + 1, 0);
  counts_[length] += count;
  total_ += count;
}

void LengthHistogram::AddRecords(const std::vector<RecordPtr>& records) {
  for (const RecordPtr& r : records) Add(r->size());
}

uint64_t LengthHistogram::CountAt(size_t length) const {
  return length < counts_.size() ? counts_[length] : 0;
}

std::vector<double> ComputePerLengthLoad(const LengthHistogram& histogram,
                                         const SimilaritySpec& sim) {
  const std::vector<uint64_t>& f = histogram.counts();
  const size_t n = f.size();
  std::vector<double> load(n, 0.0);
  if (n == 0) return load;

  // Pairwise cost proxy: a stored record of length l' is a candidate of a
  // probing record of length l with probability proportional to
  // prefix(l)·prefix(l') (shared-prefix-token chance), and a candidate
  // costs a merge proportional to (l + l'). So
  //   w(l, l') = p(l)·p(l')·(l + l'),
  // which stays additive per stored length via prefix sums of f·p and
  // f·p·l.
  std::vector<double> fp_ps(n + 1, 0.0), fpl_ps(n + 1, 0.0);
  for (size_t l = 0; l < n; ++l) {
    const double fp =
        static_cast<double>(f[l]) * static_cast<double>(sim.PrefixLength(l));
    fp_ps[l + 1] = fp_ps[l] + fp;
    fpl_ps[l + 1] = fpl_ps[l] + fp * static_cast<double>(l);
  }

  for (size_t l = 0; l < n; ++l) {
    if (f[l] == 0) continue;
    // Lengths whose partner range covers l — by symmetry of the length
    // bound, exactly the lengths in l's own partner range.
    const size_t lo = sim.LengthLowerBound(l);
    const size_t hi = std::min(sim.LengthUpperBound(l), n - 1);
    if (lo > hi) continue;
    const double fp_sum = fp_ps[hi + 1] - fp_ps[lo];
    const double fpl_sum = fpl_ps[hi + 1] - fpl_ps[lo];
    load[l] = static_cast<double>(f[l]) * static_cast<double>(sim.PrefixLength(l)) *
              (fpl_sum + static_cast<double>(l) * fp_sum);
  }
  return load;
}

JoinCostModel::JoinCostModel(const LengthHistogram& histogram, const SimilaritySpec& sim)
    : JoinCostModel(histogram, sim, Weights{}) {}

JoinCostModel::JoinCostModel(const LengthHistogram& histogram, const SimilaritySpec& sim,
                             Weights weights)
    : sim_(sim), weights_(weights), max_length_(histogram.MaxLength()) {
  const std::vector<double> load = ComputePerLengthLoad(histogram, sim);
  const size_t n = load.size();
  pair_load_ps_.assign(n + 1, 0.0);
  count_ps_.assign(n + 1, 0.0);
  for (size_t l = 0; l < n; ++l) {
    pair_load_ps_[l + 1] = pair_load_ps_[l] + weights_.pair_cost * load[l];
    count_ps_[l + 1] = count_ps_[l] + static_cast<double>(histogram.CountAt(l));
  }
}

double JoinCostModel::IntervalCost(size_t a, size_t b) const {
  DCHECK_LE(a, b);
  const size_t n = pair_load_ps_.empty() ? 0 : pair_load_ps_.size() - 1;
  if (n == 0) return 0.0;
  const size_t hi = std::min(b, n - 1);
  if (a > hi) return 0.0;
  const double pair_work = pair_load_ps_[hi + 1] - pair_load_ps_[a];
  // Probing lengths whose partner range intersects [a, b]: by the
  // monotonicity of the bounds, exactly l ∈ [lb(a), ub(b)].
  const size_t visit_lo = sim_.LengthLowerBound(a);
  const size_t visit_hi = std::min(sim_.LengthUpperBound(hi), n - 1);
  double visits = 0.0;
  if (visit_lo <= visit_hi) {
    visits = count_ps_[visit_hi + 1] - count_ps_[visit_lo];
  }
  return pair_work + weights_.visit_cost * visits;
}

LengthPartition::LengthPartition(std::vector<size_t> bounds) : bounds_(std::move(bounds)) {
  CHECK_GE(bounds_.size(), 2u);
  CHECK_EQ(bounds_.front(), 0u);
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i]) << "partition bounds must be strictly increasing";
  }
}

int LengthPartition::PartitionOf(size_t length) const {
  DCHECK_GE(bounds_.size(), 2u);
  // Last bound b with b <= length; clamp into the final interval.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), length);
  const int idx = static_cast<int>(it - bounds_.begin()) - 1;
  return std::min(idx, num_partitions() - 1);
}

std::pair<int, int> LengthPartition::PartitionsCovering(size_t lo, size_t hi) const {
  if (lo > hi) return {0, -1};
  return {PartitionOf(lo), PartitionOf(hi)};
}

std::string LengthPartition::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (i > 0) os << " ";
    os << bounds_[i] << ".." << bounds_[i + 1] - 1;
  }
  os << "]";
  return os.str();
}

namespace {

/// Appends strictly increasing interior bounds + terminal bound to make a
/// k-interval partition covering [0, ...).
LengthPartition FinalizeBounds(std::vector<size_t> interior, size_t max_length, int k) {
  std::vector<size_t> bounds{0};
  for (size_t b : interior) {
    if (b > bounds.back()) bounds.push_back(b);
  }
  // Force exactly k intervals: pad with bounds past max_length, or merge
  // from the back if we somehow overshot.
  while (static_cast<int>(bounds.size()) > k) bounds.pop_back();
  size_t tail = std::max(max_length + 1, bounds.back() + 1);
  while (static_cast<int>(bounds.size()) < k + 1) {
    bounds.push_back(tail);
    ++tail;
  }
  return LengthPartition(std::move(bounds));
}

}  // namespace

LengthPartition PartitionUniform(size_t min_length, size_t max_length, int k) {
  CHECK_GE(k, 1);
  CHECK_LE(min_length, max_length);
  const size_t span = max_length - min_length + 1;
  const size_t width = std::max<size_t>(1, (span + k - 1) / static_cast<size_t>(k));
  std::vector<size_t> interior;
  for (int i = 1; i < k; ++i) interior.push_back(min_length + static_cast<size_t>(i) * width);
  return FinalizeBounds(std::move(interior), max_length, k);
}

LengthPartition PartitionEqualFrequency(const LengthHistogram& histogram, int k) {
  CHECK_GE(k, 1);
  const std::vector<uint64_t>& f = histogram.counts();
  const uint64_t total = histogram.TotalRecords();
  std::vector<size_t> interior;
  if (total > 0) {
    uint64_t acc = 0;
    int next_quantile = 1;
    for (size_t l = 0; l < f.size() && next_quantile < k; ++l) {
      acc += f[l];
      while (next_quantile < k &&
             acc * static_cast<uint64_t>(k) >= static_cast<uint64_t>(next_quantile) * total) {
        interior.push_back(l + 1);
        ++next_quantile;
      }
    }
  }
  return FinalizeBounds(std::move(interior), histogram.MaxLength(), k);
}

LengthPartition PartitionLoadAwareDP(const std::vector<double>& load, int k) {
  CHECK_GE(k, 1);
  const int n = static_cast<int>(load.size());
  if (n == 0) return FinalizeBounds({}, 0, k);
  if (k >= n) {
    // One length per interval.
    std::vector<size_t> interior;
    for (int l = 1; l < n; ++l) interior.push_back(static_cast<size_t>(l));
    return FinalizeBounds(std::move(interior), static_cast<size_t>(n - 1), k);
  }

  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + load[i];

  constexpr double kInf = 1e300;
  // dp[j][i]: best bottleneck splitting first i lengths into j intervals.
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<int>> choice(k + 1, std::vector<int>(n + 1, -1));
  for (int i = 1; i <= n; ++i) dp[1][i] = prefix[i];
  for (int j = 2; j <= k; ++j) {
    for (int i = j; i <= n; ++i) {
      for (int m = j - 1; m < i; ++m) {
        const double candidate = std::max(dp[j - 1][m], prefix[i] - prefix[m]);
        if (candidate < dp[j][i]) {
          dp[j][i] = candidate;
          choice[j][i] = m;
        }
      }
    }
  }

  std::vector<size_t> interior;
  int i = n;
  for (int j = k; j >= 2; --j) {
    const int m = choice[j][i];
    CHECK_GE(m, 1);
    interior.push_back(static_cast<size_t>(m));
    i = m;
  }
  std::reverse(interior.begin(), interior.end());
  return FinalizeBounds(std::move(interior), static_cast<size_t>(n - 1), k);
}

namespace {

/// Greedy feasibility: can `load` be split into <= k contiguous intervals
/// each summing to <= budget? Fills `interior` with the boundaries chosen.
bool GreedyFeasible(const std::vector<double>& load, int k, double budget,
                    std::vector<size_t>* interior) {
  if (interior != nullptr) interior->clear();
  int used = 1;
  double acc = 0.0;
  for (size_t l = 0; l < load.size(); ++l) {
    if (load[l] > budget) return false;
    if (acc + load[l] > budget) {
      ++used;
      if (used > k) return false;
      if (interior != nullptr) interior->push_back(l);
      acc = 0.0;
    }
    acc += load[l];
  }
  return true;
}

}  // namespace

LengthPartition PartitionLoadAwareGreedy(const std::vector<double>& load, int k) {
  CHECK_GE(k, 1);
  const size_t n = load.size();
  if (n == 0) return FinalizeBounds({}, 0, k);

  double lo = 0.0, hi = 0.0;
  for (double w : load) {
    lo = std::max(lo, w);
    hi += w;
  }
  // Parametric search on the bottleneck budget.
  for (int iter = 0; iter < 100 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (GreedyFeasible(load, k, mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<size_t> interior;
  CHECK(GreedyFeasible(load, k, hi, &interior));
  return FinalizeBounds(std::move(interior), n - 1, k);
}

LengthPartition PartitionByCostModelDP(const JoinCostModel& model, int k) {
  CHECK_GE(k, 1);
  const int n = static_cast<int>(model.max_length()) + 1;
  if (n <= 1 || k >= n) {
    std::vector<size_t> interior;
    for (int l = 1; l < n; ++l) interior.push_back(static_cast<size_t>(l));
    return FinalizeBounds(std::move(interior), model.max_length(), k);
  }
  constexpr double kInf = 1e300;
  // dp[j][i]: best bottleneck owning lengths [0, i) with j intervals.
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<int>> choice(k + 1, std::vector<int>(n + 1, -1));
  for (int i = 1; i <= n; ++i) dp[1][i] = model.IntervalCost(0, static_cast<size_t>(i - 1));
  for (int j = 2; j <= k; ++j) {
    for (int i = j; i <= n; ++i) {
      for (int m = j - 1; m < i; ++m) {
        const double candidate =
            std::max(dp[j - 1][m],
                     model.IntervalCost(static_cast<size_t>(m), static_cast<size_t>(i - 1)));
        if (candidate < dp[j][i]) {
          dp[j][i] = candidate;
          choice[j][i] = m;
        }
      }
    }
  }
  std::vector<size_t> interior;
  int i = n;
  for (int j = k; j >= 2; --j) {
    const int m = choice[j][i];
    CHECK_GE(m, 1);
    interior.push_back(static_cast<size_t>(m));
    i = m;
  }
  std::reverse(interior.begin(), interior.end());
  return FinalizeBounds(std::move(interior), model.max_length(), k);
}

namespace {

/// Greedy feasibility for a monotone interval-cost function: walk the
/// length domain, extending the current interval while it stays within
/// budget.
bool ModelGreedyFeasible(const JoinCostModel& model, size_t n, int k, double budget,
                         std::vector<size_t>* interior) {
  if (interior != nullptr) interior->clear();
  int used = 1;
  size_t start = 0;
  for (size_t l = 0; l < n; ++l) {
    if (model.IntervalCost(start, l) > budget) {
      if (l == start) return false;  // single length exceeds the budget
      ++used;
      if (used > k) return false;
      if (interior != nullptr) interior->push_back(l);
      start = l;
      if (model.IntervalCost(start, l) > budget) return false;
    }
  }
  return true;
}

}  // namespace

LengthPartition PartitionByCostModelGreedy(const JoinCostModel& model, int k) {
  CHECK_GE(k, 1);
  const size_t n = model.max_length() + 1;
  double lo = 0.0, hi = 0.0;
  for (size_t l = 0; l < n; ++l) {
    lo = std::max(lo, model.IntervalCost(l, l));
  }
  hi = std::max(lo, model.IntervalCost(0, n - 1));
  for (int iter = 0; iter < 100 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ModelGreedyFeasible(model, n, k, mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<size_t> interior;
  CHECK(ModelGreedyFeasible(model, n, k, hi, &interior));
  return FinalizeBounds(std::move(interior), n - 1, k);
}

double BottleneckModelCost(const LengthPartition& partition, const JoinCostModel& model) {
  double worst = 0.0;
  for (int i = 0; i < partition.num_partitions(); ++i) {
    const size_t from = partition.bounds()[i];
    const size_t to = std::min(partition.bounds()[i + 1], model.max_length() + 1);
    if (from >= to) continue;
    worst = std::max(worst, model.IntervalCost(from, to - 1));
  }
  return worst;
}

double BottleneckLoad(const LengthPartition& partition, const std::vector<double>& load) {
  double worst = 0.0;
  for (int i = 0; i < partition.num_partitions(); ++i) {
    double sum = 0.0;
    const size_t from = partition.bounds()[i];
    const size_t to = std::min(partition.bounds()[i + 1], load.size());
    for (size_t l = from; l < to; ++l) sum += load[l];
    worst = std::max(worst, sum);
  }
  return worst;
}

double MeanLoad(const LengthPartition& partition, const std::vector<double>& load) {
  double total = 0.0;
  for (double w : load) total += w;
  return total / std::max(1, partition.num_partitions());
}

}  // namespace dssj
