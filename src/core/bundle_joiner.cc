#include "core/bundle_joiner.h"

#include <algorithm>

#include "common/logging.h"

namespace dssj {
namespace {

SimilaritySpec MakeAdmissionSpec(const SimilaritySpec& join_sim, int64_t admission_permille) {
  if (join_sim.function() == SimilarityFunction::kOverlap) {
    return SimilaritySpec(SimilarityFunction::kJaccard,
                          admission_permille > 0 ? admission_permille : 800);
  }
  return SimilaritySpec(join_sim.function(), admission_permille > 0
                                                 ? admission_permille
                                                 : join_sim.threshold_permille());
}

/// Approximate per-node overhead of the bundles_ hash map (key + bucket and
/// chain pointers), charged once per live bundle.
constexpr size_t kBundleNodeBytes = 48;

}  // namespace

BundleJoiner::BundleJoiner(const SimilaritySpec& sim, const WindowSpec& window,
                           BundleJoinerOptions options)
    : sim_(sim),
      admission_sim_(MakeAdmissionSpec(sim, options.admission_permille)),
      window_(window),
      options_(options) {}

size_t BundleJoiner::ApproxMemberBytes(const Member& m) const {
  return sizeof(std::pair<uint32_t, Member>) + sizeof(OrderEntry) +
         (m.added.size() + m.removed.size()) * sizeof(TokenId);
}

size_t BundleJoiner::ApproxBundleBytes(const Bundle& b) const {
  return sizeof(Bundle) + kBundleNodeBytes + b.pivot.size() * sizeof(TokenId) +
         b.indexed.size() * (sizeof(TokenId) + sizeof(uint64_t));
}

void BundleJoiner::RecomputeApproxBytes() {
  approx_bytes_ = 0;
  for (const auto& [id, b] : bundles_) {
    approx_bytes_ += ApproxBundleBytes(b);
    for (const auto& [uid, m] : b.members) approx_bytes_ += ApproxMemberBytes(m);
  }
}

uint64_t BundleJoiner::EvictOldestEntry() {
  CHECK(!store_order_.empty());
  const OrderEntry entry = store_order_.front();
  store_order_.pop_front();
  ++order_pops_since_freeze_;
  auto it = bundles_.find(entry.bundle_id);
  CHECK(it != bundles_.end());
  auto& members = it->second.members;
  const auto pos = std::find_if(members.begin(), members.end(),
                                [&](const auto& m) { return m.first == entry.uid; });
  CHECK(pos != members.end());
  const uint64_t seq = pos->second.seq;
  approx_bytes_ -= ApproxMemberBytes(pos->second);
  members.erase(pos);
  if (members.empty()) {
    approx_bytes_ -= ApproxBundleBytes(it->second);
    bundles_.erase(it);
    // A retired id supersedes any dirty record of it (ids are never
    // reused, so a later delta cannot resurrect it by accident).
    dirty_bundles_.erase(entry.bundle_id);
    retired_bundles_.push_back(entry.bundle_id);
  } else {
    dirty_bundles_.insert(entry.bundle_id);
  }
  --alive_members_;
  ++stats_.evictions;
  return seq;
}

size_t BundleJoiner::EvictOldest(size_t n) {
  size_t evicted = 0;
  while (evicted < n && alive_members_ > 1) {
    stats_.eviction_horizon_seq =
        std::max(stats_.eviction_horizon_seq, EvictOldestEntry());
    ++stats_.budget_evictions;
    ++evicted;
  }
  return evicted;
}

void BundleJoiner::Evict(int64_t now) {
  if (window_.kind != WindowSpec::Kind::kTime) return;
  while (!store_order_.empty() &&
         window_.ExpiredByTime(store_order_.front().timestamp, now)) {
    EvictOldestEntry();
  }
}

void BundleJoiner::ProbeBundle(const Record& r, uint64_t bundle_id, Bundle& bundle,
                               const ResultCallback& cb, AdmissionCandidate* admission) {
  ++stats_.bundle_candidates;
  const size_t lo = sim_.LengthLowerBound(r.size());
  const size_t hi = sim_.LengthUpperBound(r.size());

  // Bundle-level length reject (conservative: size range never shrinks).
  if (bundle.max_size < lo || bundle.min_size > hi) return;

  // Verify the pivot once. If even the loosest member requirement is
  // unreachable, the whole bundle is rejected by the early exit.
  const size_t smallest_eligible = std::max<size_t>(bundle.min_size, lo);
  const size_t alpha_min = sim_.MinOverlap(r.size(), smallest_eligible);
  const size_t required =
      alpha_min > bundle.max_added ? alpha_min - bundle.max_added : 0;
  const size_t pivot_overlap = VerifyOverlap(r.tokens, bundle.pivot, required, &stats_.verify);
  if (pivot_overlap < required) return;  // early-exited: no member can qualify

  // Batch-resolve members from the exact pivot overlap and their diffs.
  for (const auto& [uid, m] : bundle.members) {
    if (m.size < lo || m.size > hi) {
      ++stats_.length_filtered;
      continue;
    }
    ++stats_.candidates;
    const size_t alpha = sim_.MinOverlap(r.size(), m.size);
    if (options_.batch_verify) {
      const size_t upper = pivot_overlap + m.added.size();
      if (upper < alpha) {
        ++stats_.batch_rejects;
        continue;
      }
      const size_t lower =
          pivot_overlap > m.removed.size() ? pivot_overlap - m.removed.size() : 0;
      if (lower >= alpha) {
        ++stats_.batch_accepts;
        ++stats_.results;
        cb(ResultPair{r.id, r.seq, m.id, m.seq});
        continue;
      }
      // Ambiguous: resolve exactly via the (small) diffs.
      const size_t removed_hit = IntersectCount(r.tokens, m.removed, &stats_.verify);
      const size_t added_hit = IntersectCount(r.tokens, m.added, &stats_.verify);
      const size_t o = pivot_overlap - removed_hit + added_hit;
      ++stats_.member_diff_resolutions;
      if (o >= alpha) {
        ++stats_.results;
        cb(ResultPair{r.id, r.seq, m.id, m.seq});
      }
    } else {
      // Individual-verification baseline: reconstruct and merge fully.
      ReconstructMemberInto(bundle, m, &scratch_member_);
      const size_t o = VerifyOverlap(r.tokens.data(), r.tokens.size(), scratch_member_.data(),
                                     scratch_member_.size(), alpha, &stats_.verify);
      if (o >= alpha) {
        ++stats_.results;
        cb(ResultPair{r.id, r.seq, m.id, m.seq});
      }
    }
  }

  // Consider this bundle as an admission target for r.
  if (admission != nullptr &&
      admission_sim_.Satisfies(pivot_overlap, r.size(), bundle.pivot.size())) {
    const size_t diff = (r.size() - pivot_overlap) + (bundle.pivot.size() - pivot_overlap);
    if (diff <= options_.max_diff) {
      const double score =
          admission_sim_.EvaluateSimilarity(pivot_overlap, r.size(), bundle.pivot.size());
      if (score > admission->score ||
          (score == admission->score && bundle_id < admission->bundle_id)) {
        admission->bundle_id = bundle_id;
        admission->pivot_overlap = pivot_overlap;
        admission->score = score;
      }
    }
  }
}

void BundleJoiner::Probe(const Record& r, const ResultCallback& cb,
                         AdmissionCandidate* admission) {
  ++stats_.probes;
  const size_t prefix_len = sim_.PrefixLength(r.size());
  if (prefix_len == 0) return;
  ++probe_stamp_;
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r.tokens[i];
    std::vector<uint64_t>* list_ptr;
    if (options_.direct_index) {
      if (w >= dense_index_.size() || dense_index_[w].empty()) continue;
      list_ptr = &dense_index_[w];
    } else {
      const auto it = sparse_index_.find(w);
      if (it == sparse_index_.end()) continue;
      list_ptr = &it->second;
    }
    std::vector<uint64_t>& list = *list_ptr;
    size_t write = 0;
    for (size_t read = 0; read < list.size(); ++read) {
      const uint64_t bundle_id = list[read];
      auto bit = bundles_.find(bundle_id);
      if (bit == bundles_.end()) {
        ++stats_.dead_postings_purged;  // bundle fully evicted
        continue;
      }
      list[write++] = bundle_id;
      ++stats_.postings_scanned;
      Bundle& bundle = bit->second;
      if (bundle.probe_stamp == probe_stamp_) continue;  // already probed
      bundle.probe_stamp = probe_stamp_;
      ProbeBundle(r, bundle_id, bundle, cb, admission);
    }
    list.resize(write);
  }
}

void BundleJoiner::AddMemberTokensToIndex(uint64_t bundle_id, Bundle& bundle,
                                          const Record& member) {
  const size_t prefix_len = sim_.PrefixLength(member.size());
  if (bundle.indexed.capacity() < prefix_len) bundle.indexed.reserve(2 * prefix_len);
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = member.tokens[i];
    auto pos = std::lower_bound(bundle.indexed.begin(), bundle.indexed.end(), w);
    if (pos != bundle.indexed.end() && *pos == w) continue;
    bundle.indexed.insert(pos, w);
    approx_bytes_ += sizeof(TokenId) + sizeof(uint64_t);  // indexed token + posting
    posting_appends_.emplace_back(w, bundle_id);
    std::vector<uint64_t>* list;
    if (options_.direct_index) {
      if (w >= dense_index_.size()) {
        dense_index_.resize(
            std::max<size_t>(w + 1, dense_index_.size() + dense_index_.size() / 2));
      }
      list = &dense_index_[w];
    } else {
      list = &sparse_index_[w];
    }
    // One allocation per list instead of the 1->2->4 growth chain: most
    // lists stay short (Zipf tail), and malloc would dominate otherwise.
    if (list->capacity() == 0) list->reserve(4);
    list->push_back(bundle_id);
  }
}

void BundleJoiner::ReconstructMemberInto(const Bundle& bundle, const Member& m,
                                         std::vector<TokenId>* out) {
  // tokens = (pivot ∖ removed) ∪ added, all arrays ascending.
  std::vector<TokenId>& kept = scratch_kept_;
  kept.clear();
  std::set_difference(bundle.pivot.begin(), bundle.pivot.end(), m.removed.begin(),
                      m.removed.end(), std::back_inserter(kept));
  out->clear();
  std::set_union(kept.begin(), kept.end(), m.added.begin(), m.added.end(),
                 std::back_inserter(*out));
}

void BundleJoiner::Store(const RecordPtr& r, const AdmissionCandidate& admission) {
  while (window_.OverCount(alive_members_)) EvictOldestEntry();

  uint64_t bundle_id;
  Bundle* bundle;
  Member member;
  member.id = r->id;
  member.seq = r->seq;
  member.timestamp = r->timestamp;
  member.size = static_cast<uint32_t>(r->size());

  auto admit_it = admission.score >= 0.0 ? bundles_.find(admission.bundle_id) : bundles_.end();
  if (admit_it != bundles_.end()) {
    bundle_id = admission.bundle_id;
    bundle = &admit_it->second;
    // Diff against the pivot (both ascending). Diff into reusable scratch
    // first, then copy at exact size: one allocation per diff instead of
    // the back_inserter growth chain.
    scratch_member_.clear();
    std::set_difference(r->tokens.begin(), r->tokens.end(), bundle->pivot.begin(),
                        bundle->pivot.end(), std::back_inserter(scratch_member_));
    member.added = scratch_member_;
    scratch_kept_.clear();
    std::set_difference(bundle->pivot.begin(), bundle->pivot.end(), r->tokens.begin(),
                        r->tokens.end(), std::back_inserter(scratch_kept_));
    member.removed = scratch_kept_;
    bundle->min_size = std::min(bundle->min_size, member.size);
    bundle->max_size = std::max(bundle->max_size, member.size);
    bundle->max_added =
        std::max(bundle->max_added, static_cast<uint32_t>(member.added.size()));
    ++stats_.members_added;
  } else {
    bundle_id = next_bundle_id_++;
    bundle = &bundles_[bundle_id];
    bundle->pivot.assign(r->tokens.begin(), r->tokens.end());
    bundle->min_size = bundle->max_size = member.size;
    approx_bytes_ += ApproxBundleBytes(*bundle);  // indexed still empty here
    ++stats_.bundles_created;
  }

  const uint32_t uid = bundle->next_uid++;
  approx_bytes_ += ApproxMemberBytes(member);
  if (bundle->members.capacity() == 0) bundle->members.reserve(4);
  bundle->members.emplace_back(uid, std::move(member));
  dirty_bundles_.insert(bundle_id);
  AddMemberTokensToIndex(bundle_id, *bundle, *r);
  store_order_.push_back(OrderEntry{bundle_id, uid, r->timestamp});
  ++alive_members_;
  ++stats_.stores;
  if (options_.max_index_bytes > 0) {
    // Enforced after insertion (a member diffs against a bundle chosen
    // before eviction ran, so evicting first could invalidate the target);
    // EvictOldest keeps at least one member, bounding the loop.
    while (approx_bytes_ > options_.max_index_bytes && EvictOldest(1) > 0) {
    }
  }
}

void BundleJoiner::Process(const RecordPtr& r, bool store, bool probe,
                           const ResultCallback& cb) {
  if (r->size() == 0) return;
  Evict(r->timestamp);
  AdmissionCandidate admission;
  // Even a store-only record must probe bundle pivots to find its admission
  // target; suppress result emission in that case by probing without cb.
  if (probe) {
    Probe(*r, cb, store ? &admission : nullptr);
  } else if (store) {
    Probe(*r, [](const ResultPair&) {}, &admission);
    // The silent probe inflates probe-side stats; compensate the counter
    // that benches report as "records probed".
    --stats_.probes;
  }
  if (store) Store(r, admission);
}

namespace {

// Blob tags, aligned with RecordJoiner's (docs/INTERNALS.md §13): 0 is a
// self-contained full image, 2 a dirty-set delta. (Tag 1, a tiered base
// with spill stubs, does not arise here — bundles keep budget eviction.)
constexpr uint8_t kTagSelfContained = 0;
constexpr uint8_t kTagDelta = 2;

}  // namespace

void BundleJoiner::WriteBundleTo(uint64_t id, const Bundle& b, BinaryWriter* w) {
  w->WriteU64(id);
  w->WriteU32Vec(b.pivot);
  w->WriteU32(b.next_uid);
  w->WriteU32Vec(b.indexed);
  w->WriteU32(b.min_size);
  w->WriteU32(b.max_size);
  w->WriteU32(b.max_added);
  w->WriteU64(b.members.size());
  for (const auto& [uid, m] : b.members) {
    w->WriteU32(uid);
    w->WriteU64(m.id);
    w->WriteU64(m.seq);
    w->WriteI64(m.timestamp);
    w->WriteU32(m.size);
    w->WriteU32Vec(m.added);
    w->WriteU32Vec(m.removed);
  }
}

void BundleJoiner::ReadBundleInto(BinaryReader* r, Bundle* b) {
  r->ReadU32Vec(&b->pivot);
  b->next_uid = r->ReadU32();
  r->ReadU32Vec(&b->indexed);
  b->min_size = r->ReadU32();
  b->max_size = r->ReadU32();
  b->max_added = r->ReadU32();
  const uint64_t num_members = r->ReadU64();
  b->members.clear();
  b->members.reserve(num_members);
  for (uint64_t k = 0; k < num_members; ++k) {
    const uint32_t uid = r->ReadU32();
    Member m;
    m.id = r->ReadU64();
    m.seq = r->ReadU64();
    m.timestamp = r->ReadI64();
    m.size = r->ReadU32();
    r->ReadU32Vec(&m.added);
    r->ReadU32Vec(&m.removed);
    b->members.emplace_back(uid, std::move(m));
  }
  b->probe_stamp = 0;  // per-probe scratch, never restored
}

void BundleJoiner::MarkFrozen() {
  dirty_bundles_.clear();
  retired_bundles_.clear();
  posting_appends_.clear();
  order_pops_since_freeze_ = 0;
  frozen_order_len_ = store_order_.size();
}

void BundleJoiner::Snapshot(std::string* out) const {
  BinaryWriter w(out);
  w.WriteU8(kTagSelfContained);
  w.WriteU64(next_bundle_id_);
  w.WriteU64(alive_members_);
  w.WriteU64(bundles_.size());
  for (const auto& [id, b] : bundles_) WriteBundleTo(id, b, &w);
  // Posting lists verbatim, from whichever layout is live.
  uint64_t lists = 0;
  if (options_.direct_index) {
    for (const auto& list : dense_index_) lists += list.empty() ? 0 : 1;
  } else {
    for (const auto& [_, list] : sparse_index_) lists += list.empty() ? 0 : 1;
  }
  w.WriteU64(lists);
  const auto write_list = [&w](TokenId token, const std::vector<uint64_t>& list) {
    w.WriteU32(token);
    w.WriteU64(list.size());
    for (const uint64_t id : list) w.WriteU64(id);
  };
  if (options_.direct_index) {
    for (size_t t = 0; t < dense_index_.size(); ++t) {
      if (!dense_index_[t].empty()) write_list(static_cast<TokenId>(t), dense_index_[t]);
    }
  } else {
    for (const auto& [t, list] : sparse_index_) {
      if (!list.empty()) write_list(t, list);
    }
  }
  w.WriteU64(store_order_.size());
  for (const OrderEntry& e : store_order_) {
    w.WriteU64(e.bundle_id);
    w.WriteU32(e.uid);
    w.WriteI64(e.timestamp);
  }
  WriteJoinerStats(stats_, &w);
}

void BundleJoiner::Restore(const std::string& blob) {
  bundles_.clear();
  dense_index_.clear();
  sparse_index_.clear();
  store_order_.clear();
  probe_stamp_ = 0;
  BinaryReader r(blob);
  const uint8_t tag = r.ReadU8();
  CHECK(tag == kTagSelfContained) << "delta blob passed to Restore (use RestoreDelta)";
  next_bundle_id_ = r.ReadU64();
  alive_members_ = r.ReadU64();
  const uint64_t num_bundles = r.ReadU64();
  bundles_.reserve(num_bundles);
  for (uint64_t i = 0; i < num_bundles; ++i) {
    const uint64_t id = r.ReadU64();
    ReadBundleInto(&r, &bundles_[id]);
  }
  const uint64_t lists = r.ReadU64();
  for (uint64_t i = 0; i < lists; ++i) {
    const TokenId token = r.ReadU32();
    const uint64_t n = r.ReadU64();
    std::vector<uint64_t>* list;
    if (options_.direct_index) {
      if (token >= dense_index_.size()) dense_index_.resize(token + 1);
      list = &dense_index_[token];
    } else {
      list = &sparse_index_[token];
    }
    list->reserve(n);
    for (uint64_t k = 0; k < n; ++k) list->push_back(r.ReadU64());
  }
  const uint64_t order = r.ReadU64();
  for (uint64_t i = 0; i < order; ++i) {
    OrderEntry e;
    e.bundle_id = r.ReadU64();
    e.uid = r.ReadU32();
    e.timestamp = r.ReadI64();
    store_order_.push_back(e);
  }
  ReadJoinerStats(&r, &stats_);
  // The walk matches the incremental formula exactly, so budget decisions
  // after a restore replay the original run's.
  RecomputeApproxBytes();
  MarkFrozen();
}

store::FrozenBlob BundleJoiner::FreezeBase() {
  // Bundle state is mutated in place (diffs, counters, sorted inserts),
  // so there is no refcount-cheap frozen view; the base serializes
  // eagerly. Bases are periodic — the steady-state cost is the deltas.
  auto blob = std::make_shared<std::string>();
  Snapshot(blob.get());
  MarkFrozen();
  store::FrozenBlob f;
  f.is_delta = false;
  f.encode = [blob](std::string* out) { *out = std::move(*blob); };
  return f;
}

store::FrozenBlob BundleJoiner::FreezeDelta() {
  auto dirty = std::make_shared<std::vector<std::pair<uint64_t, Bundle>>>();
  dirty->reserve(dirty_bundles_.size());
  for (const uint64_t id : dirty_bundles_) {
    const auto it = bundles_.find(id);
    CHECK(it != bundles_.end());  // retired ids are erased from the dirty set
    dirty->emplace_back(id, it->second);  // deep copy of the *final* state
  }
  auto retired = std::make_shared<const std::vector<uint64_t>>(retired_bundles_);
  auto postings =
      std::make_shared<const std::vector<std::pair<TokenId, uint64_t>>>(posting_appends_);
  const uint64_t order_pops = order_pops_since_freeze_;
  const size_t order_start = frozen_order_len_ > order_pops
                                 ? static_cast<size_t>(frozen_order_len_ - order_pops)
                                 : 0;
  auto order = std::make_shared<const std::vector<OrderEntry>>(
      store_order_.begin() + static_cast<ptrdiff_t>(order_start), store_order_.end());
  const uint64_t next_bundle_id = next_bundle_id_;
  const uint64_t alive_members = alive_members_;
  auto stats = std::make_shared<const JoinerStats>(stats_);
  MarkFrozen();
  store::FrozenBlob f;
  f.is_delta = true;
  f.encode = [dirty, retired, postings, order, order_pops, next_bundle_id, alive_members,
              stats](std::string* out) {
    BinaryWriter w(out);
    w.WriteU8(kTagDelta);
    w.WriteU64(retired->size());
    for (const uint64_t id : *retired) w.WriteU64(id);
    w.WriteU64(dirty->size());
    for (const auto& [id, b] : *dirty) WriteBundleTo(id, b, &w);
    w.WriteU64(postings->size());
    for (const auto& [token, id] : *postings) {
      w.WriteU32(token);
      w.WriteU64(id);
    }
    w.WriteU64(order_pops);
    w.WriteU64(order->size());
    for (const OrderEntry& e : *order) {
      w.WriteU64(e.bundle_id);
      w.WriteU32(e.uid);
      w.WriteI64(e.timestamp);
    }
    w.WriteU64(next_bundle_id);
    w.WriteU64(alive_members);
    WriteJoinerStats(*stats, &w);
  };
  return f;
}

void BundleJoiner::RestoreDelta(const std::string& blob) {
  BinaryReader r(blob);
  const uint8_t tag = r.ReadU8();
  CHECK(tag == kTagDelta) << "non-delta blob passed to RestoreDelta";
  const uint64_t retired = r.ReadU64();
  for (uint64_t i = 0; i < retired; ++i) bundles_.erase(r.ReadU64());
  const uint64_t dirty = r.ReadU64();
  for (uint64_t i = 0; i < dirty; ++i) {
    const uint64_t id = r.ReadU64();
    ReadBundleInto(&r, &bundles_[id]);  // insert or overwrite with final state
  }
  const uint64_t postings = r.ReadU64();
  for (uint64_t i = 0; i < postings; ++i) {
    const TokenId token = r.ReadU32();
    const uint64_t id = r.ReadU64();
    std::vector<uint64_t>* list;
    if (options_.direct_index) {
      if (token >= dense_index_.size()) dense_index_.resize(token + 1);
      list = &dense_index_[token];
    } else {
      list = &sparse_index_[token];
    }
    list->push_back(id);
  }
  // Trim the eviction order, then append the interval's surviving suffix.
  // Pops beyond the materialized length refer to entries appended and
  // popped within the interval — they never existed here. The pops are
  // raw (no member erases): the dirty copies above already carry each
  // touched bundle's final member state.
  const uint64_t order_pops = r.ReadU64();
  for (uint64_t i = 0; i < order_pops && !store_order_.empty(); ++i) store_order_.pop_front();
  const uint64_t order_n = r.ReadU64();
  for (uint64_t i = 0; i < order_n; ++i) {
    OrderEntry e;
    e.bundle_id = r.ReadU64();
    e.uid = r.ReadU32();
    e.timestamp = r.ReadI64();
    store_order_.push_back(e);
  }
  next_bundle_id_ = r.ReadU64();
  alive_members_ = r.ReadU64();
  ReadJoinerStats(&r, &stats_);
  RecomputeApproxBytes();
  MarkFrozen();
}

size_t BundleJoiner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [_, b] : bundles_) {
    bytes += sizeof(Bundle) + b.pivot.capacity() * sizeof(TokenId) +
             b.indexed.capacity() * sizeof(TokenId);
    bytes += b.members.capacity() * sizeof(std::pair<uint32_t, Member>);
    for (const auto& [__, m] : b.members) {
      bytes += (m.added.capacity() + m.removed.capacity()) * sizeof(TokenId);
    }
  }
  bytes += dense_index_.capacity() * sizeof(std::vector<uint64_t>);
  for (const std::vector<uint64_t>& list : dense_index_) {
    bytes += list.capacity() * sizeof(uint64_t);
  }
  bytes += sparse_index_.size() * (sizeof(TokenId) + sizeof(std::vector<uint64_t>) + 16);
  for (const auto& [_, list] : sparse_index_) {
    bytes += list.capacity() * sizeof(uint64_t);
  }
  bytes += store_order_.size() * sizeof(OrderEntry);
  return bytes;
}

}  // namespace dssj
