#include "core/minhash_joiner.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "core/verify.h"

namespace dssj {

MinHashJoiner::MinHashJoiner(const SimilaritySpec& sim, const WindowSpec& window,
                             MinHashJoinerOptions options)
    : sim_(sim), window_(window), options_(options) {
  CHECK_GE(options_.bands, 1);
  CHECK_GE(options_.rows, 1);
  buckets_.resize(static_cast<size_t>(options_.bands));
}

std::vector<uint64_t> MinHashJoiner::BandKeys(const Record& r) const {
  // MinHash via per-function mixing of token ids: h_i(tok) =
  // Mix64(tok ^ seed_i); the signature entry is the minimum over tokens.
  std::vector<uint64_t> keys(static_cast<size_t>(options_.bands));
  uint64_t fn_seed = options_.seed;
  for (int band = 0; band < options_.bands; ++band) {
    uint64_t band_key = 0x9E3779B97F4A7C15ULL;
    for (int row = 0; row < options_.rows; ++row) {
      fn_seed = Mix64(fn_seed + 0xA24BAED4963EE407ULL);
      uint64_t min_hash = ~0ULL;
      for (const TokenId tok : r.tokens) {
        min_hash = std::min(min_hash, Mix64(tok ^ fn_seed));
      }
      band_key = HashCombine(band_key, min_hash);
    }
    keys[static_cast<size_t>(band)] = band_key;
  }
  return keys;
}

void MinHashJoiner::EvictOldest() {
  store_.pop_front();
  ++base_;
  ++stats_.evictions;
}

void MinHashJoiner::Evict(int64_t now) {
  if (window_.kind != WindowSpec::Kind::kTime) return;
  while (!store_.empty() && window_.ExpiredByTime(store_.front().record->timestamp, now)) {
    EvictOldest();
  }
}

void MinHashJoiner::Process(const RecordPtr& r, bool store, bool probe,
                            const ResultCallback& cb) {
  if (r->size() == 0) return;
  Evict(r->timestamp);
  const std::vector<uint64_t> keys = BandKeys(*r);

  if (probe) {
    ++stats_.probes;
    ++probe_stamp_;
    const size_t lo = sim_.LengthLowerBound(r->size());
    const size_t hi = sim_.LengthUpperBound(r->size());
    for (int band = 0; band < options_.bands; ++band) {
      auto& band_buckets = buckets_[static_cast<size_t>(band)];
      auto it = band_buckets.find(keys[static_cast<size_t>(band)]);
      if (it == band_buckets.end()) continue;
      std::vector<uint64_t>& list = it->second;
      size_t write = 0;
      for (size_t read = 0; read < list.size(); ++read) {
        const uint64_t lid = list[read];
        if (!Alive(lid)) {
          ++stats_.dead_postings_purged;
          continue;
        }
        list[write++] = lid;
        ++stats_.postings_scanned;
        auto [seen_it, inserted] = last_seen_.try_emplace(lid, probe_stamp_);
        if (!inserted && seen_it->second == probe_stamp_) continue;  // already probed
        seen_it->second = probe_stamp_;
        const RecordPtr& s = store_[static_cast<size_t>(lid - base_)].record;
        if (s->size() < lo || s->size() > hi) {
          ++stats_.length_filtered;
          continue;
        }
        ++stats_.candidates;
        const size_t alpha = sim_.MinOverlap(r->size(), s->size());
        const size_t o = VerifyOverlap(r->tokens, s->tokens, alpha, &stats_.verify);
        if (o >= alpha) {
          ++stats_.results;
          cb(ResultPair{r->id, r->seq, s->id, s->seq});
        }
      }
      list.resize(write);
      if (list.empty()) band_buckets.erase(it);
    }
  }

  if (store) {
    while (window_.OverCount(store_.size())) EvictOldest();
    const uint64_t local_id = base_ + store_.size();
    for (int band = 0; band < options_.bands; ++band) {
      buckets_[static_cast<size_t>(band)][keys[static_cast<size_t>(band)]].push_back(local_id);
    }
    store_.push_back(Stored{r, keys});
    ++stats_.stores;
  }
}

size_t MinHashJoiner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Stored& s : store_) {
    bytes += sizeof(Stored) + s.record->tokens.size() * sizeof(TokenId) +
             s.band_keys.capacity() * sizeof(uint64_t);
  }
  for (const auto& band : buckets_) {
    for (const auto& [_, list] : band) bytes += 48 + list.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace dssj
