#ifndef DSSJ_CORE_TWO_STREAM_JOINER_H_
#define DSSJ_CORE_TWO_STREAM_JOINER_H_

#include <memory>

#include "core/local_joiner.h"
#include "core/record_joiner.h"
#include "core/similarity.h"
#include "core/window.h"

namespace dssj {

/// Streaming R-S set similarity join (two labelled input streams; data
/// integration between two sources): for every arriving record, report all
/// records of the *other* stream that arrived earlier (within that
/// stream's window) with sim >= t. Unlike the self-join, records never
/// match their own stream.
///
/// Built from two per-side joiners: an arriving R record probes the
/// S-side index and is stored into the R-side index (and vice versa).
/// Single-threaded like every LocalJoiner; the distributed layer can run
/// one instance per partition exactly as it does for the self-join.
class TwoStreamJoiner {
 public:
  enum class Side { kR, kS };

  /// Result orientation: r always from stream R, s always from stream S.
  struct RsPair {
    uint64_t r_id = 0;
    uint64_t r_seq = 0;
    uint64_t s_id = 0;
    uint64_t s_seq = 0;

    friend bool operator==(const RsPair& a, const RsPair& b) = default;
  };
  using RsCallback = std::function<void(const RsPair&)>;

  /// `r_window` / `s_window` bound each stream's stored records
  /// independently.
  TwoStreamJoiner(const SimilaritySpec& sim, const WindowSpec& r_window,
                  const WindowSpec& s_window, RecordJoinerOptions options = {});

  /// Processes one record from `side`: probes the other side, then stores
  /// into its own side.
  void Process(Side side, const RecordPtr& record, const RsCallback& cb);

  size_t StoredCount(Side side) const;
  const JoinerStats& stats(Side side) const;
  size_t MemoryBytes() const;

  /// Checkpointing: the two per-side RecordJoiner snapshots, concatenated.
  /// Same contract as LocalJoiner::Snapshot — a restored instance emits
  /// exactly what the snapshotted one would for any subsequent input.
  void Snapshot(std::string* out) const;
  void Restore(const std::string& blob);

  /// Incremental checkpointing: both sides freeze the same kind in one
  /// call, so a combined blob is a delta iff both per-side blobs are
  /// (RecordJoiner always honors the requested kind, so they agree).
  /// Layout mirrors Snapshot: u64-length-prefixed R blob then S blob.
  store::FrozenBlob FreezeBase();
  store::FrozenBlob FreezeDelta();
  void RestoreDelta(const std::string& blob);

  /// Both sides spill into the shared store; the watermark is split
  /// evenly so the combined hot footprint honors the caller's budget.
  void AttachSpillStore(store::SpillStore* spill, size_t watermark_bytes) {
    r_index_->AttachSpillStore(spill, watermark_bytes / 2);
    s_index_->AttachSpillStore(spill, watermark_bytes / 2);
  }
  size_t ColdCount() const { return r_index_->ColdCount() + s_index_->ColdCount(); }

 private:
  RecordJoiner& IndexOf(Side side) { return side == Side::kR ? *r_index_ : *s_index_; }
  const RecordJoiner& IndexOf(Side side) const {
    return side == Side::kR ? *r_index_ : *s_index_;
  }

  // Each side's index holds that side's records; incoming records of the
  // opposite side probe it.
  std::unique_ptr<RecordJoiner> r_index_;
  std::unique_ptr<RecordJoiner> s_index_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_TWO_STREAM_JOINER_H_
