#ifndef DSSJ_CORE_ADAPTIVE_ROUTER_H_
#define DSSJ_CORE_ADAPTIVE_ROUTER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/repartition.h"
#include "core/router.h"

namespace dssj {

/// Configuration of the adaptive length router.
struct AdaptiveRouterOptions {
  /// Records between advisor evaluations.
  uint64_t replan_interval = 20000;
  /// Decay horizon of the drift monitor.
  uint64_t half_life_records = 20000;
  /// When to accept a replan.
  RepartitionPolicy policy;
  /// With a time window of this span (stream-time µs), an epoch retires
  /// once every record stored under it has expired. 0 (count/unbounded
  /// windows) means epochs never retire and replanning stops at
  /// max_epochs.
  int64_t window_span_micros = 0;
  /// Hard cap on live epochs (probe fan-out grows with the epoch count).
  size_t max_epochs = 8;
};

/// Length-based router that *adapts to drift without state migration*.
/// Replans create a new partition **epoch**: records arriving afterwards
/// are stored under the new partition, while records stored under earlier
/// epochs stay where they are. A probe fans out over the union of every
/// live epoch's covering partitions, so no pair is missed; once a time
/// window guarantees an old epoch's records have all expired, the epoch
/// retires and the fan-out shrinks back. This preserves the length-based
/// scheme's no-replication property (each record is still stored exactly
/// once) at the temporary cost of a wider probe fan-out after a replan.
///
/// Requires a single dispatcher (epochs are router-local state; parallel
/// dispatchers would diverge) — enforced by the join topology facade.
class AdaptiveLengthRouter : public Router {
 public:
  AdaptiveLengthRouter(const SimilaritySpec& sim, LengthPartition initial,
                       AdaptiveRouterOptions options = {});

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return num_partitions_; }

  /// Introspection.
  uint64_t replans() const { return replans_; }
  size_t live_epochs() const { return epochs_.size(); }
  const LengthPartition& current_partition() const { return epochs_.back().partition; }

 private:
  struct Epoch {
    LengthPartition partition;
    /// Stream time when this epoch stopped receiving stores (close time);
    /// meaningful for all but the last epoch.
    int64_t closed_at = 0;
  };

  void MaybeRetire(int64_t now);
  void MaybeReplan(const Record& r);

  SimilaritySpec sim_;
  int num_partitions_;
  AdaptiveRouterOptions options_;
  std::deque<Epoch> epochs_;
  RepartitionAdvisor advisor_;
  uint64_t since_replan_ = 0;
  uint64_t replans_ = 0;
  std::vector<bool> probe_mask_;  // scratch
};

}  // namespace dssj

#endif  // DSSJ_CORE_ADAPTIVE_ROUTER_H_
