#ifndef DSSJ_CORE_ADAPTIVE_ROUTER_H_
#define DSSJ_CORE_ADAPTIVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/repartition.h"
#include "core/router.h"

namespace dssj {

/// Configuration of the adaptive length router.
struct AdaptiveRouterOptions {
  /// Records between advisor evaluations.
  uint64_t replan_interval = 20000;
  /// Decay horizon of the drift monitor.
  uint64_t half_life_records = 20000;
  /// When to accept a replan.
  RepartitionPolicy policy;
  /// With a time window of this span (stream-time µs), an epoch retires
  /// once every record stored under it has expired. 0 (count/unbounded
  /// windows) means epochs never retire and replanning stops at
  /// max_epochs.
  int64_t window_span_micros = 0;
  /// Hard cap on live epochs (probe fan-out grows with the epoch count).
  size_t max_epochs = 8;
};

/// One partition epoch (see AdaptiveLengthRouter).
struct PartitionEpoch {
  LengthPartition partition;
  /// Stream time when this epoch stopped receiving stores (close time);
  /// meaningful for all but the last epoch.
  int64_t closed_at = 0;
};

/// Shared, lane-shardable core of the adaptive router. The live epoch list
/// is an *immutable snapshot* published through an atomic shared_ptr:
/// Route() readers (one per ingestion lane) load it without taking a lock,
/// while replans and retirements build a fresh epoch vector and publish it
/// with a compare-exchange. Observation statistics fold into the advisor
/// under a mutex; lanes that lose the race buffer their lengths locally
/// (see AdaptiveLengthRouter) so the hot path never blocks on it.
class AdaptiveRouterState {
 public:
  using Snapshot = std::vector<PartitionEpoch>;

  AdaptiveRouterState(const SimilaritySpec& sim, LengthPartition initial,
                      AdaptiveRouterOptions options = {});

  /// The current epoch list (lock-free acquire load).
  std::shared_ptr<const Snapshot> Load() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Folds the caller's backlog (`pending`, drained in order on success)
  /// plus the newest observation into the advisor, running the retire and
  /// replan checks per observed record exactly as a single-lane router
  /// would. Returns false without observing anything when another lane
  /// holds the fold lock — the caller buffers `length` and retries with
  /// its next record.
  bool TryObserve(std::vector<size_t>* pending, size_t length, int64_t now);

  const SimilaritySpec& sim() const { return sim_; }
  int num_partitions() const { return num_partitions_; }
  uint64_t replans() const { return replans_.load(std::memory_order_relaxed); }
  size_t live_epochs() const { return Load()->size(); }
  LengthPartition current_partition() const { return Load()->back().partition; }

 private:
  // All *Locked helpers run under mu_ and publish via PublishLocked.
  void ObserveOneLocked(size_t length, int64_t now);
  void MaybeRetireLocked(int64_t now);
  void MaybeReplanLocked(int64_t now);
  void PublishLocked(Snapshot next);

  SimilaritySpec sim_;
  int num_partitions_;
  AdaptiveRouterOptions options_;
  std::mutex mu_;               ///< serializes advisor folds + publishes
  RepartitionAdvisor advisor_;  ///< guarded by mu_
  uint64_t since_replan_ = 0;   ///< guarded by mu_
  std::atomic<uint64_t> replans_{0};
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
};

/// Length-based router that *adapts to drift without state migration*.
/// Replans create a new partition **epoch**: records arriving afterwards
/// are stored under the new partition, while records stored under earlier
/// epochs stay where they are. A probe fans out over the union of every
/// live epoch's covering partitions, so no pair is missed; once a time
/// window guarantees an old epoch's records have all expired, the epoch
/// retires and the fan-out shrinks back. This preserves the length-based
/// scheme's no-replication property (each record is still stored exactly
/// once) at the temporary cost of a wider probe fan-out after a replan.
///
/// One instance per dispatcher lane. A single lane may own its state
/// outright (first constructor); sharded ingestion passes the same
/// AdaptiveRouterState to every lane so all lanes route against one
/// coherent epoch list. Routing stays exact either way, but with several
/// lanes the *timing* of replans depends on lane interleaving, so adaptive
/// runs are excluded from the byte-identical lane-equivalence guarantee
/// (docs/INTERNALS.md §14).
class AdaptiveLengthRouter : public Router {
 public:
  AdaptiveLengthRouter(const SimilaritySpec& sim, LengthPartition initial,
                       AdaptiveRouterOptions options = {});
  explicit AdaptiveLengthRouter(std::shared_ptr<AdaptiveRouterState> state);

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return state_->num_partitions(); }

  /// Introspection (shared across lanes when the state is shared).
  uint64_t replans() const { return state_->replans(); }
  size_t live_epochs() const { return state_->live_epochs(); }
  LengthPartition current_partition() const { return state_->current_partition(); }

 private:
  std::shared_ptr<AdaptiveRouterState> state_;
  std::vector<size_t> pending_lengths_;  ///< backlog from contended folds
  std::vector<bool> probe_mask_;         ///< scratch
};

}  // namespace dssj

#endif  // DSSJ_CORE_ADAPTIVE_ROUTER_H_
