#ifndef DSSJ_CORE_PARTITION_H_
#define DSSJ_CORE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/similarity.h"
#include "text/record.h"

namespace dssj {

/// Histogram of record lengths observed in a sample of the stream; the
/// input to the load-aware partitioner.
class LengthHistogram {
 public:
  void Add(size_t length);
  /// Adds `count` records of the given length at once.
  void AddWeighted(size_t length, uint64_t count);
  void AddRecords(const std::vector<RecordPtr>& records);

  /// Count of records with exactly `length` tokens.
  uint64_t CountAt(size_t length) const;
  /// Largest length with a nonzero count (0 when empty).
  size_t MaxLength() const { return counts_.empty() ? 0 : counts_.size() - 1; }
  uint64_t TotalRecords() const { return total_; }

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Estimated local join load induced per *stored* length. For a stored
/// record of length l', every incoming record of length l whose partner
/// range covers l' pays filtering+verification cost against it; a standard
/// proxy for that pairwise cost is (l + l'). The total is additive over
/// stored lengths:
///
///   g(l') = f(l') · Σ_{l : l' ∈ [lb(l), ub(l)]} f(l) · (l + l')
///
/// which, because the eligibility relation is symmetric, is computed with
/// prefix sums in O(L). Partition cost = Σ g over its interval, so
/// minimizing the bottleneck is the classic linear-partitioning problem.
std::vector<double> ComputePerLengthLoad(const LengthHistogram& histogram,
                                         const SimilaritySpec& sim);

/// A contiguous partition of the length domain [0, max] into k intervals.
/// Interval i owns lengths [bounds[i], bounds[i+1]). bounds.front() == 0
/// and bounds.back() > max so every length maps somewhere (out-of-sample
/// lengths clamp into the edge intervals).
class LengthPartition {
 public:
  LengthPartition() = default;
  /// `bounds` must be strictly increasing with at least 2 entries.
  explicit LengthPartition(std::vector<size_t> bounds);

  int num_partitions() const { return static_cast<int>(bounds_.size()) - 1; }

  /// Partition owning `length` (clamped into [0, num_partitions)).
  int PartitionOf(size_t length) const;

  /// All partitions whose interval intersects [lo, hi] (inclusive).
  /// Returns an empty range when lo > hi.
  std::pair<int, int> PartitionsCovering(size_t lo, size_t hi) const;

  const std::vector<size_t>& bounds() const { return bounds_; }

  std::string ToString() const;

 private:
  std::vector<size_t> bounds_;
};

/// Full local-join cost model for a candidate interval of the length
/// domain. Extends the additive per-stored-length load with the *probe
/// visit* term the additive model cannot express: every incoming record
/// whose partner range intersects the interval costs the owning joiner a
/// fixed overhead (message handling, prefix lookups) even when it matches
/// nothing. Interval cost is monotone under extension, so both the exact
/// DP and the greedy parametric search apply unchanged.
///
///   cost([a,b]) = Σ_{l'∈[a,b]} g(l')                      (pair work)
///               + visit_cost · Σ_l f(l)·[range(l) ∩ [a,b] ≠ ∅]   (visits)
class JoinCostModel {
 public:
  struct Weights {
    /// Scale of the pairwise term (token-merge units; keep at 1.0).
    double pair_cost = 1.0;
    /// Fixed cost of one probe visit, in the same units. Calibrate as
    /// (per-message overhead in ns) / (ns per merged token); ~500-1000 for
    /// this engine.
    double visit_cost = 600.0;
  };

  JoinCostModel(const LengthHistogram& histogram, const SimilaritySpec& sim,
                Weights weights);
  /// Uses the default Weights.
  JoinCostModel(const LengthHistogram& histogram, const SimilaritySpec& sim);

  /// Cost of owning lengths [a, b] (inclusive). Requires a <= b.
  double IntervalCost(size_t a, size_t b) const;

  /// Largest length with nonzero count.
  size_t max_length() const { return max_length_; }

 private:
  SimilaritySpec sim_;
  Weights weights_;
  size_t max_length_ = 0;
  std::vector<double> pair_load_ps_;  ///< prefix sums of per-length pair load
  std::vector<double> count_ps_;      ///< prefix sums of record counts
};

/// Bottleneck-optimal contiguous partition for a full cost model (exact
/// DP, O(L²k)).
LengthPartition PartitionByCostModelDP(const JoinCostModel& model, int k);

/// Parametric-search equivalent of PartitionByCostModelDP, O(L log ΣW).
LengthPartition PartitionByCostModelGreedy(const JoinCostModel& model, int k);

/// Max interval cost under the model (the quantity the two functions above
/// minimize).
double BottleneckModelCost(const LengthPartition& partition, const JoinCostModel& model);

/// Equal-width intervals over [min_length, max_length] — the naive
/// baseline.
LengthPartition PartitionUniform(size_t min_length, size_t max_length, int k);

/// Intervals holding (approximately) equal record *counts* — balances
/// storage, not join cost.
LengthPartition PartitionEqualFrequency(const LengthHistogram& histogram, int k);

/// Exact bottleneck-optimal contiguous partition by dynamic programming,
/// O(L²·k). Use for modest length domains and as the optimality oracle in
/// tests.
LengthPartition PartitionLoadAwareDP(const std::vector<double>& load, int k);

/// Bottleneck-optimal contiguous partition via parametric search (binary
/// search on the bottleneck value + greedy feasibility), O(L log ΣW).
/// Produces a partition whose bottleneck equals the DP optimum.
LengthPartition PartitionLoadAwareGreedy(const std::vector<double>& load, int k);

/// Max interval load under `partition` (the quantity both load-aware
/// algorithms minimize).
double BottleneckLoad(const LengthPartition& partition, const std::vector<double>& load);

/// Mean interval load (bottleneck / mean = imbalance factor).
double MeanLoad(const LengthPartition& partition, const std::vector<double>& load);

}  // namespace dssj

#endif  // DSSJ_CORE_PARTITION_H_
