#include "core/router.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace dssj {

LengthRouter::LengthRouter(const SimilaritySpec& sim, LengthPartition partition)
    : sim_(sim), partition_(std::move(partition)) {
  CHECK_GE(partition_.num_partitions(), 1);
}

void LengthRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  const size_t l = r.size();
  if (l == 0 || sim_.PrefixLength(l) == 0) return;  // cannot be in any pair
  const int owner = partition_.PartitionOf(l);
  const size_t lo = sim_.LengthLowerBound(l);
  const size_t hi = sim_.LengthUpperBound(l);
  const auto [first, last] = partition_.PartitionsCovering(lo, hi);
  DCHECK_LE(first, owner);
  DCHECK_GE(last, owner);
  for (int p = first; p <= last; ++p) {
    out.push_back(RouteTarget{p, /*store=*/p == owner, /*probe=*/true});
  }
}

BroadcastRouter::BroadcastRouter(int num_partitions) : k_(num_partitions) {
  CHECK_GE(k_, 1);
}

void BroadcastRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  if (r.size() == 0) return;
  const int owner = static_cast<int>(rr_++ % static_cast<uint64_t>(k_));
  for (int p = 0; p < k_; ++p) {
    out.push_back(RouteTarget{p, /*store=*/p == owner, /*probe=*/true});
  }
}

ReplicatedRouter::ReplicatedRouter(int num_partitions) : k_(num_partitions) {
  CHECK_GE(k_, 1);
}

void ReplicatedRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  if (r.size() == 0) return;
  const int prober = static_cast<int>(rr_++ % static_cast<uint64_t>(k_));
  for (int p = 0; p < k_; ++p) {
    out.push_back(RouteTarget{p, /*store=*/true, /*probe=*/p == prober});
  }
}

PrefixRouter::PrefixRouter(const SimilaritySpec& sim, int num_partitions)
    : sim_(sim), k_(num_partitions) {
  CHECK_GE(k_, 1);
}

int PrefixRouter::OwnerOf(TokenId token) const {
  return static_cast<int>(Mix64(token) % static_cast<uint64_t>(k_));
}

void PrefixRouter::Route(const Record& r, std::vector<RouteTarget>& out) {
  out.clear();
  const size_t prefix_len = sim_.PrefixLength(r.size());
  if (prefix_len == 0) return;
  // Distinct owners of the prefix tokens.
  for (size_t i = 0; i < prefix_len; ++i) {
    const int p = OwnerOf(r.tokens[i]);
    bool seen = false;
    for (const RouteTarget& t : out) {
      if (t.partition == p) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(RouteTarget{p, /*store=*/true, /*probe=*/true});
  }
  std::sort(out.begin(), out.end(),
            [](const RouteTarget& a, const RouteTarget& b) { return a.partition < b.partition; });
}

std::function<bool(TokenId)> PrefixRouter::TokenFilterFor(int partition) const {
  const int k = k_;
  return [partition, k](TokenId token) {
    return static_cast<int>(Mix64(token) % static_cast<uint64_t>(k)) == partition;
  };
}

}  // namespace dssj
