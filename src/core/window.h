#ifndef DSSJ_CORE_WINDOW_H_
#define DSSJ_CORE_WINDOW_H_

#include <cstdint>
#include <string>

namespace dssj {

/// Sliding-window retention policy for stored records. Count windows keep
/// the most recent `count` *stored* records per joiner partition; time
/// windows keep records whose timestamp is within `span_micros` of the
/// probing record's timestamp (stream time, not wall clock). kUnbounded
/// disables eviction (offline joins, tests).
struct WindowSpec {
  enum class Kind { kUnbounded, kCount, kTime };

  Kind kind = Kind::kUnbounded;
  size_t count = 0;
  int64_t span_micros = 0;

  static WindowSpec Unbounded() { return WindowSpec{}; }
  static WindowSpec ByCount(size_t n) { return WindowSpec{Kind::kCount, n, 0}; }
  static WindowSpec ByTime(int64_t span_micros) {
    return WindowSpec{Kind::kTime, 0, span_micros};
  }

  /// True when a stored record with `stored_timestamp` has fallen out of a
  /// time window relative to `now` (the probing record's timestamp).
  bool ExpiredByTime(int64_t stored_timestamp, int64_t now) const {
    return kind == Kind::kTime && stored_timestamp < now - span_micros;
  }

  /// True when a partition holding `stored_count` records must evict before
  /// storing another one under a count window.
  bool OverCount(size_t stored_count) const {
    return kind == Kind::kCount && stored_count >= count;
  }

  std::string ToString() const {
    switch (kind) {
      case Kind::kUnbounded:
        return "window=unbounded";
      case Kind::kCount:
        return "window=count:" + std::to_string(count);
      case Kind::kTime:
        return "window=time:" + std::to_string(span_micros) + "us";
    }
    return "window=?";
  }
};

}  // namespace dssj

#endif  // DSSJ_CORE_WINDOW_H_
