#include "core/repartition.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dssj {

DecayingLengthHistogram::DecayingLengthHistogram(uint64_t half_life_records) {
  CHECK_GE(half_life_records, 1u);
  // Each record's weight is weight_ at insertion; making weight_ grow by
  // 2^(1/half_life) per record is equivalent to decaying old entries.
  growth_per_record_ = std::exp2(1.0 / static_cast<double>(half_life_records));
}

void DecayingLengthHistogram::Add(size_t length) {
  if (length >= counts_.size()) counts_.resize(length + 1, 0.0);
  counts_[length] += weight_;
  total_weight_ += weight_;
  weight_ *= growth_per_record_;
  if (weight_ > 1e12) Renormalize();
}

void DecayingLengthHistogram::Renormalize() {
  const double inv = 1.0 / weight_;
  for (double& c : counts_) c *= inv;
  total_weight_ *= inv;
  weight_ = 1.0;
}

double DecayingLengthHistogram::EffectiveCount() const { return total_weight_ / weight_; }

LengthHistogram DecayingLengthHistogram::Snapshot() const {
  LengthHistogram histogram;
  // Scale so a just-added record counts 65536 — integer rounding then
  // keeps 16 bits of relative resolution for old, heavily decayed mass.
  const double scale = 65536.0 / weight_;
  for (size_t l = 0; l < counts_.size(); ++l) {
    const auto count = static_cast<uint64_t>(std::llround(counts_[l] * scale));
    if (count > 0) histogram.AddWeighted(l, count);
  }
  return histogram;
}

RepartitionAdvisor::RepartitionAdvisor(const SimilaritySpec& sim, int num_partitions,
                                       RepartitionPolicy policy, uint64_t half_life_records)
    : sim_(sim),
      num_partitions_(num_partitions),
      policy_(policy),
      monitor_(half_life_records) {
  CHECK_GE(num_partitions_, 1);
}

void RepartitionAdvisor::ObserveLength(size_t length) { monitor_.Add(length); }

MigrationPlan RepartitionAdvisor::Evaluate(const LengthPartition& current,
                                           const LengthHistogram& stored_window) const {
  MigrationPlan plan;
  const LengthHistogram recent = monitor_.Snapshot();
  if (recent.TotalRecords() == 0) {
    plan.new_partition = current;
    return plan;
  }
  const std::vector<double> load = ComputePerLengthLoad(recent, sim_);
  plan.new_partition = PartitionLoadAwareGreedy(load, num_partitions_);
  plan.current_bottleneck = BottleneckLoad(current, load);
  plan.new_bottleneck = BottleneckLoad(plan.new_partition, load);
  plan.improvement_factor = plan.new_bottleneck > 0.0
                                ? plan.current_bottleneck / plan.new_bottleneck
                                : 1.0;

  uint64_t total_stored = 0;
  for (size_t l = 0; l <= stored_window.MaxLength(); ++l) {
    const uint64_t count = stored_window.CountAt(l);
    if (count == 0) continue;
    total_stored += count;
    if (current.PartitionOf(l) != plan.new_partition.PartitionOf(l)) {
      plan.records_to_move += count;
      plan.bytes_to_move += count * (24 + 4 * static_cast<uint64_t>(l));
    }
  }
  plan.move_fraction = total_stored > 0 ? static_cast<double>(plan.records_to_move) /
                                              static_cast<double>(total_stored)
                                        : 0.0;
  plan.recommended = plan.improvement_factor >= policy_.min_improvement &&
                     plan.move_fraction <= policy_.max_move_fraction;
  return plan;
}

std::vector<WorkerMove> PlanWorkerMigrations(const std::vector<double>& load,
                                             const std::vector<int>& current_worker,
                                             int target_active_workers,
                                             double imbalance_threshold) {
  CHECK_EQ(load.size(), current_worker.size());
  CHECK_GE(target_active_workers, 1);
  CHECK_GE(imbalance_threshold, 0.0);
  const int n = static_cast<int>(load.size());
  const int k = target_active_workers;

  std::vector<int> assigned = current_worker;
  std::vector<double> worker_load(static_cast<size_t>(k), 0.0);
  std::vector<int> evicted;  // tasks parked outside the active set
  for (int i = 0; i < n; ++i) {
    if (assigned[i] >= 0 && assigned[i] < k) {
      worker_load[static_cast<size_t>(assigned[i])] += load[i];
    } else {
      evicted.push_back(i);
    }
  }
  const auto least_loaded = [&]() {
    int best = 0;
    for (int w = 1; w < k; ++w) {
      if (worker_load[static_cast<size_t>(w)] < worker_load[static_cast<size_t>(best)]) best = w;
    }
    return best;
  };

  // (a) Evacuate: heaviest first onto the least-loaded active worker (LPT).
  std::sort(evicted.begin(), evicted.end(), [&](int a, int b) {
    if (load[a] != load[b]) return load[a] > load[b];
    return a < b;
  });
  for (const int i : evicted) {
    const int w = least_loaded();
    assigned[i] = w;
    worker_load[static_cast<size_t>(w)] += load[i];
  }

  // (b) Rebalance inside the active set: while the bottleneck exceeds
  // (1 + threshold) x mean, move the task on the bottleneck worker whose
  // relocation to the least-loaded worker shrinks the bottleneck most.
  // Each task moves at most once (already-moved evictees stay), and a move
  // must strictly reduce the bottleneck, so the loop terminates.
  double total = 0.0;
  for (const double l : load) total += l;
  const double mean = total / static_cast<double>(k);
  std::vector<uint8_t> moved(static_cast<size_t>(n), 0);
  for (const int i : evicted) moved[static_cast<size_t>(i)] = 1;
  for (int round = 0; round < n; ++round) {
    int hot = 0;
    for (int w = 1; w < k; ++w) {
      if (worker_load[static_cast<size_t>(w)] > worker_load[static_cast<size_t>(hot)]) hot = w;
    }
    const double hot_load = worker_load[static_cast<size_t>(hot)];
    if (hot_load <= (1.0 + imbalance_threshold) * mean) break;
    const int cold = least_loaded();
    if (cold == hot) break;
    const double cold_load = worker_load[static_cast<size_t>(cold)];
    // Best candidate: largest load that still fits without making the cold
    // worker the new bottleneck (i.e. cold + load[i] < hot).
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      if (assigned[i] != hot || moved[static_cast<size_t>(i)] != 0 || load[i] <= 0.0) continue;
      if (cold_load + load[i] >= hot_load) continue;
      if (pick < 0 || load[i] > load[pick]) pick = i;
    }
    if (pick < 0) break;
    assigned[pick] = cold;
    moved[static_cast<size_t>(pick)] = 1;
    worker_load[static_cast<size_t>(hot)] -= load[pick];
    worker_load[static_cast<size_t>(cold)] += load[pick];
  }

  std::vector<WorkerMove> moves;
  for (int i = 0; i < n; ++i) {
    if (assigned[i] != current_worker[i]) moves.push_back(WorkerMove{i, assigned[i]});
  }
  return moves;
}

}  // namespace dssj
