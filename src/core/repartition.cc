#include "core/repartition.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dssj {

DecayingLengthHistogram::DecayingLengthHistogram(uint64_t half_life_records) {
  CHECK_GE(half_life_records, 1u);
  // Each record's weight is weight_ at insertion; making weight_ grow by
  // 2^(1/half_life) per record is equivalent to decaying old entries.
  growth_per_record_ = std::exp2(1.0 / static_cast<double>(half_life_records));
}

void DecayingLengthHistogram::Add(size_t length) {
  if (length >= counts_.size()) counts_.resize(length + 1, 0.0);
  counts_[length] += weight_;
  total_weight_ += weight_;
  weight_ *= growth_per_record_;
  if (weight_ > 1e12) Renormalize();
}

void DecayingLengthHistogram::Renormalize() {
  const double inv = 1.0 / weight_;
  for (double& c : counts_) c *= inv;
  total_weight_ *= inv;
  weight_ = 1.0;
}

double DecayingLengthHistogram::EffectiveCount() const { return total_weight_ / weight_; }

LengthHistogram DecayingLengthHistogram::Snapshot() const {
  LengthHistogram histogram;
  // Scale so a just-added record counts 65536 — integer rounding then
  // keeps 16 bits of relative resolution for old, heavily decayed mass.
  const double scale = 65536.0 / weight_;
  for (size_t l = 0; l < counts_.size(); ++l) {
    const auto count = static_cast<uint64_t>(std::llround(counts_[l] * scale));
    if (count > 0) histogram.AddWeighted(l, count);
  }
  return histogram;
}

RepartitionAdvisor::RepartitionAdvisor(const SimilaritySpec& sim, int num_partitions,
                                       RepartitionPolicy policy, uint64_t half_life_records)
    : sim_(sim),
      num_partitions_(num_partitions),
      policy_(policy),
      monitor_(half_life_records) {
  CHECK_GE(num_partitions_, 1);
}

void RepartitionAdvisor::ObserveLength(size_t length) { monitor_.Add(length); }

MigrationPlan RepartitionAdvisor::Evaluate(const LengthPartition& current,
                                           const LengthHistogram& stored_window) const {
  MigrationPlan plan;
  const LengthHistogram recent = monitor_.Snapshot();
  if (recent.TotalRecords() == 0) {
    plan.new_partition = current;
    return plan;
  }
  const std::vector<double> load = ComputePerLengthLoad(recent, sim_);
  plan.new_partition = PartitionLoadAwareGreedy(load, num_partitions_);
  plan.current_bottleneck = BottleneckLoad(current, load);
  plan.new_bottleneck = BottleneckLoad(plan.new_partition, load);
  plan.improvement_factor = plan.new_bottleneck > 0.0
                                ? plan.current_bottleneck / plan.new_bottleneck
                                : 1.0;

  uint64_t total_stored = 0;
  for (size_t l = 0; l <= stored_window.MaxLength(); ++l) {
    const uint64_t count = stored_window.CountAt(l);
    if (count == 0) continue;
    total_stored += count;
    if (current.PartitionOf(l) != plan.new_partition.PartitionOf(l)) {
      plan.records_to_move += count;
      plan.bytes_to_move += count * (24 + 4 * static_cast<uint64_t>(l));
    }
  }
  plan.move_fraction = total_stored > 0 ? static_cast<double>(plan.records_to_move) /
                                              static_cast<double>(total_stored)
                                        : 0.0;
  plan.recommended = plan.improvement_factor >= policy_.min_improvement &&
                     plan.move_fraction <= policy_.max_move_fraction;
  return plan;
}

}  // namespace dssj
