#ifndef DSSJ_CORE_ROUTER_H_
#define DSSJ_CORE_ROUTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/partition.h"
#include "core/similarity.h"
#include "text/record.h"

namespace dssj {

/// One destination of a dispatched record. `store` asks the joiner
/// partition to index the record; `probe` asks it to join the record
/// against its stored window. A destination may do either or both.
struct RouteTarget {
  int partition = -1;
  bool store = false;
  bool probe = false;

  friend bool operator==(const RouteTarget& a, const RouteTarget& b) = default;
};

/// A distribution strategy: maps each incoming record to joiner partitions.
/// Routers are used inside dispatcher bolts; one instance per dispatcher
/// task, so implementations may keep cheap mutable state (e.g. round-robin
/// counters) without synchronization.
class Router {
 public:
  virtual ~Router() = default;

  /// Computes the destinations of `r`. `out` is cleared first. A record
  /// that cannot participate in any result (e.g. empty) gets no targets.
  virtual void Route(const Record& r, std::vector<RouteTarget>& out) = 0;

  virtual int num_partitions() const = 0;

  /// For token-partitioned strategies: the ownership predicate joiner
  /// `partition` must apply to prefix tokens. Null for strategies whose
  /// joiners index complete prefixes.
  virtual std::function<bool(TokenId)> TokenFilterFor(int /*partition*/) const {
    return nullptr;
  }

  /// True when joiners must apply the min-common-prefix-token dedup rule
  /// (a pair can be verified at several partitions).
  virtual bool RequiresPrefixDedup() const { return false; }
};

/// The paper's length-based distribution: a record is stored at exactly the
/// partition owning its length and probed at every partition whose interval
/// intersects its partner-length range. No replication; probe fan-out
/// bounded by the (narrow) length range.
class LengthRouter : public Router {
 public:
  LengthRouter(const SimilaritySpec& sim, LengthPartition partition);

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return partition_.num_partitions(); }

  const LengthPartition& partition() const { return partition_; }

 private:
  SimilaritySpec sim_;
  LengthPartition partition_;
};

/// Baseline: store at one partition (round-robin) and probe everywhere.
/// No index replication but probe traffic scales with the partition count.
class BroadcastRouter : public Router {
 public:
  explicit BroadcastRouter(int num_partitions);

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return k_; }

 private:
  int k_;
  uint64_t rr_ = 0;
};

/// Baseline: the mirror of broadcast — store at *every* partition, probe
/// only one (round-robin). One probe message per record, but the index is
/// replicated k times (memory and store traffic scale with the partition
/// count). Because each joiner holds the complete window, count windows
/// keep global semantics under this strategy.
class ReplicatedRouter : public Router {
 public:
  explicit ReplicatedRouter(int num_partitions);

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return k_; }

 private:
  int k_;
  uint64_t rr_ = 0;
};

/// Baseline: prefix-token distribution (Vernica-join style, adapted to
/// streams). Each partition owns a hash share of the token space; a record
/// is sent (store+probe) to every partition owning one of its prefix
/// tokens. Joiners index/probe only owned tokens and emit a pair only at
/// the owner of the smallest common prefix token.
class PrefixRouter : public Router {
 public:
  PrefixRouter(const SimilaritySpec& sim, int num_partitions);

  void Route(const Record& r, std::vector<RouteTarget>& out) override;
  int num_partitions() const override { return k_; }
  std::function<bool(TokenId)> TokenFilterFor(int partition) const override;
  bool RequiresPrefixDedup() const override { return true; }

  /// Partition owning `token`.
  int OwnerOf(TokenId token) const;

 private:
  SimilaritySpec sim_;
  int k_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_ROUTER_H_
