#include "core/record_joiner.h"

#include <algorithm>

#include "common/logging.h"

namespace dssj {

RecordJoiner::RecordJoiner(const SimilaritySpec& sim, const WindowSpec& window,
                           RecordJoinerOptions options)
    : sim_(sim), window_(window), options_(std::move(options)) {
  if (options_.dedup_by_min_prefix_token) {
    CHECK(options_.token_filter != nullptr)
        << "dedup_by_min_prefix_token requires a token_filter";
  }
  // The positional filter's upper bound assumes the accumulated count covers
  // *every* common token in the scanned prefix region. Under a token filter
  // unowned common tokens are invisible, the count undercounts, and the
  // bound would prune true pairs — so the filter must be off.
  if (options_.token_filter != nullptr) options_.positional_filter = false;
}

size_t RecordJoiner::ApproxStoredBytes(const Record& r) const {
  return sizeof(Record) + sizeof(RecordPtr) + r.tokens.size() * sizeof(TokenId) +
         sim_.PrefixLength(r.size()) * sizeof(Posting);
}

void RecordJoiner::PopOldestStored() {
  approx_bytes_ -= ApproxStoredBytes(*store_.front());
  store_.pop_front();
  ++base_;
  ++stats_.evictions;
}

void RecordJoiner::PopOldestCold() {
  if (spill_ != nullptr) spill_->Release(cold_.front().handle);
  cold_.pop_front();
  ++cold_popped_total_;
  ++stats_.evictions;
}

void RecordJoiner::PopOldestOverall() {
  if (!cold_.empty()) {
    PopOldestCold();
  } else {
    PopOldestStored();
  }
}

void RecordJoiner::Evict(int64_t now) {
  if (window_.kind != WindowSpec::Kind::kTime) return;
  // Cold stubs are strictly older than every hot record, so if the cold
  // front survives, the hot loop is a no-op.
  while (!cold_.empty() && window_.ExpiredByTime(cold_.front().timestamp, now)) {
    PopOldestCold();
  }
  while (!store_.empty() && window_.ExpiredByTime(store_.front()->timestamp, now)) {
    PopOldestStored();
  }
}

size_t RecordJoiner::EvictOldest(size_t n) {
  size_t evicted = 0;
  while (evicted < n && StoredCount() > 1) {
    if (!cold_.empty()) {
      stats_.eviction_horizon_seq = std::max(stats_.eviction_horizon_seq, cold_.front().seq);
      PopOldestCold();
    } else {
      stats_.eviction_horizon_seq = std::max(stats_.eviction_horizon_seq, store_.front()->seq);
      PopOldestStored();
    }
    ++stats_.budget_evictions;
    ++evicted;
  }
  return evicted;
}

std::vector<TokenId> RecordJoiner::IndexablePrefix(const Record& r) const {
  const size_t prefix_len = sim_.PrefixLength(r.size());
  std::vector<TokenId> prefix;
  prefix.reserve(prefix_len);
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r.tokens[i];
    if (options_.token_filter != nullptr && !options_.token_filter(w)) continue;
    prefix.push_back(w);
  }
  return prefix;
}

bool RecordJoiner::SpillOldestHot() {
  if (spill_ == nullptr || store_.size() <= 1) return false;
  const RecordPtr r = store_.front();
  std::string payload;
  BinaryWriter w(&payload);
  WriteRecordTo(*r, &w);
  store::SpillHandle handle;
  if (!spill_->Append(payload, &handle).ok()) return false;
  ColdStub stub;
  stub.id = r->id;
  stub.seq = r->seq;
  stub.timestamp = r->timestamp;
  stub.size = static_cast<uint32_t>(r->size());
  stub.prefix = IndexablePrefix(*r);
  stub.handle = handle;
  cold_.push_back(std::move(stub));
  ++cold_appended_total_;
  ++stats_.spilled_records;
  stats_.spilled_bytes += payload.size();
  // Leaves the window (it is still *in* the window, just cold), so no
  // eviction is counted and the horizon does not move.
  approx_bytes_ -= ApproxStoredBytes(*r);
  store_.pop_front();
  ++base_;
  return true;
}

namespace {

/// Smallest token common to both records' streaming prefixes, or
/// TokenDictionary-style "no token" when the prefixes are disjoint. For a
/// pair that satisfies the similarity predicate the prefixes always
/// intersect (prefix filtering principle), so callers may treat the
/// no-token case as "do not emit".
constexpr TokenId kNoCommonToken = ~static_cast<TokenId>(0);

TokenId MinCommonPrefixToken(const SimilaritySpec& sim, const Record& a, const Record& b) {
  const size_t pa = sim.PrefixLength(a.size());
  const size_t pb = sim.PrefixLength(b.size());
  size_t i = 0, j = 0;
  while (i < pa && j < pb) {
    if (a.tokens[i] == b.tokens[j]) return a.tokens[i];
    if (a.tokens[i] < b.tokens[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return kNoCommonToken;
}

}  // namespace

void RecordJoiner::ProbeCold(const Record& r, const ResultCallback& cb) {
  if (cold_.empty()) return;
  const size_t lo = sim_.LengthLowerBound(r.size());
  const size_t hi = sim_.LengthUpperBound(r.size());
  const std::vector<TokenId> probe_prefix = IndexablePrefix(r);
  if (probe_prefix.empty()) return;
  // Oldest stub first: deterministic emission order that a restore
  // reproduces (the cold deque round-trips in order).
  for (const ColdStub& stub : cold_) {
    if (stub.size < lo || stub.size > hi) {
      ++stats_.length_filtered;
      continue;
    }
    // Prefix filter, mirroring index candidacy: a qualifying pair shares
    // an indexable token between the two prefixes. Both sides are sorted.
    size_t i = 0, j = 0;
    bool common = false;
    while (i < probe_prefix.size() && j < stub.prefix.size()) {
      if (probe_prefix[i] == stub.prefix[j]) {
        common = true;
        break;
      }
      if (probe_prefix[i] < stub.prefix[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (!common) continue;
    ++stats_.candidates;
    ++stats_.spill_reads;
    std::string payload;
    if (!spill_->Read(stub.handle, &payload).ok()) {
      // A corrupt frame costs recall for this stub only; never a crash.
      ++stats_.spill_read_errors;
      continue;
    }
    BinaryReader br(payload);
    const RecordPtr s = ReadRecordFrom(&br);
    const size_t alpha = sim_.MinOverlap(r.size(), s->size());
    const size_t o = VerifyOverlap(r.tokens, s->tokens, alpha, &stats_.verify);
    if (o < alpha) continue;
    if (options_.dedup_by_min_prefix_token) {
      const TokenId w = MinCommonPrefixToken(sim_, r, *s);
      if (w == kNoCommonToken || !options_.token_filter(w)) continue;
    }
    ++stats_.results;
    cb(ResultPair{r.id, r.seq, s->id, s->seq});
  }
}

void RecordJoiner::Probe(const Record& r, const ResultCallback& cb) {
  ++stats_.probes;
  const size_t prefix_len = sim_.PrefixLength(r.size());
  if (prefix_len == 0) return;
  ProbeCold(r, cb);
  const size_t lo = sim_.LengthLowerBound(r.size());
  const size_t hi = sim_.LengthUpperBound(r.size());

  ++probe_stamp_;
  if (cand_overlap_.size() < store_.size()) {
    cand_overlap_.resize(store_.size());
    cand_stamp_.resize(store_.size(), 0);
  }
  cand_order_.clear();
  // Memoize MinOverlap per eligible partner length: it is asked for a few
  // distinct lengths per probe but several times each (posting scan +
  // verification), and each computation is an integer division. Lazy fill
  // so lengths never seen cost nothing; skipped when the eligible window
  // is huge (kOverlap allows any length).
  constexpr uint32_t kAlphaUnset = ~0u;
  const bool cache_alpha = hi - lo < 4096;
  if (cache_alpha) alpha_cache_.assign(hi - lo + 1, kAlphaUnset);
  const auto alpha_for = [&](size_t s_size) -> size_t {
    if (!cache_alpha) return sim_.MinOverlap(r.size(), s_size);
    uint32_t& slot = alpha_cache_[s_size - lo];
    if (slot == kAlphaUnset) slot = static_cast<uint32_t>(sim_.MinOverlap(r.size(), s_size));
    return slot;
  };

  // Candidate generation over the probe prefix's posting lists. Dead
  // postings are compacted away in passing.
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r.tokens[i];
    if (options_.token_filter != nullptr && !options_.token_filter(w)) continue;
    std::vector<Posting>* list_ptr;
    if (options_.direct_index) {
      if (w >= dense_index_.size() || dense_index_[w].empty()) continue;
      list_ptr = &dense_index_[w];
    } else {
      const auto it = sparse_index_.find(w);
      if (it == sparse_index_.end()) continue;
      list_ptr = &it->second;
    }
    std::vector<Posting>& list = *list_ptr;
    size_t write = 0;
    for (size_t read = 0; read < list.size(); ++read) {
      const Posting p = list[read];
      if (!Alive(p.local_id)) {
        ++stats_.dead_postings_purged;
        continue;
      }
      list[write++] = p;
      ++stats_.postings_scanned;
      const size_t s_size = p.size;
      if (s_size < lo || s_size > hi) {
        ++stats_.length_filtered;
        continue;
      }
      const size_t slot = static_cast<size_t>(p.local_id - base_);
      int32_t& ov = cand_overlap_[slot];
      if (cand_stamp_[slot] != probe_stamp_) {
        cand_stamp_[slot] = probe_stamp_;
        ov = 0;
        cand_order_.push_back(p.local_id);
      }
      if (ov < 0) continue;  // already pruned by the positional filter
      if (options_.positional_filter) {
        const size_t alpha = alpha_for(s_size);
        const size_t upper = static_cast<size_t>(ov) + 1 +
                             std::min(r.size() - i - 1, s_size - p.position - 1);
        if (upper < alpha) {
          ov = -1;
          ++stats_.position_filtered;
          continue;
        }
      }
      ++ov;
    }
    list.resize(write);
  }

  // Verification.
  for (const uint64_t lid : cand_order_) {
    const int32_t ov = cand_overlap_[static_cast<size_t>(lid - base_)];
    if (ov < 0) continue;
    const RecordPtr& s = StoredAt(lid);
    ++stats_.candidates;
    const size_t alpha = alpha_for(s->size());
    if (options_.suffix_filter) {
      // overlap = (|r| + |s| − |r △ s|) / 2, so overlap >= alpha requires
      // |r △ s| <= |r| + |s| − 2·alpha.
      const size_t budget = r.size() + s->size() - 2 * alpha;
      if (SymmetricDifferenceLowerBound(r.tokens, s->tokens,
                                        options_.suffix_filter_depth) > budget) {
        ++stats_.suffix_filtered;
        continue;
      }
    }
    const size_t o = VerifyOverlap(r.tokens, s->tokens, alpha, &stats_.verify);
    if (o < alpha) continue;
    if (options_.dedup_by_min_prefix_token) {
      const TokenId w = MinCommonPrefixToken(sim_, r, *s);
      if (w == kNoCommonToken || !options_.token_filter(w)) continue;
    }
    ++stats_.results;
    cb(ResultPair{r.id, r.seq, s->id, s->seq});
  }
}

void RecordJoiner::Store(const RecordPtr& r) {
  while (window_.OverCount(StoredCount())) PopOldestOverall();
  const size_t incoming = ApproxStoredBytes(*r);
  if (spill_ != nullptr && spill_watermark_bytes_ > 0) {
    // Tiered path: past the watermark, cold records move to disk and stay
    // in the window. Eviction below remains the backstop (spill failure,
    // or a budget even the stubs overflow).
    while (approx_bytes_ + incoming > spill_watermark_bytes_ && SpillOldestHot()) {
    }
  }
  if (options_.max_index_bytes > 0) {
    while (approx_bytes_ + incoming > options_.max_index_bytes && EvictOldest(1) > 0) {
    }
  }
  AppendStored(r);
  ++stats_.stores;
}

void RecordJoiner::AppendStored(const RecordPtr& r) {
  const uint64_t local_id = base_ + store_.size();
  store_.push_back(r);
  approx_bytes_ += ApproxStoredBytes(*r);
  const size_t prefix_len = sim_.PrefixLength(r->size());
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r->tokens[i];
    if (options_.token_filter != nullptr && !options_.token_filter(w)) continue;
    std::vector<Posting>* list;
    if (options_.direct_index) {
      if (w >= dense_index_.size()) {
        dense_index_.resize(
            std::max<size_t>(w + 1, dense_index_.size() + dense_index_.size() / 2));
      }
      list = &dense_index_[w];
    } else {
      list = &sparse_index_[w];
    }
    // One allocation per list instead of the 1->2->4 growth chain: most
    // lists stay short (Zipf tail), and malloc dominates Store otherwise.
    if (list->capacity() == 0) list->reserve(4);
    list->push_back(
        Posting{local_id, static_cast<uint32_t>(i), static_cast<uint32_t>(r->size())});
  }
}

void RecordJoiner::Process(const RecordPtr& r, bool store, bool probe,
                           const ResultCallback& cb) {
  if (r->size() == 0) return;
  Evict(r->timestamp);
  if (probe) Probe(*r, cb);
  if (store) Store(r);
}

void RecordJoiner::CompactIndex() {
  const auto compact = [this](std::vector<Posting>& list) {
    size_t write = 0;
    for (size_t read = 0; read < list.size(); ++read) {
      if (Alive(list[read].local_id)) {
        list[write++] = list[read];
      } else {
        ++stats_.dead_postings_purged;
      }
    }
    list.resize(write);
    if (list.empty()) std::vector<Posting>().swap(list);  // free the storage
  };
  for (std::vector<Posting>& list : dense_index_) compact(list);
  for (auto& [w, list] : sparse_index_) compact(list);
}

namespace {

// Blob tags (docs/INTERNALS.md §13). Self-contained images inline cold
// records (the migration / sync-checkpoint format); tiered bases carry
// cold records as spill-segment stubs; deltas carry only the window
// suffix touched since the previous freeze.
constexpr uint8_t kTagSelfContained = 0;
constexpr uint8_t kTagTieredBase = 1;
constexpr uint8_t kTagDelta = 2;

}  // namespace

void RecordJoiner::WriteStubTo(const ColdStub& stub, BinaryWriter* w) {
  w->WriteU64(stub.id);
  w->WriteU64(stub.seq);
  w->WriteI64(stub.timestamp);
  w->WriteU32(stub.size);
  w->WriteU32Vec(stub.prefix);
  w->WriteU32(stub.handle.segment);
  w->WriteU64(stub.handle.offset);
  w->WriteU32(stub.handle.length);
}

RecordJoiner::ColdStub RecordJoiner::ReadStubFrom(BinaryReader* r) {
  ColdStub stub;
  stub.id = r->ReadU64();
  stub.seq = r->ReadU64();
  stub.timestamp = r->ReadI64();
  stub.size = r->ReadU32();
  r->ReadU32Vec(&stub.prefix);
  stub.handle.segment = r->ReadU32();
  stub.handle.offset = r->ReadU64();
  stub.handle.length = r->ReadU32();
  return stub;
}

void RecordJoiner::MarkFrozen() {
  frozen_base_ = base_;
  frozen_next_id_ = base_ + store_.size();
  frozen_cold_len_ = cold_.size();
  frozen_cold_popped_ = cold_popped_total_;
}

void RecordJoiner::Snapshot(std::string* out) const {
  BinaryWriter w(out);
  w.WriteU8(kTagSelfContained);
  w.WriteU64(cold_.size());
  for (const ColdStub& stub : cold_) {
    // The spill payload *is* the WriteRecordTo serialization, so cold
    // records inline as raw read-back bytes. Unreadable cold state makes
    // a self-contained image impossible — this is the migration path, so
    // it is a hard failure rather than silent record loss.
    std::string payload;
    const Status st = spill_->Read(stub.handle, &payload);
    CHECK(st.ok()) << "cold record unreadable during snapshot: " << st.ToString();
    out->append(payload);
  }
  w.WriteU64(store_.size());
  for (const RecordPtr& r : store_) WriteRecordTo(*r, &w);
  WriteJoinerStats(stats_, &w);
}

store::FrozenBlob RecordJoiner::FreezeBase() {
  auto hot = std::make_shared<const std::vector<RecordPtr>>(store_.begin(), store_.end());
  auto cold = std::make_shared<const std::vector<ColdStub>>(cold_.begin(), cold_.end());
  auto stats = std::make_shared<const JoinerStats>(stats_);
  MarkFrozen();
  store::FrozenBlob f;
  f.is_delta = false;
  f.encode = [hot, cold, stats](std::string* out) {
    BinaryWriter w(out);
    w.WriteU8(kTagTieredBase);
    w.WriteU64(cold->size());
    for (const ColdStub& stub : *cold) WriteStubTo(stub, &w);
    w.WriteU64(hot->size());
    for (const RecordPtr& rec : *hot) WriteRecordTo(*rec, &w);
    WriteJoinerStats(*stats, &w);
  };
  return f;
}

store::FrozenBlob RecordJoiner::FreezeDelta() {
  // The window is FIFO, so everything that changed since the last freeze
  // is two front-pop counts plus the back suffixes that survived. An
  // entry appended *and* popped within the interval shows up only in the
  // pop count (pops consume older entries first, so popped appends are
  // exactly the non-surviving prefix of the appended sequence).
  const uint64_t hot_pops = base_ - frozen_base_;
  const uint64_t cold_pops = cold_popped_total_ - frozen_cold_popped_;
  const size_t hot_start =
      frozen_next_id_ > base_ ? static_cast<size_t>(frozen_next_id_ - base_) : 0;
  const size_t cold_start =
      frozen_cold_len_ > cold_pops ? static_cast<size_t>(frozen_cold_len_ - cold_pops) : 0;
  auto hot = std::make_shared<const std::vector<RecordPtr>>(
      store_.begin() + static_cast<ptrdiff_t>(hot_start), store_.end());
  auto cold = std::make_shared<const std::vector<ColdStub>>(
      cold_.begin() + static_cast<ptrdiff_t>(cold_start), cold_.end());
  auto stats = std::make_shared<const JoinerStats>(stats_);
  MarkFrozen();
  store::FrozenBlob f;
  f.is_delta = true;
  f.encode = [hot_pops, cold_pops, hot, cold, stats](std::string* out) {
    BinaryWriter w(out);
    w.WriteU8(kTagDelta);
    w.WriteU64(hot_pops);
    w.WriteU64(cold_pops);
    w.WriteU64(hot->size());
    for (const RecordPtr& rec : *hot) WriteRecordTo(*rec, &w);
    w.WriteU64(cold->size());
    for (const ColdStub& stub : *cold) WriteStubTo(stub, &w);
    WriteJoinerStats(*stats, &w);
  };
  return f;
}

void RecordJoiner::Restore(const std::string& blob) {
  store_.clear();
  base_ = 0;
  approx_bytes_ = 0;
  dense_index_.clear();
  sparse_index_.clear();
  cand_overlap_.clear();
  cand_stamp_.clear();
  probe_stamp_ = 0;
  cand_order_.clear();
  cold_.clear();
  cold_appended_total_ = 0;
  cold_popped_total_ = 0;
  BinaryReader r(blob);
  const uint8_t tag = r.ReadU8();
  CHECK(tag != kTagDelta) << "delta blob passed to Restore (use RestoreDelta)";
  uint64_t dropped_stubs = 0;
  const uint64_t cold_n = r.ReadU64();
  for (uint64_t i = 0; i < cold_n; ++i) {
    if (tag == kTagSelfContained) {
      const RecordPtr rec = ReadRecordFrom(&r);
      if (spill_ != nullptr) {
        // Rebuild the cold tier exactly: re-append to fresh segments so
        // the hot/cold split — and thus probe order — round-trips.
        std::string payload;
        BinaryWriter pw(&payload);
        WriteRecordTo(*rec, &pw);
        store::SpillHandle handle;
        if (spill_->Append(payload, &handle).ok()) {
          ColdStub stub;
          stub.id = rec->id;
          stub.seq = rec->seq;
          stub.timestamp = rec->timestamp;
          stub.size = static_cast<uint32_t>(rec->size());
          stub.prefix = IndexablePrefix(*rec);
          stub.handle = handle;
          cold_.push_back(std::move(stub));
          ++cold_appended_total_;
          continue;
        }
      }
      // No spill attached (or it failed): the cold records become the
      // oldest hot entries, preserving window order.
      AppendStored(rec);
    } else {
      ColdStub stub = ReadStubFrom(&r);
      // A stub whose frame did not survive (torn segment truncated away)
      // costs that one record; recovery continues.
      if (spill_ == nullptr || !spill_->Reref(stub.handle)) {
        ++dropped_stubs;
        continue;
      }
      cold_.push_back(std::move(stub));
      ++cold_appended_total_;
    }
  }
  const uint64_t hot_n = r.ReadU64();
  for (uint64_t i = 0; i < hot_n; ++i) AppendStored(ReadRecordFrom(&r));
  ReadJoinerStats(&r, &stats_);
  stats_.spill_read_errors += dropped_stubs;
  MarkFrozen();
}

void RecordJoiner::RestoreDelta(const std::string& blob) {
  BinaryReader r(blob);
  const uint8_t tag = r.ReadU8();
  CHECK(tag == kTagDelta) << "non-delta blob passed to RestoreDelta";
  const uint64_t hot_pops = r.ReadU64();
  const uint64_t cold_pops = r.ReadU64();
  // Pops beyond what this replica materialized refer to entries appended
  // and popped within the interval — they never existed here, so only
  // base_ needs to advance for the hot ones (slot ids must line up with
  // the live run's append numbering).
  for (uint64_t i = 0; i < cold_pops && !cold_.empty(); ++i) PopOldestCold();
  const uint64_t hot_k = std::min<uint64_t>(hot_pops, store_.size());
  for (uint64_t i = 0; i < hot_k; ++i) PopOldestStored();
  base_ += hot_pops - hot_k;
  const uint64_t hot_n = r.ReadU64();
  for (uint64_t i = 0; i < hot_n; ++i) AppendStored(ReadRecordFrom(&r));
  uint64_t dropped_stubs = 0;
  const uint64_t cold_n = r.ReadU64();
  for (uint64_t i = 0; i < cold_n; ++i) {
    ColdStub stub = ReadStubFrom(&r);
    if (spill_ == nullptr || !spill_->Reref(stub.handle)) {
      ++dropped_stubs;
      continue;
    }
    cold_.push_back(std::move(stub));
    ++cold_appended_total_;
  }
  ReadJoinerStats(&r, &stats_);
  stats_.spill_read_errors += dropped_stubs;
  MarkFrozen();
}

size_t RecordJoiner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const RecordPtr& s : store_) bytes += sizeof(Record) + s->tokens.size() * sizeof(TokenId);
  // Cold records live on disk; only their stubs are resident.
  bytes += cold_.size() * sizeof(ColdStub);
  for (const ColdStub& stub : cold_) bytes += stub.prefix.capacity() * sizeof(TokenId);
  bytes += dense_index_.capacity() * sizeof(std::vector<Posting>);
  for (const std::vector<Posting>& list : dense_index_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  // ~per-node overhead of the hash map: key + list header + bucket/next.
  bytes += sparse_index_.size() * (sizeof(TokenId) + sizeof(std::vector<Posting>) + 16);
  for (const auto& [w, list] : sparse_index_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  return bytes;
}

}  // namespace dssj
