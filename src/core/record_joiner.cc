#include "core/record_joiner.h"

#include <algorithm>

#include "common/logging.h"

namespace dssj {

RecordJoiner::RecordJoiner(const SimilaritySpec& sim, const WindowSpec& window,
                           RecordJoinerOptions options)
    : sim_(sim), window_(window), options_(std::move(options)) {
  if (options_.dedup_by_min_prefix_token) {
    CHECK(options_.token_filter != nullptr)
        << "dedup_by_min_prefix_token requires a token_filter";
  }
  // The positional filter's upper bound assumes the accumulated count covers
  // *every* common token in the scanned prefix region. Under a token filter
  // unowned common tokens are invisible, the count undercounts, and the
  // bound would prune true pairs — so the filter must be off.
  if (options_.token_filter != nullptr) options_.positional_filter = false;
}

size_t RecordJoiner::ApproxStoredBytes(const Record& r) const {
  return sizeof(Record) + sizeof(RecordPtr) + r.tokens.size() * sizeof(TokenId) +
         sim_.PrefixLength(r.size()) * sizeof(Posting);
}

void RecordJoiner::PopOldestStored() {
  approx_bytes_ -= ApproxStoredBytes(*store_.front());
  store_.pop_front();
  ++base_;
  ++stats_.evictions;
}

void RecordJoiner::Evict(int64_t now) {
  if (window_.kind != WindowSpec::Kind::kTime) return;
  while (!store_.empty() && window_.ExpiredByTime(store_.front()->timestamp, now)) {
    PopOldestStored();
  }
}

size_t RecordJoiner::EvictOldest(size_t n) {
  size_t evicted = 0;
  while (evicted < n && store_.size() > 1) {
    stats_.eviction_horizon_seq = std::max(stats_.eviction_horizon_seq, store_.front()->seq);
    PopOldestStored();
    ++stats_.budget_evictions;
    ++evicted;
  }
  return evicted;
}

namespace {

/// Smallest token common to both records' streaming prefixes, or
/// TokenDictionary-style "no token" when the prefixes are disjoint. For a
/// pair that satisfies the similarity predicate the prefixes always
/// intersect (prefix filtering principle), so callers may treat the
/// no-token case as "do not emit".
constexpr TokenId kNoCommonToken = ~static_cast<TokenId>(0);

TokenId MinCommonPrefixToken(const SimilaritySpec& sim, const Record& a, const Record& b) {
  const size_t pa = sim.PrefixLength(a.size());
  const size_t pb = sim.PrefixLength(b.size());
  size_t i = 0, j = 0;
  while (i < pa && j < pb) {
    if (a.tokens[i] == b.tokens[j]) return a.tokens[i];
    if (a.tokens[i] < b.tokens[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return kNoCommonToken;
}

}  // namespace

void RecordJoiner::Probe(const Record& r, const ResultCallback& cb) {
  ++stats_.probes;
  const size_t prefix_len = sim_.PrefixLength(r.size());
  if (prefix_len == 0) return;
  const size_t lo = sim_.LengthLowerBound(r.size());
  const size_t hi = sim_.LengthUpperBound(r.size());

  ++probe_stamp_;
  if (cand_overlap_.size() < store_.size()) {
    cand_overlap_.resize(store_.size());
    cand_stamp_.resize(store_.size(), 0);
  }
  cand_order_.clear();
  // Memoize MinOverlap per eligible partner length: it is asked for a few
  // distinct lengths per probe but several times each (posting scan +
  // verification), and each computation is an integer division. Lazy fill
  // so lengths never seen cost nothing; skipped when the eligible window
  // is huge (kOverlap allows any length).
  constexpr uint32_t kAlphaUnset = ~0u;
  const bool cache_alpha = hi - lo < 4096;
  if (cache_alpha) alpha_cache_.assign(hi - lo + 1, kAlphaUnset);
  const auto alpha_for = [&](size_t s_size) -> size_t {
    if (!cache_alpha) return sim_.MinOverlap(r.size(), s_size);
    uint32_t& slot = alpha_cache_[s_size - lo];
    if (slot == kAlphaUnset) slot = static_cast<uint32_t>(sim_.MinOverlap(r.size(), s_size));
    return slot;
  };

  // Candidate generation over the probe prefix's posting lists. Dead
  // postings are compacted away in passing.
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r.tokens[i];
    if (options_.token_filter != nullptr && !options_.token_filter(w)) continue;
    std::vector<Posting>* list_ptr;
    if (options_.direct_index) {
      if (w >= dense_index_.size() || dense_index_[w].empty()) continue;
      list_ptr = &dense_index_[w];
    } else {
      const auto it = sparse_index_.find(w);
      if (it == sparse_index_.end()) continue;
      list_ptr = &it->second;
    }
    std::vector<Posting>& list = *list_ptr;
    size_t write = 0;
    for (size_t read = 0; read < list.size(); ++read) {
      const Posting p = list[read];
      if (!Alive(p.local_id)) {
        ++stats_.dead_postings_purged;
        continue;
      }
      list[write++] = p;
      ++stats_.postings_scanned;
      const size_t s_size = p.size;
      if (s_size < lo || s_size > hi) {
        ++stats_.length_filtered;
        continue;
      }
      const size_t slot = static_cast<size_t>(p.local_id - base_);
      int32_t& ov = cand_overlap_[slot];
      if (cand_stamp_[slot] != probe_stamp_) {
        cand_stamp_[slot] = probe_stamp_;
        ov = 0;
        cand_order_.push_back(p.local_id);
      }
      if (ov < 0) continue;  // already pruned by the positional filter
      if (options_.positional_filter) {
        const size_t alpha = alpha_for(s_size);
        const size_t upper = static_cast<size_t>(ov) + 1 +
                             std::min(r.size() - i - 1, s_size - p.position - 1);
        if (upper < alpha) {
          ov = -1;
          ++stats_.position_filtered;
          continue;
        }
      }
      ++ov;
    }
    list.resize(write);
  }

  // Verification.
  for (const uint64_t lid : cand_order_) {
    const int32_t ov = cand_overlap_[static_cast<size_t>(lid - base_)];
    if (ov < 0) continue;
    const RecordPtr& s = StoredAt(lid);
    ++stats_.candidates;
    const size_t alpha = alpha_for(s->size());
    if (options_.suffix_filter) {
      // overlap = (|r| + |s| − |r △ s|) / 2, so overlap >= alpha requires
      // |r △ s| <= |r| + |s| − 2·alpha.
      const size_t budget = r.size() + s->size() - 2 * alpha;
      if (SymmetricDifferenceLowerBound(r.tokens, s->tokens,
                                        options_.suffix_filter_depth) > budget) {
        ++stats_.suffix_filtered;
        continue;
      }
    }
    const size_t o = VerifyOverlap(r.tokens, s->tokens, alpha, &stats_.verify);
    if (o < alpha) continue;
    if (options_.dedup_by_min_prefix_token) {
      const TokenId w = MinCommonPrefixToken(sim_, r, *s);
      if (w == kNoCommonToken || !options_.token_filter(w)) continue;
    }
    ++stats_.results;
    cb(ResultPair{r.id, r.seq, s->id, s->seq});
  }
}

void RecordJoiner::Store(const RecordPtr& r) {
  while (window_.OverCount(store_.size())) PopOldestStored();
  if (options_.max_index_bytes > 0) {
    const size_t incoming = ApproxStoredBytes(*r);
    while (approx_bytes_ + incoming > options_.max_index_bytes && EvictOldest(1) > 0) {
    }
  }
  const uint64_t local_id = base_ + store_.size();
  store_.push_back(r);
  approx_bytes_ += ApproxStoredBytes(*r);
  const size_t prefix_len = sim_.PrefixLength(r->size());
  for (size_t i = 0; i < prefix_len; ++i) {
    const TokenId w = r->tokens[i];
    if (options_.token_filter != nullptr && !options_.token_filter(w)) continue;
    std::vector<Posting>* list;
    if (options_.direct_index) {
      if (w >= dense_index_.size()) {
        dense_index_.resize(
            std::max<size_t>(w + 1, dense_index_.size() + dense_index_.size() / 2));
      }
      list = &dense_index_[w];
    } else {
      list = &sparse_index_[w];
    }
    // One allocation per list instead of the 1->2->4 growth chain: most
    // lists stay short (Zipf tail), and malloc dominates Store otherwise.
    if (list->capacity() == 0) list->reserve(4);
    list->push_back(
        Posting{local_id, static_cast<uint32_t>(i), static_cast<uint32_t>(r->size())});
  }
  ++stats_.stores;
}

void RecordJoiner::Process(const RecordPtr& r, bool store, bool probe,
                           const ResultCallback& cb) {
  if (r->size() == 0) return;
  Evict(r->timestamp);
  if (probe) Probe(*r, cb);
  if (store) Store(r);
}

void RecordJoiner::CompactIndex() {
  const auto compact = [this](std::vector<Posting>& list) {
    size_t write = 0;
    for (size_t read = 0; read < list.size(); ++read) {
      if (Alive(list[read].local_id)) {
        list[write++] = list[read];
      } else {
        ++stats_.dead_postings_purged;
      }
    }
    list.resize(write);
    if (list.empty()) std::vector<Posting>().swap(list);  // free the storage
  };
  for (std::vector<Posting>& list : dense_index_) compact(list);
  for (auto& [w, list] : sparse_index_) compact(list);
}

void RecordJoiner::Snapshot(std::string* out) const {
  BinaryWriter w(out);
  w.WriteU64(store_.size());
  for (const RecordPtr& r : store_) WriteRecordTo(*r, &w);
  WriteJoinerStats(stats_, &w);
}

void RecordJoiner::Restore(const std::string& blob) {
  store_.clear();
  base_ = 0;
  approx_bytes_ = 0;
  dense_index_.clear();
  sparse_index_.clear();
  cand_overlap_.clear();
  cand_stamp_.clear();
  probe_stamp_ = 0;
  cand_order_.clear();
  BinaryReader r(blob);
  const uint64_t n = r.ReadU64();
  for (uint64_t i = 0; i < n; ++i) Store(ReadRecordFrom(&r));
  // Re-storing bumped stores/evictions; the snapshotted totals replace them.
  ReadJoinerStats(&r, &stats_);
}

size_t RecordJoiner::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const RecordPtr& s : store_) bytes += sizeof(Record) + s->tokens.size() * sizeof(TokenId);
  bytes += dense_index_.capacity() * sizeof(std::vector<Posting>);
  for (const std::vector<Posting>& list : dense_index_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  // ~per-node overhead of the hash map: key + list header + bucket/next.
  bytes += sparse_index_.size() * (sizeof(TokenId) + sizeof(std::vector<Posting>) + 16);
  for (const auto& [w, list] : sparse_index_) {
    bytes += list.capacity() * sizeof(Posting);
  }
  return bytes;
}

}  // namespace dssj
