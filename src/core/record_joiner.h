#ifndef DSSJ_CORE_RECORD_JOINER_H_
#define DSSJ_CORE_RECORD_JOINER_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/local_joiner.h"
#include "core/similarity.h"
#include "core/window.h"
#include "store/spill.h"

namespace dssj {

/// Configuration of the record-at-a-time joiner.
struct RecordJoinerOptions {
  /// Apply the PPJoin positional filter during candidate generation.
  bool positional_filter = true;

  /// Apply the PPJoin+ suffix filter before full verification: prune a
  /// candidate when the divide-and-conquer symmetric-difference bound
  /// (depth `suffix_filter_depth`) proves the required overlap is
  /// unreachable. Off by default (the paper's joiner uses prefix +
  /// length + positional filtering); an extension measured in E10.
  bool suffix_filter = false;
  int suffix_filter_depth = 3;

  /// When set, only tokens passing the filter are indexed and probed (the
  /// prefix-token distribution strategy assigns each worker a token
  /// subset). Null means all prefix tokens.
  std::function<bool(TokenId)> token_filter;

  /// When set, a verified pair is emitted only if the smallest common token
  /// of the two records' prefixes passes `token_filter` — the
  /// prefix-distribution dedup rule ensuring each pair is reported by
  /// exactly one worker. Requires token_filter.
  bool dedup_by_min_prefix_token = false;

  /// Index layout. Direct addressing (a vector indexed by TokenId) makes
  /// every posting-list lookup one load, but its table spans the whole
  /// token-id range this joiner ever sees. That wins when the joiner holds
  /// a dense share of the token space (single node) and loses badly when
  /// many partitions each hold a sparse slice of the same id range — k
  /// joiners then pay k full-range tables for 1/k of the postings each.
  /// The distributed topology turns this off for partitioned joiners.
  bool direct_index = true;

  /// Memory budget for window + index state, in approximate bytes (see
  /// RecordJoiner's incremental accounting; 0 = unlimited). When storing a
  /// record would exceed the budget, the oldest stored records are evicted
  /// *ahead of* the window policy until it fits — counted as
  /// budget_evictions with the horizon in eviction_horizon_seq.
  size_t max_index_bytes = 0;
};

/// Streaming PPJoin-style joiner: an inverted index over the prefix tokens
/// of stored records; probes scan the probe prefix's posting lists with
/// length and positional filtering, then merge-verify surviving candidates.
/// In the streaming setting probe prefix == index prefix (partners may be
/// shorter or longer), see SimilaritySpec::PrefixLength.
///
/// Expired records are dropped from the window eagerly and purged from
/// posting lists lazily (compacted in place whenever a list is scanned).
class RecordJoiner : public LocalJoiner {
 public:
  RecordJoiner(const SimilaritySpec& sim, const WindowSpec& window,
               RecordJoinerOptions options = {});

  void Process(const RecordPtr& r, bool store, bool probe, const ResultCallback& cb) override;

  size_t StoredCount() const override { return store_.size() + cold_.size(); }
  size_t MemoryBytes() const override;
  size_t EvictOldest(size_t n) override;
  const JoinerStats& stats() const override { return stats_; }

  /// Eagerly removes every dead posting (normally removal is amortized into
  /// probe scans). Exposed for memory experiments.
  void CompactIndex();

  /// Checkpointing: the snapshot stores the window's records (in store
  /// order) plus stats; Restore rebuilds the inverted index by re-storing
  /// them, which reproduces posting order — and therefore match order —
  /// exactly. Dead postings are not snapshotted, so purge/scan counters may
  /// run lower after a restore; emissions are unaffected.
  ///
  /// Blobs are tagged: Snapshot writes a self-contained image (cold
  /// records read back and inlined — the migration format), FreezeBase a
  /// tiered base (cold records as spill-segment stubs), FreezeDelta the
  /// dirty suffix since the previous freeze. The window is FIFO — appends
  /// at the back, pops and spills at the front — so "dirty tracking" is
  /// four monotonic counters and a delta is exactly {front pops, appended
  /// records, new cold stubs, stats}.
  bool SupportsSnapshot() const override { return true; }
  void Snapshot(std::string* out) const override;
  void Restore(const std::string& blob) override;
  bool SupportsIncrementalSnapshot() const override { return true; }
  store::FrozenBlob FreezeBase() override;
  store::FrozenBlob FreezeDelta() override;
  void RestoreDelta(const std::string& blob) override;

  bool SupportsSpill() const override { return true; }
  void AttachSpillStore(store::SpillStore* spill, size_t watermark_bytes) override {
    spill_ = spill;
    spill_watermark_bytes_ = watermark_bytes;
  }

  /// Cold records currently stubbed out to the spill tier.
  size_t ColdCount() const { return cold_.size(); }

 private:
  struct Posting {
    uint64_t local_id;  ///< store slot; dead iff < base_
    uint32_t position;  ///< token position within the stored record
    uint32_t size;      ///< stored record's token count, denormalized so the
                        ///< candidate scan length-filters without touching
                        ///< the record store (fits the former padding)
  };

  struct Candidate {
    uint64_t local_id;
    int32_t overlap_in_prefix;  ///< matches seen during prefix scan; -1 = pruned
  };

  /// In-memory remnant of a spilled record: just enough to run the length
  /// and prefix filters (so most probes never touch disk) plus the handle
  /// to read the full record back when a probe survives them. Cold
  /// records are all strictly older than every hot record.
  struct ColdStub {
    uint64_t id = 0;
    uint64_t seq = 0;
    int64_t timestamp = 0;
    uint32_t size = 0;
    std::vector<TokenId> prefix;  ///< indexable prefix tokens (token_filter applied)
    store::SpillHandle handle;
  };

  bool Alive(uint64_t local_id) const { return local_id >= base_; }
  const RecordPtr& StoredAt(uint64_t local_id) const {
    return store_[static_cast<size_t>(local_id - base_)];
  }

  void Evict(int64_t now);
  void Probe(const Record& r, const ResultCallback& cb);
  void Store(const RecordPtr& r);
  /// Cold-tier probe scan: runs before the hot index probe, oldest stub
  /// first, so emission order is deterministic and restore-stable.
  void ProbeCold(const Record& r, const ResultCallback& cb);
  /// Appends + indexes a record without any eviction/spill side effects
  /// (Store's tail; also the restore and delta-replay primitive).
  void AppendStored(const RecordPtr& r);
  /// Moves the oldest hot record to the spill tier (it stays in the
  /// window as a ColdStub). Returns false when spilling is off, the hot
  /// store is down to one record, or the segment append failed (the
  /// caller falls back to budget eviction).
  bool SpillOldestHot();
  /// Drops the oldest cold stub, releasing its segment frame.
  void PopOldestCold();
  /// Drops the oldest window entry — cold front if any, else hot front.
  void PopOldestOverall();
  /// The record's prefix tokens that pass the token filter (what Store
  /// would index; what ColdStub keeps for candidate filtering).
  std::vector<TokenId> IndexablePrefix(const Record& r) const;
  /// Resets the dirty marks: the next FreezeDelta is relative to now.
  void MarkFrozen();

  static void WriteStubTo(const ColdStub& stub, BinaryWriter* w);
  static ColdStub ReadStubFrom(BinaryReader* r);
  /// Per-record contribution to the incremental byte accounting backing
  /// max_index_bytes: record + tokens + its indexed prefix postings. An
  /// O(1) proxy for MemoryBytes() (which walks everything and includes
  /// container slack); deliberately deterministic so budget evictions
  /// reproduce exactly across Snapshot/Restore.
  size_t ApproxStoredBytes(const Record& r) const;
  /// Removes the oldest stored record, maintaining the byte accounting.
  void PopOldestStored();

  SimilaritySpec sim_;
  WindowSpec window_;
  RecordJoinerOptions options_;

  // Window of stored records, FIFO. Slot of store_[i] is base_ + i.
  std::deque<RecordPtr> store_;
  uint64_t base_ = 0;
  size_t approx_bytes_ = 0;  ///< Σ ApproxStoredBytes over the *hot* window

  // Cold tier: stubs of spilled records, FIFO and strictly older than
  // every hot record. Monotonic append/pop totals back the delta
  // checkpoints (a delta ships the suffix appended since the last freeze
  // plus the two pop counts).
  store::SpillStore* spill_ = nullptr;
  size_t spill_watermark_bytes_ = 0;
  std::deque<ColdStub> cold_;
  uint64_t cold_appended_total_ = 0;
  uint64_t cold_popped_total_ = 0;

  // Dirty marks: state of the counters at the last freeze (or restore).
  uint64_t frozen_base_ = 0;
  uint64_t frozen_next_id_ = 0;  ///< base_ + store_.size() at the last freeze
  uint64_t frozen_cold_len_ = 0;
  uint64_t frozen_cold_popped_ = 0;

  // Inverted index over prefix tokens; exactly one of the two layouts is
  // populated, per options_.direct_index (see that flag for the tradeoff).
  // In the dense layout lists that fall empty stay as 24-byte headers
  // until CompactIndex frees them.
  std::vector<std::vector<Posting>> dense_index_;
  std::unordered_map<TokenId, std::vector<Posting>> sparse_index_;

  // Scratch for candidate accumulation, reused across probes. Candidates
  // are addressed by store slot (local_id - base_, stable for the duration
  // of one probe): cand_overlap_[slot] is the accumulated prefix overlap,
  // valid only when cand_stamp_[slot] == probe_stamp_. Stamping makes
  // per-probe reset O(1) instead of hashing every posting.
  std::vector<int32_t> cand_overlap_;
  std::vector<uint64_t> cand_stamp_;
  uint64_t probe_stamp_ = 0;
  std::vector<uint64_t> cand_order_;

  // Per-probe cache of MinOverlap(|r|, s) for eligible partner lengths
  // s in [LengthLowerBound, LengthUpperBound]; keeps the permille division
  // out of the posting scan and verification loops.
  std::vector<uint32_t> alpha_cache_;

  JoinerStats stats_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_RECORD_JOINER_H_
