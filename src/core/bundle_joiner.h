#ifndef DSSJ_CORE_BUNDLE_JOINER_H_
#define DSSJ_CORE_BUNDLE_JOINER_H_

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/local_joiner.h"
#include "core/similarity.h"
#include "core/window.h"

namespace dssj {

/// Configuration of the bundle-based joiner.
struct BundleJoinerOptions {
  /// Similarity (permille, same function family as the join) a record must
  /// have to the bundle pivot to be admitted as a member. 0 means "use the
  /// join threshold" — i.e., bundle the probe with its own join partners,
  /// which is exactly the paper's "join results guide index construction".
  /// For Overlap joins (whose threshold is absolute) admission falls back
  /// to Jaccard >= 0.8.
  int64_t admission_permille = 0;

  /// Members may differ from the pivot by at most this many tokens
  /// (|m ∖ p| + |p ∖ m|); keeps diff-based verification profitable.
  size_t max_diff = 64;

  /// When false, members are resolved by reconstructing their token array
  /// and running a full merge verification — the "individual verification"
  /// baseline of the batch-verification experiment (E7).
  bool batch_verify = true;

  /// Index layout; same tradeoff as RecordJoinerOptions::direct_index.
  /// Direct addressing wins for a joiner holding a dense share of the
  /// token space, a hash map wins for partitioned joiners whose sparse
  /// slice still spans the full token-id range.
  bool direct_index = true;

  /// Memory budget for bundle + index state, in approximate bytes (0 =
  /// unlimited). When the budget is exceeded the oldest members are evicted
  /// ahead of the window policy — counted as budget_evictions with the
  /// horizon in eviction_horizon_seq. The accounting is incremental and
  /// deterministic (postings of dead bundles stay counted until the bundle
  /// dies, mirroring lazy purging).
  size_t max_index_bytes = 0;
};

/// Bundle-based streaming joiner. Stored records that are similar to each
/// other are grouped into *bundles*: a pivot token array plus per-member
/// token diffs. The inverted index posts bundles (not records), shrinking
/// posting lists on duplicate-rich streams; a probe verifies the pivot once
/// and resolves every member from the pivot overlap and the small diffs
/// (batch verification). Produces exactly the same result set as
/// BruteForceJoiner / RecordJoiner.
class BundleJoiner : public LocalJoiner {
 public:
  BundleJoiner(const SimilaritySpec& sim, const WindowSpec& window,
               BundleJoinerOptions options = {});

  void Process(const RecordPtr& r, bool store, bool probe, const ResultCallback& cb) override;

  size_t StoredCount() const override { return alive_members_; }
  size_t MemoryBytes() const override;
  size_t EvictOldest(size_t n) override;
  const JoinerStats& stats() const override { return stats_; }

  /// Number of live bundles (for instrumentation; average bundle size is
  /// StoredCount() / BundleCount()).
  size_t BundleCount() const { return bundles_.size(); }

  /// Checkpointing. Bundle assignment is history-dependent (each record
  /// joins the best bundle existing at its arrival), so unlike RecordJoiner
  /// the state cannot be rebuilt by re-storing records: the snapshot
  /// serializes the full structure — bundles with member diffs, posting
  /// lists verbatim (dead bundle ids included, so lazy purging proceeds
  /// identically after a restore), eviction order, and stats. Probe stamps
  /// reset to zero on restore (per-probe scratch, never observable).
  bool SupportsSnapshot() const override { return true; }
  void Snapshot(std::string* out) const override;
  void Restore(const std::string& blob) override;

  /// Incremental checkpointing: Store, eviction, and index growth record
  /// which bundles were touched, which retired, and which postings were
  /// appended since the last freeze; a delta ships deep copies of just
  /// the dirty bundles plus those logs. FreezeBase serializes the full
  /// image eagerly (bundle state has no cheap immutable view — unlike the
  /// record joiner's refcounted window — so the async win here is that
  /// bases are periodic and deltas small).
  bool SupportsIncrementalSnapshot() const override { return true; }
  store::FrozenBlob FreezeBase() override;
  store::FrozenBlob FreezeDelta() override;
  void RestoreDelta(const std::string& blob) override;

 private:
  struct Member {
    uint64_t id = 0;
    uint64_t seq = 0;
    int64_t timestamp = 0;
    uint32_t size = 0;                ///< |m|
    std::vector<TokenId> added;       ///< m ∖ pivot, ascending
    std::vector<TokenId> removed;     ///< pivot ∖ m, ascending
  };

  struct Bundle {
    std::vector<TokenId> pivot;  ///< founding record's tokens
    /// (uid, member), insertion-ordered. A flat vector: the member sweep in
    /// ProbeBundle is the joiner's hottest loop, and uids are removed by
    /// linear search only on eviction (bundles stay small, see max_diff).
    std::vector<std::pair<uint32_t, Member>> members;
    uint32_t next_uid = 0;
    std::vector<TokenId> indexed;     ///< tokens posted for this bundle, ascending
    uint32_t min_size = 0;            ///< over members ever added
    uint32_t max_size = 0;
    uint32_t max_added = 0;           ///< max |added| over members ever added
    uint64_t probe_stamp = 0;         ///< dedups candidate generation per probe
  };

  struct OrderEntry {
    uint64_t bundle_id;
    uint32_t uid;
    int64_t timestamp;
  };

  /// Best admission target found while probing.
  struct AdmissionCandidate {
    uint64_t bundle_id = 0;
    size_t pivot_overlap = 0;
    double score = -1.0;
  };

  void Evict(int64_t now);
  /// Removes the single oldest member (and its bundle when it empties),
  /// maintaining the byte accounting. Returns the member's seq.
  uint64_t EvictOldestEntry();
  /// Per-member / per-bundle contributions to the incremental accounting
  /// backing max_index_bytes. Deterministic O(1) proxies for real resident
  /// bytes (MemoryBytes walks capacities); index postings are charged as
  /// tokens enter a bundle's `indexed` set and released when the bundle
  /// dies, matching lazy posting purges.
  size_t ApproxMemberBytes(const Member& m) const;
  size_t ApproxBundleBytes(const Bundle& b) const;
  void RecomputeApproxBytes();
  void Probe(const Record& r, const ResultCallback& cb, AdmissionCandidate* admission);
  void ProbeBundle(const Record& r, uint64_t bundle_id, Bundle& bundle,
                   const ResultCallback& cb, AdmissionCandidate* admission);
  void Store(const RecordPtr& r, const AdmissionCandidate& admission);
  void AddMemberTokensToIndex(uint64_t bundle_id, Bundle& bundle, const Record& member);
  void ReconstructMemberInto(const Bundle& bundle, const Member& m,
                             std::vector<TokenId>* out);
  static void WriteBundleTo(uint64_t id, const Bundle& b, BinaryWriter* w);
  static void ReadBundleInto(BinaryReader* r, Bundle* b);
  /// Clears the dirty logs: the next FreezeDelta is relative to now.
  void MarkFrozen();

  SimilaritySpec sim_;
  SimilaritySpec admission_sim_;
  WindowSpec window_;
  BundleJoinerOptions options_;

  std::unordered_map<uint64_t, Bundle> bundles_;
  // Inverted index over indexed prefix tokens; exactly one layout is
  // populated, per options_.direct_index. In the dense layout lists that
  // fall empty keep their 24-byte header.
  std::vector<std::vector<uint64_t>> dense_index_;
  std::unordered_map<TokenId, std::vector<uint64_t>> sparse_index_;
  std::deque<OrderEntry> store_order_;
  uint64_t next_bundle_id_ = 0;
  uint64_t probe_stamp_ = 0;
  size_t alive_members_ = 0;
  size_t approx_bytes_ = 0;  ///< Σ ApproxBundleBytes + ApproxMemberBytes, live state

  // Dirty tracking for delta checkpoints (reset by MarkFrozen). The set
  // is ordered so a delta's bundle section serializes deterministically.
  // Posting appends are logged as (token, bundle) pairs because a bundle
  // keeps gaining indexed tokens over its life — rebuilding lists from
  // bundle state could not reproduce live list order.
  std::set<uint64_t> dirty_bundles_;
  std::vector<uint64_t> retired_bundles_;
  std::vector<std::pair<TokenId, uint64_t>> posting_appends_;
  uint64_t order_pops_since_freeze_ = 0;
  uint64_t frozen_order_len_ = 0;

  /// Reused across individual verifications (batch_verify == false) so the
  /// E7 baseline measures merge cost, not per-member allocation.
  std::vector<TokenId> scratch_member_;
  std::vector<TokenId> scratch_kept_;

  JoinerStats stats_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_BUNDLE_JOINER_H_
