#include "core/verify.h"

#include <algorithm>
#include <atomic>
#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace dssj {
namespace {

std::atomic<VerifyKernel> g_verify_kernel{VerifyKernel::kBlock};

/// A side is "skewed" once it is this many times longer than the other;
/// the kernel then gallops the short side through the long side instead of
/// merging.
constexpr size_t kGallopSkew = 16;

/// Below this length the classic merge with a per-iteration early-exit
/// check beats the block kernel: with `required` close to min(na, nb) —
/// the common case for high thresholds on short records — the scalar loop
/// exits after a couple of mismatches, while a block always pays for a full
/// 4-wide compare round.
constexpr size_t kShortMerge = 16;

struct MergeResult {
  size_t overlap = 0;
  uint64_t steps = 0;
  bool early = false;
};

/// The reference merge loop with per-iteration early exit.
MergeResult ScalarMergeCore(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                            size_t required) {
  MergeResult res;
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    // Early exit: even matching every remaining token cannot reach
    // `required`.
    if (required > 0 && res.overlap + std::min(na - i, nb - j) < required) {
      res.early = true;
      break;
    }
    ++res.steps;
    if (a[i] == b[j]) {
      ++res.overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return res;
}

/// Branchless scalar merge starting at (i, j) with `count` matches already
/// found. The early-exit bound is evaluated once per 8 steps instead of per
/// step — the bound computation itself (two subtractions, a min, a compare)
/// was a measurable share of the old per-iteration loop.
MergeResult ScalarTail(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                       size_t i, size_t j, size_t count, size_t required) {
  MergeResult res{count, 0, false};
  while (i < na && j < nb) {
    if (required > 0 && res.overlap + std::min(na - i, nb - j) < required) {
      res.early = true;
      return res;
    }
    for (int k = 0; k < 8 && i < na && j < nb; ++k) {
      const TokenId x = a[i];
      const TokenId y = b[j];
      res.overlap += (x == y);
      i += (x <= y);
      j += (y <= x);
      ++res.steps;
    }
  }
  return res;
}

/// 4-token block merge from (i, j): compare a whole block of `a` against
/// every rotation of a block of `b` (strictly ascending arrays mean each
/// token matches at most once, so OR-ing the compares counts exactly), then
/// advance whichever side has the smaller block maximum. SSE2 when
/// available, with the branchless scalar loop finishing the remainder.
MergeResult MergeFrom(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                      size_t i, size_t j, size_t count, size_t required) {
#if defined(__SSE2__)
  MergeResult res{count, 0, false};
  while (i + 4 <= na && j + 4 <= nb) {
    if (required > 0 && res.overlap + std::min(na - i, nb - j) < required) {
      res.early = true;
      return res;
    }
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    res.overlap += static_cast<size_t>(
        std::popcount(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    ++res.steps;
    const TokenId amax = a[i + 3];
    const TokenId bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  MergeResult tail = ScalarTail(a, na, b, nb, i, j, res.overlap, required);
  tail.steps += res.steps;
  return tail;
#else
  return ScalarTail(a, na, b, nb, i, j, count, required);
#endif
}

#if (defined(__x86_64__) || defined(_M_X64)) && (defined(__GNUC__) || defined(__clang__))
#define DSSJ_AVX2_DISPATCH 1
/// 8-token AVX2 block merge (runtime-dispatched; compiled for AVX2 via the
/// target attribute so the translation unit itself stays baseline-ISA).
__attribute__((target("avx2"))) MergeResult BlockMergeAvx2(const TokenId* a, size_t na,
                                                           const TokenId* b, size_t nb,
                                                           size_t required) {
  size_t i = 0, j = 0;
  MergeResult res{0, 0, false};
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    if (required > 0 && res.overlap + std::min(na - i, nb - j) < required) {
      res.early = true;
      return res;
    }
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    res.overlap += static_cast<size_t>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    ++res.steps;
    const TokenId amax = a[i + 7];
    const TokenId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  MergeResult rest = MergeFrom(a, na, b, nb, i, j, res.overlap, required);
  rest.steps += res.steps;
  return rest;
}
#endif

MergeResult BlockMerge(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                       size_t required) {
#if defined(DSSJ_AVX2_DISPATCH)
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
  if (kHasAvx2 && na >= 8 && nb >= 8) return BlockMergeAvx2(a, na, b, nb, required);
#endif
  return MergeFrom(a, na, b, nb, 0, 0, 0, required);
}

/// Counts matches of a tiny side `s` against the long side `l` with one
/// resumable bounded binary search per token. For one or two tokens this
/// beats both the gallop (whose doubling phase re-probes cache lines the
/// lower_bound touches anyway) and the block kernel (whose tail would walk
/// `l` linearly) — the shape the bundle joiner's delta-based member
/// resolution produces constantly: a full-length probe against a one- or
/// two-token add/remove diff.
MergeResult SearchIntersect(const TokenId* s, size_t ns, const TokenId* l, size_t nl) {
  MergeResult res{0, 0, false};
  const TokenId* from = l;
  const TokenId* end = l + nl;
  for (size_t k = 0; k < ns; ++k) {
    from = std::lower_bound(from, end, s[k]);
    ++res.steps;
    if (from == end) break;
    if (*from == s[k]) {
      ++res.overlap;
      ++from;
    }
  }
  return res;
}

/// Sides at or below this length dispatch to SearchIntersect. Measured on
/// the bench host: at 1-2 tokens the binary search wins against every other
/// kernel for any long-side length; from 4 tokens up the block merge (or
/// the gallop, once the skew passes kGallopSkew/2) is ahead.
constexpr size_t kTinyIntersect = 2;

/// Counts matches of the short side `s` against the long side `l` by
/// resumable exponential (galloping) search: each short token brackets its
/// position by doubling steps from the previous match, then binary-searches
/// the bracket. O(ns · log(nl / ns)) instead of O(ns + nl).
MergeResult GallopIntersect(const TokenId* s, size_t ns, const TokenId* l, size_t nl,
                            size_t required) {
  MergeResult res{0, 0, false};
  size_t lo = 0;
  for (size_t i = 0; i < ns; ++i) {
    if (required > 0 && res.overlap + (ns - i) < required) {
      res.early = true;
      return res;
    }
    const TokenId t = s[i];
    size_t bound = 1;
    while (lo + bound < nl && l[lo + bound] < t) bound <<= 1;
    const size_t high = std::min(nl, lo + bound);
    const TokenId* pos = std::lower_bound(l + lo, l + high, t);
    ++res.steps;
    lo = static_cast<size_t>(pos - l);
    if (lo == nl) return res;  // exhausted the long side: result is exact
    if (l[lo] == t) {
      ++res.overlap;
      ++lo;
    }
  }
  return res;
}

}  // namespace

void SetVerifyKernel(VerifyKernel kernel) {
  g_verify_kernel.store(kernel, std::memory_order_relaxed);
}

VerifyKernel GetVerifyKernel() { return g_verify_kernel.load(std::memory_order_relaxed); }

size_t VerifyOverlapScalar(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                           size_t required, VerifyCounters* counters) {
  const MergeResult res = ScalarMergeCore(a, na, b, nb, required);
  if (counters != nullptr) {
    counters->merge_steps += res.steps;
    counters->full_verifications += 1;
    if (res.early) counters->early_exits += 1;
  }
  return res.overlap;
}

size_t VerifyOverlap(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                     size_t required, VerifyCounters* counters) {
  if (GetVerifyKernel() == VerifyKernel::kScalar) {
    return VerifyOverlapScalar(a, na, b, nb, required, counters);
  }
  MergeResult res;
  if (na != 0 && nb != 0) {
    const size_t shorter = std::min(na, nb);
    if (required > shorter) {
      res.early = true;  // even full containment cannot reach `required`
    } else if (na >= nb * kGallopSkew) {
      res = GallopIntersect(b, nb, a, na, required);
    } else if (nb >= na * kGallopSkew) {
      res = GallopIntersect(a, na, b, nb, required);
    } else if (shorter <= kShortMerge) {
      res = ScalarMergeCore(a, na, b, nb, required);
    } else {
      res = BlockMerge(a, na, b, nb, required);
    }
  }
  if (counters != nullptr) {
    counters->merge_steps += res.steps;
    counters->full_verifications += 1;
    if (res.early) counters->early_exits += 1;
  }
  return res.overlap;
}

size_t VerifyOverlap(TokenSpan a, TokenSpan b, size_t required, VerifyCounters* counters) {
  return VerifyOverlap(a.data(), a.size(), b.data(), b.size(), required, counters);
}

size_t IntersectCount(const TokenId* probe, size_t nprobe, const TokenId* diff, size_t ndiff,
                      VerifyCounters* counters) {
  MergeResult res;
  if (GetVerifyKernel() == VerifyKernel::kScalar) {
    // Reference behaviour: per-token binary search for tiny diffs, plain
    // merge otherwise.
    if (ndiff * 8 < nprobe) {
      const TokenId* from = probe;
      const TokenId* end = probe + nprobe;
      for (size_t k = 0; k < ndiff; ++k) {
        from = std::lower_bound(from, end, diff[k]);
        res.steps += 1;
        if (from == end) break;
        if (*from == diff[k]) {
          ++res.overlap;
          ++from;
        }
      }
    } else {
      size_t i = 0, j = 0;
      while (i < nprobe && j < ndiff) {
        ++res.steps;
        if (probe[i] == diff[j]) {
          ++res.overlap;
          ++i;
          ++j;
        } else if (probe[i] < diff[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  } else if (nprobe != 0 && ndiff != 0) {
    // Per-shape kernel selection (ISSUE: delta-based member resolution used
    // to defeat the block kernel globally): the short side and the
    // long/short ratio pick the cheapest kernel for this call.
    const TokenId* s = diff;
    size_t ns = ndiff;
    const TokenId* l = probe;
    size_t nl = nprobe;
    if (ns > nl) {
      std::swap(s, l);
      std::swap(ns, nl);
    }
    if (ns <= kTinyIntersect) {
      // Against a short long side the plain merge's dozen branch-free steps
      // still undercut two binary searches.
      res = nl <= kShortMerge ? ScalarMergeCore(l, nl, s, ns, 0) : SearchIntersect(s, ns, l, nl);
    } else if (ns * 8 < nl) {
      res = GallopIntersect(s, ns, l, nl, 0);
    } else {
      res = BlockMerge(probe, nprobe, diff, ndiff, 0);
    }
  }
  if (counters != nullptr) {
    counters->merge_steps += res.steps;
    counters->diff_verifications += 1;
  }
  return res.overlap;
}

size_t IntersectCount(TokenSpan probe, TokenSpan diff, VerifyCounters* counters) {
  return IntersectCount(probe.data(), probe.size(), diff.data(), diff.size(), counters);
}

namespace {

size_t DiffBoundRecurse(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                        int depth) {
  if (na == 0 || nb == 0 || depth <= 0) {
    return na >= nb ? na - nb : nb - na;
  }
  const size_t mid = nb / 2;
  const TokenId w = b[mid];
  const TokenId* pos = std::lower_bound(a, a + na, w);
  const bool found = pos != a + na && *pos == w;
  const size_t left_a = static_cast<size_t>(pos - a);
  const TokenId* right_a = pos + (found ? 1 : 0);
  const size_t right_na = na - left_a - (found ? 1 : 0);
  return DiffBoundRecurse(a, left_a, b, mid, depth - 1) +
         DiffBoundRecurse(right_a, right_na, b + mid + 1, nb - mid - 1, depth - 1) +
         (found ? 0 : 1);
}

}  // namespace

size_t SymmetricDifferenceLowerBound(TokenSpan a, TokenSpan b, int max_depth) {
  return DiffBoundRecurse(a.data(), a.size(), b.data(), b.size(), max_depth);
}

}  // namespace dssj
