#include "core/verify.h"

#include <algorithm>

namespace dssj {
namespace {

size_t DiffBoundRecurse(const TokenId* a, size_t na, const TokenId* b, size_t nb,
                        int depth) {
  if (na == 0 || nb == 0 || depth <= 0) {
    return na >= nb ? na - nb : nb - na;
  }
  const size_t mid = nb / 2;
  const TokenId w = b[mid];
  const TokenId* pos = std::lower_bound(a, a + na, w);
  const bool found = pos != a + na && *pos == w;
  const size_t left_a = static_cast<size_t>(pos - a);
  const TokenId* right_a = pos + (found ? 1 : 0);
  const size_t right_na = na - left_a - (found ? 1 : 0);
  return DiffBoundRecurse(a, left_a, b, mid, depth - 1) +
         DiffBoundRecurse(right_a, right_na, b + mid + 1, nb - mid - 1, depth - 1) +
         (found ? 0 : 1);
}

}  // namespace

size_t VerifyOverlap(const std::vector<TokenId>& a, const std::vector<TokenId>& b,
                     size_t required, VerifyCounters* counters) {
  size_t i = 0, j = 0, overlap = 0;
  uint64_t steps = 0;
  const size_t na = a.size(), nb = b.size();
  bool early = false;
  while (i < na && j < nb) {
    // Early exit: even matching every remaining token cannot reach
    // `required`.
    if (required > 0 && overlap + std::min(na - i, nb - j) < required) {
      early = true;
      break;
    }
    ++steps;
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  if (counters != nullptr) {
    counters->merge_steps += steps;
    counters->full_verifications += 1;
    if (early) counters->early_exits += 1;
  }
  return overlap;
}

size_t SymmetricDifferenceLowerBound(const std::vector<TokenId>& a,
                                     const std::vector<TokenId>& b, int max_depth) {
  return DiffBoundRecurse(a.data(), a.size(), b.data(), b.size(), max_depth);
}

size_t IntersectCount(const std::vector<TokenId>& probe, const std::vector<TokenId>& diff,
                      VerifyCounters* counters) {
  // The diff is typically tiny; gallop through the probe with binary search
  // per diff token when that is cheaper than a full merge.
  size_t count = 0;
  uint64_t steps = 0;
  if (diff.size() * 8 < probe.size()) {
    auto from = probe.begin();
    for (TokenId t : diff) {
      from = std::lower_bound(from, probe.end(), t);
      steps += 1;
      if (from == probe.end()) break;
      if (*from == t) {
        ++count;
        ++from;
      }
    }
  } else {
    size_t i = 0, j = 0;
    while (i < probe.size() && j < diff.size()) {
      ++steps;
      if (probe[i] == diff[j]) {
        ++count;
        ++i;
        ++j;
      } else if (probe[i] < diff[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  if (counters != nullptr) {
    counters->merge_steps += steps;
    counters->diff_verifications += 1;
  }
  return count;
}

}  // namespace dssj
