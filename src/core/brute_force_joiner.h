#ifndef DSSJ_CORE_BRUTE_FORCE_JOINER_H_
#define DSSJ_CORE_BRUTE_FORCE_JOINER_H_

#include <deque>

#include "core/local_joiner.h"
#include "core/similarity.h"
#include "core/window.h"

namespace dssj {

/// Reference joiner: verifies the probe against every stored record. No
/// filtering beyond the (free) length bound. The correctness oracle for
/// every other joiner and every distribution strategy; also a usable
/// baseline for tiny windows.
class BruteForceJoiner : public LocalJoiner {
 public:
  BruteForceJoiner(const SimilaritySpec& sim, const WindowSpec& window)
      : sim_(sim), window_(window) {}

  void Process(const RecordPtr& r, bool store, bool probe, const ResultCallback& cb) override;

  size_t StoredCount() const override { return store_.size(); }
  size_t MemoryBytes() const override;
  const JoinerStats& stats() const override { return stats_; }

  /// Checkpointing: window records in store order + stats (no index to
  /// rebuild — probes scan the store directly).
  bool SupportsSnapshot() const override { return true; }
  void Snapshot(std::string* out) const override;
  void Restore(const std::string& blob) override;

 private:
  void Evict(int64_t now);

  SimilaritySpec sim_;
  WindowSpec window_;
  std::deque<RecordPtr> store_;
  JoinerStats stats_;
};

}  // namespace dssj

#endif  // DSSJ_CORE_BRUTE_FORCE_JOINER_H_
