#include "core/similarity.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace dssj {
namespace {

constexpr int64_t P = SimilaritySpec::kPermille;

/// ceil(a / b) for non-negative a, positive b.
int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// o² P² as a 128-bit value (cosine accept test LHS).
unsigned __int128 CosineLhs(int64_t o) {
  return static_cast<unsigned __int128>(o) * static_cast<unsigned __int128>(o) *
         static_cast<unsigned __int128>(P * P);
}

}  // namespace

const char* SimilarityFunctionName(SimilarityFunction fn) {
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return "jaccard";
    case SimilarityFunction::kCosine:
      return "cosine";
    case SimilarityFunction::kDice:
      return "dice";
    case SimilarityFunction::kOverlap:
      return "overlap";
  }
  return "unknown";
}

SimilaritySpec::SimilaritySpec(SimilarityFunction fn, int64_t threshold_permille)
    : fn_(fn), p_(threshold_permille) {
  if (fn_ == SimilarityFunction::kOverlap) {
    CHECK_GE(p_, 1) << "overlap threshold is an absolute count >= 1";
  } else {
    CHECK_GE(p_, 1) << "threshold permille must be in [1, 1000]";
    CHECK_LE(p_, P) << "threshold permille must be in [1, 1000]";
  }
}

bool SimilaritySpec::Satisfies(size_t o, size_t l1, size_t l2) const {
  if (l1 == 0 || l2 == 0) return false;
  DCHECK_LE(l1, kMaxLength);
  DCHECK_LE(l2, kMaxLength);
  const int64_t oo = static_cast<int64_t>(o);
  const int64_t a = static_cast<int64_t>(l1);
  const int64_t b = static_cast<int64_t>(l2);
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      // o / (l1 + l2 - o) >= p/P  ⇔  o (P + p) >= p (l1 + l2)
      return oo * (P + p_) >= p_ * (a + b);
    case SimilarityFunction::kCosine:
      // o / sqrt(l1 l2) >= p/P  ⇔  o² P² >= p² l1 l2
      return CosineLhs(oo) >= static_cast<unsigned __int128>(p_ * p_) *
                                  static_cast<unsigned __int128>(a) *
                                  static_cast<unsigned __int128>(b);
    case SimilarityFunction::kDice:
      // 2o / (l1 + l2) >= p/P  ⇔  2 P o >= p (l1 + l2)
      return 2 * P * oo >= p_ * (a + b);
    case SimilarityFunction::kOverlap:
      return oo >= p_;
  }
  return false;
}

size_t SimilaritySpec::MinOverlap(size_t l1, size_t l2) const {
  if (l1 == 0 || l2 == 0) return 1;  // unsatisfiable: o <= 0 < 1
  const int64_t a = static_cast<int64_t>(l1);
  const int64_t b = static_cast<int64_t>(l2);
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      return static_cast<size_t>(CeilDiv(p_ * (a + b), P + p_));
    case SimilarityFunction::kCosine: {
      const unsigned __int128 rhs = static_cast<unsigned __int128>(p_ * p_) *
                                    static_cast<unsigned __int128>(a) *
                                    static_cast<unsigned __int128>(b);
      // Estimate with doubles, then fix up exactly.
      int64_t o = static_cast<int64_t>(
          std::ceil(std::sqrt(static_cast<double>(p_ * p_) * static_cast<double>(a) *
                              static_cast<double>(b)) /
                        static_cast<double>(P) -
                    1e-9));
      if (o < 0) o = 0;
      while (CosineLhs(o) < rhs) ++o;
      while (o > 0 && CosineLhs(o - 1) >= rhs) --o;
      return static_cast<size_t>(o);
    }
    case SimilarityFunction::kDice:
      return static_cast<size_t>(CeilDiv(p_ * (a + b), 2 * P));
    case SimilarityFunction::kOverlap:
      return static_cast<size_t>(p_);
  }
  return 1;
}

size_t SimilaritySpec::LengthLowerBound(size_t l) const {
  if (l == 0) return 0;
  const int64_t a = static_cast<int64_t>(l);
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      return static_cast<size_t>(CeilDiv(p_ * a, P));
    case SimilarityFunction::kCosine:
      return static_cast<size_t>(CeilDiv(p_ * p_ * a, P * P));
    case SimilarityFunction::kDice:
      return static_cast<size_t>(CeilDiv(p_ * a, 2 * P - p_));
    case SimilarityFunction::kOverlap:
      return static_cast<size_t>(p_);
  }
  return 0;
}

size_t SimilaritySpec::LengthUpperBound(size_t l) const {
  if (l == 0) return 0;
  const int64_t a = static_cast<int64_t>(l);
  int64_t hi = 0;
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      hi = P * a / p_;
      break;
    case SimilarityFunction::kCosine:
      hi = P * P * a / (p_ * p_);
      break;
    case SimilarityFunction::kDice:
      hi = (2 * P - p_) * a / p_;
      break;
    case SimilarityFunction::kOverlap:
      hi = static_cast<int64_t>(kMaxLength);
      break;
  }
  return static_cast<size_t>(std::min<int64_t>(hi, static_cast<int64_t>(kMaxLength)));
}

size_t SimilaritySpec::PrefixLength(size_t l) const {
  if (l == 0) return 0;
  if (fn_ == SimilarityFunction::kOverlap) {
    return l < static_cast<size_t>(p_) ? 0 : l - static_cast<size_t>(p_) + 1;
  }
  // The minimum overlap over all eligible partner lengths is attained at the
  // shortest eligible partner (MinOverlap is nondecreasing in l2).
  const size_t lo = LengthLowerBound(l);
  const size_t alpha = MinOverlap(l, lo);
  DCHECK_GE(alpha, 1u);
  if (alpha > l) return 0;
  return l - alpha + 1;
}

double SimilaritySpec::EvaluateSimilarity(size_t o, size_t l1, size_t l2) const {
  if (l1 == 0 || l2 == 0) return 0.0;
  const double oo = static_cast<double>(o);
  const double a = static_cast<double>(l1);
  const double b = static_cast<double>(l2);
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      return oo / (a + b - oo);
    case SimilarityFunction::kCosine:
      return oo / std::sqrt(a * b);
    case SimilarityFunction::kDice:
      return 2.0 * oo / (a + b);
    case SimilarityFunction::kOverlap:
      return oo;
  }
  return 0.0;
}

std::string SimilaritySpec::ToString() const {
  std::ostringstream os;
  os << SimilarityFunctionName(fn_);
  if (fn_ == SimilarityFunction::kOverlap) {
    os << ">=" << p_;
  } else {
    os << ">=" << p_ << "/1000";
  }
  return os.str();
}

}  // namespace dssj
