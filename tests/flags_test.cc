#include "common/flags.h"

#include <gtest/gtest.h>

namespace dssj {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto parsed = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

TEST(FlagsTest, KeyEqualsValue) {
  const Flags f = MustParse({"--threshold=800", "--strategy=length"});
  EXPECT_EQ(f.GetInt("threshold", 0), 800);
  EXPECT_EQ(f.GetString("strategy", ""), "length");
  EXPECT_EQ(f.GetInt("absent", 42), 42);
}

TEST(FlagsTest, KeySpaceValue) {
  const Flags f = MustParse({"--joiners", "8", "--rate", "2.5"});
  EXPECT_EQ(f.GetInt("joiners", 0), 8);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 2.5);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  const Flags f = MustParse({"--verbose", "--collect=false"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("collect", true));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagsTest, PositionalArguments) {
  const Flags f = MustParse({"input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(FlagsTest, UnusedKeysDetectTypos) {
  const Flags f = MustParse({"--threshold=800", "--thresold=900"});
  EXPECT_EQ(f.GetInt("threshold", 0), 800);
  const auto unused = f.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "thresold");
}

TEST(FlagsTest, HasMarksUsed) {
  const Flags f = MustParse({"--opt=1"});
  EXPECT_TRUE(f.Has("opt"));
  EXPECT_TRUE(f.UnusedKeys().empty());
}

TEST(FlagsTest, MalformedInput) {
  const char* argv[] = {"prog", "--=x"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
}

TEST(FlagsDeathTest, TypeErrorsFailLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Flags f = MustParse({"--n=abc"});
  EXPECT_DEATH(f.GetInt("n", 0), "expects an integer");
}

}  // namespace
}  // namespace dssj
