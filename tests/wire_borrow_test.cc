// Borrow-lifetime regression tests for the zero-copy receive path. Decoded
// records may borrow token storage from the frame arena; the ownership
// contract is: (1) the aliasing payload shared_ptr pins the arena, so a
// borrow can never dangle while the Record is reachable; (2) anything that
// outlives the delivery callback — the joiner's stored index, checkpoint
// blobs, shed bookkeeping — must hold a detached (owning) copy. These tests
// run with net_arena_pool = 0, which frees every arena the instant its last
// borrower drops instead of recycling it, so a missed detach is a
// use-after-free that ASan reports at the exact access (tools/ci.sh runs
// this binary in the ASan tree).
#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/join_topology.h"
#include "net/frame_arena.h"
#include "net/wire.h"
#include "text/record.h"
#include "workload/generator.h"

namespace dssj {
namespace {

using net::WireCodec;
using stream::Envelope;
using stream::MakeTuple;

constexpr WireCodec kAllCodecs[] = {WireCodec::kRaw, WireCodec::kDelta,
                                    WireCodec::kDeltaLz};

std::string OneRecordFrame(WireCodec wire, const net::PayloadCodec& codec,
                           std::vector<TokenId> tokens) {
  auto record = std::make_shared<Record>();
  record->id = 5;
  record->seq = 6;
  record->timestamp = 7;
  record->tokens = std::move(tokens);
  Envelope e;
  e.tuple = MakeTuple(std::shared_ptr<const void>(record));
  e.source_task = 1;
  e.link_seq = 1;
  std::string bytes;
  net::AppendDataFrame(wire, 1, 2, {e}, &codec, &bytes);
  return bytes;
}

RecordPtr ParseOneRecord(const std::string& bytes, const net::PayloadCodec& codec,
                         const std::shared_ptr<net::FrameArena>& arena) {
  const char* data = bytes.data();
  if (arena != nullptr) {
    arena->bytes() = bytes;
    data = arena->bytes().data();
  }
  net::Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(net::ParseFrame(data, bytes.size(), &codec, net::kDefaultMaxFrameBytes,
                            &frame, &consumed, &error, arena),
            net::ParseStatus::kFrame)
      << error;
  EXPECT_EQ(frame.envelopes.size(), 1u);
  return frame.envelopes[0].tuple.Ptr<Record>(0);
}

TEST(BorrowLifetimeTest, BorrowedTokensOutliveTheArenaHandle) {
  const net::PayloadCodec codec = RecordWireCodec();
  const std::vector<TokenId> tokens = {2, 9, 11, 400000};
  net::FrameArenaPool pool(0);  // freed, not recycled: ASan sees any dangle
  for (const WireCodec wire : kAllCodecs) {
    const std::string bytes = OneRecordFrame(wire, codec, tokens);
    auto arena = pool.Acquire();
    RecordPtr record = ParseOneRecord(bytes, codec, arena);
    ASSERT_NE(record, nullptr);
    // Drop our arena handle: the record's aliasing owner must keep the
    // arena (and with it the frame buffer) alive on its own.
    arena.reset();
    EXPECT_EQ(record->tokens, tokens) << net::WireCodecName(wire);
    // The arena decode path hands out borrows, not copies.
    EXPECT_TRUE(record->tokens.borrowed()) << net::WireCodecName(wire);
  }
}

TEST(BorrowLifetimeTest, NullArenaDecodesOwnEverything) {
  const net::PayloadCodec codec = RecordWireCodec();
  for (const WireCodec wire : kAllCodecs) {
    const std::string bytes = OneRecordFrame(wire, codec, {1, 2, 3});
    RecordPtr record = ParseOneRecord(bytes, codec, nullptr);
    ASSERT_NE(record, nullptr);
    EXPECT_FALSE(record->tokens.borrowed()) << net::WireCodecName(wire);
  }
}

TEST(BorrowLifetimeTest, DetachRecordProducesIndependentCopy) {
  const net::PayloadCodec codec = RecordWireCodec();
  net::FrameArenaPool pool(0);
  const std::vector<TokenId> tokens = {2, 9, 11};
  const std::string bytes = OneRecordFrame(WireCodec::kRaw, codec, tokens);
  auto arena = pool.Acquire();
  RecordPtr borrowed = ParseOneRecord(bytes, codec, arena);
  ASSERT_NE(borrowed, nullptr);
  ASSERT_TRUE(borrowed->tokens.borrowed());

  const RecordPtr detached = DetachRecord(borrowed);
  EXPECT_FALSE(detached->tokens.borrowed());
  EXPECT_NE(detached->tokens.data(), borrowed->tokens.data());
  EXPECT_EQ(detached->tokens, tokens);
  EXPECT_EQ(detached->id, borrowed->id);
  EXPECT_EQ(detached->seq, borrowed->seq);

  // Release every reference into the arena; the detached copy must be
  // self-sufficient (ASan catches it if any byte still points at the frame).
  borrowed.reset();
  arena.reset();
  EXPECT_EQ(detached->tokens, tokens);

  // Detaching an already-owning record is a cheap no-op handle copy.
  const RecordPtr again = DetachRecord(detached);
  EXPECT_EQ(again.get(), detached.get());
}

TEST(BorrowLifetimeTest, TokenArrayCopySemanticsAlwaysDetach) {
  std::vector<TokenId> backing = {4, 8, 15};
  TokenArray borrowed = TokenArray::Borrow(backing.data(), backing.size());
  ASSERT_TRUE(borrowed.borrowed());

  TokenArray copied = borrowed;  // copy ctor must deep-copy
  EXPECT_FALSE(copied.borrowed());
  EXPECT_NE(copied.data(), borrowed.data());

  TokenArray assigned;
  assigned = borrowed;  // copy assign too
  EXPECT_FALSE(assigned.borrowed());

  backing.assign({99, 100, 101});  // clobber the original backing store
  EXPECT_EQ(copied, std::vector<TokenId>({4, 8, 15}));
  EXPECT_EQ(assigned, std::vector<TokenId>({4, 8, 15}));
}

// ---------------------------------------------------------------------------
// End-to-end: the joiner's store path must detach before indexing (frames
// are reused long before the index is probed again), and the checkpoint and
// shed paths must never capture a borrow. Loopback with net_arena_pool = 0
// means every frame buffer is freed as soon as its last borrower drops, so
// under ASan any stored borrow is a guaranteed use-after-free.
// ---------------------------------------------------------------------------

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 400;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 24);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 200;
  return WorkloadGenerator(options).Generate(n);
}

DistributedJoinOptions BaseOptions(const std::vector<RecordPtr>& stream) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.num_joiners = 4;
  options.collect_results = true;
  options.length_partition = PlanLengthPartition(stream, options.sim, options.num_joiners,
                                                 PartitionMethod::kLoadAwareGreedy);
  options.transport = JoinTransport::kLoopback;
  options.num_workers = 2;
  options.net_arena_pool = 0;  // free-on-drop arenas: dangling borrows crash
  return options;
}

TEST(BorrowLifetimeTest, StoredIndexSurvivesArenaChurn) {
  const auto stream = MakeStream(83, 600);
  DistributedJoinOptions options = BaseOptions(stream);
  DistributedJoinOptions inproc_options = options;
  inproc_options.transport = JoinTransport::kInproc;
  const DistributedJoinResult inproc = RunDistributedJoin(stream, inproc_options);
  ASSERT_GT(inproc.result_count, 0u);
  for (const WireCodec wire : kAllCodecs) {
    options.wire_codec = wire;
    const DistributedJoinResult got = RunDistributedJoin(stream, options);
    ASSERT_TRUE(got.ok) << got.failure_message;
    EXPECT_EQ(Canonical(got.pairs), Canonical(inproc.pairs)) << net::WireCodecName(wire);
  }
}

TEST(BorrowLifetimeTest, DetachOnCheckpointPath) {
  // A mid-stream kill forces a checkpoint restore + replay: every record in
  // the checkpoint blob was serialized from the stored index while frame
  // arenas churned underneath. Byte-identical recovery proves the blob held
  // copies, not borrows.
  const auto stream = MakeStream(89, 600);
  DistributedJoinOptions options = BaseOptions(stream);
  DistributedJoinOptions inproc_options = options;
  inproc_options.transport = JoinTransport::kInproc;
  const DistributedJoinResult inproc = RunDistributedJoin(stream, inproc_options);
  options.supervise = true;
  options.supervision.checkpoint_interval = 16;
  options.fault_script = "kill:joiner:1@40";
  for (const WireCodec wire : kAllCodecs) {
    options.wire_codec = wire;
    const DistributedJoinResult got = RunDistributedJoin(stream, options);
    ASSERT_TRUE(got.ok) << got.failure_message;
    EXPECT_EQ(Canonical(got.pairs), Canonical(inproc.pairs)) << net::WireCodecName(wire);
    EXPECT_GE(got.restarts, 1u);
  }
}

TEST(BorrowLifetimeTest, DetachOnShedPath) {
  // Probe shedding drops tuples while their frames are still borrowed and
  // records loss bookkeeping (shed seqs). Stores always land, so the result
  // must be a subset of the unshed reference and every missing pair's probe
  // must appear in the shed ledger — with ASan proving no shed bookkeeping
  // kept a frame borrow alive or read one after free.
  const auto stream = MakeStream(97, 800);
  DistributedJoinOptions options = BaseOptions(stream);
  DistributedJoinOptions inproc_options = options;
  inproc_options.transport = JoinTransport::kInproc;
  const DistributedJoinResult reference = RunDistributedJoin(stream, inproc_options);
  options.shed_policy = stream::ShedPolicy::kProbe;
  options.shed_watermark = 0.02;  // tiny queue fraction: shedding is likely
  options.queue_capacity = 256;
  for (const WireCodec wire : kAllCodecs) {
    options.wire_codec = wire;
    const DistributedJoinResult got = RunDistributedJoin(stream, options);
    ASSERT_TRUE(got.ok) << got.failure_message;
    const auto ref_pairs = Canonical(reference.pairs);
    for (const ResultPair& pair : Canonical(got.pairs)) {
      EXPECT_TRUE(std::binary_search(
          ref_pairs.begin(), ref_pairs.end(), pair,
          [](const ResultPair& a, const ResultPair& b) {
            return std::tie(a.probe_seq, a.partner_seq) <
                   std::tie(b.probe_seq, b.partner_seq);
          }))
          << net::WireCodecName(wire);
    }
    EXPECT_LE(got.result_count, reference.result_count);
  }
}

}  // namespace
}  // namespace dssj
