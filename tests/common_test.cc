#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"

namespace dssj {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, EqualityAndCodeNames) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  StatusOr<int> err = Status::OutOfRange("too big");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrDeathTest, AccessingErrorValueAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StatusOr<int> err = Status::Internal("boom");
  EXPECT_DEATH(err.value(), "boom");
}

Status FailsFast() {
  DSSJ_RETURN_IF_ERROR(Status::NotFound("gone"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) { EXPECT_EQ(FailsFast().code(), StatusCode::kNotFound); }

// --- Logging / CHECK --------------------------------------------------------

TEST(CheckDeathTest, ChecksAbortWithMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CHECK(1 == 2) << "extra context", "CHECK failed: 1 == 2");
  EXPECT_DEATH(CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(CHECK_LT(5, 5), "CHECK_LT failed");
}

TEST(CheckTest, PassingChecksAreSilent) {
  CHECK(true);
  CHECK_EQ(1, 1);
  CHECK_LE(1, 2) << "never printed";
  // CHECK works inside if/else without dangling-else surprises.
  if (true)
    CHECK(true);
  else
    CHECK(false);
}

TEST(LoggingTest, MinSeverityRoundTrips) {
  const LogSeverity prev = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(prev);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  std::vector<uint64_t> va, vb, vc;
  for (int i = 0; i < 100; ++i) {
    va.push_back(a.Next());
    vb.push_back(b.Next());
    vc.push_back(c.Next());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RngTest, UniformStaysInBoundsAndCoversDomain) {
  Rng rng(1);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Uniform(10);
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Gaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.Shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  Rng rng(7);
  ZipfDistribution zipf(5, 0.0);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(rng)];
  for (int h : hits) EXPECT_NEAR(h, 4000, 500);
}

TEST(ZipfTest, RankFrequenciesDecrease) {
  Rng rng(8);
  ZipfDistribution zipf(1000, 1.0);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 200000; ++i) ++hits[zipf.Sample(rng)];
  EXPECT_GT(hits[0], hits[9] * 2);
  EXPECT_GT(hits[9], hits[99]);
  // Rank-0 mass under skew 1.0 with n=1000: 1/H(1000) ≈ 13%.
  EXPECT_NEAR(hits[0] / 200000.0, 0.13, 0.03);
}

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(9);
  for (double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(37, skew);
    for (int i = 0; i < 5000; ++i) ASSERT_LT(zipf.Sample(rng), 37u);
  }
  ZipfDistribution one(1, 1.0);
  EXPECT_EQ(one.Sample(rng), 0u);
}

// --- Hashing ----------------------------------------------------------------

TEST(HashTest, Fnv1a64KnownVectorsAndSpread) {
  // FNV-1a reference: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64(std::string_view("abc")), Fnv1a64("abc", 3));
}

TEST(HashTest, Mix64AvalanchesLowBits) {
  // Consecutive inputs spread across buckets.
  std::vector<int> hits(16, 0);
  for (uint64_t i = 0; i < 16000; ++i) ++hits[Mix64(i) % 16];
  for (int h : hits) EXPECT_NEAR(h, 1000, 200);
}

// --- Stats -------------------------------------------------------------------

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(10);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian() * 3 + 1;
    whole.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 9900.0 * 0.04);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 0.5);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  for (uint64_t v = 0; v < 100; ++v) a.Add(v);
  for (uint64_t v = 1000; v < 1100; ++v) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 1099u);
  EXPECT_GT(a.p95(), 1000u);
}

TEST(HistogramTest, EmptyAndSmallValues) {
  Histogram h;
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Add(0);
  h.Add(3);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_LE(h.p50(), 3u);
  EXPECT_FALSE(h.Summary().empty());
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Get(), 42u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  const int64_t start = NowMicros();
  while (NowMicros() - start < 2000) {
  }
  // Allow 1us of truncation slack between the two clock readers.
  EXPECT_GE(sw.ElapsedMicros(), 1999);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0019);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMicros(), 2000);
}

}  // namespace
}  // namespace dssj
