#include "core/partition.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/join_topology.h"
#include "workload/generator.h"

namespace dssj {
namespace {

TEST(LengthHistogramTest, CountsAndMax) {
  LengthHistogram h;
  h.Add(3);
  h.Add(3);
  h.Add(7);
  EXPECT_EQ(h.CountAt(3), 2u);
  EXPECT_EQ(h.CountAt(7), 1u);
  EXPECT_EQ(h.CountAt(5), 0u);
  EXPECT_EQ(h.CountAt(100), 0u);
  EXPECT_EQ(h.MaxLength(), 7u);
  EXPECT_EQ(h.TotalRecords(), 3u);
}

TEST(LengthPartitionTest, PartitionOfMapsAndClamps) {
  const LengthPartition p({0, 5, 10, 20});
  EXPECT_EQ(p.num_partitions(), 3);
  EXPECT_EQ(p.PartitionOf(0), 0);
  EXPECT_EQ(p.PartitionOf(4), 0);
  EXPECT_EQ(p.PartitionOf(5), 1);
  EXPECT_EQ(p.PartitionOf(9), 1);
  EXPECT_EQ(p.PartitionOf(10), 2);
  EXPECT_EQ(p.PartitionOf(19), 2);
  EXPECT_EQ(p.PartitionOf(1000), 2);  // clamps into the last interval
}

TEST(LengthPartitionTest, PartitionsCovering) {
  const LengthPartition p({0, 5, 10, 20});
  EXPECT_EQ(p.PartitionsCovering(2, 12), (std::pair<int, int>{0, 2}));
  EXPECT_EQ(p.PartitionsCovering(6, 7), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(p.PartitionsCovering(11, 5000), (std::pair<int, int>{2, 2}));
  const auto empty = p.PartitionsCovering(9, 3);
  EXPECT_GT(empty.first, empty.second);
}

TEST(LengthPartitionTest, RejectsBadBounds) {
  EXPECT_DEATH(LengthPartition({0}), "");
  EXPECT_DEATH(LengthPartition({1, 5}), "");     // must start at 0
  EXPECT_DEATH(LengthPartition({0, 5, 5}), "");  // strictly increasing
}

TEST(PartitionBuildersTest, UniformCoversDomainWithKIntervals) {
  for (int k : {1, 2, 3, 8, 40}) {
    const LengthPartition p = PartitionUniform(2, 30, k);
    EXPECT_EQ(p.num_partitions(), k);
    EXPECT_EQ(p.bounds().front(), 0u);
    EXPECT_GT(p.bounds().back(), 30u);
  }
}

TEST(PartitionBuildersTest, EqualFrequencyBalancesCounts) {
  LengthHistogram h;
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) h.Add(1 + rng.Uniform(100));
  const int k = 5;
  const LengthPartition p = PartitionEqualFrequency(h, k);
  ASSERT_EQ(p.num_partitions(), k);
  std::vector<uint64_t> per(k, 0);
  for (size_t l = 0; l <= h.MaxLength(); ++l) per[p.PartitionOf(l)] += h.CountAt(l);
  const uint64_t expect = 100000 / k;
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(static_cast<double>(per[i]), static_cast<double>(expect), 0.2 * expect)
        << "partition " << i;
  }
}

TEST(PerLengthLoadTest, ZeroWithoutRecordsAndPositiveWithin) {
  LengthHistogram h;
  for (int i = 0; i < 50; ++i) {
    h.Add(10);
    h.Add(20);
  }
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const auto load = ComputePerLengthLoad(h, sim);
  EXPECT_GT(load[10], 0.0);
  EXPECT_GT(load[20], 0.0);
  EXPECT_EQ(load[15], 0.0);  // no records of that length
  // At t=0.8, lengths 10 and 20 are not partners (20 > 10/0.8); each length
  // pairs only with itself, and longer records cost more per pair.
  EXPECT_GT(load[20], load[10]);
}

TEST(PerLengthLoadTest, BruteForceCrossCheck) {
  // load[l'] = f(l')·p(l') · Σ_{l eligible} f(l)·p(l)·(l + l').
  LengthHistogram h;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) h.Add(1 + rng.Uniform(40));
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto load = ComputePerLengthLoad(h, sim);
  for (size_t ls = 0; ls < load.size(); ++ls) {
    double expected = 0.0;
    for (size_t lp = 1; lp < load.size(); ++lp) {
      if (ls >= sim.LengthLowerBound(lp) && ls <= sim.LengthUpperBound(lp)) {
        expected += static_cast<double>(h.CountAt(lp)) *
                    static_cast<double>(sim.PrefixLength(lp)) * static_cast<double>(lp + ls);
      }
    }
    expected *= static_cast<double>(h.CountAt(ls)) *
                static_cast<double>(sim.PrefixLength(ls));
    EXPECT_NEAR(load[ls], expected, 1e-6 * std::max(1.0, expected)) << "length " << ls;
  }
}

TEST(JoinCostModelTest, IntervalCostMatchesBruteForce) {
  LengthHistogram h;
  Rng rng(12);
  for (int i = 0; i < 400; ++i) h.Add(1 + rng.Uniform(30));
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const JoinCostModel::Weights weights{1.0, 123.0};
  const JoinCostModel model(h, sim, weights);
  const auto load = ComputePerLengthLoad(h, sim);
  for (size_t a = 0; a <= h.MaxLength(); a += 3) {
    for (size_t b = a; b <= h.MaxLength(); b += 2) {
      double pair_work = 0.0;
      for (size_t l = a; l <= b; ++l) pair_work += load[l];
      double visits = 0.0;
      for (size_t l = 0; l <= h.MaxLength(); ++l) {
        const size_t lo = sim.LengthLowerBound(l);
        const size_t hi = sim.LengthUpperBound(l);
        if (lo <= b && hi >= a) visits += static_cast<double>(h.CountAt(l));
      }
      const double expected = pair_work + weights.visit_cost * visits;
      EXPECT_NEAR(model.IntervalCost(a, b), expected, 1e-6 * std::max(1.0, expected))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(JoinCostModelTest, IntervalCostIsMonotoneUnderExtension) {
  LengthHistogram h;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) h.Add(1 + rng.Uniform(25));
  const JoinCostModel model(h, SimilaritySpec(SimilarityFunction::kJaccard, 800));
  for (size_t a = 0; a < 20; ++a) {
    for (size_t b = a; b + 1 <= h.MaxLength(); ++b) {
      EXPECT_LE(model.IntervalCost(a, b), model.IntervalCost(a, b + 1));
      if (a > 0) EXPECT_LE(model.IntervalCost(a, b), model.IntervalCost(a - 1, b));
    }
  }
}

TEST(JoinCostModelTest, GreedyMatchesDpBottleneck) {
  Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    LengthHistogram h;
    const int n = 200 + static_cast<int>(rng.Uniform(400));
    for (int i = 0; i < n; ++i) h.Add(1 + rng.Uniform(25));
    const int k = 1 + static_cast<int>(rng.Uniform(6));
    const JoinCostModel model(h, SimilaritySpec(SimilarityFunction::kJaccard, 750));
    const LengthPartition dp = PartitionByCostModelDP(model, k);
    const LengthPartition greedy = PartitionByCostModelGreedy(model, k);
    ASSERT_EQ(dp.num_partitions(), k);
    ASSERT_EQ(greedy.num_partitions(), k);
    const double dp_cost = BottleneckModelCost(dp, model);
    const double greedy_cost = BottleneckModelCost(greedy, model);
    EXPECT_NEAR(greedy_cost, dp_cost, 1e-6 * std::max(1.0, dp_cost)) << "trial " << trial;
  }
}

TEST(LoadAwarePartitionTest, GreedyMatchesDpOptimum) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.Uniform(40);
    const int k = 1 + static_cast<int>(rng.Uniform(6));
    std::vector<double> load(n);
    for (auto& w : load) w = static_cast<double>(rng.Uniform(1000));
    const LengthPartition dp = PartitionLoadAwareDP(load, k);
    const LengthPartition greedy = PartitionLoadAwareGreedy(load, k);
    ASSERT_EQ(dp.num_partitions(), k);
    ASSERT_EQ(greedy.num_partitions(), k);
    const double dp_cost = BottleneckLoad(dp, load);
    const double greedy_cost = BottleneckLoad(greedy, load);
    EXPECT_NEAR(greedy_cost, dp_cost, 1e-6 * std::max(1.0, dp_cost))
        << "trial " << trial << " n=" << n << " k=" << k;
  }
}

TEST(LoadAwarePartitionTest, BeatsOrTiesNaivePartitioners) {
  WorkloadOptions wo = PresetOptions(DatasetPreset::kTweet);
  wo.seed = 5;
  const auto records = WorkloadGenerator(wo).Generate(20000);
  LengthHistogram h;
  h.AddRecords(records);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 800);
  const auto load = ComputePerLengthLoad(h, sim);
  const int k = 8;
  const double aware = BottleneckLoad(PartitionLoadAwareGreedy(load, k), load);
  const double uniform = BottleneckLoad(PartitionUniform(1, h.MaxLength(), k), load);
  const double eqfreq = BottleneckLoad(PartitionEqualFrequency(h, k), load);
  EXPECT_LE(aware, uniform * (1.0 + 1e-9));
  EXPECT_LE(aware, eqfreq * (1.0 + 1e-9));
}

TEST(LoadAwarePartitionTest, HandlesDegenerateInputs) {
  // Empty load.
  const LengthPartition empty = PartitionLoadAwareGreedy({}, 4);
  EXPECT_EQ(empty.num_partitions(), 4);
  // Single length.
  const LengthPartition single = PartitionLoadAwareDP({42.0}, 3);
  EXPECT_EQ(single.num_partitions(), 3);
  EXPECT_EQ(single.PartitionOf(0), 0);
  // More partitions than lengths.
  const LengthPartition wide = PartitionLoadAwareDP({1.0, 2.0}, 6);
  EXPECT_EQ(wide.num_partitions(), 6);
}

TEST(PlanLengthPartitionTest, AllMethodsProduceMatchingPartitionCounts) {
  WorkloadOptions wo = PresetOptions(DatasetPreset::kAol);
  wo.seed = 6;
  const auto sample = WorkloadGenerator(wo).Generate(5000);
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 750);
  for (const PartitionMethod m :
       {PartitionMethod::kLoadAwareGreedy, PartitionMethod::kLoadAwareDP,
        PartitionMethod::kUniform, PartitionMethod::kEqualFrequency}) {
    const LengthPartition p = PlanLengthPartition(sample, sim, 6, m);
    EXPECT_EQ(p.num_partitions(), 6) << PartitionMethodName(m);
  }
  // Empty sample falls back to a usable partition.
  const LengthPartition fallback =
      PlanLengthPartition({}, sim, 3, PartitionMethod::kLoadAwareGreedy);
  EXPECT_EQ(fallback.num_partitions(), 3);
}

}  // namespace
}  // namespace dssj
