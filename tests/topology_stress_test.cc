// Randomized stress of the stream substrate: layered random topologies
// with random parallelism and groupings; every tuple carries a payload
// that downstream stages fold into per-producer checksums, so loss,
// duplication and reordering are all detectable.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/topology.h"

namespace dssj::stream {
namespace {

class SeqSpout : public Spout {
 public:
  SeqSpout(int64_t task_tag, int64_t n) : tag_(task_tag), n_(n) {}
  void Open(const TaskContext& ctx) override { tag_ += ctx.task_index; }
  bool NextTuple(OutputCollector& out) override {
    if (i_ >= n_) return false;
    out.Emit(MakeTuple(tag_ * 1000000 + i_));
    ++i_;
    return true;
  }

 private:
  int64_t tag_;
  int64_t n_;
  int64_t i_ = 0;
};

/// Forwards every tuple; terminal instances add values into a global sum.
class RelayBolt : public Bolt {
 public:
  RelayBolt(std::atomic<uint64_t>* sum, std::atomic<uint64_t>* count, bool forward)
      : sum_(sum), count_(count), forward_(forward) {}
  void Execute(Tuple tuple, OutputCollector& out) override {
    sum_->fetch_add(static_cast<uint64_t>(tuple.Int(0)), std::memory_order_relaxed);
    count_->fetch_add(1, std::memory_order_relaxed);
    if (forward_) out.Emit(std::move(tuple));
  }

 private:
  std::atomic<uint64_t>* sum_;
  std::atomic<uint64_t>* count_;
  bool forward_;
};

class TopologyStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopologyStressTest, RandomLayeredTopologyConservesTuples) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int layers = 1 + static_cast<int>(rng.Uniform(3));  // bolt layers
  const int spout_par = 1 + static_cast<int>(rng.Uniform(3));
  const int64_t per_task = 200 + static_cast<int64_t>(rng.Uniform(2000));

  // Expected totals (layer 0 receives everything exactly once except for
  // All-groupings which multiply).
  TopologyBuilder builder;
  builder.SetNumWorkers(1 + static_cast<int>(rng.Uniform(4)));
  builder.SetQueueCapacity(8 + rng.Uniform(256));
  builder.SetSpout(
      "src", [per_task] { return std::make_unique<SeqSpout>(7, per_task); }, spout_par);

  std::vector<std::unique_ptr<std::atomic<uint64_t>>> sums, counts;
  std::string prev = "src";
  int prev_parallelism = spout_par;
  uint64_t multiplier = 1;
  std::vector<uint64_t> layer_multiplier;
  for (int layer = 0; layer < layers; ++layer) {
    sums.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    counts.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    auto* sum = sums.back().get();
    auto* count = counts.back().get();
    const bool last = layer == layers - 1;
    const int parallelism = 1 + static_cast<int>(rng.Uniform(5));
    const std::string name = "bolt" + std::to_string(layer);
    BoltDeclarer declarer = builder.SetBolt(
        name, [sum, count, last] { return std::make_unique<RelayBolt>(sum, count, !last); },
        parallelism);
    switch (rng.Uniform(4)) {
      case 0:
        declarer.ShuffleGrouping(prev);
        break;
      case 1:
        declarer.FieldsGrouping(prev, {0});
        break;
      case 2:
        declarer.GlobalGrouping(prev);
        break;
      default:
        declarer.AllGrouping(prev);
        multiplier *= static_cast<uint64_t>(parallelism);
        break;
    }
    layer_multiplier.push_back(multiplier);
    prev = name;
    prev_parallelism = parallelism;
    (void)prev_parallelism;
  }

  builder.Build()->Run();

  // Per-spout-task arithmetic-series checksum.
  uint64_t base_sum = 0;
  for (int t = 0; t < spout_par; ++t) {
    const uint64_t tag = static_cast<uint64_t>(7 + t) * 1000000;
    base_sum += static_cast<uint64_t>(per_task) * tag +
                static_cast<uint64_t>(per_task) * static_cast<uint64_t>(per_task - 1) / 2;
  }
  const uint64_t base_count = static_cast<uint64_t>(per_task) * spout_par;

  for (int layer = 0; layer < layers; ++layer) {
    EXPECT_EQ(counts[layer]->load(), base_count * layer_multiplier[layer])
        << "seed=" << seed << " layer=" << layer;
    EXPECT_EQ(sums[layer]->load(), base_sum * layer_multiplier[layer])
        << "seed=" << seed << " layer=" << layer;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyStressTest, ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace dssj::stream
