// Overload-control scenario tests: bounded load shedding with exactly
// quantified recall loss, the stall watchdog, and per-joiner memory budgets
// (docs/INTERNALS.md §8).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_joiner.h"
#include "core/bundle_joiner.h"
#include "core/join_topology.h"
#include "core/record_joiner.h"
#include "stream/overload.h"
#include "stream/topology.h"
#include "workload/generator.h"

namespace dssj {
namespace {

std::vector<ResultPair> Canonical(std::vector<ResultPair> pairs) {
  std::sort(pairs.begin(), pairs.end(), [](const ResultPair& a, const ResultPair& b) {
    return std::tie(a.probe_seq, a.partner_seq) < std::tie(b.probe_seq, b.partner_seq);
  });
  return pairs;
}

std::vector<RecordPtr> MakeStream(uint64_t seed, size_t n) {
  WorkloadOptions options;
  options.seed = seed;
  options.token_universe = 500;
  options.zipf_skew = 0.6;
  options.length = LengthModel::Uniform(1, 30);
  options.duplicate_fraction = 0.4;
  options.mutation_rate = 0.12;
  options.dup_locality = 300;
  return WorkloadGenerator(options).Generate(n);
}

std::vector<ResultPair> Oracle(const std::vector<RecordPtr>& stream,
                               const SimilaritySpec& sim) {
  BruteForceJoiner joiner(sim, WindowSpec::Unbounded());
  return Canonical(SingleNodeJoin(stream, joiner));
}

/// A single brute-force joiner behind a tiny queue: the dispatcher outruns
/// the O(stored) probes, so the joiner's inbound queue saturates and any
/// shed policy engages. With one joiner every tuple arrives in seq order,
/// making the loss exactly predictable.
DistributedJoinOptions FloodedOptions(stream::ShedPolicy policy) {
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.window = WindowSpec::Unbounded();
  options.strategy = DistributionStrategy::kBroadcast;
  options.local = LocalAlgorithm::kBruteForce;
  options.num_joiners = 1;
  options.collect_results = true;
  options.queue_capacity = 8;
  options.batch_size = 4;
  options.shed_policy = policy;
  options.shed_watermark = 0.75;
  return options;
}

/// Stores always land, so the result set must equal the oracle minus
/// exactly the pairs whose probe seq was shed — no more, no fewer.
void ExpectExactShedAccounting(const std::vector<RecordPtr>& stream,
                               const DistributedJoinResult& result,
                               const SimilaritySpec& sim) {
  ASSERT_EQ(result.shed_probes, result.shed_probe_seqs.size());
  std::set<uint64_t> shed;
  for (const auto& [seq, partition] : result.shed_probe_seqs) {
    EXPECT_GE(partition, 0);
    EXPECT_TRUE(shed.insert(seq).second) << "probe " << seq << " shed twice";
  }
  const auto expected = Oracle(stream, sim);
  ASSERT_GT(expected.size(), 0u) << "vacuous test stream";
  uint64_t lost = 0;
  std::vector<ResultPair> kept;
  for (const ResultPair& p : expected) {
    if (shed.count(p.probe_seq)) {
      ++lost;
    } else {
      kept.push_back(p);
    }
  }
  EXPECT_EQ(Canonical(result.pairs), Canonical(kept))
      << "recall loss does not match the shed probes exactly";
  EXPECT_LE(lost, result.shed_pairs_upper_bound);
}

TEST(ShedPolicyTest, NamesRoundTripThroughParse) {
  for (const stream::ShedPolicy policy :
       {stream::ShedPolicy::kNone, stream::ShedPolicy::kProbe,
        stream::ShedPolicy::kOldest, stream::ShedPolicy::kBundle}) {
    stream::ShedPolicy parsed = stream::ShedPolicy::kNone;
    EXPECT_TRUE(stream::ParseShedPolicy(stream::ShedPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  stream::ShedPolicy untouched = stream::ShedPolicy::kProbe;
  EXPECT_FALSE(stream::ParseShedPolicy("bogus", &untouched));
  EXPECT_EQ(untouched, stream::ShedPolicy::kProbe);
}

TEST(OverloadControlTest, ProbeSheddingLossIsExactlyQuantified) {
  const auto stream = MakeStream(31, 3000);
  const auto options = FloodedOptions(stream::ShedPolicy::kProbe);
  const auto result = RunDistributedJoin(stream, options);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_GT(result.shed_probes, 0u) << "flood never engaged the shed policy";
  EXPECT_LT(result.shed_probes, stream.size()) << "everything was shed";
  ExpectExactShedAccounting(stream, result, options.sim);
}

TEST(OverloadControlTest, OldestSheddingLossIsExactlyQuantified) {
  const auto stream = MakeStream(35, 3000);
  const auto options = FloodedOptions(stream::ShedPolicy::kOldest);
  const auto result = RunDistributedJoin(stream, options);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_GT(result.shed_probes, 0u) << "flood never engaged the shed policy";
  EXPECT_LT(result.shed_probes, stream.size()) << "everything was shed";
  ExpectExactShedAccounting(stream, result, options.sim);
}

TEST(OverloadControlTest, TwiceCapacityCompletesWithBoundedLatency) {
  // The acceptance scenario: offer 2x the measured capacity. Without
  // shedding the queue pins at capacity and p99 grows with the backlog;
  // with probe shedding the run completes with a lower p99 and the recall
  // loss still matches shed_probes exactly.
  const auto stream = MakeStream(32, 2500);
  DistributedJoinOptions options = FloodedOptions(stream::ShedPolicy::kNone);
  options.queue_capacity = 64;
  options.batch_size = 8;
  const auto unthrottled = RunDistributedJoin(stream, options);
  ASSERT_TRUE(unthrottled.ok);
  ASSERT_GT(unthrottled.throughput_rps, 0.0);

  options.arrival_rate_per_sec = 2.0 * unthrottled.throughput_rps;
  const auto congested = RunDistributedJoin(stream, options);
  ASSERT_TRUE(congested.ok);
  EXPECT_EQ(congested.shed_probes, 0u);

  options.shed_policy = stream::ShedPolicy::kProbe;
  options.shed_watermark = 0.5;
  const auto shed = RunDistributedJoin(stream, options);
  ASSERT_TRUE(shed.ok) << shed.failure_message;
  EXPECT_GT(shed.shed_probes, 0u) << "2x offered load never triggered shedding";
  ExpectExactShedAccounting(stream, shed, options.sim);
  EXPECT_LE(shed.latency.p99_us, congested.latency.p99_us)
      << "shedding failed to bound the probe backlog";
}

TEST(OverloadControlTest, WatchdogInstrumentationAloneChangesNothing) {
  // Arming the watchdog (health tracking on, policy none) must leave the
  // result set byte-identical to a plain run.
  const auto stream = MakeStream(33, 1200);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 750);
  options.strategy = DistributionStrategy::kLengthBased;
  options.local = LocalAlgorithm::kRecord;
  options.num_joiners = 4;
  options.collect_results = true;
  options.length_partition =
      PlanLengthPartition(stream, options.sim, 4, PartitionMethod::kLoadAwareGreedy);
  const auto plain = RunDistributedJoin(stream, options);

  options.stall_timeout_micros = 60'000'000;  // armed but far from tripping
  const auto instrumented = RunDistributedJoin(stream, options);
  ASSERT_TRUE(instrumented.ok) << instrumented.failure_message;
  EXPECT_EQ(instrumented.shed_probes, 0u);
  EXPECT_EQ(Canonical(instrumented.pairs), Canonical(plain.pairs));
  EXPECT_EQ(Canonical(plain.pairs), Oracle(stream, options.sim));
}

/// Emits the integers [0, n).
class IntSpout : public stream::Spout {
 public:
  explicit IntSpout(int64_t n) : n_(n) {}
  bool NextTuple(stream::OutputCollector& out) override {
    if (next_ >= n_) return false;
    out.Emit(stream::MakeTuple(next_++));
    return true;
  }

 private:
  int64_t n_;
  int64_t next_ = 0;
};

/// Spins inside Execute until released — a deterministic wedged topology.
class WedgeBolt : public stream::Bolt {
 public:
  explicit WedgeBolt(std::shared_ptr<std::atomic<bool>> release)
      : release_(std::move(release)) {}
  void Execute(stream::Tuple /*tuple*/, stream::OutputCollector& /*out*/) override {
    while (!release_->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

 private:
  std::shared_ptr<std::atomic<bool>> release_;
};

TEST(StallWatchdogTest, DetectsWedgedBoltAndDumpsTaskState) {
  auto release = std::make_shared<std::atomic<bool>>(false);
  stream::TopologyBuilder builder;
  builder.SetQueueCapacity(16);
  stream::OverloadOptions overload;
  overload.stall_timeout_micros = 150'000;
  overload.watchdog_interval_micros = 20'000;
  overload.fail_fast = true;
  builder.SetOverload(overload);
  builder.SetSpout("ints", [] { return std::make_unique<IntSpout>(64); });
  builder.SetBolt("wedge", [release] { return std::make_unique<WedgeBolt>(release); })
      .ShuffleGrouping("ints");
  auto topology = builder.Build();
  topology->Submit();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (topology->ok() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(topology->ok()) << "watchdog never tripped on a wedged bolt";
  release->store(true, std::memory_order_release);
  topology->Wait();

  const std::string msg = topology->failure_message();
  EXPECT_NE(msg.find("stall watchdog"), std::string::npos) << msg;
  // The dump names every task with its progress counters and queue state.
  EXPECT_NE(msg.find("wedge"), std::string::npos) << msg;
  EXPECT_NE(msg.find("executed="), std::string::npos) << msg;
  EXPECT_NE(msg.find("queue="), std::string::npos) << msg;
}

TEST(StallWatchdogTest, SustainedOverloadWithoutSheddingFailsFast) {
  // With shedding disabled, a joiner that cannot keep up leaves tuples
  // queued past the stall timeout; the watchdog must fail the run and say
  // why instead of letting latency grow without bound.
  const auto stream = MakeStream(34, 12000);
  DistributedJoinOptions options = FloodedOptions(stream::ShedPolicy::kNone);
  // A deep queue: the unpaced source fills it while the O(stored) probes
  // slow down, so the oldest queued tuple ages far past the stall timeout.
  options.queue_capacity = 2048;
  options.batch_size = 32;
  options.collect_results = false;
  options.stall_timeout_micros = 40'000;
  const auto result = RunDistributedJoin(stream, options);
  EXPECT_FALSE(result.ok) << "watchdog never tripped under sustained overload";
  EXPECT_NE(result.failure_message.find("stall watchdog"), std::string::npos)
      << result.failure_message;
  EXPECT_NE(result.failure_message.find("joiner"), std::string::npos)
      << result.failure_message;
}

/// Missing pairs must all have their stored partner at or below the
/// eviction horizon; pairs the budgeted run does emit must be oracle pairs.
void ExpectBudgetLossBoundedByHorizon(const std::vector<ResultPair>& full,
                                      const std::vector<ResultPair>& got,
                                      uint64_t horizon) {
  std::set<std::pair<uint64_t, uint64_t>> full_set, got_set;
  for (const ResultPair& p : full) full_set.insert({p.probe_seq, p.partner_seq});
  for (const ResultPair& p : got) got_set.insert({p.probe_seq, p.partner_seq});
  for (const ResultPair& p : got) {
    EXPECT_TRUE(full_set.count({p.probe_seq, p.partner_seq}))
        << "budgeted run invented pair " << p.probe_seq << "," << p.partner_seq;
  }
  uint64_t missing = 0;
  for (const ResultPair& p : full) {
    if (got_set.count({p.probe_seq, p.partner_seq})) continue;
    ++missing;
    EXPECT_LE(p.partner_seq, horizon)
        << "lost a pair whose partner was never evicted early";
  }
  EXPECT_GT(missing, 0u) << "budget never cost a pair; tighten the test budget";
}

TEST(MemoryBudgetTest, RecordJoinerBoundsIndexAndReportsHorizon) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto stream = MakeStream(21, 3000);
  RecordJoinerOptions budgeted_options;
  budgeted_options.max_index_bytes = 32 * 1024;
  RecordJoiner budgeted(sim, WindowSpec::Unbounded(), budgeted_options);
  RecordJoiner unbounded(sim, WindowSpec::Unbounded(), RecordJoinerOptions{});
  const auto got = Canonical(SingleNodeJoin(stream, budgeted));
  const auto full = Canonical(SingleNodeJoin(stream, unbounded));
  EXPECT_LT(budgeted.StoredCount(), unbounded.StoredCount() / 2);
  EXPECT_GT(budgeted.stats().budget_evictions, 0u);
  EXPECT_GE(budgeted.stats().evictions, budgeted.stats().budget_evictions);
  const uint64_t horizon = budgeted.stats().eviction_horizon_seq;
  EXPECT_GT(horizon, 0u);
  ExpectBudgetLossBoundedByHorizon(full, got, horizon);
}

TEST(MemoryBudgetTest, BundleJoinerBoundsIndexAndReportsHorizon) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto stream = MakeStream(22, 3000);
  BundleJoinerOptions budgeted_options;
  budgeted_options.max_index_bytes = 32 * 1024;
  BundleJoiner budgeted(sim, WindowSpec::Unbounded(), budgeted_options);
  BundleJoiner unbounded(sim, WindowSpec::Unbounded(), BundleJoinerOptions{});
  const auto got = Canonical(SingleNodeJoin(stream, budgeted));
  const auto full = Canonical(SingleNodeJoin(stream, unbounded));
  EXPECT_LT(budgeted.StoredCount(), unbounded.StoredCount() / 2);
  EXPECT_GT(budgeted.stats().budget_evictions, 0u);
  const uint64_t horizon = budgeted.stats().eviction_horizon_seq;
  EXPECT_GT(horizon, 0u);
  ExpectBudgetLossBoundedByHorizon(full, got, horizon);
}

/// Feeds the first half into `a`, snapshots, restores into a fresh joiner,
/// then feeds the second half into both: budget evictions are part of the
/// deterministic state machine, so the tails must match exactly.
void ExpectBudgetedSnapshotDeterminism(
    const std::vector<RecordPtr>& stream, LocalJoiner& a,
    const std::function<std::unique_ptr<LocalJoiner>()>& fresh) {
  ASSERT_TRUE(a.SupportsSnapshot());
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    a.Process(stream[i], /*store=*/true, /*probe=*/true, [](const ResultPair&) {});
  }
  std::string blob;
  a.Snapshot(&blob);
  auto b = fresh();
  b->Restore(blob);
  EXPECT_EQ(a.StoredCount(), b->StoredCount());

  std::vector<ResultPair> tail_a, tail_b;
  for (size_t i = half; i < stream.size(); ++i) {
    a.Process(stream[i], true, true, [&](const ResultPair& p) { tail_a.push_back(p); });
    b->Process(stream[i], true, true, [&](const ResultPair& p) { tail_b.push_back(p); });
  }
  EXPECT_EQ(tail_a, tail_b) << "restored joiner diverged (same order required)";
  EXPECT_EQ(a.StoredCount(), b->StoredCount());
  EXPECT_EQ(a.stats().budget_evictions, b->stats().budget_evictions);
  EXPECT_EQ(a.stats().eviction_horizon_seq, b->stats().eviction_horizon_seq);
  EXPECT_GT(a.stats().budget_evictions, 0u) << "budget never engaged; vacuous test";
}

TEST(MemoryBudgetTest, BudgetedRecordJoinerSnapshotRestoreIsDeterministic) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto stream = MakeStream(23, 2400);
  RecordJoinerOptions options;
  options.max_index_bytes = 24 * 1024;
  RecordJoiner joiner(sim, WindowSpec::Unbounded(), options);
  ExpectBudgetedSnapshotDeterminism(stream, joiner, [&] {
    return std::make_unique<RecordJoiner>(sim, WindowSpec::Unbounded(), options);
  });
}

TEST(MemoryBudgetTest, BudgetedBundleJoinerSnapshotRestoreIsDeterministic) {
  const SimilaritySpec sim(SimilarityFunction::kJaccard, 700);
  const auto stream = MakeStream(24, 2400);
  BundleJoinerOptions options;
  options.max_index_bytes = 24 * 1024;
  BundleJoiner joiner(sim, WindowSpec::Unbounded(), options);
  ExpectBudgetedSnapshotDeterminism(stream, joiner, [&] {
    return std::make_unique<BundleJoiner>(sim, WindowSpec::Unbounded(), options);
  });
}

TEST(MemoryBudgetTest, DistributedRunReportsBudgetEvictions) {
  const auto stream = MakeStream(25, 3000);
  DistributedJoinOptions options;
  options.sim = SimilaritySpec(SimilarityFunction::kJaccard, 700);
  options.strategy = DistributionStrategy::kBroadcast;
  options.local = LocalAlgorithm::kRecord;
  options.num_joiners = 2;
  options.collect_results = true;
  options.max_index_bytes = 32 * 1024;
  const auto result = RunDistributedJoin(stream, options);
  ASSERT_TRUE(result.ok) << result.failure_message;
  EXPECT_GT(result.budget_evictions, 0u);
  EXPECT_GT(result.eviction_horizon_seq, 0u);
  // Budget evictions only ever lose pairs, never invent or duplicate them.
  const auto expected = Oracle(stream, options.sim);
  const auto got = Canonical(result.pairs);
  EXPECT_LT(got.size(), expected.size());
  std::set<std::pair<uint64_t, uint64_t>> expected_set;
  for (const ResultPair& p : expected) expected_set.insert({p.probe_seq, p.partner_seq});
  for (const ResultPair& p : got) {
    EXPECT_TRUE(expected_set.count({p.probe_seq, p.partner_seq}))
        << "invented pair " << p.probe_seq << "," << p.partner_seq;
  }
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
}

}  // namespace
}  // namespace dssj
